"""Setup shim: lets ``pip install -e .`` work without the ``wheel`` package."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'A Trusted Healthcare Data Analytics Cloud "
        "Platform' (ICDCS 2018)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy", "scipy", "networkx"],
)
