"""Tests for the O(delta) incremental operators and the builder cache."""

import numpy as np
import pytest

from repro.analytics.similarity import (DiseaseSimilarityBuilder,
                                        DrugSimilarityBuilder)
from repro.compute import standard_scheduler
from repro.knowledge.synthetic import generate_universe
from repro.streaming import (IncrementalSimilarityEngine, RunningBaselines,
                             RunningMoments)


@pytest.fixture
def universe():
    return generate_universe(n_drugs=12, n_diseases=8, seed=7)


@pytest.fixture
def engine(universe):
    return IncrementalSimilarityEngine(DrugSimilarityBuilder(universe),
                                       DiseaseSimilarityBuilder(universe))


def _reference(engine, universe):
    """A from-scratch rebuild over the same (mutated) knowledge bases."""
    drugs = DrugSimilarityBuilder(universe, pubchem=engine.drugs.pubchem,
                                  drugbank=engine.drugs.drugbank,
                                  sider=engine.drugs.sider)
    drugs._drug_ids = list(engine.drugs.drug_ids)
    diseases = DiseaseSimilarityBuilder(universe,
                                        disgenet=engine.diseases.disgenet)
    diseases._disease_ids = list(engine.diseases.disease_ids)
    return {**drugs.all_sources(), **diseases.all_sources()}


class TestRunningMoments:
    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        values = rng.normal(7.0, 1.5, size=200)
        moments = RunningMoments()
        for value in values:
            moments.update(float(value))
        assert moments.mean == pytest.approx(np.mean(values), abs=1e-9)
        assert moments.variance == pytest.approx(np.var(values), abs=1e-9)
        assert moments.sample_variance == pytest.approx(
            np.var(values, ddof=1), abs=1e-9)

    def test_empty_and_single(self):
        moments = RunningMoments()
        assert moments.variance == 0.0
        moments.update(4.0)
        assert (moments.mean, moments.variance,
                moments.sample_variance) == (4.0, 0.0, 0.0)


class TestRunningBaselines:
    def test_per_patient_and_cohort(self):
        baselines = RunningBaselines()
        for value in (6.0, 7.0, 8.0):
            baselines.observe("alice", value)
        baselines.observe("bob", 9.0)
        assert baselines.patient("alice").mean == pytest.approx(7.0)
        assert baselines.cohort.mean == pytest.approx(7.5)
        assert baselines.patient_ids == ["alice", "bob"]
        with pytest.raises(KeyError):
            baselines.patient("carol")

    def test_top_active_tracks_heavy_hitters(self):
        baselines = RunningBaselines()
        for _ in range(5):
            baselines.observe("alice", 7.0)
        baselines.observe("bob", 7.0)
        assert baselines.top_active(1) == [("alice", 5.0)]
        assert baselines.describe()["sketch_exact"]


class TestRowUpdates:
    def test_drug_fingerprint_update_equivalent(self, engine, universe):
        drug_id = engine.drugs.drug_ids[3]
        fingerprint = np.array(engine.drugs.pubchem.fingerprint(drug_id))
        fingerprint[:8] = 1 - fingerprint[:8]
        spent = engine.update_drug(drug_id, fingerprint=fingerprint)
        assert spent == len(engine.drugs.drug_ids) - 1
        reference = _reference(engine, universe)
        assert np.allclose(engine.matrices["chemical"],
                           reference["chemical"], atol=1e-9)

    def test_drug_sets_update_equivalent(self, engine, universe):
        drug_id = engine.drugs.drug_ids[0]
        engine.update_drug(drug_id, targets={"T001", "T002"},
                           side_effects={"SE001"})
        reference = _reference(engine, universe)
        assert np.allclose(engine.matrices["target"], reference["target"],
                           atol=1e-9)
        assert np.allclose(engine.matrices["side_effect"],
                           reference["side_effect"], atol=1e-9)

    def test_disease_phenotype_update_equivalent(self, engine, universe):
        """Adaptive bandwidth: one row shifts the whole kernel, and the
        incrementally maintained distance matrix reproduces it exactly."""
        disease_id = engine.diseases.disease_ids[2]
        phenotype = np.array(
            engine.diseases.disgenet.phenotype(disease_id)) + 0.3
        spent = engine.update_disease(disease_id, phenotype=phenotype)
        assert spent == len(engine.diseases.disease_ids) - 1
        reference = _reference(engine, universe)
        assert np.allclose(engine.matrices["phenotype"],
                           reference["phenotype"], atol=1e-9)

    def test_disease_ontology_and_genes_equivalent(self, engine, universe):
        disease_id = engine.diseases.disease_ids[5]
        engine.update_disease(disease_id,
                              ontology_path=("root", "x", "y"),
                              genes={"G0001", "G0002"})
        reference = _reference(engine, universe)
        assert np.allclose(engine.matrices["ontology"],
                           reference["ontology"], atol=1e-9)
        assert np.allclose(engine.matrices["disease_gene"],
                           reference["disease_gene"], atol=1e-9)

    def test_gene_reverse_index_stays_honest(self, engine):
        disgenet = engine.diseases.disgenet
        disease_id = engine.diseases.disease_ids[0]
        old_genes = set(disgenet.genes_for_disease(disease_id))
        engine.update_disease(disease_id, genes={"G9999"})
        assert disgenet.diseases_for_gene("G9999") == {disease_id}
        for gene in old_genes:
            assert disease_id not in disgenet.diseases_for_gene(gene)


class TestInserts:
    def test_add_drug_grows_all_matrices(self, engine, universe):
        n = len(engine.drugs.drug_ids)
        rng = np.random.default_rng(1)
        engine.add_drug("DRUG-NEW",
                        fingerprint=rng.integers(0, 2, 128),
                        targets={"T001"}, side_effects={"SE001", "SE002"})
        assert len(engine.drugs.drug_ids) == n + 1
        reference = _reference(engine, universe)
        for source in ("chemical", "target", "side_effect"):
            assert engine.matrices[source].shape == (n + 1, n + 1)
            assert np.allclose(engine.matrices[source], reference[source],
                               atol=1e-9), source

    def test_add_disease_grows_all_matrices(self, engine, universe):
        n = len(engine.diseases.disease_ids)
        dim = universe.diseases[0].phenotype.size
        engine.add_disease("DIS-NEW",
                           phenotype=np.full(dim, 0.25),
                           ontology_path=("root", "new"),
                           genes={"G0007"})
        assert len(engine.diseases.disease_ids) == n + 1
        reference = _reference(engine, universe)
        for source in ("phenotype", "ontology", "disease_gene"):
            assert engine.matrices[source].shape == (n + 1, n + 1)
            assert np.allclose(engine.matrices[source], reference[source],
                               atol=1e-9), source

    def test_duplicate_insert_rejected(self, engine):
        existing = engine.drugs.drug_ids[0]
        with pytest.raises(ValueError):
            engine.drugs.add_drug_id(existing)


class TestBuilderCache:
    def test_one_build_per_dirty_epoch(self, universe):
        """The regression the satellite fix demands: repeated accessor
        calls cost one build until invalidated, then exactly one more."""
        builder = DrugSimilarityBuilder(universe)
        for _ in range(4):
            builder.chemical()
        assert builder.build_counts == {"chemical": 1}
        builder.invalidate("chemical")
        builder.chemical()
        builder.chemical()
        assert builder.build_counts == {"chemical": 1 + 1}

    def test_cached_accessors_return_same_object(self, universe):
        builder = DiseaseSimilarityBuilder(universe)
        assert builder.phenotype() is builder.phenotype()

    def test_invalidate_all(self, universe):
        builder = DrugSimilarityBuilder(universe)
        builder.all_sources()
        builder.invalidate()
        builder.all_sources()
        assert builder.build_counts == {"chemical": 2, "target": 2,
                                        "side_effect": 2}

    def test_prime_installs_without_counting_a_build(self, universe):
        builder = DrugSimilarityBuilder(universe)
        matrix = np.eye(len(builder.drug_ids))
        builder.prime("chemical", matrix)
        assert builder.chemical() is matrix
        assert builder.build_counts == {}

    def test_engine_updates_never_trigger_rebuilds(self, engine):
        """After construction, incremental updates keep the caches primed:
        accessors must not pay another full build."""
        baseline = dict(engine.drugs.build_counts)
        drug_id = engine.drugs.drug_ids[1]
        engine.update_drug(drug_id, targets={"T003"})
        engine.drugs.target()
        engine.drugs.chemical()
        assert engine.drugs.build_counts == baseline


class TestDirtySetRefresh:
    def test_refresh_submits_only_dirty_rows(self, engine):
        scheduler = standard_scheduler()
        drug_id = engine.drugs.drug_ids[2]
        disease_id = engine.diseases.disease_ids[1]
        engine.update_drug(drug_id, targets={"T009"})
        engine.update_disease(disease_id, genes={"G0001"})
        assert engine.dirty_drugs == {drug_id}
        assert engine.dirty_diseases == {disease_id}
        job = engine.refresh_job(scheduler)
        scheduler.run(job.job_id)
        assert job.state.value == "succeeded"
        # one row task per dirty entity + the fan-in summary
        assert len(job.graph.tasks) == 3
        assert f"row-{drug_id}" in job.graph.tasks
        assert engine.dirty_drugs == set() and engine.dirty_diseases == set()
        row = scheduler.result(job.job_id, f"row.{drug_id}")
        assert len(row) == len(engine.drugs.drug_ids)

    def test_refresh_with_nothing_dirty_is_none(self, engine):
        scheduler = standard_scheduler()
        assert engine.refresh_job(scheduler) is None

    def test_epoch_advances_per_refresh(self, engine):
        scheduler = standard_scheduler()
        for i in range(2):
            engine.update_drug(engine.drugs.drug_ids[i], targets={"T1"})
            engine.refresh_job(scheduler)
        assert engine.epoch == 2
