"""Integration: the versioned /v1/studies API through the gateway.

End-to-end dispatch with RBAC (researchers propose/run, readers poll),
strict tenant isolation (foreign studies read as 404), lifecycle
violations as 409, envelope validation as 422, and audit entries for
every verb.
"""

import pytest

from repro import HealthCloudPlatform
from repro.blockchain import standard_network
from repro.compute import standard_scheduler
from repro.core.api import ApiRequest
from repro.federation import (
    DeltStudyConfig,
    FederatedStudyService,
    StudiesApi,
    StudyProposalRequest,
    build_institutions,
)
from repro.rbac import (
    Action,
    ExternalIdentityProvider,
    Permission,
    Scope,
    ScopeKind,
)
from repro.workloads.emr import generate_emr_cohort

GROUP = "grp-api"
PARTICIPANTS = ("inst-00", "inst-01", "inst-02")


def proposal(**overrides):
    base = dict(analysis="delt", group_id=GROUP,
                participants=PARTICIPANTS, threshold=2)
    base.update(overrides)
    return StudyProposalRequest(**base)


@pytest.fixture
def world():
    platform = HealthCloudPlatform(seed=77, use_blockchain=False)
    cohort = generate_emr_cohort(n_patients=24, n_drugs=6, n_lowering=2,
                                 seed=7)
    institutions = build_institutions(3, platform.clock, GROUP,
                                      patients=cohort.patients, seed=7)
    network = standard_network(seed=77, clock=platform.clock,
                               monitoring=platform.monitoring)
    scheduler = standard_scheduler(clock=platform.clock,
                                   monitoring=platform.monitoring)
    service = FederatedStudyService(
        clock=platform.clock, network=network, scheduler=scheduler,
        institutions=institutions, monitoring=platform.monitoring,
        seed=77, delt_config=DeltStudyConfig(n_drugs=6, max_iterations=2))
    gateway = platform.build_api_gateway(studies=StudiesApi(service))

    idp = ExternalIdentityProvider("lab-idp", b"lab-key-0123456789",
                                   platform.clock)
    platform.federation.approve_idp("lab-idp", b"lab-key-0123456789")

    def make_user(tenant_context, name, actions):
        user = platform.rbac.register_user(
            tenant_context.tenant.tenant_id, name)
        scope = Scope(ScopeKind.TENANT, tenant_context.tenant.tenant_id)
        role = f"{name}-role"
        platform.rbac.define_role(role, [
            Permission(action, "studies", scope) for action in actions])
        platform.rbac.bind_role(user.user_id,
                                tenant_context.default_org.org_id,
                                tenant_context.default_env.env_id, role)
        platform.federation.link_identity("lab-idp", f"{name}@lab",
                                          user.user_id)
        return user

    lab = platform.register_tenant("research-lab")
    clinic = platform.register_tenant("clinic")
    make_user(lab, "researcher", [Action.READ, Action.WRITE])
    make_user(lab, "reader", [Action.READ])
    make_user(clinic, "outsider", [Action.READ, Action.WRITE])

    def call(name, tenant_context, path, **params):
        token = idp.issue_token(f"{name}@lab")
        return gateway.dispatch(ApiRequest(
            path=path, token=token,
            scope_entity_id=tenant_context.tenant.tenant_id,
            org_id=tenant_context.default_org.org_id,
            env_id=tenant_context.default_env.env_id, params=params))

    return platform, service, gateway, lab, clinic, call


def propose_and_approve(call, lab, threshold=2):
    study_id = call("researcher", lab, "/studies/propose",
                    request=proposal(threshold=threshold)
                    ).body["study_id"]
    for name in PARTICIPANTS[:threshold]:
        call("researcher", lab, "/studies/approve", study_id=study_id,
             institution=name)
    return study_id


class TestDispatch:
    def test_routes_registered_versioned(self, world):
        gateway = world[2]
        routes = set(gateway.routes())
        assert {"/v1/studies/propose", "/v1/studies/approve",
                "/v1/studies/deny", "/v1/studies/run",
                "/v1/studies/status", "/v1/studies/result"} <= routes

    def test_full_lifecycle_end_to_end(self, world):
        platform, service, gateway, lab, clinic, call = world
        response = call("researcher", lab, "/studies/propose",
                        request=proposal())
        assert response.status == 200
        study_id = response.body["study_id"]
        assert response.body["state"] == "proposed"

        first = call("researcher", lab, "/studies/approve",
                     study_id=study_id, institution="inst-00")
        assert first.body["state"] == "proposed"
        second = call("researcher", lab, "/studies/approve",
                      study_id=study_id, institution="inst-01")
        assert second.body["state"] == "approved"
        assert second.body["approvals"] == ["inst-00", "inst-01"]

        run = call("researcher", lab, "/studies/run", study_id=study_id)
        assert run.status == 200
        assert run.body["state"] == "complete"
        assert run.body["rounds"] >= 2

        result = call("reader", lab, "/studies/result", study_id=study_id)
        assert result.status == 200
        assert result.body["analysis"] == "delt"
        assert len(result.body["effects"]) == 6

    def test_run_before_threshold_conflicts(self, world):
        *_, lab, clinic, call = world
        study_id = call("researcher", lab, "/studies/propose",
                        request=proposal()).body["study_id"]
        call("researcher", lab, "/studies/approve", study_id=study_id,
             institution="inst-00")
        response = call("researcher", lab, "/studies/run",
                        study_id=study_id)
        assert response.status == 409

    def test_deny_conflicts_after_approved(self, world):
        *_, lab, clinic, call = world
        study_id = propose_and_approve(call, lab)
        response = call("researcher", lab, "/studies/deny",
                        study_id=study_id, institution="inst-02")
        assert response.status == 409

    def test_envelope_validation(self, world):
        *_, lab, clinic, call = world
        assert call("researcher", lab, "/studies/propose",
                    request={"analysis": "delt"}).status == 422
        assert call("researcher", lab, "/studies/propose",
                    request=proposal(threshold=9)).status == 422
        assert call("researcher", lab, "/studies/propose",
                    request=proposal(analysis="magic")).status == 422

    def test_result_before_run_conflicts(self, world):
        *_, lab, clinic, call = world
        study_id = propose_and_approve(call, lab)
        response = call("reader", lab, "/studies/result",
                        study_id=study_id)
        assert response.status == 409


class TestAccessControl:
    def test_reader_cannot_propose_or_run(self, world):
        *_, lab, clinic, call = world
        assert call("reader", lab, "/studies/propose",
                    request=proposal()).status == 403
        study_id = propose_and_approve(call, lab)
        assert call("reader", lab, "/studies/run",
                    study_id=study_id).status == 403

    def test_reader_can_poll(self, world):
        *_, lab, clinic, call = world
        study_id = propose_and_approve(call, lab)
        assert call("reader", lab, "/studies/status",
                    study_id=study_id).status == 200

    def test_tenant_isolation_reads_as_404(self, world):
        *_, lab, clinic, call = world
        study_id = propose_and_approve(call, lab)
        for path in ("/studies/status", "/studies/run", "/studies/result"):
            response = call("outsider", clinic, path, study_id=study_id)
            assert response.status == 404, path
        approve = call("outsider", clinic, "/studies/approve",
                       study_id=study_id, institution="inst-02")
        assert approve.status == 404

    def test_unknown_study_reads_as_404(self, world):
        *_, lab, clinic, call = world
        assert call("reader", lab, "/studies/status",
                    study_id="study-999999").status == 404


class TestAudit:
    def test_every_verb_leaves_an_audit_entry(self, world):
        platform, service, gateway, lab, clinic, call = world
        study_id = propose_and_approve(call, lab)
        call("researcher", lab, "/studies/run", study_id=study_id)
        call("reader", lab, "/studies/status", study_id=study_id)
        entries = [e.message for e in platform.monitoring.logs.entries("audit")
                   if study_id in e.message]
        assert any("proposed" in m for m in entries)
        assert any("approval recorded" in m for m in entries)
        assert any("run" in m for m in entries)
        assert any("status read" in m for m in entries)
