"""FHIR Subscription-style push: registry semantics and the
/v1/subscriptions gateway surface (RBAC, tenant isolation, rate limits,
audit)."""

import pytest

from repro import HealthCloudPlatform
from repro.cloudsim.clock import SimClock
from repro.cloudsim.healthplane.events import EventBus
from repro.core.api import ApiRequest
from repro.core.errors import NotFoundError, ValidationError
from repro.rbac import (
    Action,
    ExternalIdentityProvider,
    Permission,
    Scope,
    ScopeKind,
)
from repro.streaming import (SubscriptionApi, SubscriptionFilter,
                             SubscriptionRegistry)
from repro.streaming.feed import StreamEvent
from repro.streaming.subscriptions import POLL_RATE_LIMIT


def _event(i=0, event_class="lab.hba1c", patient_id="p-1", priority=3):
    return StreamEvent(event_id=f"e-{i:03d}", arrival_s=float(i),
                       patient_id=patient_id, tenant_id="t",
                       event_class=event_class, priority=priority)


class TestFilter:
    def test_empty_filter_matches_everything(self):
        criteria = SubscriptionFilter()
        assert criteria.matches(_event())
        assert criteria.matches(_event(event_class="adt.census", priority=1))

    def test_class_prefix_matching(self):
        criteria = SubscriptionFilter(event_classes=("lab",))
        assert criteria.matches(_event(event_class="lab.hba1c"))
        assert not criteria.matches(_event(event_class="laboratory.x"))
        exact = SubscriptionFilter(event_classes=("adt.census",))
        assert exact.matches(_event(event_class="adt.census"))

    def test_patient_and_priority_floors(self):
        criteria = SubscriptionFilter(patient_ids=("p-1",), min_priority=2)
        assert criteria.matches(_event(patient_id="p-1", priority=3))
        assert not criteria.matches(_event(patient_id="p-2", priority=3))
        assert not criteria.matches(_event(patient_id="p-1", priority=1))

    def test_negative_priority_rejected(self):
        with pytest.raises(ValidationError):
            SubscriptionFilter(min_priority=-1)


class TestRegistry:
    @pytest.fixture
    def registry(self):
        return SubscriptionRegistry(EventBus(SimClock()), queue_maxlen=8)

    def test_push_routes_only_to_matching_channels(self, registry):
        labs = registry.register(tenant_id="t1", owner="u1",
                                 criteria=SubscriptionFilter(
                                     event_classes=("lab",)))
        adt = registry.register(tenant_id="t1", owner="u1",
                                criteria=SubscriptionFilter(
                                    event_classes=("adt",)))
        assert registry.push(_event(0), latency_s=0.01) == 1
        assert registry.push(_event(1, event_class="adt.census"),
                             latency_s=0.01) == 1
        lab_events = registry.poll(labs.sub_id)
        assert [e["attributes"]["event_id"] for e in lab_events] == ["e-000"]
        adt_events = registry.poll(adt.sub_id)
        assert [e["attributes"]["event_id"] for e in adt_events] == ["e-001"]
        assert lab_events[0]["attributes"]["push_latency_s"] == 0.01

    def test_cancelled_subscription_receives_nothing_more(self, registry):
        subscription = registry.register(tenant_id="t1", owner="u1",
                                         criteria=SubscriptionFilter())
        registry.push(_event(0), latency_s=0.0)
        registry.cancel(subscription.sub_id)
        assert registry.push(_event(1), latency_s=0.0) == 0
        # queued-before-cancel events still drain
        assert len(registry.poll(subscription.sub_id)) == 1

    def test_unknown_subscription_raises(self, registry):
        with pytest.raises(NotFoundError):
            registry.get("sub-9999")

    def test_channel_saturation_drops_oldest_with_accounting(self, registry):
        subscription = registry.register(tenant_id="t1", owner="u1",
                                         criteria=SubscriptionFilter())
        for i in range(12):   # maxlen=8 -> 4 drops
            registry.push(_event(i), latency_s=0.0)
        channel = registry.bus.subscription(subscription.channel_name)
        assert channel.dropped == 4
        drained = registry.poll(subscription.sub_id)
        assert [e["attributes"]["event_id"] for e in drained][0] == "e-004"


@pytest.fixture
def world():
    platform = HealthCloudPlatform(seed=91, use_blockchain=False)
    registry = SubscriptionRegistry(
        EventBus(platform.clock, monitoring=platform.monitoring))
    api = SubscriptionApi(registry, monitoring=platform.monitoring)
    gateway = platform.build_api_gateway(subscriptions=api)

    idp = ExternalIdentityProvider("lab-idp", b"lab-key-0123456789",
                                   platform.clock)
    platform.federation.approve_idp("lab-idp", b"lab-key-0123456789")

    def make_user(tenant_context, name, actions):
        user = platform.rbac.register_user(
            tenant_context.tenant.tenant_id, name)
        scope = Scope(ScopeKind.TENANT, tenant_context.tenant.tenant_id)
        role = f"{name}-role"
        platform.rbac.define_role(role, [
            Permission(action, "subscriptions", scope)
            for action in actions])
        platform.rbac.bind_role(user.user_id,
                                tenant_context.default_org.org_id,
                                tenant_context.default_env.env_id, role)
        platform.federation.link_identity("lab-idp", f"{name}@lab",
                                          user.user_id)
        return user

    lab = platform.register_tenant("research-lab")
    clinic = platform.register_tenant("clinic")
    make_user(lab, "clinician", [Action.READ, Action.WRITE])
    make_user(lab, "reader", [Action.READ])
    make_user(clinic, "outsider", [Action.READ, Action.WRITE])

    def call(name, tenant_context, path, **params):
        token = idp.issue_token(f"{name}@lab")
        return gateway.dispatch(ApiRequest(
            path=path, token=token,
            scope_entity_id=tenant_context.tenant.tenant_id,
            org_id=tenant_context.default_org.org_id,
            env_id=tenant_context.default_env.env_id, params=params))

    return platform, registry, gateway, lab, clinic, call


class TestGateway:
    def test_routes_registered_versioned(self, world):
        gateway = world[2]
        routes = set(gateway.routes())
        assert {"/v1/subscriptions/register", "/v1/subscriptions/list",
                "/v1/subscriptions/poll",
                "/v1/subscriptions/cancel"} <= routes

    def test_register_push_poll_cancel_end_to_end(self, world):
        platform, registry, gateway, lab, clinic, call = world
        response = call("clinician", lab, "/subscriptions/register",
                        criteria=SubscriptionFilter(event_classes=("lab",)))
        assert response.status == 200
        sub_id = response.body["sub_id"]
        assert response.body["active"]

        registry.push(_event(0), latency_s=0.02)
        polled = call("clinician", lab, "/subscriptions/poll", sub_id=sub_id)
        assert polled.status == 200
        assert [e["attributes"]["event_id"]
                for e in polled.body["events"]] == ["e-000"]

        listed = call("clinician", lab, "/subscriptions/list")
        assert [s["sub_id"] for s in listed.body["subscriptions"]] == \
            [sub_id]

        cancelled = call("clinician", lab, "/subscriptions/cancel",
                         sub_id=sub_id)
        assert cancelled.status == 200 and not cancelled.body["active"]
        assert registry.push(_event(1), latency_s=0.0) == 0

    def test_register_validates_envelope(self, world):
        *_, lab, clinic, call = world
        response = call("clinician", lab, "/subscriptions/register",
                        criteria={"event_classes": ["lab"]})
        assert response.status == 422

    def test_reader_cannot_register_or_cancel(self, world):
        *_, lab, clinic, call = world
        response = call("reader", lab, "/subscriptions/register",
                        criteria=SubscriptionFilter())
        assert response.status == 403

    def test_reader_can_list_and_poll(self, world):
        *_, lab, clinic, call = world
        sub_id = call("clinician", lab, "/subscriptions/register",
                      criteria=SubscriptionFilter()).body["sub_id"]
        assert call("reader", lab, "/subscriptions/list").status == 200
        assert call("reader", lab, "/subscriptions/poll",
                    sub_id=sub_id).status == 200

    def test_tenant_isolation_reads_as_404(self, world):
        *_, lab, clinic, call = world
        sub_id = call("clinician", lab, "/subscriptions/register",
                      criteria=SubscriptionFilter()).body["sub_id"]
        for path in ("/subscriptions/poll", "/subscriptions/cancel"):
            response = call("outsider", clinic, path, sub_id=sub_id)
            assert response.status == 404, path
        listed = call("outsider", clinic, "/subscriptions/list")
        assert listed.body["subscriptions"] == []

    def test_poll_rate_limit_applies_per_route(self, world):
        *_, lab, clinic, call = world
        sub_id = call("clinician", lab, "/subscriptions/register",
                      criteria=SubscriptionFilter()).body["sub_id"]
        for _ in range(POLL_RATE_LIMIT):
            assert call("clinician", lab, "/subscriptions/poll",
                        sub_id=sub_id).status == 200
        throttled = call("clinician", lab, "/subscriptions/poll",
                         sub_id=sub_id)
        assert throttled.status == 429
        # per-route budget: other verbs still fine
        assert call("clinician", lab, "/subscriptions/list").status == 200

    def test_audit_log_threads_sub_ids(self, world):
        platform, *_, lab, clinic, call = world
        sub_id = call("clinician", lab, "/subscriptions/register",
                      criteria=SubscriptionFilter()).body["sub_id"]
        call("clinician", lab, "/subscriptions/poll", sub_id=sub_id)
        call("clinician", lab, "/subscriptions/cancel", sub_id=sub_id)
        entries = platform.audit.search_logs(stream="audit",
                                             contains=sub_id)
        assert any("registered" in e for e in entries)
        assert any("polled" in e for e in entries)
        assert any("cancelled" in e for e in entries)
