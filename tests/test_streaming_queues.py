"""Tests for bounded stream queues and the shedding policies."""

import pytest

from repro.streaming import (AdaptiveShedPolicy, DropOldestPolicy,
                             PriorityShedPolicy, StreamQueue)
from repro.streaming.feed import StreamEvent


def _event(i, priority=1, event_class="adt.census", arrival=None):
    return StreamEvent(event_id=f"e-{i:03d}",
                       arrival_s=float(i) if arrival is None else arrival,
                       patient_id=f"p-{i % 4}", tenant_id="t",
                       event_class=event_class, priority=priority)


class TestAdmission:
    def test_admits_until_capacity(self):
        queue = StreamQueue("q", capacity=3)
        results = [queue.offer(_event(i)) for i in range(3)]
        assert all(r.admitted and r.shed_event is None for r in results)
        assert queue.depth == 3

    def test_pop_is_fifo(self):
        queue = StreamQueue("q", capacity=4)
        for i in range(4):
            queue.offer(_event(i))
        assert [queue.pop().event_id for _ in range(4)] == \
            ["e-000", "e-001", "e-002", "e-003"]

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            StreamQueue("q", capacity=0)

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            StreamQueue("q", capacity=1).pop()


class TestDropOldest:
    def test_full_queue_evicts_head(self):
        queue = StreamQueue("q", capacity=2, policy=DropOldestPolicy())
        queue.offer(_event(0))
        queue.offer(_event(1))
        result = queue.offer(_event(2))
        assert result.admitted
        assert result.shed_event.event_id == "e-000"
        assert result.reason == "queue-full"
        assert [queue.pop().event_id, queue.pop().event_id] == \
            ["e-001", "e-002"]


class TestPriorityShed:
    def test_higher_priority_evicts_lowest(self):
        queue = StreamQueue("q", capacity=2, policy=PriorityShedPolicy())
        queue.offer(_event(0, priority=1))
        queue.offer(_event(1, priority=3))
        result = queue.offer(_event(2, priority=2))
        assert result.admitted
        assert result.shed_event.event_id == "e-000"
        assert result.reason == "priority"

    def test_equal_priority_sheds_the_arrival(self):
        queue = StreamQueue("q", capacity=2, policy=PriorityShedPolicy())
        queue.offer(_event(0, priority=2))
        queue.offer(_event(1, priority=2))
        result = queue.offer(_event(2, priority=2))
        assert not result.admitted
        assert result.shed_event.event_id == "e-002"
        assert queue.depth == 2

    def test_ties_evict_oldest(self):
        queue = StreamQueue("q", capacity=3, policy=PriorityShedPolicy())
        for i in range(3):
            queue.offer(_event(i, priority=1))
        result = queue.offer(_event(3, priority=2))
        assert result.shed_event.event_id == "e-000"


class TestAdaptiveShed:
    def test_below_low_watermark_never_sheds(self):
        policy = AdaptiveShedPolicy(seed=0, low_watermark=0.5,
                                    high_watermark=0.9)
        queue = StreamQueue("q", capacity=10, policy=policy)
        for i in range(5):
            assert queue.offer(_event(i)).admitted
        assert queue.shed == 0

    def test_at_high_watermark_sheds_everything_sheddable(self):
        policy = AdaptiveShedPolicy(seed=0, low_watermark=0.1,
                                    high_watermark=0.5, protect_priority=3)
        queue = StreamQueue("q", capacity=4, policy=policy)
        for i in range(2):   # protected fills never shed adaptively
            queue.offer(_event(i, priority=3))
        assert policy.shed_probability(queue.depth / queue.capacity) == 1.0
        result = queue.offer(_event(9, priority=1))
        assert not result.admitted
        assert result.reason == "adaptive"

    def test_protected_priority_rides_through(self):
        policy = AdaptiveShedPolicy(seed=0, low_watermark=0.1,
                                    high_watermark=0.3, protect_priority=3)
        queue = StreamQueue("q", capacity=4, policy=policy)
        for i in range(8):
            queue.offer(_event(i, priority=3, event_class="lab.hba1c"))
        # Protected events fall back to drop-oldest at capacity: all
        # admitted, overflow victims explicitly shed.
        assert queue.depth == 4
        assert queue.shed == 4
        assert queue.shed_by_reason == {"queue-full": 4}

    def test_deterministic_under_seed(self):
        def run(seed):
            policy = AdaptiveShedPolicy(seed=seed, low_watermark=0.2,
                                        high_watermark=0.8)
            queue = StreamQueue("q", capacity=6, policy=policy)
            return [queue.offer(_event(i)).admitted for i in range(30)]
        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_burn_hook_steepens_shedding(self):
        policy = AdaptiveShedPolicy(seed=0, low_watermark=0.4,
                                    high_watermark=0.9,
                                    burn_hook=lambda: 1.0)
        # occupancy 0.5 doubles to pressure 1.0 under burn -> certain shed
        assert policy.shed_probability(0.5) == 1.0
        calm = AdaptiveShedPolicy(seed=0, low_watermark=0.4,
                                  high_watermark=0.9)
        assert calm.shed_probability(0.5) < 0.25

    def test_invalid_watermarks_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveShedPolicy(low_watermark=0.9, high_watermark=0.5)


class TestLedger:
    def test_offered_equals_popped_plus_shed_plus_depth(self):
        queue = StreamQueue("q", capacity=3, policy=PriorityShedPolicy())
        for i in range(12):
            queue.offer(_event(i, priority=i % 3))
            if i % 4 == 0 and queue.depth:
                queue.pop()
        assert queue.offered == queue.popped + queue.shed + queue.depth

    def test_describe_accounts_by_reason_and_class(self):
        queue = StreamQueue("q", capacity=1, policy=DropOldestPolicy())
        queue.offer(_event(0, event_class="adt.census"))
        queue.offer(_event(1, event_class="lab.hba1c"))
        description = queue.describe()
        assert description["shed_by_reason"] == {"queue-full": 1}
        assert description["shed_by_class"] == {"adt.census": 1}
        assert description["peak_depth"] == 1
