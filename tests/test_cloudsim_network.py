"""Tests for the simulated network fabric."""

import pytest

from repro.cloudsim.clock import SimClock
from repro.cloudsim.network import Link, NetworkFabric, standard_topology
from repro.core.errors import ConfigurationError, NotFoundError


class TestLink:
    def test_transfer_time_includes_latency_and_bandwidth(self):
        link = Link(latency_s=0.01, bandwidth_bps=1000)
        assert link.transfer_time(1000) == pytest.approx(0.01 + 1.0)

    def test_zero_bytes_costs_latency_only(self):
        link = Link(latency_s=0.02, bandwidth_bps=1e6)
        assert link.transfer_time(0) == pytest.approx(0.02)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            Link(0.01, 1000).transfer_time(-1)


class TestNetworkFabric:
    def _fabric(self):
        fabric = NetworkFabric()
        for name in ("a", "b", "c"):
            fabric.add_endpoint(name)
        fabric.connect("a", "b", latency_s=0.010, bandwidth_bps=1e6)
        fabric.connect("b", "c", latency_s=0.020, bandwidth_bps=1e6)
        return fabric

    def test_direct_route(self):
        assert self._fabric().route("a", "b") == ["a", "b"]

    def test_multi_hop_route(self):
        assert self._fabric().route("a", "c") == ["a", "b", "c"]

    def test_multi_hop_time_sums_links(self):
        fabric = self._fabric()
        t = fabric.one_way_time("a", "c", 0)
        assert t == pytest.approx(0.030)

    def test_same_endpoint_is_free(self):
        assert self._fabric().one_way_time("a", "a", 10**6) == 0.0

    def test_transfer_advances_clock(self):
        fabric = self._fabric()
        fabric.transfer("a", "b", 1000)
        assert fabric.clock.now > 0.0

    def test_transfer_recorded(self):
        fabric = self._fabric()
        fabric.transfer("a", "c", 500)
        assert fabric.total_bytes_moved() == 500
        assert fabric.transfers[0].hops == ("a", "b", "c")

    def test_partition_blocks_route(self):
        fabric = self._fabric()
        fabric.partition("a")
        assert not fabric.is_reachable("a", "b")
        with pytest.raises(NotFoundError):
            fabric.route("a", "b")

    def test_heal_restores_route(self):
        fabric = self._fabric()
        fabric.partition("a")
        fabric.heal("a")
        assert fabric.is_reachable("a", "b")

    def test_partition_unknown_endpoint(self):
        with pytest.raises(NotFoundError):
            self._fabric().partition("zz")

    def test_invalid_link_rejected(self):
        fabric = NetworkFabric()
        fabric.add_endpoint("a")
        fabric.add_endpoint("b")
        with pytest.raises(ConfigurationError):
            fabric.connect("a", "b", latency_s=-1, bandwidth_bps=1e6)
        with pytest.raises(ConfigurationError):
            fabric.connect("a", "b", latency_s=0.01, bandwidth_bps=0)

    def test_round_trip_time(self):
        fabric = self._fabric()
        rtt = fabric.round_trip_time("a", "b")
        assert rtt > 2 * 0.010  # two latencies plus serialization

    def test_shared_clock(self):
        clock = SimClock()
        fabric = NetworkFabric(clock)
        fabric.add_endpoint("x")
        fabric.add_endpoint("y")
        fabric.connect("x", "y", 0.01, 1e6)
        fabric.transfer("x", "y", 0)
        assert clock.now == pytest.approx(0.01)


class TestStandardTopology:
    def test_wan_dominates_lan(self):
        fabric = standard_topology()
        wan = fabric.one_way_time("client", "cloud-a", 1024)
        lan = fabric.one_way_time("cloud-a", "cloud-a-storage", 1024)
        assert wan > 10 * lan

    def test_client_reaches_all(self):
        fabric = standard_topology()
        for target in ("cloud-a", "cloud-b", "external-kb",
                       "cloud-a-storage", "cloud-b-storage"):
            assert fabric.is_reachable("client", target)
