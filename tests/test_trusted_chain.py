"""Tests for attestation, vTPM, image management, and the trust chain."""

import pytest

from repro.cloudsim.nodes import Host, SoftwareComponent, VirtualMachine
from repro.core.errors import AttestationError, ConfigurationError
from repro.crypto.rsa import generate_keypair
from repro.trusted.attestation import AttestationService, TrustVerdict
from repro.trusted.chain import HOST_PCRS, TrustedBootOrchestrator
from repro.trusted.images import ImageManagementService, sign_image
from repro.trusted.tpm import PCR_VM_KERNEL, Tpm
from repro.trusted.vtpm import VtpmManager


def make_host(host_id="h1", has_tpm=True):
    host = Host(host_id,
                bios=SoftwareComponent("bios", b"bios-v1"),
                hypervisor=SoftwareComponent("kvm", b"kvm-v4"),
                has_tpm=has_tpm)
    host.start()
    return host


def make_vm(vm_id="vm1"):
    return VirtualMachine(
        vm_id,
        bios=SoftwareComponent("seabios", b"sb1"),
        kernel=SoftwareComponent("linux", b"k510"),
        image=SoftwareComponent("ubuntu", b"u22"))


@pytest.fixture
def setup():
    attestation = AttestationService(seed=4)
    orchestrator = TrustedBootOrchestrator(attestation, seed=4)
    host = make_host()
    orchestrator.boot_host(host)
    return attestation, orchestrator, host


class TestAttestationService:
    def test_unknown_platform(self):
        attestation = AttestationService()
        tpm = Tpm("tpm:x", seed=1)
        result = attestation.attest(tpm, (0,))
        assert result.verdict is TrustVerdict.UNKNOWN_PLATFORM

    def test_enrolled_without_goldens(self):
        attestation = AttestationService()
        tpm = Tpm("tpm:x", seed=1)
        attestation.enroll_platform(tpm)
        result = attestation.attest(tpm, (0,))
        assert result.verdict is TrustVerdict.UNKNOWN_PLATFORM

    def test_trusted_when_matching(self):
        attestation = AttestationService()
        tpm = Tpm("tpm:x", seed=1)
        tpm.extend(0, "bios", "aa" * 32)
        attestation.enroll_platform(tpm)
        attestation.set_golden_values(tpm.tpm_id, {0: tpm.read_pcr(0)})
        assert attestation.attest(tpm, (0,)).trusted

    def test_untrusted_on_divergence(self):
        attestation = AttestationService()
        tpm = Tpm("tpm:x", seed=1)
        tpm.extend(0, "bios", "aa" * 32)
        attestation.enroll_platform(tpm)
        attestation.set_golden_values(tpm.tpm_id, {0: tpm.read_pcr(0)})
        tpm.extend(0, "malware", "bb" * 32)
        result = attestation.attest(tpm, (0,))
        assert result.verdict is TrustVerdict.UNTRUSTED
        assert result.mismatched_pcrs == (0,)

    def test_nonces_fresh(self):
        attestation = AttestationService(seed=1)
        assert attestation.fresh_nonce() != attestation.fresh_nonce()

    def test_appraisal_history_kept(self):
        attestation = AttestationService()
        tpm = Tpm("tpm:x", seed=1)
        attestation.attest(tpm, (0,))
        assert len(attestation.appraisal_history) == 1


class TestTrustChain:
    def test_host_attests_after_boot(self, setup):
        _, orchestrator, host = setup
        assert orchestrator.attest_host(host.host_id).trusted

    def test_host_without_tpm_rejected(self):
        orchestrator = TrustedBootOrchestrator(AttestationService(), seed=1)
        with pytest.raises(AttestationError):
            orchestrator.boot_host(make_host("h2", has_tpm=False))

    def test_vm_chain(self, setup):
        _, orchestrator, host = setup
        vm = make_vm()
        host.launch_vm(vm)
        orchestrator.boot_vm(host.host_id, vm)
        assert orchestrator.attest_vm(host.host_id, vm.vm_id).trusted

    def test_vm_refused_on_untrusted_host(self, setup):
        attestation, orchestrator, host = setup
        trusted_host = orchestrator.host_of(host.host_id)
        trusted_host.tpm.extend(2, "evil-hypervisor", "ee" * 32)
        vm = make_vm()
        host.launch_vm(vm)
        with pytest.raises(AttestationError):
            orchestrator.boot_vm(host.host_id, vm)

    def test_container_extends_chain(self, setup):
        _, orchestrator, host = setup
        vm = make_vm()
        host.launch_vm(vm)
        orchestrator.boot_vm(host.host_id, vm)
        orchestrator.launch_trusted_container(
            host.host_id, vm, SoftwareComponent("workload", b"w1"))
        assert orchestrator.attest_vm_with_containers(
            host.host_id, vm.vm_id).trusted

    def test_rogue_container_detected(self, setup):
        _, orchestrator, host = setup
        vm = make_vm()
        host.launch_vm(vm)
        vtpm = orchestrator.boot_vm(host.host_id, vm)
        orchestrator.launch_trusted_container(
            host.host_id, vm, SoftwareComponent("workload", b"w1"))
        # A rogue process extends the container PCR outside the orchestrator.
        vtpm.extend(12, "cryptominer", "dd" * 32)
        assert not orchestrator.attest_vm_with_containers(
            host.host_id, vm.vm_id).trusted

    def test_kernel_tamper_detected(self, setup):
        _, orchestrator, host = setup
        vm = make_vm()
        host.launch_vm(vm)
        vtpm = orchestrator.boot_vm(host.host_id, vm)
        vtpm.extend(PCR_VM_KERNEL, "rootkit", "ff" * 32)
        assert not orchestrator.attest_vm(host.host_id, vm.vm_id).trusted

    def test_chain_report(self, setup):
        _, orchestrator, host = setup
        vm = make_vm()
        host.launch_vm(vm)
        orchestrator.boot_vm(host.host_id, vm)
        report = orchestrator.chain_report(host.host_id, vm.vm_id)
        assert report == {"host": True, "vm": True, "containers": True}


class TestVtpmManager:
    def test_one_instance_per_vm(self):
        manager = VtpmManager("h1", seed=1)
        manager.create_instance("vm1")
        with pytest.raises(ConfigurationError):
            manager.create_instance("vm1")

    def test_instances_isolated(self):
        manager = VtpmManager("h1", seed=1)
        a = manager.create_instance("vm1")
        b = manager.create_instance("vm2")
        a.extend(0, "x", "aa" * 32)
        assert b.read_pcr(0) == "00" * 32

    def test_detached_channel_rejected(self):
        from repro.trusted.vtpm import VtpmInterfaceContainer
        manager = VtpmManager("h1", seed=1)
        vtpm = manager.create_instance("vm1")
        interface = VtpmInterfaceContainer("vm1", vtpm)
        channel = interface.open_channel("c1")
        interface.close_channel("c1")
        with pytest.raises(ConfigurationError):
            channel.read_pcr(0)

    def test_ipc_transport_supported(self):
        from repro.trusted.vtpm import VtpmInterfaceContainer
        manager = VtpmManager("h1", seed=1)
        vtpm = manager.create_instance("vm1")
        interface = VtpmInterfaceContainer("vm1", vtpm)
        channel = interface.open_channel("c1", transport="ipc-adapter")
        assert channel.read_pcr(0) == "00" * 32
        with pytest.raises(ConfigurationError):
            interface.open_channel("c2", transport="carrier-pigeon")


class TestImageManagement:
    def test_approved_signed_image_admitted(self):
        attestation = AttestationService()
        images = ImageManagementService(attestation)
        signer = generate_keypair(bits=512, seed=50)
        fingerprint = images.register_signer(signer.public_key())
        attestation.approve_signer(fingerprint)
        image = SoftwareComponent("app", b"payload")
        images.register_image(sign_image(image, signer))
        assert images.is_approved(image)

    def test_unapproved_signer_rejected(self):
        attestation = AttestationService()
        images = ImageManagementService(attestation)
        signer = generate_keypair(bits=512, seed=51)
        images.register_signer(signer.public_key())
        image = SoftwareComponent("app", b"payload")
        with pytest.raises(AttestationError):
            images.register_image(sign_image(image, signer))

    def test_unknown_signer_rejected(self):
        attestation = AttestationService()
        images = ImageManagementService(attestation)
        signer = generate_keypair(bits=512, seed=52)
        attestation.approve_signer(signer.public_key().fingerprint())
        image = SoftwareComponent("app", b"payload")
        with pytest.raises(AttestationError):
            images.register_image(sign_image(image, signer))

    def test_revocation_takes_effect(self):
        attestation = AttestationService()
        images = ImageManagementService(attestation)
        signer = generate_keypair(bits=512, seed=53)
        fingerprint = images.register_signer(signer.public_key())
        attestation.approve_signer(fingerprint)
        image = SoftwareComponent("app", b"payload")
        images.register_image(sign_image(image, signer))
        attestation.revoke_signer(fingerprint)
        assert not images.is_approved(image)

    def test_tampered_signature_rejected(self):
        attestation = AttestationService()
        images = ImageManagementService(attestation)
        signer = generate_keypair(bits=512, seed=54)
        fingerprint = images.register_signer(signer.public_key())
        attestation.approve_signer(fingerprint)
        image = SoftwareComponent("app", b"payload")
        signed = sign_image(image, signer)
        forged = type(signed)(signed.image, signed.signer_fingerprint,
                              b"\x00" * len(signed.signature))
        with pytest.raises(AttestationError):
            images.register_image(forged)

    def test_different_content_not_approved(self):
        attestation = AttestationService()
        images = ImageManagementService(attestation)
        signer = generate_keypair(bits=512, seed=55)
        fingerprint = images.register_signer(signer.public_key())
        attestation.approve_signer(fingerprint)
        images.register_image(sign_image(SoftwareComponent("app", b"v1"),
                                         signer))
        assert not images.is_approved(SoftwareComponent("app", b"v2"))
