"""Property-based tests for caches, k-anonymity, and the ledger."""

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.blockchain.ledger import Ledger, Transaction, build_block
from repro.caching.policies import LfuCache, LruCache, TwoQueueCache
from repro.privacy.kanonymity import (
    MondrianAnonymizer,
    QuasiIdentifier,
    achieved_k,
)

_NO_DEADLINE = settings(deadline=None,
                        suppress_health_check=[HealthCheck.too_slow])


class TestCacheProperties:
    @given(capacity=st.integers(1, 32),
           operations=st.lists(
               st.tuples(st.sampled_from(["get", "put"]),
                         st.integers(0, 50)),
               max_size=300))
    @_NO_DEADLINE
    def test_capacity_never_exceeded(self, capacity, operations):
        for cache_cls in (LruCache, LfuCache, TwoQueueCache):
            cache = cache_cls(capacity)
            for op, key in operations:
                if op == "put":
                    cache.put(key, key)
                else:
                    cache.get(key)
                assert len(cache) <= capacity

    @given(capacity=st.integers(1, 16),
           keys=st.lists(st.integers(0, 20), max_size=200))
    @_NO_DEADLINE
    def test_get_after_put_consistent(self, capacity, keys):
        """A cache never returns a wrong value — only the value last put."""
        for cache_cls in (LruCache, LfuCache, TwoQueueCache):
            cache = cache_cls(capacity)
            latest = {}
            for i, key in enumerate(keys):
                cache.put(key, (key, i))
                latest[key] = (key, i)
                value = cache.get(key)
                assert value is None or value == latest[key]

    @given(capacity=st.integers(1, 16),
           keys=st.lists(st.integers(0, 30), min_size=1, max_size=100))
    @_NO_DEADLINE
    def test_stats_balance(self, capacity, keys):
        cache = LruCache(capacity)
        for key in keys:
            if cache.get(key) is None:
                cache.put(key, key)
        stats = cache.stats
        assert stats.hits + stats.misses == len(keys)


@st.composite
def cohort_rows(draw):
    n = draw(st.integers(10, 60))
    return [
        {"age": draw(st.integers(0, 100)),
         "zip": draw(st.sampled_from(["02115", "02116", "10001", "94103"])),
         "dx": draw(st.sampled_from(["a", "b", "c"]))}
        for _ in range(n)
    ]


class TestAnonymizerProperties:
    @given(rows=cohort_rows(), k=st.integers(2, 8))
    @settings(deadline=None, max_examples=40,
              suppress_health_check=[HealthCheck.too_slow])
    def test_k_always_achieved(self, rows, k):
        if len(rows) < k:
            return
        anonymizer = MondrianAnonymizer(
            [QuasiIdentifier("age", numeric=True),
             QuasiIdentifier("zip", numeric=False)], k=k)
        release = anonymizer.anonymize(rows)
        assert achieved_k(release.rows, ["age", "zip"]) >= k
        assert len(release.rows) == len(rows)
        # Sensitive attribute multiset preserved.
        assert sorted(r["dx"] for r in release.rows) == sorted(
            r["dx"] for r in rows)


class TestLedgerProperties:
    @given(batches=st.lists(
        st.lists(st.integers(0, 1000), min_size=1, max_size=5),
        min_size=1, max_size=8))
    @_NO_DEADLINE
    def test_chain_always_verifies(self, batches):
        ledger = Ledger()
        counter = 0
        for batch in batches:
            transactions = []
            for value in batch:
                counter += 1
                transactions.append(Transaction(
                    tx_id=f"tx-{counter}", chaincode="provenance",
                    method="record_event", args={"v": value},
                    submitter="s", timestamp=float(counter)))
            block = build_block(ledger.height, ledger.tip_hash,
                                float(counter), transactions)
            ledger.append(block)
        assert ledger.verify()
        assert len(ledger.transactions()) == sum(len(b) for b in batches)
