"""Tests for the survival-analysis toolkit (Kaplan-Meier, log-rank)."""

import numpy as np
import pytest

from repro.analytics.survival import (
    KaplanMeier,
    generate_survival_cohort,
    log_rank_test,
)
from repro.core.errors import ConfigurationError


class TestKaplanMeier:
    def test_no_censoring_matches_empirical(self):
        durations = [1.0, 2.0, 3.0, 4.0]
        observed = [True] * 4
        curve = KaplanMeier().fit(durations, observed)
        # With no censoring, S(t) is the empirical survivor function.
        assert curve.probability_at(0.5) == 1.0
        assert curve.probability_at(1.0) == pytest.approx(0.75)
        assert curve.probability_at(2.5) == pytest.approx(0.50)
        assert curve.probability_at(4.0) == pytest.approx(0.0)

    def test_censoring_removes_from_risk_set(self):
        # Event at 1, censored at 2, event at 3: S(3) = 0.75 * (1 - 1/2).
        curve = KaplanMeier().fit([1.0, 2.0, 3.0, 4.0],
                                  [True, False, True, False])
        assert curve.probability_at(1.5) == pytest.approx(0.75)
        assert curve.probability_at(3.5) == pytest.approx(0.375)

    def test_all_censored_flat_curve(self):
        curve = KaplanMeier().fit([1.0, 2.0, 3.0], [False, False, False])
        assert curve.probability_at(100.0) == 1.0
        assert curve.median_survival() is None

    def test_median_survival(self):
        durations = list(range(1, 11))
        curve = KaplanMeier().fit(durations, [True] * 10)
        assert curve.median_survival() == 5.0

    def test_tied_event_times(self):
        curve = KaplanMeier().fit([2.0, 2.0, 2.0, 5.0],
                                  [True, True, False, True])
        # At t=2: 4 at risk, 2 deaths -> S = 0.5; at t=5: 1 at risk, 1 death.
        assert curve.probability_at(2.0) == pytest.approx(0.5)
        assert curve.probability_at(5.0) == pytest.approx(0.0)

    def test_matches_exponential_ground_truth(self):
        rng = np.random.default_rng(3)
        hazard = 0.05
        raw = rng.exponential(1.0 / hazard, size=4000)
        curve = KaplanMeier().fit(raw, [True] * 4000)
        for t in (5.0, 10.0, 20.0):
            assert curve.probability_at(t) == pytest.approx(
                np.exp(-hazard * t), abs=0.03)

    def test_input_validation(self):
        with pytest.raises(ConfigurationError):
            KaplanMeier().fit([], [])
        with pytest.raises(ConfigurationError):
            KaplanMeier().fit([1.0, -2.0], [True, True])
        with pytest.raises(ConfigurationError):
            KaplanMeier().fit([1.0], [True, False])


class TestLogRank:
    def test_protective_drug_detected(self):
        exposed_d, exposed_o, unexposed_d, unexposed_o = \
            generate_survival_cohort(hazard_ratio=0.5, seed=4)
        result = log_rank_test(exposed_d, exposed_o, unexposed_d,
                               unexposed_o)
        assert result.significant
        # Protective: the exposed group has fewer events than expected.
        assert result.observed_a < result.expected_a

    def test_null_effect_not_detected(self):
        exposed_d, exposed_o, unexposed_d, unexposed_o = \
            generate_survival_cohort(hazard_ratio=1.0, seed=5)
        result = log_rank_test(exposed_d, exposed_o, unexposed_d,
                               unexposed_o)
        assert result.p_value > 0.05

    def test_power_grows_with_effect(self):
        p_values = []
        for hazard_ratio in (0.9, 0.6, 0.3):
            exposed_d, exposed_o, unexposed_d, unexposed_o = \
                generate_survival_cohort(hazard_ratio=hazard_ratio, seed=6)
            result = log_rank_test(exposed_d, exposed_o, unexposed_d,
                                   unexposed_o)
            p_values.append(result.p_value)
        assert p_values[2] < p_values[0]

    def test_symmetry(self):
        exposed_d, exposed_o, unexposed_d, unexposed_o = \
            generate_survival_cohort(hazard_ratio=0.5, seed=7)
        ab = log_rank_test(exposed_d, exposed_o, unexposed_d, unexposed_o)
        ba = log_rank_test(unexposed_d, unexposed_o, exposed_d, exposed_o)
        assert ab.chi_square == pytest.approx(ba.chi_square, rel=1e-9)
        assert ab.p_value == pytest.approx(ba.p_value, rel=1e-9)

    def test_empty_group_rejected(self):
        with pytest.raises(ConfigurationError):
            log_rank_test([], [], [1.0], [True])


class TestSurvivalCohort:
    def test_deterministic(self):
        a = generate_survival_cohort(seed=1)
        b = generate_survival_cohort(seed=1)
        assert np.array_equal(a[0], b[0])

    def test_censoring_applied(self):
        exposed_d, exposed_o, _, _ = generate_survival_cohort(
            censoring_time=10.0, seed=2)
        assert exposed_d.max() <= 10.0
        assert (~exposed_o).sum() > 0  # some subjects censored

    def test_protective_exposure_survives_longer(self):
        exposed_d, exposed_o, unexposed_d, unexposed_o = \
            generate_survival_cohort(hazard_ratio=0.4, seed=3)
        km = KaplanMeier()
        exposed_curve = km.fit(exposed_d, exposed_o)
        unexposed_curve = km.fit(unexposed_d, unexposed_o)
        assert (exposed_curve.probability_at(30.0)
                > unexposed_curve.probability_at(30.0))
