"""Unit tests for the secure-aggregation masking primitives."""

import numpy as np
import pytest

from repro.core.errors import IntegrityError, ValidationError
from repro.crypto.symmetric import generate_key
from repro.federation import (
    MODULUS,
    SCALE,
    bytes_to_words,
    combine_masked,
    decode_vector,
    encode_vector,
    mask_vector,
    mask_words,
    pair_secret,
    words_to_bytes,
)


def secrets_for(names, context="study-000001"):
    """All pairwise secrets, keyed per institution."""
    keys = {name: generate_key(i * 7 + 1) for i, name in enumerate(names)}
    return {
        name: {peer: pair_secret(keys[name], keys[peer], context)
               for peer in names if peer != name}
        for name in names
    }


class TestEncoding:
    def test_roundtrip_floats(self):
        values = np.array([0.0, 1.5, -2.25, 1e4, -1e4])
        out = decode_vector(encode_vector(values))
        np.testing.assert_allclose(out, values, atol=1.0 / SCALE)

    def test_integers_exact(self):
        values = np.array([0.0, 1.0, 17.0, -42.0, 1000.0])
        np.testing.assert_array_equal(decode_vector(encode_vector(values)),
                                      values)

    def test_non_finite_rejected(self):
        with pytest.raises(ValidationError):
            encode_vector(np.array([1.0, np.nan]))
        with pytest.raises(ValidationError):
            encode_vector(np.array([np.inf]))

    def test_words_bytes_roundtrip(self):
        words = [0, 1, MODULUS - 1, 123456789]
        assert bytes_to_words(words_to_bytes(words)) == words

    def test_bad_payload_length_rejected(self):
        with pytest.raises(IntegrityError):
            bytes_to_words(b"seven b")


class TestPairSecrets:
    def test_symmetric_in_arguments(self):
        a, b = generate_key(1), generate_key(2)
        assert pair_secret(a, b, "s") == pair_secret(b, a, "s")

    def test_context_separates_studies(self):
        a, b = generate_key(1), generate_key(2)
        assert pair_secret(a, b, "study-1") != pair_secret(a, b, "study-2")

    def test_short_keys_rejected(self):
        with pytest.raises(ValidationError):
            pair_secret(b"short", generate_key(1), "s")


class TestMaskCancellation:
    @pytest.mark.parametrize("n", [2, 3, 5])
    def test_masks_cancel_across_parties(self, n):
        names = [f"inst-{i:02d}" for i in range(n)]
        secrets = secrets_for(names)
        rng = np.random.default_rng(9)
        values = {name: rng.normal(size=12) for name in names}
        masked = {name: mask_vector(values[name], name, secrets[name],
                                    "round-0")
                  for name in names}
        combined = combine_masked(masked)
        expected = np.sum([values[name] for name in names], axis=0)
        np.testing.assert_allclose(combined, expected,
                                   atol=n * 1.0 / SCALE)

    def test_single_masked_vector_hides_values(self):
        names = ["inst-00", "inst-01"]
        secrets = secrets_for(names)
        values = np.array([3.0, 7.0, 11.0])
        masked = mask_vector(values, "inst-00", secrets["inst-00"], "r0")
        # The masked words are not simply the fixed-point encoding.
        assert masked != encode_vector(values)

    def test_rounds_use_distinct_masks(self):
        secret = pair_secret(generate_key(1), generate_key(2), "s")
        assert mask_words(secret, "round-0", 8) != mask_words(secret,
                                                             "round-1", 8)

    def test_ragged_vectors_rejected(self):
        with pytest.raises(IntegrityError, match="disagree on length"):
            combine_masked({"a": [1, 2, 3], "b": [1, 2]})

    def test_empty_combine_rejected(self):
        with pytest.raises(ValidationError):
            combine_masked({})

    def test_integer_counts_aggregate_exactly(self):
        names = ["inst-00", "inst-01", "inst-02"]
        secrets = secrets_for(names)
        rng = np.random.default_rng(4)
        values = {name: rng.integers(0, 50, size=30).astype(float)
                  for name in names}
        masked = {name: mask_vector(values[name], name, secrets[name], "c")
                  for name in names}
        combined = combine_masked(masked)
        expected = np.sum([values[name] for name in names], axis=0)
        np.testing.assert_array_equal(combined, expected)
