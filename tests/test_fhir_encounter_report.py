"""Tests for the Encounter and DiagnosticReport resources + PV1 mapping."""

import pytest

from repro.fhir.hl7v2 import hl7_to_bundle
from repro.fhir.resources import (
    Bundle,
    DiagnosticReport,
    Encounter,
    Observation,
    Patient,
    resource_from_dict,
)
from repro.fhir.validation import BundleValidator
from repro.privacy.deidentify import Deidentifier


def full_bundle():
    bundle = Bundle(id="b")
    bundle.add(Patient(id="pt-1", name={"family": "X"},
                       birthDate="1980-01-01", gender="female"))
    bundle.add(Encounter(id="e1", classCode="inpatient",
                         subject="Patient/pt-1",
                         periodStart="2024-03-01", periodEnd="2024-03-05"))
    bundle.add(Observation(id="o1", code={"text": "HbA1c"},
                           subject="Patient/pt-1",
                           valueQuantity={"value": 7.0}))
    bundle.add(DiagnosticReport(id="d1", code={"text": "metabolic panel"},
                                subject="Patient/pt-1",
                                result=["Observation/o1"],
                                effectiveDateTime="2024-03-02",
                                conclusion="elevated HbA1c"))
    return bundle


class TestResources:
    def test_roundtrip(self):
        bundle = full_bundle()
        restored = Bundle.from_json(bundle.to_json())
        assert len(restored.resources_of(Encounter)) == 1
        assert len(restored.resources_of(DiagnosticReport)) == 1

    def test_polymorphic_dispatch(self):
        encounter = resource_from_dict(
            {"resourceType": "Encounter", "id": "e",
             "subject": "Patient/p"})
        assert isinstance(encounter, Encounter)

    def test_valid_bundle_passes(self):
        report = BundleValidator().validate(full_bundle())
        assert report.valid, report.errors


class TestValidation:
    def test_bad_encounter_class(self):
        bundle = Bundle(id="b")
        bundle.add(Patient(id="p", name={"family": "X"}))
        bundle.add(Encounter(id="e", classCode="teleporter",
                             subject="Patient/p"))
        assert not BundleValidator().validate(bundle).valid

    def test_inverted_period(self):
        bundle = Bundle(id="b")
        bundle.add(Patient(id="p", name={"family": "X"}))
        bundle.add(Encounter(id="e", subject="Patient/p",
                             periodStart="2024-03-05",
                             periodEnd="2024-03-01"))
        report = BundleValidator().validate(bundle)
        assert any("ends before" in e for e in report.errors)

    def test_diagnostic_report_bad_result_reference(self):
        bundle = Bundle(id="b")
        bundle.add(Patient(id="p", name={"family": "X"}))
        bundle.add(DiagnosticReport(id="d", code={"text": "x"},
                                    subject="Patient/p",
                                    result=["Medication/m1"]))
        assert not BundleValidator().validate(bundle).valid

    def test_encounter_requires_subject(self):
        bundle = Bundle(id="b")
        bundle.add(Encounter(id="e"))
        assert not BundleValidator().validate(bundle).valid


class TestPv1Mapping:
    MESSAGE = ("MSH|^~\\&|ADT|HOSP|||20240301||ADT^A01|m|P|2.5\r"
               "PID|1||pt-7||Roe^Ann||19650505|F\r"
               "PV1|1|I|WARD-3^ROOM-12")

    def test_pv1_to_encounter(self):
        bundle = hl7_to_bundle(self.MESSAGE, "adt-1")
        encounters = bundle.resources_of(Encounter)
        assert len(encounters) == 1
        encounter = encounters[0]
        assert encounter.classCode == "inpatient"
        assert encounter.subject == "Patient/pt-7"
        assert encounter.location == "WARD-3"
        assert encounter.periodStart == "2024-03-01"

    def test_adt_bundle_validates(self):
        bundle = hl7_to_bundle(self.MESSAGE, "adt-1")
        assert BundleValidator().validate(bundle).valid

    def test_pv1_before_pid_rejected(self):
        from repro.core.errors import ValidationError
        bad = ("MSH|^~\\&|ADT|||||20240301|ADT^A01|m|P|2.5\r"
               "PV1|1|I|W\rPID|1||p||N^M||19800101|F")
        with pytest.raises(ValidationError):
            hl7_to_bundle(bad, "b")


class TestDeidentification:
    def test_encounter_dates_truncated(self):
        deidentifier = Deidentifier(b"enc-test-secret-0123456789ab")
        bundle = full_bundle()
        clean, _ = deidentifier.deidentify_bundle(bundle)
        encounter = clean.resources_of(Encounter)[0]
        assert encounter.periodStart == "2024-03"
        assert encounter.periodEnd == "2024-03"
        assert encounter.subject.startswith("Patient/ref-")

    def test_diagnostic_report_re_referenced(self):
        deidentifier = Deidentifier(b"enc-test-secret-0123456789ab")
        clean, _ = deidentifier.deidentify_bundle(full_bundle())
        diagnostic = clean.resources_of(DiagnosticReport)[0]
        assert diagnostic.subject.startswith("Patient/ref-")
        assert diagnostic.effectiveDateTime == "2024-03"
