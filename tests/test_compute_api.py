"""Integration: the versioned /v1/compute job API through the gateway.

End-to-end dispatch with RBAC (researchers submit, readers poll), strict
tenant isolation, per-route rate limits, audit entries carrying job ids,
and lifecycle events observable on the health plane.
"""

import warnings

import pytest

from repro import HealthCloudPlatform
from repro.cloudsim.healthplane import HealthPlane
from repro.compute import ComputeApi, JobSubmitRequest, TaskGraph
from repro.compute import standard_scheduler
from repro.compute.api import SUBMIT_RATE_LIMIT
from repro.core.api import ApiRequest
from repro.rbac import (
    Action,
    ExternalIdentityProvider,
    Permission,
    Scope,
    ScopeKind,
)


def tiny_graph(name="tiny"):
    g = TaskGraph(name)
    g.add_data("x", 5, nbytes=64)
    g.add_task("double", lambda ins: ins["x"] * 2, inputs=("x",),
               cost_s=0.01)
    return g


@pytest.fixture
def world():
    platform = HealthCloudPlatform(seed=88, use_blockchain=False)
    plane = HealthPlane(platform.monitoring)
    scheduler = standard_scheduler(clock=platform.clock,
                                   monitoring=platform.monitoring)
    api = ComputeApi(scheduler)
    gateway = platform.build_api_gateway(compute=api)

    idp = ExternalIdentityProvider("lab-idp", b"lab-key-0123456789",
                                   platform.clock)
    platform.federation.approve_idp("lab-idp", b"lab-key-0123456789")

    def make_user(tenant_context, name, actions):
        user = platform.rbac.register_user(
            tenant_context.tenant.tenant_id, name)
        scope = Scope(ScopeKind.TENANT, tenant_context.tenant.tenant_id)
        role = f"{name}-role"
        platform.rbac.define_role(role, [
            Permission(action, "compute-jobs", scope) for action in actions])
        platform.rbac.bind_role(user.user_id,
                                tenant_context.default_org.org_id,
                                tenant_context.default_env.env_id, role)
        platform.federation.link_identity("lab-idp", f"{name}@lab",
                                          user.user_id)
        return user

    lab = platform.register_tenant("research-lab")
    clinic = platform.register_tenant("clinic")
    make_user(lab, "researcher", [Action.READ, Action.WRITE])
    make_user(lab, "reader", [Action.READ])
    make_user(clinic, "outsider", [Action.READ, Action.WRITE])

    def call(name, tenant_context, path, **params):
        token = idp.issue_token(f"{name}@lab")
        return gateway.dispatch(ApiRequest(
            path=path, token=token,
            scope_entity_id=tenant_context.tenant.tenant_id,
            org_id=tenant_context.default_org.org_id,
            env_id=tenant_context.default_env.env_id, params=params))

    return platform, plane, scheduler, gateway, lab, clinic, call


class TestDispatch:
    def test_routes_registered_versioned(self, world):
        gateway = world[3]
        routes = set(gateway.routes())
        assert {"/v1/compute/submit", "/v1/compute/status",
                "/v1/compute/result", "/v1/compute/cancel"} <= routes

    def test_submit_status_result_end_to_end(self, world):
        platform, plane, scheduler, gateway, lab, clinic, call = world
        response = call("researcher", lab, "/compute/submit",
                        request=JobSubmitRequest(graph=tiny_graph()))
        assert response.status == 200
        job_id = response.body["job_id"]
        assert response.body["state"] == "succeeded"

        status = call("researcher", lab, "/compute/status", job_id=job_id)
        assert status.status == 200
        assert status.body["tasks"] == {"pending": 0, "ready": 0,
                                        "running": 0, "succeeded": 1}
        assert status.body["makespan_s"] > 0

        result = call("researcher", lab, "/compute/result", job_id=job_id)
        assert result.status == 200
        assert result.body["outputs"] == {"double": 10}

        single = call("researcher", lab, "/compute/result", job_id=job_id,
                      key="double")
        assert single.body["outputs"] == {"double": 10}

    def test_submit_validates_envelope(self, world):
        *_, lab, clinic, call = world
        response = call("researcher", lab, "/compute/submit",
                        request={"graph": "nope"})
        assert response.status == 422

    def test_cancel_of_terminal_job_conflicts(self, world):
        *_, lab, clinic, call = world
        job_id = call("researcher", lab, "/compute/submit",
                      request=JobSubmitRequest(graph=tiny_graph())
                      ).body["job_id"]
        response = call("researcher", lab, "/compute/cancel", job_id=job_id)
        assert response.status == 409


class TestAccessControl:
    def test_reader_cannot_submit(self, world):
        *_, lab, clinic, call = world
        response = call("reader", lab, "/compute/submit",
                        request=JobSubmitRequest(graph=tiny_graph()))
        assert response.status == 403

    def test_reader_can_poll(self, world):
        *_, lab, clinic, call = world
        job_id = call("researcher", lab, "/compute/submit",
                      request=JobSubmitRequest(graph=tiny_graph())
                      ).body["job_id"]
        assert call("reader", lab, "/compute/status",
                    job_id=job_id).status == 200

    def test_tenant_isolation_reads_as_404(self, world):
        *_, lab, clinic, call = world
        job_id = call("researcher", lab, "/compute/submit",
                      request=JobSubmitRequest(graph=tiny_graph())
                      ).body["job_id"]
        for path in ("/compute/status", "/compute/result",
                     "/compute/cancel"):
            response = call("outsider", clinic, path, job_id=job_id)
            assert response.status == 404, path

    def test_submit_rate_limit_applies_per_route(self, world):
        platform, plane, scheduler, gateway, lab, clinic, call = world
        scheduler_api_calls = []
        for i in range(SUBMIT_RATE_LIMIT):
            response = call("researcher", lab, "/compute/submit",
                            request=JobSubmitRequest(
                                graph=tiny_graph(f"g{i}")))
            scheduler_api_calls.append(response.status)
        assert set(scheduler_api_calls) == {200}
        throttled = call("researcher", lab, "/compute/submit",
                         request=JobSubmitRequest(graph=tiny_graph("over")))
        assert throttled.status == 429
        # The gateway-wide budget still has room: reads are fine.
        assert call("reader", lab, "/compute/status",
                    job_id="job-000001").status == 200


class TestAuditAndHealth:
    def test_audit_log_threads_job_ids(self, world):
        platform, *_, lab, clinic, call = world
        job_id = call("researcher", lab, "/compute/submit",
                      request=JobSubmitRequest(graph=tiny_graph())
                      ).body["job_id"]
        call("researcher", lab, "/compute/result", job_id=job_id)
        entries = platform.audit.search_logs(stream="audit",
                                             contains=job_id)
        assert any("submitted" in e for e in entries)
        assert any("result read" in e for e in entries)

    def test_lifecycle_events_reach_health_snapshot(self, world):
        platform, plane, *_, lab, clinic, call = world
        call("researcher", lab, "/compute/submit",
             request=JobSubmitRequest(graph=tiny_graph()))
        kinds = {e.kind for e in plane.events.recent()}
        assert {"job.pending", "job.scheduled", "job.running",
                "job.succeeded", "task.finished"} <= kinds
        report = plane.snapshot()
        assert report.events["by_source"]["compute"] >= 5


class TestShims:
    def test_run_delt_shim_warns_and_runs(self):
        from repro.compute import shims
        from repro.workloads import generate_emr_cohort
        cohort = generate_emr_cohort(n_patients=20, n_drugs=4,
                                     n_lowering=1, seed=3)
        with pytest.warns(DeprecationWarning, match="/v1/compute"):
            model = shims.run_delt(cohort.patients, n_drugs=4)
        assert model.effects.shape == (4,)

    def test_run_similarity_shim_warns(self):
        from repro.compute import shims
        from repro.knowledge import generate_universe
        universe = generate_universe(n_drugs=8, n_diseases=6, seed=1)
        with pytest.warns(DeprecationWarning):
            sources = shims.run_similarity(universe)
        assert "chemical" in sources
