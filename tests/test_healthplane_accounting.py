"""Tests for heavy-hitter accounting: space-saving sketch and usage top-k."""

import random

import pytest

from repro.cloudsim.healthplane import SpaceSavingSketch, UsageAccountant
from repro.core.errors import ConfigurationError


class TestSpaceSavingSketch:
    def test_exact_when_under_capacity(self):
        sketch = SpaceSavingSketch(capacity=8)
        for key, count in (("a", 5), ("b", 3), ("c", 1)):
            for _ in range(count):
                sketch.offer(key)
        assert sketch.exact
        assert [(h.key, h.estimate, h.error) for h in sketch.top(3)] == [
            ("a", 5.0, 0.0), ("b", 3.0, 0.0), ("c", 1.0, 0.0)]

    def test_replacement_inherits_min_count_as_error(self):
        sketch = SpaceSavingSketch(capacity=2)
        sketch.offer("a"); sketch.offer("a")
        sketch.offer("b")
        sketch.offer("c")                      # evicts b (count 1)
        assert not sketch.exact
        estimate, error = sketch.estimate("c")
        assert (estimate, error) == (2.0, 1.0)
        assert sketch.estimate("b") == (0.0, 0.0)

    def test_overestimates_never_undercount(self):
        rng = random.Random(7)
        truth = {}
        sketch = SpaceSavingSketch(capacity=16)
        for _ in range(2000):
            key = f"k{int(rng.paretovariate(1.2)) % 100:03d}"
            truth[key] = truth.get(key, 0) + 1
            sketch.offer(key)
        for hitter in sketch.top(16):
            true = truth.get(hitter.key, 0)
            assert hitter.estimate >= true
            assert hitter.guaranteed <= true

    def test_true_heavy_hitter_survives_tail_churn(self):
        sketch = SpaceSavingSketch(capacity=4)
        for _ in range(100):
            sketch.offer("whale")
        for i in range(200):                   # 200 distinct one-hit keys
            sketch.offer(f"tail-{i:04d}")
        top = sketch.top(1)[0]
        assert top.key == "whale"
        assert top.estimate >= 100.0

    def test_weighted_updates(self):
        sketch = SpaceSavingSketch(capacity=4)
        sketch.offer("a", weight=2.5)
        sketch.offer("a", weight=0.5)
        assert sketch.estimate("a") == (3.0, 0.0)
        assert sketch.total == 3.0

    def test_deterministic_tie_break_on_key(self):
        def run():
            sketch = SpaceSavingSketch(capacity=2)
            for key in ("b", "a", "d", "c"):   # all count 1: ties everywhere
                sketch.offer(key)
            return [h.key for h in sketch.top(2)]
        assert run() == run()

    def test_top_k_clamps_to_population(self):
        sketch = SpaceSavingSketch(capacity=8)
        sketch.offer("only")
        assert len(sketch.top(5)) == 1

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            SpaceSavingSketch(capacity=0)
        sketch = SpaceSavingSketch(capacity=2)
        with pytest.raises(ConfigurationError):
            sketch.offer("a", weight=-1.0)


class TestUsageAccountant:
    def test_charge_splits_dimensions(self):
        accountant = UsageAccountant()
        accountant.charge("tenant", "t1", latency_s=0.25)
        accountant.charge("tenant", "t1", latency_s=0.75, faults=1.0)
        assert accountant.top("tenant", "requests")[0].estimate == 2.0
        assert accountant.top("tenant", "latency_s")[0].estimate == 1.0
        assert accountant.top("tenant", "faults")[0].estimate == 1.0

    def test_scopes_are_independent(self):
        accountant = UsageAccountant()
        accountant.charge("tenant", "t1")
        accountant.charge("shard", "shard-0", requests=5.0)
        assert accountant.scopes() == ["shard", "tenant"]
        assert accountant.top("shard", "requests")[0].key == "shard-0"
        assert [h.key for h in accountant.top("tenant", "requests")] == ["t1"]

    def test_unknown_dimension_rejected(self):
        accountant = UsageAccountant()
        with pytest.raises(ConfigurationError):
            accountant.top("tenant", "cpu")

    def test_unknown_scope_is_empty(self):
        assert UsageAccountant().top("tenant", "requests") == []

    def test_snapshot_shape(self):
        accountant = UsageAccountant()
        accountant.charge("tenant", "t2", latency_s=0.5)
        accountant.charge("tenant", "t1", latency_s=0.1, faults=1.0)
        snap = accountant.snapshot(k=2)
        assert set(snap) == {"tenant"}
        assert [h["key"] for h in snap["tenant"]["latency_s"]] == ["t2", "t1"]
        assert [h["key"] for h in snap["tenant"]["faults"]] == ["t1"]

    def test_snapshot_is_deterministic_json(self):
        import json

        def run():
            accountant = UsageAccountant(capacity=4)
            for i in range(40):
                accountant.charge("tenant", f"t{i % 7}",
                                  latency_s=0.01 * (i % 3))
            return json.dumps(accountant.snapshot(), sort_keys=True)
        assert run() == run()
