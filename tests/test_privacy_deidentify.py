"""Tests for Safe-Harbor de-identification."""

import pytest

from repro.fhir.resources import Bundle, Observation, Patient
from repro.privacy.deidentify import (
    Deidentifier,
    ReidentificationMap,
    phi_identifiers_present,
)

SECRET = b"0123456789abcdef0123456789abcdef"


def rich_patient():
    return Patient(
        id="pt-1",
        name={"family": "Doe", "given": ["Jane"]},
        birthDate="1980-03-12",
        gender="female",
        address={"line": "12 Main St", "city": "Boston", "state": "MA",
                 "postalCode": "02115"},
        telecom=[{"system": "phone", "value": "617-555-0100"}],
        identifier=[{"system": "ssn", "value": "123-45-6789"}],
    )


@pytest.fixture
def deidentifier():
    return Deidentifier(SECRET)


class TestPatientDeidentification:
    def test_identifiers_removed(self, deidentifier):
        clean = deidentifier.deidentify_patient(rich_patient(),
                                                ReidentificationMap())
        assert clean.name == {}
        assert clean.telecom == []
        assert clean.identifier == []
        assert "line" not in clean.address
        assert "postalCode" not in clean.address

    def test_birthdate_reduced_to_year(self, deidentifier):
        clean = deidentifier.deidentify_patient(rich_patient(),
                                                ReidentificationMap())
        assert clean.birthDate == "1980-01-01"

    def test_state_retained(self, deidentifier):
        clean = deidentifier.deidentify_patient(rich_patient(),
                                                ReidentificationMap())
        assert clean.address == {"state": "MA"}

    def test_gender_retained(self, deidentifier):
        clean = deidentifier.deidentify_patient(rich_patient(),
                                                ReidentificationMap())
        assert clean.gender == "female"

    def test_reference_id_replaces_id(self, deidentifier):
        mapping = ReidentificationMap()
        clean = deidentifier.deidentify_patient(rich_patient(), mapping)
        assert clean.id.startswith("ref-")
        assert mapping.original_of(clean.id) == "pt-1"

    def test_pseudonym_stable_across_bundles(self, deidentifier):
        a = deidentifier.reference_id("pt-1")
        b = deidentifier.reference_id("pt-1")
        assert a == b

    def test_pseudonym_secret_dependent(self):
        d1 = Deidentifier(SECRET)
        d2 = Deidentifier(b"another-secret-value-long-enough")
        assert d1.reference_id("pt-1") != d2.reference_id("pt-1")

    def test_short_secret_rejected(self):
        with pytest.raises(ValueError):
            Deidentifier(b"short")


class TestBundleDeidentification:
    def test_subjects_re_referenced(self, deidentifier):
        bundle = Bundle(id="b1")
        bundle.add(rich_patient())
        bundle.add(Observation(id="o1", code={"text": "HbA1c"},
                               subject="Patient/pt-1",
                               effectiveDateTime="2024-01-15",
                               valueQuantity={"value": 7.2}))
        clean, mapping = deidentifier.deidentify_bundle(bundle)
        patient_ref = deidentifier.reference_id("pt-1")
        obs = clean.resources_of(Observation)[0]
        assert obs.subject == f"Patient/{patient_ref}"

    def test_clinical_dates_truncated_to_month(self, deidentifier):
        bundle = Bundle(id="b1")
        bundle.add(rich_patient())
        bundle.add(Observation(id="o1", code={"text": "x"},
                               subject="Patient/pt-1",
                               effectiveDateTime="2024-01-15",
                               valueQuantity={"value": 1.0}))
        clean, _ = deidentifier.deidentify_bundle(bundle)
        assert clean.resources_of(Observation)[0].effectiveDateTime == "2024-01"

    def test_values_preserved(self, deidentifier):
        bundle = Bundle(id="b1")
        bundle.add(rich_patient())
        bundle.add(Observation(id="o1", code={"text": "HbA1c"},
                               subject="Patient/pt-1",
                               valueQuantity={"value": 7.2, "unit": "%"}))
        clean, _ = deidentifier.deidentify_bundle(bundle)
        assert clean.resources_of(Observation)[0].valueQuantity == {
            "value": 7.2, "unit": "%"}

    def test_mapping_covers_every_resource(self, deidentifier):
        bundle = Bundle(id="b1")
        bundle.add(rich_patient())
        bundle.add(Observation(id="o1", code={"text": "x"},
                               subject="Patient/pt-1",
                               valueQuantity={"value": 1.0}))
        _, mapping = deidentifier.deidentify_bundle(bundle)
        # bundle + patient + observation
        assert len(mapping) == 3


class TestResidualDetection:
    def test_rich_patient_flags_everything(self):
        found = phi_identifiers_present(rich_patient())
        assert {"name", "telecom", "identifier", "full-birthdate",
                "sub-state-geography"} <= set(found)

    def test_clean_patient_flags_nothing(self, deidentifier):
        clean = deidentifier.deidentify_patient(rich_patient(),
                                                ReidentificationMap())
        assert phi_identifiers_present(clean) == []

    def test_direct_reference_flagged(self):
        obs = Observation(id="o", code={"text": "x"}, subject="Patient/pt-1")
        assert "direct-patient-reference" in phi_identifiers_present(obs)

    def test_pseudonymous_reference_not_flagged(self):
        obs = Observation(id="o", code={"text": "x"},
                          subject="Patient/ref-abc123")
        assert phi_identifiers_present(obs) == []
