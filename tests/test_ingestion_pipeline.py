"""Tests for the asynchronous ingestion pipeline and export service."""

import pytest

from repro.core.errors import (
    AuthenticationError,
    AuthorizationError,
    ConsentError,
    ExportError,
)
from repro.crypto.rsa import hybrid_encrypt
from repro.fhir.resources import Bundle, Observation, Patient
from repro.ingestion.export import ExportService
from repro.ingestion.pipeline import (
    IngestionStatus,
    encrypt_bundle_for_upload,
)
from repro.rbac.model import Action, Permission, Scope, ScopeKind
from repro import HealthCloudPlatform


def make_bundle(patient_id="pt-1", bundle_id="b1"):
    bundle = Bundle(id=bundle_id)
    bundle.add(Patient(id=patient_id, name={"family": "Doe"},
                       birthDate="1980-03-12", gender="female"))
    bundle.add(Observation(id=f"{patient_id}-obs", code={"text": "HbA1c"},
                           subject=f"Patient/{patient_id}",
                           valueQuantity={"value": 7.0, "unit": "%"}))
    return bundle


@pytest.fixture
def platform():
    p = HealthCloudPlatform(seed=17)
    context = p.register_tenant("acme")
    group = p.rbac.create_group(context.tenant.tenant_id, "study")
    registration = p.ingestion.register_client("client-1")
    return p, context, group, registration


class TestUploadFlow:
    def test_happy_path(self, platform):
        p, _, group, registration = platform
        p.consent.grant("pt-1", group.group_id)
        job = p.ingestion.upload(
            "client-1", encrypt_bundle_for_upload(make_bundle(), registration),
            group.group_id)
        assert p.ingestion.status(job.job_id)[0] is IngestionStatus.UPLOADED
        p.run_ingestion()
        status, reason = p.ingestion.status(job.job_id)
        assert status is IngestionStatus.STORED, reason
        assert len(job.stored_record_ids) == 2  # original + anonymized

    def test_unregistered_client_rejected(self, platform):
        p, _, group, registration = platform
        envelope = encrypt_bundle_for_upload(make_bundle(), registration)
        with pytest.raises(AuthenticationError):
            p.ingestion.upload("stranger", envelope, group.group_id)

    def test_missing_consent_rejected(self, platform):
        p, _, group, registration = platform
        job = p.ingestion.upload(
            "client-1", encrypt_bundle_for_upload(make_bundle(), registration),
            group.group_id)
        p.run_ingestion()
        status, reason = p.ingestion.status(job.job_id)
        assert status is IngestionStatus.REJECTED
        assert "consent" in reason

    def test_wrong_key_rejected(self, platform):
        p, _, group, _ = platform
        other = p.ingestion.register_client("client-2")
        p.consent.grant("pt-1", group.group_id)
        # Encrypted for client-2 but uploaded as client-1.
        envelope = encrypt_bundle_for_upload(make_bundle(), other)
        job = p.ingestion.upload("client-1", envelope, group.group_id)
        p.run_ingestion()
        status, reason = p.ingestion.status(job.job_id)
        assert status is IngestionStatus.REJECTED
        assert "decryption" in reason

    def test_invalid_bundle_rejected(self, platform):
        p, _, group, registration = platform
        bad = Bundle(id="b-bad")
        bad.add(Observation(id="o", code={"text": "x"},
                            subject="Patient/ghost"))
        job = p.ingestion.upload(
            "client-1", encrypt_bundle_for_upload(bad, registration),
            group.group_id)
        p.run_ingestion()
        status, reason = p.ingestion.status(job.job_id)
        assert status is IngestionStatus.REJECTED
        assert "validation" in reason

    def test_malware_rejected_and_reported(self, platform):
        p, _, group, registration = platform
        p.consent.grant("pt-1", group.group_id)
        payload = (make_bundle().to_json()
                   + "EICAR-STANDARD-ANTIVIRUS-TEST-FILE").encode()
        envelope = hybrid_encrypt(registration.public_key, payload)
        job = p.ingestion.upload("client-1", envelope, group.group_id)
        p.run_ingestion()
        status, reason = p.ingestion.status(job.job_id)
        assert status is IngestionStatus.REJECTED
        assert "malware" in reason
        report = p.blockchain.query("malware", "record_status",
                                    record_id=job.job_id)
        assert report["action"] == "dropped"

    def test_provenance_chain_recorded(self, platform):
        p, _, group, registration = platform
        p.consent.grant("pt-1", group.group_id)
        job = p.ingestion.upload(
            "client-1", encrypt_bundle_for_upload(make_bundle(), registration),
            group.group_id)
        p.run_ingestion()
        history = p.blockchain.query("provenance", "get_history",
                                     handle=job.job_id)
        assert [e["event"] for e in history] == [
            "received", "validated", "deidentified", "stored"]

    def test_stored_data_is_deidentified(self, platform):
        p, _, group, registration = platform
        p.consent.grant("pt-1", group.group_id)
        job = p.ingestion.upload(
            "client-1", encrypt_bundle_for_upload(make_bundle(), registration),
            group.group_id)
        p.run_ingestion()
        anonymized_ids = job.stored_record_ids[1::2]
        plaintext = p.datalake.retrieve(anonymized_ids[0])
        assert b"Doe" not in plaintext
        assert b"pt-1" not in plaintext

    def test_privacy_level_recorded(self, platform):
        p, _, group, registration = platform
        p.consent.grant("pt-1", group.group_id)
        job = p.ingestion.upload(
            "client-1", encrypt_bundle_for_upload(make_bundle(), registration),
            group.group_id)
        p.run_ingestion()
        level = p.blockchain.query("privacy", "record_level_of",
                                   record_id=job.job_id)
        assert level["passed"]

    def test_stage_costs_accumulate(self, platform):
        p, _, group, registration = platform
        p.consent.grant("pt-1", group.group_id)
        start = p.clock.now
        job = p.ingestion.upload(
            "client-1", encrypt_bundle_for_upload(make_bundle(), registration),
            group.group_id)
        p.run_ingestion()
        assert p.clock.now > start
        assert "stored" in job.stage_times


class TestExport:
    def _ingest_cohort(self, p, group, registration, n=8):
        for i in range(n):
            pid = f"pt-{i}"
            p.consent.grant(pid, group.group_id)
            bundle = make_bundle(patient_id=pid, bundle_id=f"b-{i}")
            p.ingestion.upload(
                "client-1", encrypt_bundle_for_upload(bundle, registration),
                group.group_id)
        p.run_ingestion()

    def _grant_export_roles(self, p, context, user):
        tenant_scope = Scope(ScopeKind.TENANT, context.tenant.tenant_id)
        p.rbac.define_role("exporter", [
            Permission(Action.READ, "anonymized-data", tenant_scope),
            Permission(Action.READ, "phi-data", tenant_scope),
        ])
        p.rbac.bind_role(user.user_id, context.default_org.org_id,
                         context.default_env.env_id, "exporter")

    def test_anonymized_export(self, platform):
        p, context, group, registration = platform
        self._ingest_cohort(p, group, registration)
        user = p.rbac.register_user(context.tenant.tenant_id, "cro-analyst")
        self._grant_export_roles(p, context, user)
        p.rbac.add_group_member(group.group_id, user.user_id)
        export = p.export.export_anonymized(
            user.user_id, group.group_id, context.default_org.org_id,
            context.default_env.env_id)
        assert len(export.bundles) == 8
        assert export.achieved_k >= p.export.anonymity_k
        for row in export.cohort_table:
            assert row["patient_ref"].startswith("ref-")

    def test_full_export_reidentifies(self, platform):
        p, context, group, registration = platform
        self._ingest_cohort(p, group, registration)
        user = p.rbac.register_user(context.tenant.tenant_id, "cro-analyst")
        self._grant_export_roles(p, context, user)
        p.rbac.add_group_member(group.group_id, user.user_id)
        export = p.export.export_full(
            user.user_id, group.group_id, context.default_org.org_id,
            context.default_env.env_id)
        original_ids = {pid for pid, _ in export.records}
        assert original_ids == {f"pt-{i}" for i in range(8)}

    def test_full_export_blocked_without_rbac(self, platform):
        p, context, group, registration = platform
        self._ingest_cohort(p, group, registration)
        user = p.rbac.register_user(context.tenant.tenant_id, "intruder")
        with pytest.raises(AuthorizationError):
            p.export.export_full(user.user_id, group.group_id,
                                 context.default_org.org_id,
                                 context.default_env.env_id)

    def test_full_export_blocked_after_consent_revocation(self, platform):
        p, context, group, registration = platform
        self._ingest_cohort(p, group, registration)
        user = p.rbac.register_user(context.tenant.tenant_id, "cro-analyst")
        self._grant_export_roles(p, context, user)
        p.rbac.add_group_member(group.group_id, user.user_id)
        p.consent.revoke_all_for_patient("pt-3")
        with pytest.raises(ConsentError):
            p.export.export_full(user.user_id, group.group_id,
                                 context.default_org.org_id,
                                 context.default_env.env_id)

    def test_export_empty_group(self, platform):
        p, context, group, _ = platform
        user = p.rbac.register_user(context.tenant.tenant_id, "cro-analyst")
        self._grant_export_roles(p, context, user)
        p.rbac.add_group_member(group.group_id, user.user_id)
        with pytest.raises(ExportError):
            p.export.export_anonymized(user.user_id, group.group_id,
                                       context.default_org.org_id,
                                       context.default_env.env_id)


class TestQueueDepthGauge:
    def test_gauge_tracks_uploads_and_drains(self, platform):
        p, _, group, registration = platform
        metrics = p.ingestion.monitoring.metrics
        for i in range(3):
            p.consent.grant(f"pt-{i}", group.group_id)
            p.ingestion.upload(
                "client-1",
                encrypt_bundle_for_upload(
                    make_bundle(patient_id=f"pt-{i}", bundle_id=f"b{i}"),
                    registration),
                group.group_id)
        assert metrics.gauge("ingestion.queue_depth") == 3
        p.ingestion.process_pending(limit=1)
        assert metrics.gauge("ingestion.queue_depth") == 2
        p.run_ingestion()
        assert metrics.gauge("ingestion.queue_depth") == 0

    def test_provenance_batch_root_matches_batch_tree(self, platform):
        """The incrementally built flush root must equal the root the
        record_batch contract recomputes — otherwise endorsement fails."""
        p, _, group, registration = platform
        p.consent.grant("pt-1", group.group_id)
        p.ingestion.upload(
            "client-1", encrypt_bundle_for_upload(make_bundle(), registration),
            group.group_id)
        p.run_ingestion()  # would raise at endorsement on a root mismatch
        history = p.blockchain.query("provenance", "get_history",
                                     handle="job-0000001")
        assert history
        assert all("batch" in event["meta"] for event in history)


class TestShardedIngestionFrontend:
    def _frontend(self, n_shards=4, events_per_batch=4):
        from repro.blockchain import ShardedBlockchainNetwork
        from repro.ingestion import ShardedIngestionFrontend
        network = ShardedBlockchainNetwork(n_shards, seed=5, batch_size=8)
        return network, ShardedIngestionFrontend(
            network, events_per_batch=events_per_batch)

    def _fill(self, frontend, n, n_keys=10):
        for i in range(n):
            frontend.record_event(
                f"patient-{i % n_keys:03d}", handle=f"h-{i}",
                data_hash=f"{i:04x}", event="received", actor="ingest")

    def test_events_land_on_owning_shard(self):
        network, frontend = self._frontend()
        self._fill(frontend, 24)
        report = frontend.flush()
        assert report.transactions >= 1
        history = network.query("patient-000", "provenance",
                                "get_history", handle="h-0")
        assert history and history[0]["meta"]["batch"].startswith("shardbatch-")
        assert network.peers_converged()

    def test_queue_depth_gauge_follows_buffered_events(self):
        network, frontend = self._frontend(events_per_batch=100)
        metrics = network.monitoring.metrics
        self._fill(frontend, 7)
        assert frontend.pending_events == 7
        assert metrics.gauge("ingestion.queue_depth") == 7
        frontend.flush()
        assert frontend.pending_events == 0
        assert metrics.gauge("ingestion.queue_depth") == 0

    def test_full_buffers_seal_automatically(self):
        network, frontend = self._frontend(events_per_batch=2)
        # Same key -> same shard; the third event seals one batch of 2.
        for i in range(3):
            frontend.record_event("patient-xyz", handle=f"h-{i}",
                                  data_hash="aa", event="received",
                                  actor="ingest")
        assert frontend._sealed  # one sealed batch awaiting flush
        report = frontend.flush()
        assert report.transactions == 2  # sealed batch + remainder batch

    def test_flush_with_nothing_pending_returns_none(self):
        _, frontend = self._frontend()
        assert frontend.flush() is None

    def test_leaf_index_returned_for_inclusion_proofs(self):
        _, frontend = self._frontend(events_per_batch=4)
        indices = [frontend.record_event("patient-abc", handle=f"h-{i}",
                                         data_hash="aa", event="received",
                                         actor="ingest") for i in range(4)]
        assert indices == [0, 1, 2, 3]

    def test_invalid_batch_size_rejected(self):
        from repro.blockchain import ShardedBlockchainNetwork
        from repro.ingestion import ShardedIngestionFrontend
        network = ShardedBlockchainNetwork(2, seed=5)
        with pytest.raises(ValueError):
            ShardedIngestionFrontend(network, events_per_batch=0)


class TestFrontendQueueDepthFreshness:
    """Regression: ``ingestion.queue_depth`` went to 0 on a *failed* flush.

    The old flush cleared the sealed queue and zeroed the gauge before
    calling ``network.ingest``, so an endorsement failure lost the
    batches and reported an empty queue.  Now the state (and gauge) only
    clears after a successful ingest, and the retained batches can be
    retried.
    """

    def _frontend(self, n_shards=2, events_per_batch=4):
        from repro.blockchain import ShardedBlockchainNetwork
        from repro.ingestion import ShardedIngestionFrontend
        network = ShardedBlockchainNetwork(n_shards, seed=5, batch_size=8)
        return network, ShardedIngestionFrontend(
            network, events_per_batch=events_per_batch)

    def _crash_shard(self, network, shard, start_s=0.0, end_s=1_000.0):
        from repro.cloudsim.faults import FaultPlan
        plan = FaultPlan(seed=1, clock=network.clock)
        channel = network.channels[shard]
        for peer in channel.peers[:3]:   # 3 of 4 down: policy unmeetable
            plan.crash_node(peer.peer_id, start_s=start_s, end_s=end_s)
        for peer in channel.peers:
            peer.fault_plan = plan

    def test_failed_flush_keeps_queue_and_gauge(self):
        from repro.core.errors import EndorsementError
        network, frontend = self._frontend()
        for i in range(4):               # same key -> one shard, one batch
            frontend.record_event("patient-xyz", handle=f"h-{i}",
                                  data_hash="aa", event="received",
                                  actor="ingest")
        shard = network.router.shard_for("patient-xyz")
        self._crash_shard(network, shard)
        with pytest.raises(EndorsementError):
            frontend.flush()
        metrics = network.monitoring.metrics
        assert frontend.pending_events == 4        # batches retained
        assert metrics.gauge("ingestion.queue_depth") == 4

    def test_retry_after_recovery_commits_and_zeroes_gauge(self):
        from repro.core.errors import EndorsementError
        network, frontend = self._frontend()
        for i in range(4):
            frontend.record_event("patient-xyz", handle=f"h-{i}",
                                  data_hash="aa", event="received",
                                  actor="ingest")
        shard = network.router.shard_for("patient-xyz")
        self._crash_shard(network, shard, end_s=1_000.0)
        with pytest.raises(EndorsementError):
            frontend.flush()
        network.clock.advance(2_000.0)             # peers recover
        report = frontend.flush()                  # same sealed batch retried
        assert report is not None and report.transactions == 1
        assert frontend.pending_events == 0
        assert network.monitoring.metrics.gauge("ingestion.queue_depth") == 0
        assert network.peers_converged()
