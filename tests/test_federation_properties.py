"""Property-based tests for federation invariants (hypothesis).

Two families: (1) secure aggregation is *exact* for any partition — the
masked sum the coordinator sees equals the centralized sum over the
pooled data; (2) the threshold-approval invariant — no upload commitment
lands on the ledger before M distinct participant approvals, for any
(N, M) and any approval order.
"""

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings

from repro.blockchain.chaincode import StudyContract, WorldState
from repro.core.errors import StudyError
from repro.crypto.symmetric import generate_key
from repro.federation import (
    SCALE,
    combine_masked,
    mask_vector,
    pair_secret,
)

_NO_DEADLINE = settings(deadline=None, max_examples=40,
                        suppress_health_check=[HealthCheck.too_slow])


def masked_sum(values_by_name, round_tag="r0", context="study-p"):
    names = sorted(values_by_name)
    keys = {name: generate_key(i * 11 + 3) for i, name in enumerate(names)}
    masked = {}
    for name in names:
        secrets = {peer: pair_secret(keys[name], keys[peer], context)
                   for peer in names if peer != name}
        masked[name] = mask_vector(values_by_name[name], name, secrets,
                                   round_tag)
    return combine_masked(masked)


class TestAggregationMatchesCentralized:
    @given(n_institutions=st.integers(1, 5),
           length=st.integers(1, 24),
           seed=st.integers(0, 10_000))
    @_NO_DEADLINE
    def test_integer_partition_sums_exact(self, n_institutions, length,
                                          seed):
        """Any partition of integer counts aggregates to the pooled sum."""
        rng = np.random.default_rng(seed)
        values = {f"inst-{i:02d}": rng.integers(0, 100,
                                                size=length).astype(float)
                  for i in range(n_institutions)}
        pooled = np.sum(list(values.values()), axis=0)
        np.testing.assert_array_equal(masked_sum(values), pooled)

    @given(n_institutions=st.integers(2, 5),
           length=st.integers(1, 24),
           seed=st.integers(0, 10_000))
    @_NO_DEADLINE
    def test_float_partition_sums_within_quantization(self, n_institutions,
                                                      length, seed):
        rng = np.random.default_rng(seed)
        values = {f"inst-{i:02d}": rng.normal(scale=50.0, size=length)
                  for i in range(n_institutions)}
        pooled = np.sum(list(values.values()), axis=0)
        np.testing.assert_allclose(masked_sum(values), pooled,
                                   atol=n_institutions * 1.0 / SCALE)

    @given(split_at=st.integers(0, 30), seed=st.integers(0, 1000))
    @_NO_DEADLINE
    def test_partition_boundary_is_irrelevant(self, split_at, seed):
        """Moving rows between institutions never changes the aggregate."""
        rng = np.random.default_rng(seed)
        rows = rng.integers(0, 10, size=(30, 8)).astype(float)
        one_way = {"inst-00": rows[:split_at].sum(axis=0),
                   "inst-01": rows[split_at:].sum(axis=0)}
        other = {"inst-00": rows[:15].sum(axis=0),
                 "inst-01": rows[15:].sum(axis=0)}
        np.testing.assert_array_equal(masked_sum(one_way),
                                      masked_sum(other))


def study_fixture(n, threshold):
    """A StudyContract over a bare world state, study proposed."""
    contract = StudyContract()
    state = WorldState()
    participants = [f"inst-{i:02d}" for i in range(n)]
    contract.invoke_propose(
        state, study_id="study-000001", researcher="user-r",
        analysis="delt", group_id="grp", participants=participants,
        threshold=threshold, proposed_at=0.0)
    return contract, state, participants


class TestThresholdInvariant:
    @given(n=st.integers(2, 6), data=st.data())
    @_NO_DEADLINE
    def test_no_commitment_before_m_approvals(self, n, data):
        """For any approval order, commitments are refused until M land."""
        threshold = data.draw(st.integers(1, n), label="threshold")
        order = data.draw(st.permutations(range(n)), label="order")
        contract, state, participants = study_fixture(n, threshold)
        for count, index in enumerate(order):
            record = contract.invoke_status(state, study_id="study-000001")
            if count < threshold:
                # Not yet approved: every commitment attempt must fail
                # and leave no state behind.
                assert record["state"] == "proposed"
                with pytest.raises(StudyError):
                    contract.invoke_record_commitment(
                        state, study_id="study-000001", round_tag="r0",
                        institution=participants[index],
                        commitment="c", committed_at=float(count))
                assert contract.invoke_commitments(
                    state, study_id="study-000001") == {}
            contract.invoke_approve(state, study_id="study-000001",
                                    institution=participants[index],
                                    approved_at=float(count))
        final = contract.invoke_status(state, study_id="study-000001")
        assert final["state"] == "approved"
        assert len(final["approvals"]) == n

    @given(n=st.integers(2, 6), data=st.data())
    @_NO_DEADLINE
    def test_duplicate_approvals_never_reach_threshold(self, n, data):
        """Repeating one institution's approval cannot stand in for M."""
        threshold = data.draw(st.integers(2, n), label="threshold")
        repeats = data.draw(st.integers(threshold, 3 * n), label="repeats")
        contract, state, participants = study_fixture(n, threshold)
        for k in range(repeats):
            contract.invoke_approve(state, study_id="study-000001",
                                    institution=participants[0],
                                    approved_at=float(k))
        record = contract.invoke_status(state, study_id="study-000001")
        assert record["state"] == "proposed"
        assert len(record["approvals"]) == 1
        with pytest.raises(StudyError):
            contract.invoke_record_commitment(
                state, study_id="study-000001", round_tag="r0",
                institution=participants[0], commitment="c",
                committed_at=0.0)

    @given(n=st.integers(2, 6))
    @_NO_DEADLINE
    def test_exactly_m_approvals_at_first_commitment(self, n):
        """The first accepted commitment sees exactly M approvals."""
        threshold = max(1, n - 1)
        contract, state, participants = study_fixture(n, threshold)
        accepted_at = None
        for count, name in enumerate(participants):
            try:
                contract.invoke_record_commitment(
                    state, study_id="study-000001", round_tag="r0",
                    institution=name, commitment=f"c-{name}",
                    committed_at=float(count))
            except StudyError:
                pass
            else:
                accepted_at = len(contract.invoke_status(
                    state, study_id="study-000001")["approvals"])
                break
            contract.invoke_approve(state, study_id="study-000001",
                                    institution=name,
                                    approved_at=float(count))
        assert accepted_at == threshold
