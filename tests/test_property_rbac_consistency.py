"""Property-based tests: RBAC non-escalation, consistency invariants,
HL7 adapter robustness, and DELT estimator sanity."""

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings

from repro.analytics.delt import DeltModel, PatientSeries
from repro.caching.consistency import ConsistencyHarness
from repro.core.errors import ValidationError
from repro.fhir.hl7v2 import hl7_to_bundle
from repro.rbac.engine import RbacEngine
from repro.rbac.model import Action, Permission, Scope, ScopeKind

_NO_DEADLINE = settings(deadline=None,
                        suppress_health_check=[HealthCheck.too_slow])


class TestRbacProperties:
    @given(bindings=st.lists(st.integers(0, 4), min_size=0, max_size=5),
           ask_role=st.integers(0, 4))
    @_NO_DEADLINE
    def test_no_access_without_matching_role(self, bindings, ask_role):
        """A user is allowed iff one of their bound roles grants exactly
        the requested (action, resource, scope) — never otherwise."""
        engine = RbacEngine()
        tenant = engine.create_tenant("t")
        org = engine.create_organization(tenant.tenant_id, "o")
        env = engine.create_environment(org.org_id, "e")
        scope = Scope(ScopeKind.ORGANIZATION, org.org_id)
        for r in range(5):
            engine.define_role(f"role-{r}", [
                Permission(Action.READ, f"res-{r}", scope)])
        user = engine.register_user(tenant.tenant_id, "u")
        for r in set(bindings):
            engine.bind_role(user.user_id, org.org_id, env.env_id,
                             f"role-{r}")
        decision = engine.check(user.user_id, Action.READ,
                                f"res-{ask_role}", scope,
                                org.org_id, env.env_id)
        assert decision.allowed == (ask_role in set(bindings))

    @given(n_members=st.integers(0, 3))
    @_NO_DEADLINE
    def test_group_membership_alone_grants_nothing(self, n_members):
        """Membership without a role never yields access (no escalation)."""
        engine = RbacEngine()
        tenant = engine.create_tenant("t")
        org = engine.create_organization(tenant.tenant_id, "o")
        env = engine.create_environment(org.org_id, "e")
        group = engine.create_group(tenant.tenant_id, "g")
        users = [engine.register_user(tenant.tenant_id, f"u{i}")
                 for i in range(3)]
        for user in users[:n_members]:
            engine.add_group_member(group.group_id, user.user_id)
        scope = Scope(ScopeKind.GROUP, group.group_id)
        for user in users:
            assert not engine.check(user.user_id, Action.READ, "phi",
                                    scope, org.org_id, env.env_id).allowed


class TestConsistencyProperties:
    @given(schedule=st.lists(
        st.tuples(st.sampled_from(["read", "write", "advance"]),
                  st.integers(0, 5)),
        max_size=120))
    @settings(deadline=None, max_examples=40,
              suppress_health_check=[HealthCheck.too_slow])
    def test_invalidation_never_stale(self, schedule):
        """Under any interleaving, invalidation-protocol reads are fresh."""
        harness = ConsistencyHarness("invalidate", num_caches=2)
        versions = {}
        for key in range(6):
            harness.write(key, (key, 0))
            versions[key] = 0
        for op, key in schedule:
            if op == "write":
                versions[key] += 1
                harness.write(key, (key, versions[key]))
            elif op == "read":
                value = harness.read(key % 2, key)
                assert value == (key, versions[key])
            else:
                harness.advance(1.0)
        assert harness.report().stale_reads == 0

    @given(schedule=st.lists(
        st.tuples(st.sampled_from(["read", "write"]), st.integers(0, 3)),
        max_size=80),
           ttl=st.floats(0.5, 20.0))
    @settings(deadline=None, max_examples=30,
              suppress_health_check=[HealthCheck.too_slow])
    def test_ttl_staleness_bounded_by_window(self, schedule, ttl):
        """TTL's real guarantee: if a read returns a superseded value, the
        write that superseded it happened at most one TTL ago (the served
        entry was current when fetched, and fetches expire after ttl)."""
        harness = ConsistencyHarness("ttl", num_caches=1, ttl_s=ttl)
        write_history = {key: [] for key in range(4)}
        for key in range(4):
            harness.write(key, (key, harness.clock.now))
            write_history[key].append(harness.clock.now)
        for op, key in schedule:
            harness.advance(0.3)
            if op == "write":
                harness.write(key, (key, harness.clock.now))
                write_history[key].append(harness.clock.now)
            else:
                value = harness.read(0, key)
                _, written_at = value
                overwrites = [t for t in write_history[key]
                              if t > written_at]
                if overwrites:  # served value is stale
                    first_overwrite = min(overwrites)
                    assert (harness.clock.now - first_overwrite
                            <= ttl + 1e-9)


class TestHl7Robustness:
    @given(garbage=st.text(max_size=200))
    @_NO_DEADLINE
    def test_parser_never_crashes_unexpectedly(self, garbage):
        """Arbitrary text either parses or raises ValidationError."""
        try:
            hl7_to_bundle(garbage, "fuzz")
        except ValidationError:
            pass

    @given(field_values=st.lists(
        st.text(alphabet=st.characters(blacklist_characters="|\r^\n",
                                       blacklist_categories=("Cs",)),
                max_size=12),
        min_size=0, max_size=10))
    @_NO_DEADLINE
    def test_pid_variants_parse_or_reject(self, field_values):
        message = ("MSH|^~\\&|A|||||20240101|ORU^R01|m|P|2.5\r"
                   "PID|" + "|".join(field_values))
        try:
            bundle = hl7_to_bundle(message, "fuzz")
            assert bundle.entries  # if it parses, a Patient exists
        except ValidationError:
            pass


class TestDeltProperties:
    @given(effect=st.floats(-2.0, 2.0), seed=st.integers(0, 50))
    @settings(deadline=None, max_examples=15,
              suppress_health_check=[HealthCheck.too_slow])
    def test_single_drug_effect_sign_recovered(self, effect, seed):
        """With one drug and clean data, the estimate tracks the effect."""
        rng = np.random.default_rng(seed)
        patients = []
        for i in range(40):
            times = np.sort(rng.uniform(0, 100, size=12))
            exposures = np.zeros((12, 1))
            exposures[6:, 0] = 1.0
            values = (5.0 + rng.normal() * 0.5
                      + exposures[:, 0] * effect
                      + rng.normal(scale=0.05, size=12))
            patients.append(PatientSeries(f"p{i}", times, values, exposures))
        result = DeltModel(n_drugs=1, ridge=0.1).fit(patients)
        assert abs(result.effects[0] - effect) < 0.2
