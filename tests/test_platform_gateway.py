"""Integration: the platform's built-in API gateway surface."""

import pytest

from repro import HealthCloudPlatform
from repro.core.api import ApiRequest
from repro.rbac import (
    Action,
    ExternalIdentityProvider,
    Permission,
    Scope,
    ScopeKind,
)


@pytest.fixture
def gateway_world():
    platform = HealthCloudPlatform(seed=151, use_blockchain=False)
    context = platform.register_tenant("acme")
    user = platform.rbac.register_user(context.tenant.tenant_id, "ops")
    scope = Scope(ScopeKind.TENANT, context.tenant.tenant_id)
    platform.rbac.define_role("operator", [
        Permission(Action.READ, "platform-status", scope),
        Permission(Action.READ, "reports", scope),
        Permission(Action.READ, "billing", scope),
    ])
    platform.rbac.bind_role(user.user_id, context.default_org.org_id,
                            context.default_env.env_id, "operator")
    idp = ExternalIdentityProvider("hospital-idp", b"secret-key-0123456",
                                   platform.clock)
    platform.federation.approve_idp("hospital-idp", b"secret-key-0123456")
    platform.federation.link_identity("hospital-idp", "ops@acme",
                                      user.user_id)
    gateway = platform.build_api_gateway()
    return platform, context, gateway, idp


def _call(gateway, idp, context, path, **kwargs):
    token = idp.issue_token("ops@acme")
    return gateway.dispatch(ApiRequest(
        path=path, token=token,
        scope_entity_id=context.tenant.tenant_id,
        org_id=context.default_org.org_id,
        env_id=context.default_env.env_id, params=kwargs))


class TestPlatformGateway:
    def test_routes_registered(self, gateway_world):
        _, _, gateway, _ = gateway_world
        assert set(gateway.routes()) == {
            "/v1/ingestion/status", "/v1/reports/operations",
            "/v1/reports/compliance", "/v1/billing"}

    def test_operations_report_route(self, gateway_world):
        platform, context, gateway, idp = gateway_world
        response = _call(gateway, idp, context, "/reports/operations")
        assert response.status == 200
        assert "uploads" in response.body

    def test_compliance_report_route(self, gateway_world):
        platform, context, gateway, idp = gateway_world
        response = _call(gateway, idp, context, "/reports/compliance")
        assert response.status == 200
        assert response.body["coverage"]["GDPR"] == 1.0

    def test_status_route_end_to_end(self, gateway_world):
        from repro.fhir import Bundle, Patient
        from repro.ingestion import encrypt_bundle_for_upload
        platform, context, gateway, idp = gateway_world
        group = platform.rbac.create_group(context.tenant.tenant_id, "g")
        registration = platform.ingestion.register_client("c")
        platform.consent.grant("pt-1", group.group_id)
        bundle = Bundle(id="b").add(
            Patient(id="pt-1", name={"family": "X"}, birthDate="1980-01-01",
                    gender="male"))
        job = platform.ingestion.upload(
            "c", encrypt_bundle_for_upload(bundle, registration),
            group.group_id)
        platform.run_ingestion()
        response = _call(gateway, idp, context, "/ingestion/status",
                         job_id=job.job_id)
        assert response.status == 200
        assert response.body["status"] == "stored"

    def test_billing_route_reflects_metered_calls(self, gateway_world):
        platform, context, gateway, idp = gateway_world
        for _ in range(3):
            _call(gateway, idp, context, "/reports/operations")
        response = _call(gateway, idp, context, "/billing")
        assert response.status == 200
        # 3 prior successful calls metered (this one is metered after the
        # handler ran, so it is not in its own invoice).
        api_line = next(line for line in response.body["lines"]
                        if line["service"] == "api.call")
        assert api_line["units"] == 3

    def test_unprivileged_user_gets_403(self, gateway_world):
        platform, context, gateway, idp = gateway_world
        nobody = platform.rbac.register_user(context.tenant.tenant_id,
                                             "nobody")
        platform.federation.link_identity("hospital-idp", "nobody@acme",
                                          nobody.user_id)
        token = idp.issue_token("nobody@acme")
        response = gateway.dispatch(ApiRequest(
            path="/billing", token=token,
            scope_entity_id=context.tenant.tenant_id,
            org_id=context.default_org.org_id,
            env_id=context.default_env.env_id))
        assert response.status == 403
