"""Tests for the deterministic chaos layer (repro.cloudsim.faults)."""

import pytest

from repro.cloudsim.clock import SimClock
from repro.cloudsim.faults import (
    FaultInjector,
    FaultPlan,
    FaultWindow,
)
from repro.cloudsim.monitoring import MonitoringService
from repro.cloudsim.network import standard_topology
from repro.cloudsim.nodes import Host, NodeState, SoftwareComponent
from repro.core.errors import ConfigurationError, ServiceUnavailableError
from repro.services.registry import SimulatedAiService


class TestFaultWindow:
    def test_half_open_interval(self):
        window = FaultWindow(10.0, 20.0)
        assert not window.active(9.999)
        assert window.active(10.0)
        assert window.active(19.999)
        assert not window.active(20.0)

    def test_default_window_is_always(self):
        assert FaultWindow().active(0.0)
        assert FaultWindow().active(1e12)


class TestFaultPlanBuilders:
    def test_invalid_drop_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan().drop_link("a", "b", 1.5)

    def test_invalid_multiplier_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan().spike_link("a", "b", 0.5)

    def test_invalid_availability_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan().dip_service("svc", -0.1)

    def test_builders_chain(self):
        plan = (FaultPlan(seed=1)
                .drop_link("a", "b", 0.1)
                .spike_link("a", "b", 3.0)
                .crash_node("n1", 0.0, 5.0)
                .dip_service("svc", 0.5))
        description = plan.describe()
        assert description["link_drops"] == 1
        assert description["latency_spikes"] == 1
        assert description["node_crashes"] == 1
        assert description["availability_dips"] == 1


class TestLinkFaults:
    def test_drop_draws_are_seed_deterministic(self):
        draws = []
        for _ in range(2):
            plan = FaultPlan(seed=42).drop_link("a", "b", 0.3)
            draws.append([plan.link_dropped("a", "b") for _ in range(200)])
        assert draws[0] == draws[1]
        assert any(draws[0]) and not all(draws[0])

    def test_drop_matches_undirected(self):
        plan = FaultPlan(seed=0).drop_link("a", "b", 1.0)
        assert plan.link_dropped("b", "a")
        assert not plan.link_dropped("a", "c")

    def test_drop_respects_window(self):
        clock = SimClock()
        plan = FaultPlan(seed=0, clock=clock).drop_link(
            "a", "b", 1.0, start_s=10.0, end_s=20.0)
        assert not plan.link_dropped("a", "b")
        clock.advance(15.0)
        assert plan.link_dropped("a", "b")
        clock.advance(10.0)
        assert not plan.link_dropped("a", "b")

    def test_fabric_transfer_dropped(self):
        clock = SimClock()
        fabric = standard_topology(clock)
        plan = FaultPlan(seed=0, clock=clock).drop_link(
            "client", "cloud-a", 1.0)
        fabric.fault_plan = plan
        with pytest.raises(ServiceUnavailableError):
            fabric.transfer("client", "cloud-a", 1024)
        assert fabric.dropped_transfers == 1
        assert clock.now > 0.0  # the doomed attempt still cost time

    def test_fabric_latency_spike(self):
        fabric = standard_topology()
        baseline = fabric.one_way_time("client", "cloud-a", 1024)
        plan = FaultPlan(seed=0, clock=fabric.clock).spike_link(
            "client", "cloud-a", 4.0)
        fabric.fault_plan = plan
        assert fabric.one_way_time("client", "cloud-a", 1024) == pytest.approx(
            4.0 * baseline)

    def test_spike_multipliers_compose(self):
        plan = (FaultPlan()
                .spike_link("a", "b", 2.0)
                .spike_link("a", "b", 3.0))
        assert plan.latency_multiplier("a", "b") == pytest.approx(6.0)
        assert plan.latency_multiplier("a", "c") == 1.0


class TestNodeCrashWindows:
    def _host(self):
        host = Host("h1", SoftwareComponent("bios", b"bios"),
                    SoftwareComponent("hv", b"hv"))
        host.start()
        return host

    def test_injector_crashes_and_restarts(self):
        clock = SimClock()
        plan = FaultPlan(clock=clock).crash_node("h1", 5.0, 10.0)
        injector = FaultInjector(plan)
        host = self._host()
        injector.attach_node("h1", host)

        assert injector.tick() == 0          # before the window
        clock.advance(6.0)
        assert injector.tick() == 1          # crash applied
        assert host.state is NodeState.STOPPED
        clock.advance(10.0)
        assert injector.tick() == 1          # restart applied
        assert host.state is NodeState.RUNNING

    def test_restart_preserves_prior_stopped_state(self):
        clock = SimClock()
        plan = FaultPlan(clock=clock).crash_node("h1", 0.0, 5.0)
        injector = FaultInjector(plan)
        host = self._host()
        host.stop()                          # operator had stopped it already
        injector.attach_node("h1", host)
        injector.tick()
        clock.advance(6.0)
        injector.tick()
        assert host.state is NodeState.STOPPED   # not resurrected

    def test_node_down_query(self):
        clock = SimClock()
        plan = FaultPlan(clock=clock).crash_node("peer.org1", 0.0, 5.0)
        assert plan.node_down("peer.org1")
        assert not plan.node_down("peer.org2")
        clock.advance(5.0)
        assert not plan.node_down("peer.org1")


class TestAvailabilityDips:
    def test_dip_overrides_within_window(self):
        clock = SimClock()
        plan = FaultPlan(clock=clock).dip_service("ocr", 0.25, 0.0, 10.0)
        assert plan.service_availability("ocr", 0.99) == 0.25
        assert plan.service_availability("other", 0.99) == 0.99
        clock.advance(10.0)
        assert plan.service_availability("ocr", 0.99) == 0.99

    def test_dip_never_raises_availability(self):
        plan = FaultPlan().dip_service("ocr", 0.9)
        assert plan.service_availability("ocr", 0.5) == 0.5

    def test_ai_service_fails_under_total_dip(self):
        service = SimulatedAiService("ocr", "text", 0.01,
                                     availability=1.0, accuracy=1.0, seed=3)
        service.fault_plan = FaultPlan().dip_service("ocr", 0.0)
        with pytest.raises(ServiceUnavailableError):
            service.call("doc")


class TestAccounting:
    def test_counters_mirrored_to_monitoring(self):
        clock = SimClock()
        monitoring = MonitoringService(clock)
        plan = FaultPlan(seed=0, clock=clock,
                         monitoring=monitoring).drop_link("a", "b", 1.0)
        plan.link_dropped("a", "b")
        plan.link_dropped("a", "b")
        assert plan.counters["link_drop"] == 2
        assert monitoring.metrics.counter("faults.link_drop") == 2.0

    def test_describe_reports_injected_counts(self):
        plan = FaultPlan(seed=7).drop_link("a", "b", 1.0)
        plan.link_dropped("a", "b")
        description = plan.describe()
        assert description["seed"] == 7
        assert description["injected"] == {"link_drop": 1}
