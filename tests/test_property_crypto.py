"""Property-based tests for the crypto substrate (hypothesis)."""

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.crypto.merkle import MerkleTree, verify_proof
from repro.crypto.redactable import (
    RedactableSigner,
    deterministic_rng,
    redact,
    verify_share,
)
from repro.crypto.rsa import generate_keypair, rsa_decrypt, rsa_encrypt, rsa_sign
from repro.crypto.symmetric import Ciphertext, SharedKeyCipher, generate_key

KEYPAIR = generate_keypair(bits=768, seed=4242)
# Every modulus size the repo actually uses (conftest fixtures: 512/1024;
# this module: 768) — the CRT fast path must agree at all of them.
CRT_KEYPAIRS = [generate_keypair(bits=bits, seed=7000 + bits)
                for bits in (512, 768, 1024)]
_NO_DEADLINE = settings(deadline=None,
                        suppress_health_check=[HealthCheck.too_slow])


class TestAeadProperties:
    @given(plaintext=st.binary(max_size=4096),
           associated=st.binary(max_size=64),
           key_seed=st.integers(0, 1000))
    @_NO_DEADLINE
    def test_roundtrip(self, plaintext, associated, key_seed):
        cipher = SharedKeyCipher(generate_key(key_seed))
        assert cipher.decrypt(cipher.encrypt(plaintext, associated),
                              associated) == plaintext

    @given(plaintext=st.binary(min_size=1, max_size=1024),
           flip_index=st.integers(0, 10_000))
    @_NO_DEADLINE
    def test_any_bitflip_detected(self, plaintext, flip_index):
        from repro.core.errors import IntegrityError
        cipher = SharedKeyCipher(generate_key(1))
        ciphertext = cipher.encrypt(plaintext)
        raw = bytearray(ciphertext.to_bytes())
        raw[flip_index % len(raw)] ^= 0x01
        with pytest.raises(IntegrityError):
            cipher.decrypt(Ciphertext.from_bytes(bytes(raw)))

    @given(plaintext=st.binary(max_size=512))
    @_NO_DEADLINE
    def test_serialization_stable(self, plaintext):
        cipher = SharedKeyCipher(generate_key(2))
        ciphertext = cipher.encrypt(plaintext)
        assert Ciphertext.from_bytes(ciphertext.to_bytes()).to_bytes() == \
            ciphertext.to_bytes()


class TestCrtRsaProperties:
    """The CRT fast path must be indistinguishable from schoolbook RSA."""

    @given(value=st.integers(min_value=2, max_value=2**500),
           key_index=st.integers(0, len(CRT_KEYPAIRS) - 1))
    @settings(deadline=None, max_examples=60,
              suppress_health_check=[HealthCheck.too_slow])
    def test_private_op_matches_schoolbook(self, value, key_index):
        keypair = CRT_KEYPAIRS[key_index]
        value %= keypair.n
        assert keypair.private_op(value, use_crt=True) == \
            keypair.private_op(value, use_crt=False)

    @given(message=st.binary(min_size=1, max_size=48),
           key_index=st.integers(0, len(CRT_KEYPAIRS) - 1))
    @settings(deadline=None, max_examples=25,
              suppress_health_check=[HealthCheck.too_slow])
    def test_decrypt_agrees_and_roundtrips(self, message, key_index):
        keypair = CRT_KEYPAIRS[key_index]
        ciphertext = rsa_encrypt(keypair.public_key(), message)
        fast = rsa_decrypt(keypair, ciphertext, use_crt=True)
        slow = rsa_decrypt(keypair, ciphertext, use_crt=False)
        assert fast == slow == message

    @given(message=st.binary(min_size=1, max_size=256),
           key_index=st.integers(0, len(CRT_KEYPAIRS) - 1))
    @settings(deadline=None, max_examples=25,
              suppress_health_check=[HealthCheck.too_slow])
    def test_signatures_identical(self, message, key_index):
        keypair = CRT_KEYPAIRS[key_index]
        assert rsa_sign(keypair, message, use_crt=True) == \
            rsa_sign(keypair, message, use_crt=False)


class TestMerkleProperties:
    @given(leaves=st.lists(st.binary(max_size=64), min_size=1, max_size=40),
           index=st.integers(0, 1000))
    @_NO_DEADLINE
    def test_every_leaf_provable(self, leaves, index):
        tree = MerkleTree(leaves)
        i = index % len(leaves)
        assert verify_proof(tree.root, leaves[i], tree.proof(i))

    @given(leaves=st.lists(st.binary(max_size=32), min_size=2, max_size=20,
                           unique=True),
           index=st.integers(0, 1000))
    @_NO_DEADLINE
    def test_proof_not_transferable(self, leaves, index):
        tree = MerkleTree(leaves)
        i = index % len(leaves)
        j = (i + 1) % len(leaves)
        # Leaf j's data cannot verify with leaf i's proof.
        assert not verify_proof(tree.root, leaves[j], tree.proof(i))


class TestRedactableProperties:
    @given(fields=st.lists(st.binary(min_size=1, max_size=32),
                           min_size=1, max_size=12),
           disclosure_seed=st.integers(0, 2**16),
           rng_seed=st.integers(0, 2**16))
    @settings(deadline=None, max_examples=25,
              suppress_health_check=[HealthCheck.too_slow])
    def test_any_subset_verifies(self, fields, disclosure_seed, rng_seed):
        import random
        signer = RedactableSigner(KEYPAIR, rng=deterministic_rng(rng_seed))
        record = signer.sign(fields)
        rng = random.Random(disclosure_seed)
        subset = [i for i in range(len(fields)) if rng.random() < 0.5]
        share = redact(record, subset)
        assert verify_share(KEYPAIR.public_key(), share)
        assert set(share.disclosed) == set(subset)

    @given(fields=st.lists(st.binary(min_size=1, max_size=16),
                           min_size=2, max_size=8),
           rng_seed=st.integers(0, 2**16))
    @settings(deadline=None, max_examples=25,
              suppress_health_check=[HealthCheck.too_slow])
    def test_hidden_field_bytes_never_in_share(self, fields, rng_seed):
        signer = RedactableSigner(KEYPAIR, rng=deterministic_rng(rng_seed))
        record = signer.sign(fields)
        share = redact(record, [0])  # hide everything but field 0
        serialized = b"".join(share.commitments) + b"".join(
            share.order_tokens) + share.signature
        for hidden in fields[1:]:
            if len(hidden) >= 8 and hidden not in fields[0]:
                assert hidden not in serialized
