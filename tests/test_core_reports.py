"""Tests for the report/dashboard service."""

import pytest

from repro import HealthCloudPlatform
from repro.cloudsim.monitoring import MonitoringService
from repro.core.metering import MeteringService
from repro.core.reports import ReportService


class TestOperationsReport:
    def test_counts_reflected(self):
        monitoring = MonitoringService()
        monitoring.metrics.incr("ingestion.uploads", 10)
        monitoring.metrics.incr("ingestion.stored", 8)
        monitoring.metrics.incr("ingestion.rejected", 2)
        monitoring.metrics.observe("ingestion.latency", 0.075)
        report = ReportService(monitoring).operations_report()
        assert report.body["stored"] == 8
        assert "rejected: 2" in report.text
        assert "latency p50" in report.text

    def test_empty_platform(self):
        report = ReportService(MonitoringService()).operations_report()
        assert report.body["uploads"] == 0


class TestComplianceReport:
    def test_coverage_and_audit(self):
        platform = HealthCloudPlatform(seed=4, use_blockchain=False)
        report = platform.reports.compliance_report()
        assert 0.0 < report.body["coverage"]["HIPAA"] <= 1.0
        assert report.body["coverage"]["GDPR"] == 1.0
        assert report.body["audit_clean"] is True
        assert "CLEAN" in report.text

    def test_requires_registry(self):
        service = ReportService(MonitoringService())
        with pytest.raises(ValueError):
            service.compliance_report()


class TestBillingReport:
    def test_invoice_rendered(self):
        monitoring = MonitoringService()
        metering = MeteringService()
        metering.record("t1", "ingestion.bundle", 100)
        metering.record("t1", "api.call", 2000)
        service = ReportService(monitoring, metering=metering)
        report = service.billing_report("t1")
        assert report.body["total"] == pytest.approx(100 * 0.02
                                                     + 2000 * 0.0005)
        assert "TOTAL" in report.text

    def test_requires_metering(self):
        service = ReportService(MonitoringService())
        with pytest.raises(ValueError):
            service.billing_report("t1")


class TestStudySummary:
    def test_summarizes_cohort(self):
        service = ReportService(MonitoringService())
        cohort = [
            {"gender": "female", "state": "MA"},
            {"gender": "female", "state": "NY"},
            {"gender": "male", "state": "MA"},
        ]
        report = service.study_summary("study-1", cohort)
        assert report.body["n"] == 3
        assert report.body["by_gender"] == {"female": 2, "male": 1}
        assert report.body["by_state"] == {"MA": 2, "NY": 1}
        assert "participants: 3" in report.text


class TestPlatformIntegration:
    def test_platform_exposes_reports_and_metering(self):
        platform = HealthCloudPlatform(seed=6, use_blockchain=False)
        context = platform.register_tenant("acme")
        platform.metering.record(context.tenant.tenant_id,
                                 "ingestion.bundle", 5)
        billing = platform.reports.billing_report(context.tenant.tenant_id)
        assert billing.body["total"] == pytest.approx(0.10)
        operations = platform.reports.operations_report()
        assert operations.title == "Operations"
