"""Tests for the resource provisioning service."""

import pytest

from repro.cloudsim.nodes import Datacenter, Host, SoftwareComponent
from repro.cloudsim.provisioning import (
    ProvisionRequest,
    ResourceProvisioningService,
)
from repro.core.errors import AttestationError, ConfigurationError

BIOS = SoftwareComponent("bios", b"b1")
KERNEL = SoftwareComponent("kernel", b"k1")
IMAGE = SoftwareComponent("ubuntu", b"u22")


def make_datacenter(with_tpm=True):
    datacenter = Datacenter("dc")
    host = Host("h1", bios=BIOS, hypervisor=SoftwareComponent("kvm", b"k"),
                has_tpm=with_tpm)
    datacenter.add_host(host)
    return datacenter


class TestProvisioning:
    def test_provisions_on_attested_host(self):
        service = ResourceProvisioningService(make_datacenter())
        vm = service.provision_vm(ProvisionRequest(image=IMAGE), BIOS, KERNEL)
        assert vm.vm_id.startswith("vm-")
        assert vm.state.value == "running"

    def test_rejects_host_without_tpm(self):
        service = ResourceProvisioningService(make_datacenter(with_tpm=False))
        with pytest.raises(AttestationError):
            service.provision_vm(ProvisionRequest(image=IMAGE), BIOS, KERNEL)

    def test_rejects_unapproved_image(self):
        service = ResourceProvisioningService(
            make_datacenter(), image_approver=lambda img: False)
        with pytest.raises(AttestationError):
            service.provision_vm(ProvisionRequest(image=IMAGE), BIOS, KERNEL)

    def test_requires_image(self):
        service = ResourceProvisioningService(make_datacenter())
        with pytest.raises(ConfigurationError):
            service.provision_vm(ProvisionRequest(), BIOS, KERNEL)

    def test_no_capacity(self):
        service = ResourceProvisioningService(make_datacenter())
        with pytest.raises(ConfigurationError):
            service.provision_vm(
                ProvisionRequest(vcpus=1024, image=IMAGE), BIOS, KERNEL)

    def test_container_approval_enforced(self):
        approved = {IMAGE.measurement}
        service = ResourceProvisioningService(
            make_datacenter(),
            image_approver=lambda img: img.measurement in approved)
        vm = service.provision_vm(ProvisionRequest(image=IMAGE), BIOS, KERNEL)
        container = service.provision_container(vm, IMAGE)
        assert container.container_id.startswith("ctr-")
        rogue = SoftwareComponent("rogue", b"evil")
        with pytest.raises(AttestationError):
            service.provision_container(vm, rogue)

    def test_metrics_tracked(self):
        service = ResourceProvisioningService(make_datacenter())
        service.provision_vm(ProvisionRequest(image=IMAGE), BIOS, KERNEL)
        assert service.monitoring.metrics.counter("provisioning.vms") == 1
