"""Tests for similarity measures and evaluation metrics."""

import numpy as np
import pytest

from repro.analytics.metrics import (
    auc_roc,
    average_precision,
    evaluate_masked,
    holdout_mask,
    precision_at_k,
    recall_at_k,
)
from repro.analytics.similarity import (
    cosine,
    gaussian_similarity,
    jaccard,
    ontology_path_similarity,
    similarity_quality,
    tanimoto,
)


class TestSimilarityMeasures:
    def test_tanimoto_identical(self):
        a = np.array([1, 0, 1, 1])
        assert tanimoto(a, a) == 1.0

    def test_tanimoto_disjoint(self):
        assert tanimoto(np.array([1, 1, 0, 0]), np.array([0, 0, 1, 1])) == 0.0

    def test_tanimoto_partial(self):
        a = np.array([1, 1, 0])
        b = np.array([1, 0, 1])
        assert tanimoto(a, b) == pytest.approx(1 / 3)

    def test_tanimoto_empty(self):
        z = np.zeros(4)
        assert tanimoto(z, z) == 0.0

    def test_jaccard(self):
        assert jaccard({1, 2}, {2, 3}) == pytest.approx(1 / 3)
        assert jaccard(set(), set()) == 0.0
        assert jaccard({1}, {1}) == 1.0

    def test_cosine(self):
        assert cosine(np.array([1.0, 0.0]), np.array([1.0, 0.0])) == 1.0
        assert cosine(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == 0.0
        assert cosine(np.zeros(2), np.ones(2)) == 0.0

    def test_gaussian_bounds(self):
        a = np.random.default_rng(0).normal(size=16)
        b = np.random.default_rng(1).normal(size=16)
        s = gaussian_similarity(a, b)
        assert 0.0 < s < 1.0
        assert gaussian_similarity(a, a) == 1.0

    def test_ontology_similarity(self):
        assert ontology_path_similarity(("a", "b", "c"), ("a", "b", "c")) == 1.0
        assert ontology_path_similarity(("a", "b", "c"), ("a", "b", "x")) == \
            pytest.approx(2 / 3)
        assert ontology_path_similarity(("a",), ()) == 0.0

    def test_builders_produce_symmetric_unit_diagonal(self, drug_similarities):
        for name, matrix in drug_similarities.items():
            assert np.allclose(matrix, matrix.T), name
            assert np.allclose(np.diag(matrix), 1.0), name
            assert (matrix >= 0).all(), name

    def test_disease_builders(self, disease_similarities):
        for name, matrix in disease_similarities.items():
            assert np.allclose(matrix, matrix.T), name
            assert (matrix >= -1e-9).all(), name

    def test_informative_sources_rank_higher(self, universe,
                                             drug_similarities):
        qualities = {name: similarity_quality(S, universe.drug_latents)
                     for name, S in drug_similarities.items()}
        # chemical was generated with the least noise.
        assert qualities["chemical"] == max(qualities.values())


class TestMetrics:
    def test_auc_perfect(self):
        labels = np.array([0, 0, 1, 1])
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        assert auc_roc(labels, scores) == 1.0

    def test_auc_inverted(self):
        labels = np.array([0, 0, 1, 1])
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        assert auc_roc(labels, scores) == 0.0

    def test_auc_random_is_half(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 2, size=2000)
        scores = rng.random(2000)
        assert abs(auc_roc(labels, scores) - 0.5) < 0.05

    def test_auc_ties(self):
        labels = np.array([0, 1, 0, 1])
        scores = np.array([0.5, 0.5, 0.5, 0.5])
        assert auc_roc(labels, scores) == pytest.approx(0.5)

    def test_auc_degenerate(self):
        assert np.isnan(auc_roc(np.array([1, 1]), np.array([0.1, 0.2])))

    def test_average_precision_perfect(self):
        labels = np.array([0, 1, 1])
        scores = np.array([0.1, 0.9, 0.8])
        assert average_precision(labels, scores) == 1.0

    def test_precision_at_k(self):
        labels = np.array([1, 0, 1, 0])
        scores = np.array([0.9, 0.8, 0.7, 0.1])
        assert precision_at_k(labels, scores, 2) == 0.5
        assert precision_at_k(labels, scores, 3) == pytest.approx(2 / 3)

    def test_recall_at_k(self):
        labels = np.array([1, 0, 1, 0])
        scores = np.array([0.9, 0.8, 0.7, 0.1])
        assert recall_at_k(labels, scores, 3) == 1.0
        assert recall_at_k(labels, scores, 1) == 0.5


class TestHoldout:
    def test_holdout_removes_positives(self, universe):
        rng = np.random.default_rng(1)
        truth = universe.association_matrix
        training, mask = holdout_mask(truth, 0.2, rng)
        removed = int(truth.sum() - training.sum())
        assert removed == max(1, int(truth.sum() * 0.2))
        # Every removed positive is in the mask.
        assert (mask & (truth == 1) & (training == 0)).sum() == removed

    def test_mask_contains_negatives(self, universe):
        rng = np.random.default_rng(1)
        truth = universe.association_matrix
        _, mask = holdout_mask(truth, 0.2, rng)
        assert (mask & (truth == 0)).sum() > 0

    def test_evaluate_masked_shape(self, universe):
        rng = np.random.default_rng(2)
        truth = universe.association_matrix
        training, mask = holdout_mask(truth, 0.2, rng)
        scores = rng.random(truth.shape)
        evaluation = evaluate_masked(truth, scores, mask)
        assert 0.0 <= evaluation.auc <= 1.0
        assert evaluation.held_out_positives > 0
