"""Tests for HMAC-based graph integrity."""

import networkx as nx
import pytest

from repro.core.errors import IntegrityError
from repro.crypto.integrity import GraphAuthenticator
from repro.crypto.symmetric import generate_key


def patient_graph():
    graph = nx.DiGraph()
    graph.add_node("patient", kind="Patient", mrn="123")
    graph.add_node("enc1", kind="Encounter", date="2024-01-01")
    graph.add_node("obs1", kind="Observation", value=7.2)
    graph.add_edge("patient", "enc1", relation="has")
    graph.add_edge("enc1", "obs1", relation="produced")
    return graph


@pytest.fixture
def authenticator():
    return GraphAuthenticator(generate_key(9))


class TestGraphIntegrity:
    def test_authenticate_verify_roundtrip(self, authenticator):
        graph = patient_graph()
        tags = authenticator.authenticate(graph)
        assert authenticator.verify(graph, tags)

    def test_node_attr_tamper_detected(self, authenticator):
        graph = patient_graph()
        tags = authenticator.authenticate(graph)
        graph.nodes["obs1"]["value"] = 5.0
        assert not authenticator.verify(graph, tags)

    def test_edge_attr_tamper_detected(self, authenticator):
        graph = patient_graph()
        tags = authenticator.authenticate(graph)
        graph.edges["patient", "enc1"]["relation"] = "faked"
        assert not authenticator.verify(graph, tags)

    def test_added_node_detected(self, authenticator):
        graph = patient_graph()
        tags = authenticator.authenticate(graph)
        graph.add_node("mallory", kind="Observation")
        assert not authenticator.verify(graph, tags)

    def test_removed_edge_detected(self, authenticator):
        graph = patient_graph()
        tags = authenticator.authenticate(graph)
        graph.remove_edge("enc1", "obs1")
        assert not authenticator.verify(graph, tags)

    def test_wrong_key_fails(self, authenticator):
        graph = patient_graph()
        tags = authenticator.authenticate(graph)
        other = GraphAuthenticator(generate_key(10))
        assert not other.verify(graph, tags)

    def test_require_raises(self, authenticator):
        graph = patient_graph()
        tags = authenticator.authenticate(graph)
        graph.nodes["obs1"]["value"] = 1.0
        with pytest.raises(IntegrityError):
            authenticator.require(graph, tags)

    def test_short_key_rejected(self):
        with pytest.raises(ValueError):
            GraphAuthenticator(b"short")


class TestSubgraphSharing:
    def test_valid_subgraph_verifies(self, authenticator):
        graph = patient_graph()
        tags = authenticator.authenticate(graph)
        sub = graph.subgraph(["patient", "enc1"]).copy()
        assert authenticator.verify_subgraph(sub, tags)

    def test_tampered_subgraph_fails(self, authenticator):
        graph = patient_graph()
        tags = authenticator.authenticate(graph)
        sub = graph.subgraph(["patient", "enc1"]).copy()
        sub.nodes["patient"]["mrn"] = "999"
        assert not authenticator.verify_subgraph(sub, tags)

    def test_foreign_node_fails(self, authenticator):
        graph = patient_graph()
        tags = authenticator.authenticate(graph)
        sub = nx.DiGraph()
        sub.add_node("unknown", kind="X")
        assert not authenticator.verify_subgraph(sub, tags)
