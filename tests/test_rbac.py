"""Tests for the RBAC model and decision engine."""

import pytest

from repro.core.errors import (
    AlreadyExistsError,
    AuthorizationError,
    NotFoundError,
)
from repro.rbac.engine import RbacEngine
from repro.rbac.model import Action, Permission, Scope, ScopeKind


@pytest.fixture
def world():
    """Tenant with org, two environments, a study group, and two users."""
    engine = RbacEngine()
    tenant = engine.create_tenant("acme")
    org = engine.create_organization(tenant.tenant_id, "research")
    dev = engine.create_environment(org.org_id, "dev")
    prod = engine.create_environment(org.org_id, "prod", kind="production")
    group = engine.create_group(tenant.tenant_id, "diabetes-study")
    alice = engine.register_user(tenant.tenant_id, "alice")
    bob = engine.register_user(tenant.tenant_id, "bob")
    return engine, tenant, org, dev, prod, group, alice, bob


class TestEntities:
    def test_tenant_tracks_orgs_and_users(self, world):
        engine, tenant, org, *_ = world
        assert org.org_id in tenant.organization_ids
        assert len(tenant.user_ids) == 2

    def test_environment_belongs_to_org(self, world):
        engine, _, org, dev, *_ = world
        assert dev.env_id in org.environment_ids

    def test_duplicate_role_rejected(self, world):
        engine = world[0]
        engine.define_role("r", [])
        with pytest.raises(AlreadyExistsError):
            engine.define_role("r", [])

    def test_unknown_tenant(self):
        engine = RbacEngine()
        with pytest.raises(NotFoundError):
            engine.create_organization("tenant-none", "x")


class TestDecisions:
    def test_org_scoped_permission(self, world):
        engine, _, org, dev, _, _, alice, _ = world
        scope = Scope(ScopeKind.ORGANIZATION, org.org_id)
        engine.define_role("reader", [Permission(Action.READ, "data", scope)])
        engine.bind_role(alice.user_id, org.org_id, dev.env_id, "reader")
        assert engine.check(alice.user_id, Action.READ, "data", scope,
                            org.org_id, dev.env_id).allowed

    def test_action_mismatch_denied(self, world):
        engine, _, org, dev, _, _, alice, _ = world
        scope = Scope(ScopeKind.ORGANIZATION, org.org_id)
        engine.define_role("reader", [Permission(Action.READ, "data", scope)])
        engine.bind_role(alice.user_id, org.org_id, dev.env_id, "reader")
        assert not engine.check(alice.user_id, Action.WRITE, "data", scope,
                                org.org_id, dev.env_id).allowed

    def test_resource_type_mismatch_denied(self, world):
        engine, _, org, dev, _, _, alice, _ = world
        scope = Scope(ScopeKind.ORGANIZATION, org.org_id)
        engine.define_role("reader", [Permission(Action.READ, "data", scope)])
        engine.bind_role(alice.user_id, org.org_id, dev.env_id, "reader")
        assert not engine.check(alice.user_id, Action.READ, "models", scope,
                                org.org_id, dev.env_id).allowed

    def test_roles_are_per_environment(self, world):
        engine, _, org, dev, prod, _, alice, _ = world
        scope = Scope(ScopeKind.ORGANIZATION, org.org_id)
        engine.define_role("reader", [Permission(Action.READ, "data", scope)])
        engine.bind_role(alice.user_id, org.org_id, dev.env_id, "reader")
        assert not engine.check(alice.user_id, Action.READ, "data", scope,
                                org.org_id, prod.env_id).allowed

    def test_tenant_scope_covers_org(self, world):
        engine, tenant, org, dev, _, _, alice, _ = world
        tenant_scope = Scope(ScopeKind.TENANT, tenant.tenant_id)
        engine.define_role("admin",
                           [Permission(Action.WRITE, "data", tenant_scope)])
        engine.bind_role(alice.user_id, org.org_id, dev.env_id, "admin")
        org_scope = Scope(ScopeKind.ORGANIZATION, org.org_id)
        assert engine.check(alice.user_id, Action.WRITE, "data", org_scope,
                            org.org_id, dev.env_id).allowed

    def test_org_scope_does_not_cover_tenant(self, world):
        engine, tenant, org, dev, _, _, alice, _ = world
        org_scope = Scope(ScopeKind.ORGANIZATION, org.org_id)
        engine.define_role("local",
                           [Permission(Action.WRITE, "data", org_scope)])
        engine.bind_role(alice.user_id, org.org_id, dev.env_id, "local")
        tenant_scope = Scope(ScopeKind.TENANT, tenant.tenant_id)
        assert not engine.check(alice.user_id, Action.WRITE, "data",
                                tenant_scope, org.org_id, dev.env_id).allowed

    def test_group_phi_requires_membership(self, world):
        engine, tenant, org, dev, _, group, alice, _ = world
        tenant_scope = Scope(ScopeKind.TENANT, tenant.tenant_id)
        engine.define_role("phi-reader",
                           [Permission(Action.READ, "phi", tenant_scope)])
        engine.bind_role(alice.user_id, org.org_id, dev.env_id, "phi-reader")
        group_scope = Scope(ScopeKind.GROUP, group.group_id)
        # Role alone is not enough for a study group's PHI...
        assert not engine.check(alice.user_id, Action.READ, "phi",
                                group_scope, org.org_id, dev.env_id).allowed
        # ...membership plus the role is.
        engine.add_group_member(group.group_id, alice.user_id)
        assert engine.check(alice.user_id, Action.READ, "phi", group_scope,
                            org.org_id, dev.env_id).allowed

    def test_require_raises_on_denial(self, world):
        engine, _, org, dev, _, _, _, bob = world
        scope = Scope(ScopeKind.ORGANIZATION, org.org_id)
        with pytest.raises(AuthorizationError):
            engine.require(bob.user_id, Action.READ, "data", scope,
                           org.org_id, dev.env_id)

    def test_decision_log_grows(self, world):
        engine, _, org, dev, _, _, alice, _ = world
        scope = Scope(ScopeKind.ORGANIZATION, org.org_id)
        engine.check(alice.user_id, Action.READ, "data", scope,
                     org.org_id, dev.env_id)
        assert len(engine.decision_log()) == 1

    def test_granted_by_records_role(self, world):
        engine, _, org, dev, _, _, alice, _ = world
        scope = Scope(ScopeKind.ORGANIZATION, org.org_id)
        engine.define_role("reader", [Permission(Action.READ, "data", scope)])
        engine.bind_role(alice.user_id, org.org_id, dev.env_id, "reader")
        decision = engine.check(alice.user_id, Action.READ, "data", scope,
                                org.org_id, dev.env_id)
        assert decision.granted_by == "reader"

    def test_bind_role_validates_env(self, world):
        engine, _, org, _, _, _, alice, _ = world
        engine.define_role("r", [])
        with pytest.raises(NotFoundError):
            engine.bind_role(alice.user_id, org.org_id, "env-none", "r")

    def test_bind_unknown_role(self, world):
        engine, _, org, dev, _, _, alice, _ = world
        with pytest.raises(NotFoundError):
            engine.bind_role(alice.user_id, org.org_id, dev.env_id, "ghost")

    def test_unbind_role(self, world):
        engine, _, org, dev, _, _, alice, _ = world
        scope = Scope(ScopeKind.ORGANIZATION, org.org_id)
        engine.define_role("reader", [Permission(Action.READ, "data", scope)])
        engine.bind_role(alice.user_id, org.org_id, dev.env_id, "reader")
        alice.unbind_role(org.org_id, dev.env_id, "reader")
        assert not engine.check(alice.user_id, Action.READ, "data", scope,
                                org.org_id, dev.env_id).allowed
