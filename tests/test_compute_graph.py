"""Unit: task graphs — construction, implicit edges, validation."""

import pytest

from repro.compute import TaskGraph
from repro.core.errors import ConfigurationError


def noop(inputs):
    return None


class TestConstruction:
    def test_add_task_and_data(self):
        g = TaskGraph("g")
        g.add_data("x", 41, nbytes=10)
        spec = g.add_task("t", noop, inputs=("x",), cost_s=0.5)
        assert spec.output_key == "t"
        assert g.describe() == {"name": "g", "tasks": 1, "data_objects": 1,
                                "total_cost_s": 0.5}

    def test_duplicate_task_id_rejected(self):
        g = TaskGraph("g")
        g.add_task("t", noop)
        with pytest.raises(ConfigurationError, match="already added"):
            g.add_task("t", noop)

    def test_duplicate_data_key_rejected(self):
        g = TaskGraph("g")
        g.add_data("x", 1)
        with pytest.raises(ConfigurationError, match="already registered"):
            g.add_data("x", 2)

    def test_output_colliding_with_data_rejected(self):
        g = TaskGraph("g")
        g.add_data("x", 1)
        with pytest.raises(ConfigurationError, match="collides"):
            g.add_task("t", noop, output="x")

    def test_negative_cost_rejected(self):
        g = TaskGraph("g")
        with pytest.raises(ConfigurationError, match="negative cost"):
            g.add_task("t", noop, cost_s=-1.0)

    def test_duplicate_output_key_rejected(self):
        g = TaskGraph("g")
        g.add_task("a", noop, output="o")
        g.add_task("b", noop, output="o")
        with pytest.raises(ConfigurationError, match="produced by both"):
            g.validate()


class TestEdges:
    def test_input_key_adds_implicit_dependency(self):
        g = TaskGraph("g")
        g.add_task("producer", noop, output="obj")
        g.add_task("consumer", noop, inputs=("obj",))
        assert g.dependencies("consumer") == ("producer",)

    def test_explicit_and_implicit_deps_merge_without_dupes(self):
        g = TaskGraph("g")
        g.add_task("a", noop)
        g.add_task("b", noop, deps=("a",), inputs=("a",))
        assert g.dependencies("b") == ("a",)

    def test_validate_returns_topological_order(self):
        g = TaskGraph("g")
        g.add_task("z-last", noop, inputs=("mid",))
        g.add_task("a-first", noop, output="raw")
        g.add_task("m-mid", noop, inputs=("raw",), output="mid")
        assert g.validate() == ["a-first", "m-mid", "z-last"]


class TestValidation:
    def test_unknown_dep_rejected(self):
        g = TaskGraph("g")
        g.add_task("t", noop, deps=("ghost",))
        with pytest.raises(ConfigurationError, match="unknown task 'ghost'"):
            g.validate()

    def test_unknown_input_rejected(self):
        g = TaskGraph("g")
        g.add_task("t", noop, inputs=("nowhere",))
        with pytest.raises(ConfigurationError,
                           match="no task produces and no graph data"):
            g.validate()

    def test_cycle_detected_with_typed_error_naming_tasks(self):
        g = TaskGraph("loopy")
        g.add_task("a", noop, deps=("c",))
        g.add_task("b", noop, deps=("a",))
        g.add_task("c", noop, deps=("b",))
        with pytest.raises(ConfigurationError,
                           match=r"cycle through \['a', 'b', 'c'\]"):
            g.validate()

    def test_self_cycle_detected(self):
        g = TaskGraph("g")
        g.add_task("a", noop, deps=("a",))
        with pytest.raises(ConfigurationError, match="cycle"):
            g.validate()

    def test_empty_graph_validates(self):
        assert TaskGraph("empty").validate() == []
