"""Tests for the external AI service registry."""

import pytest

from repro.core.errors import ConfigurationError, ServiceUnavailableError
from repro.services.registry import ServiceRegistry, SimulatedAiService


def make_registry():
    registry = ServiceRegistry()
    registry.register(SimulatedAiService(
        "ibm-nlu", "text-extraction", mean_latency_s=0.05,
        availability=0.99, accuracy=0.95, seed=1))
    registry.register(SimulatedAiService(
        "acme-nlu", "text-extraction", mean_latency_s=0.02,
        availability=0.95, accuracy=0.70, seed=2))
    registry.register(SimulatedAiService(
        "flaky-nlu", "text-extraction", mean_latency_s=0.01,
        availability=0.40, accuracy=0.55, seed=3))
    registry.register(SimulatedAiService(
        "vision-1", "visual-recognition", mean_latency_s=0.1,
        availability=0.99, accuracy=0.9, seed=4))
    return registry


TEST_SET = [(f"doc-{i}", f"fact-{i}") for i in range(40)]


class TestRegistry:
    def test_services_for_capability(self):
        registry = make_registry()
        assert registry.services_for("text-extraction") == [
            "acme-nlu", "flaky-nlu", "ibm-nlu"]
        assert registry.services_for("visual-recognition") == ["vision-1"]

    def test_duplicate_registration_rejected(self):
        registry = make_registry()
        with pytest.raises(ConfigurationError):
            registry.register(SimulatedAiService("ibm-nlu", "x", 0.1, 1, 1))

    def test_invoke_advances_clock(self):
        registry = make_registry()
        registry.invoke("ibm-nlu", "hello")
        assert registry.clock.now > 0

    def test_unavailable_service_raises_and_recorded(self):
        registry = make_registry()
        failures = 0
        for _ in range(30):
            try:
                registry.invoke("flaky-nlu", "x")
            except ServiceUnavailableError:
                failures += 1
        assert failures > 5
        card = registry.scorecard("flaky-nlu")
        assert card.failures == failures
        assert card.measured_availability < 0.9


class TestAccuracyTests:
    def test_accuracy_measured(self):
        registry = make_registry()
        good = registry.run_accuracy_test("ibm-nlu", TEST_SET)
        bad = registry.run_accuracy_test("acme-nlu", TEST_SET)
        assert good > bad
        assert registry.scorecard("ibm-nlu").measured_accuracy == good

    def test_empty_test_set_rejected(self):
        registry = make_registry()
        with pytest.raises(ConfigurationError):
            registry.run_accuracy_test("ibm-nlu", [])


class TestFeedback:
    def test_feedback_with_caveat(self):
        registry = make_registry()
        registry.record_feedback("ibm-nlu", 5)
        registry.record_feedback("ibm-nlu", 4)
        scores, caveat = registry.feedback_for("ibm-nlu")
        assert scores == [5, 4]
        assert "caution" in caveat

    def test_invalid_score(self):
        registry = make_registry()
        with pytest.raises(ConfigurationError):
            registry.record_feedback("ibm-nlu", 6)

    def test_mean_feedback(self):
        registry = make_registry()
        registry.record_feedback("ibm-nlu", 5)
        registry.record_feedback("ibm-nlu", 3)
        assert registry.scorecard("ibm-nlu").mean_feedback == 4.0


class TestSelection:
    def test_best_service_prefers_accurate_available(self):
        registry = make_registry()
        for name in registry.services_for("text-extraction"):
            registry.run_accuracy_test(name, TEST_SET)
        best = registry.best_service("text-extraction")
        assert best == "ibm-nlu"

    def test_accuracy_weight_zero_prefers_fast(self):
        registry = make_registry()
        for name in ("ibm-nlu", "acme-nlu"):
            registry.run_accuracy_test(name, TEST_SET)
        best = registry.best_service("text-extraction",
                                     latency_weight=1.0,
                                     availability_weight=0.0,
                                     accuracy_weight=0.0)
        assert best in ("acme-nlu", "flaky-nlu")  # the fast ones

    def test_no_services_for_capability(self):
        registry = make_registry()
        with pytest.raises(ConfigurationError):
            registry.best_service("speech")

    def test_bad_service_config(self):
        with pytest.raises(ConfigurationError):
            SimulatedAiService("x", "y", 0.1, availability=1.5, accuracy=0.5)
