"""Tests for the MMPP clinical feed: determinism, shape, burstiness."""

import pytest

from repro.knowledge.synthetic import generate_universe
from repro.streaming import FeedGenerator
from repro.streaming.feed import PRIORITY_OF


def _feed(seed=0, **kwargs):
    kwargs.setdefault("patient_ids", [f"p-{i}" for i in range(8)])
    kwargs.setdefault("drug_ids", ["D1", "D2"])
    kwargs.setdefault("disease_ids", ["Z1", "Z2"])
    return FeedGenerator(seed=seed, **kwargs)


class TestDeterminism:
    def test_same_seed_same_feed(self):
        a = _feed(seed=4).generate(60.0)
        b = _feed(seed=4).generate(60.0)
        assert [e.describe() for e in a] == [e.describe() for e in b]
        assert [e.payload for e in a] == [e.payload for e in b]

    def test_different_seed_differs(self):
        a = _feed(seed=1).generate(60.0)
        b = _feed(seed=2).generate(60.0)
        assert [e.event_id for e in a] != [e.event_id for e in b] or \
            [e.arrival_s for e in a] != [e.arrival_s for e in b]


class TestShape:
    def test_arrivals_monotonic_and_bounded(self):
        events = _feed(seed=3).generate(120.0, start_s=10.0)
        times = [e.arrival_s for e in events]
        assert times == sorted(times)
        assert all(10.0 <= t < 130.0 for t in times)

    def test_event_ids_unique_and_sequential(self):
        events = _feed(seed=3).generate(60.0)
        ids = [e.event_id for e in events]
        assert len(set(ids)) == len(ids)
        assert ids[0] == "evt-000001"

    def test_priorities_match_class_table(self):
        for event in _feed(seed=5).generate(120.0):
            assert event.priority == PRIORITY_OF[event.event_class]

    def test_payload_shapes(self):
        for event in _feed(seed=6).generate(200.0):
            if event.event_class == "lab.hba1c":
                assert event.payload["code"] == "4548-4"
                assert isinstance(event.payload["value"], float)
            elif event.event_class == "drug.update":
                mutation = event.payload["mutation"]
                assert event.payload["entity_id"] in ("D1", "D2")
                assert all(0 <= b < 128 for b in mutation["flip_bits"])
            elif event.event_class == "disease.update":
                assert event.payload["entity_id"] in ("Z1", "Z2")
                assert len(event.payload["mutation"]["phenotype_delta"]) == 12

    def test_kb_classes_dropped_without_entities(self):
        feed = FeedGenerator(seed=0, patient_ids=["p"])
        classes = {e.event_class for e in feed.generate(300.0)}
        assert "drug.update" not in classes
        assert "disease.update" not in classes

    def test_rejects_empty_patients(self):
        with pytest.raises(ValueError):
            FeedGenerator(seed=0, patient_ids=[])


class TestBurstiness:
    def test_mmpp_is_burstier_than_poisson(self):
        """Squared CV of interarrivals > 1 marks the modulated process."""
        events = _feed(seed=9, rate_calm_hz=1.0, rate_burst_hz=30.0,
                       dwell_calm_s=40.0, dwell_burst_s=10.0).generate(2000.0)
        gaps = [b.arrival_s - a.arrival_s
                for a, b in zip(events, events[1:])]
        mean = sum(gaps) / len(gaps)
        var = sum((g - mean) ** 2 for g in gaps) / len(gaps)
        assert var / mean ** 2 > 1.3


class TestForUniverse:
    def test_targets_real_entities(self):
        universe = generate_universe(n_drugs=10, n_diseases=6, seed=1)
        feed = FeedGenerator.for_universe(universe, seed=2, n_patients=4)
        drug_ids = {d.drug_id for d in universe.drugs}
        disease_ids = {d.disease_id for d in universe.diseases}
        events = feed.generate(400.0)
        assert any(e.event_class == "drug.update" for e in events)
        for event in events:
            if event.event_class == "drug.update":
                assert event.payload["entity_id"] in drug_ids
            elif event.event_class == "disease.update":
                assert event.payload["entity_id"] in disease_ids
                assert (len(event.payload["mutation"]["phenotype_delta"])
                        == universe.diseases[0].phenotype.size)
