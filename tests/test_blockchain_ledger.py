"""Tests for ledger structures: transactions, blocks, chain verification."""

import dataclasses

import pytest

from repro.blockchain.ledger import (
    GENESIS_HASH,
    Ledger,
    Transaction,
    build_block,
)
from repro.core.errors import LedgerError


def make_tx(i: int) -> Transaction:
    return Transaction(tx_id=f"tx-{i}", chaincode="provenance",
                       method="record_event",
                       args={"handle": f"h{i}", "event": "received"},
                       submitter="svc", timestamp=float(i))


class TestBlocks:
    def test_build_block(self):
        block = build_block(0, GENESIS_HASH, 1.0, [make_tx(1), make_tx(2)])
        assert block.height == 0
        assert len(block.transactions) == 2

    def test_empty_block_rejected(self):
        with pytest.raises(LedgerError):
            build_block(0, GENESIS_HASH, 1.0, [])

    def test_payload_canonical(self):
        assert make_tx(1).payload() == make_tx(1).payload()
        assert make_tx(1).payload() != make_tx(2).payload()


class TestLedger:
    def _chain(self, blocks=3, per_block=2):
        ledger = Ledger()
        counter = 0
        for _ in range(blocks):
            txs = []
            for _ in range(per_block):
                counter += 1
                txs.append(make_tx(counter))
            block = build_block(ledger.height, ledger.tip_hash,
                                float(counter), txs)
            ledger.append(block)
        return ledger

    def test_append_and_verify(self):
        ledger = self._chain()
        assert ledger.height == 3
        assert ledger.verify()

    def test_wrong_height_rejected(self):
        ledger = self._chain(1)
        block = build_block(5, ledger.tip_hash, 9.0, [make_tx(99)])
        with pytest.raises(LedgerError):
            ledger.append(block)

    def test_wrong_link_rejected(self):
        ledger = self._chain(1)
        block = build_block(1, "ff" * 32, 9.0, [make_tx(99)])
        with pytest.raises(LedgerError):
            ledger.append(block)

    def test_bad_merkle_root_rejected(self):
        ledger = self._chain(1)
        good = build_block(1, ledger.tip_hash, 9.0, [make_tx(99)])
        bad = dataclasses.replace(good, merkle_root="00" * 32)
        with pytest.raises(LedgerError):
            ledger.append(bad)

    def test_tampered_transaction_detected(self):
        ledger = self._chain()
        block = ledger.block(1)
        tampered_tx = dataclasses.replace(
            block.transactions[0],
            args={"handle": "FORGED", "event": "received"})
        tampered_block = dataclasses.replace(
            block, transactions=(tampered_tx,) + block.transactions[1:])
        ledger._blocks[1] = tampered_block
        with pytest.raises(LedgerError):
            ledger.verify()

    def test_removed_block_detected(self):
        ledger = self._chain()
        del ledger._blocks[1]
        with pytest.raises(LedgerError):
            ledger.verify()

    def test_find_transaction(self):
        ledger = self._chain()
        assert ledger.find_transaction("tx-3") is not None
        assert ledger.find_transaction("tx-999") is None

    def test_transactions_flattened(self):
        ledger = self._chain(blocks=2, per_block=3)
        assert len(ledger.transactions()) == 6

    def test_block_out_of_range(self):
        with pytest.raises(LedgerError):
            self._chain(1).block(9)
