"""Integration: the export path keeps working across a zone failure.

Wires :class:`ReplicatedDataLake` behind the same ingestion + export
services the platform uses, ingests a study, kills the primary zone, and
verifies anonymized exports, full exports, and GDPR erasure all still
behave — the HA promise of Section II-B made concrete.
"""

import pytest

from repro.cloudsim.clock import SimClock
from repro.core.errors import KeyManagementError
from repro.crypto.kms import KeyManagementService
from repro.crypto.symmetric import generate_key
from repro.fhir.resources import Bundle, Observation, Patient
from repro.ingestion.export import ExportService
from repro.ingestion.pipeline import IngestionService, IngestionStatus, \
    encrypt_bundle_for_upload
from repro.ingestion.replication import ReplicatedDataLake
from repro.privacy.consent import ConsentManagementService
from repro.privacy.deidentify import Deidentifier
from repro.rbac.engine import RbacEngine
from repro.rbac.model import Action, Permission, Scope, ScopeKind


@pytest.fixture
def replicated_platform():
    clock = SimClock()
    kms = KeyManagementService("t", seed=88)
    lake = ReplicatedDataLake(kms, ["east", "west", "central"])
    consent = ConsentManagementService(clock)
    deidentifier = Deidentifier(generate_key(88))
    ingestion = IngestionService(
        datalake=lake, consent=consent, deidentifier=deidentifier,
        clock=clock, key_seed=88)
    rbac = RbacEngine()
    tenant = rbac.create_tenant("acme")
    org = rbac.create_organization(tenant.tenant_id, "org")
    env = rbac.create_environment(org.org_id, "prod")
    group = rbac.create_group(tenant.tenant_id, "study")
    analyst = rbac.register_user(tenant.tenant_id, "analyst")
    scope = Scope(ScopeKind.TENANT, tenant.tenant_id)
    rbac.define_role("exporter", [
        Permission(Action.READ, "anonymized-data", scope),
        Permission(Action.READ, "phi-data", scope)])
    rbac.bind_role(analyst.user_id, org.org_id, env.env_id, "exporter")
    rbac.add_group_member(group.group_id, analyst.user_id)
    export = ExportService(lake, consent, rbac,
                           ingestion.reidentification)

    registration = ingestion.register_client("bridge")
    for i in range(8):
        pid = f"pt-{i}"
        consent.grant(pid, group.group_id)
        bundle = Bundle(id=f"b{i}")
        bundle.add(Patient(id=pid, name={"family": f"F{i}"},
                           birthDate="1970-02-02", gender="female",
                           address={"state": "CA"}))
        bundle.add(Observation(id=f"{pid}-o", code={"text": "HbA1c"},
                               subject=f"Patient/{pid}",
                               valueQuantity={"value": 6.0}))
        job = ingestion.upload(
            "bridge", encrypt_bundle_for_upload(bundle, registration),
            group.group_id)
    ingestion.process_pending()
    return lake, export, analyst, group, org, env, ingestion


class TestExportAcrossFailover:
    def test_anonymized_export_after_primary_loss(self, replicated_platform):
        lake, export, analyst, group, org, env, _ = replicated_platform
        lake.fail_zone("east")
        result = export.export_anonymized(analyst.user_id, group.group_id,
                                          org.org_id, env.env_id)
        assert len(result.bundles) == 8
        assert result.achieved_k >= 5

    def test_full_export_after_primary_loss(self, replicated_platform):
        lake, export, analyst, group, org, env, _ = replicated_platform
        lake.fail_zone("east")
        result = export.export_full(analyst.user_id, group.group_id,
                                    org.org_id, env.env_id)
        assert {pid for pid, _ in result.records} == {f"pt-{i}"
                                                      for i in range(8)}

    def test_ingestion_continues_after_failover(self, replicated_platform):
        lake, _, _, group, _, _, ingestion = replicated_platform
        lake.fail_zone("east")
        registration = ingestion.register_client("bridge-2")
        ingestion.consent.grant("pt-new", group.group_id)
        bundle = Bundle(id="b-new").add(
            Patient(id="pt-new", name={"family": "New"},
                    birthDate="1990-01-01", gender="male"))
        job = ingestion.upload(
            "bridge-2", encrypt_bundle_for_upload(bundle, registration),
            group.group_id)
        ingestion.process_pending()
        assert ingestion.status(job.job_id)[0] is IngestionStatus.STORED

    def test_erasure_effective_across_zones(self, replicated_platform):
        lake, export, analyst, group, org, env, ingestion = \
            replicated_platform
        reference = ingestion.deidentifier.reference_id("pt-3")
        records = lake.records_for_patient(reference)
        assert records
        lake.forget_patient(reference)
        lake.fail_zone("east")  # even the surviving replicas can't serve it
        with pytest.raises(KeyManagementError):
            lake.retrieve(records[0].record_id)

    def test_consistency_maintained_throughout(self, replicated_platform):
        lake, *_ = replicated_platform
        assert lake.zones_consistent()
        lake.fail_zone("west")
        lake.heal_zone("west")
        assert lake.zones_consistent()
