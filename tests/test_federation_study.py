"""Federated study lifecycle: threshold approval on-chain, rounds, chaos."""

import numpy as np
import pytest

from repro.blockchain import standard_network
from repro.blockchain.sharding import ShardedBlockchainNetwork
from repro.cloudsim.clock import SimClock
from repro.cloudsim.faults import FaultPlan
from repro.cloudsim.monitoring import MonitoringService
from repro.cloudsim.tracing import Tracer
from repro.compute.scheduler import standard_scheduler
from repro.core.errors import EndorsementError, StudyError, ValidationError
from repro.federation import (
    COORDINATOR_ID,
    DeltStudyConfig,
    FederatedStudyService,
    build_institutions,
)
from repro.workloads.emr import generate_emr_cohort

GROUP = "grp-hba1c"
N_DRUGS = 8


def build_world(n_institutions=3, sharded=False, seed=5, n_patients=24,
                max_iterations=2):
    clock = SimClock()
    monitoring = MonitoringService(clock)
    tracer = Tracer(clock)
    cohort = generate_emr_cohort(n_patients=n_patients, n_drugs=N_DRUGS,
                                 n_lowering=2, seed=seed)
    institutions = build_institutions(n_institutions, clock, GROUP,
                                      patients=cohort.patients, seed=seed)
    if sharded:
        network = ShardedBlockchainNetwork(2, seed=seed, clock=clock,
                                           monitoring=monitoring)
    else:
        network = standard_network(seed=seed, clock=clock,
                                   monitoring=monitoring)
    network.tracer = tracer
    scheduler = standard_scheduler(clock=clock, monitoring=monitoring,
                                   tracer=tracer)
    service = FederatedStudyService(
        clock=clock, network=network, scheduler=scheduler,
        institutions=institutions, monitoring=monitoring, tracer=tracer,
        seed=seed,
        delt_config=DeltStudyConfig(n_drugs=N_DRUGS,
                                    max_iterations=max_iterations))
    return service, institutions, network, tracer


def propose(service, threshold=2, participants=None):
    participants = participants or ["inst-00", "inst-01", "inst-02"]
    opened = service.propose(
        tenant_id="tenant-lab", researcher="user-researcher",
        analysis="delt", group_id=GROUP, participants=participants,
        threshold=threshold)
    return opened["study_id"]


class TestLifecycle:
    def test_propose_lands_on_ledger(self):
        service, *_ = build_world()
        study_id = propose(service)
        record = service.ledger_status(study_id)
        assert record["state"] == "proposed"
        assert record["threshold"] == 2
        assert record["participants"] == ["inst-00", "inst-01", "inst-02"]

    def test_unknown_participant_rejected(self):
        service, *_ = build_world()
        with pytest.raises(ValidationError, match="unknown institutions"):
            propose(service, participants=["inst-00", "inst-99"])

    def test_below_threshold_stays_proposed(self):
        service, *_ = build_world()
        study_id = propose(service, threshold=2)
        assert service.approve(study_id, "inst-00") == "proposed"

    def test_threshold_flips_to_approved(self):
        service, *_ = build_world()
        study_id = propose(service, threshold=2)
        service.approve(study_id, "inst-00")
        assert service.approve(study_id, "inst-01") == "approved"

    def test_duplicate_approval_counts_once(self):
        service, *_ = build_world()
        study_id = propose(service, threshold=2)
        service.approve(study_id, "inst-00")
        state = service.approve(study_id, "inst-00")
        assert state == "proposed"
        assert len(service.ledger_status(study_id)["approvals"]) == 1

    def test_deny_closes_the_study(self):
        service, *_ = build_world()
        study_id = propose(service)
        assert service.deny(study_id, "inst-01") == "denied"
        with pytest.raises(StudyError, match="denied"):
            service.approve(study_id, "inst-00")
        with pytest.raises(StudyError, match="cannot run"):
            service.run(study_id)

    def test_non_participant_decisions_rejected(self):
        service, *_ = build_world(n_institutions=4)
        study_id = propose(service, participants=["inst-00", "inst-01"])
        with pytest.raises(StudyError, match="not a participant"):
            service.approve(study_id, "inst-03")
        with pytest.raises(StudyError, match="not a participant"):
            service.deny(study_id, "inst-03")

    def test_unregistered_study_rejected(self):
        service, *_ = build_world()
        with pytest.raises(StudyError):
            service.status("study-999999")
        with pytest.raises(StudyError):
            service.run("study-999999")

    def test_status_merges_ledger_and_run_state(self):
        service, *_ = build_world()
        study_id = propose(service, threshold=1)
        service.approve(study_id, "inst-02")
        status = service.status(study_id)
        assert status["state"] == "approved"
        assert status["approvals"] == ["inst-02"]
        assert status["rounds"] == 0
        assert status["job_ids"] == []


class TestThresholdOnChain:
    def test_run_refused_before_threshold(self):
        service, *_ = build_world()
        study_id = propose(service, threshold=3)
        service.approve(study_id, "inst-00")
        service.approve(study_id, "inst-01")
        with pytest.raises(StudyError, match="2 of 3 approvals"):
            service.run(study_id)

    def test_commitment_refused_before_approval(self):
        """The chaincode itself refuses pre-approval commitments.

        A commitment transaction submitted while the study is merely
        PROPOSED fails endorsement simulation — nothing lands on the
        ledger even when the coordinator misbehaves and submits one.
        """
        service, _, network, _ = build_world()
        study_id = propose(service, threshold=2)
        service.approve(study_id, "inst-00")  # one short of threshold
        with pytest.raises(EndorsementError):
            network.invoke(COORDINATOR_ID, "study", "record_commitment",
                           study_id=study_id, round_tag="r0",
                           institution="inst-00", commitment="deadbeef",
                           committed_at=0.0)
        assert service.ledger_commitments(study_id) == {}

    def test_commitment_accepted_after_threshold(self):
        service, _, network, _ = build_world()
        study_id = propose(service, threshold=2)
        service.approve(study_id, "inst-00")
        service.approve(study_id, "inst-01")
        network.invoke(COORDINATOR_ID, "study", "record_commitment",
                       study_id=study_id, round_tag="r0",
                       institution="inst-00", commitment="deadbeef",
                       committed_at=0.0)
        commits = service.ledger_commitments(study_id)
        assert [c["commitment"] for c in commits.values()] == ["deadbeef"]

    def test_commitment_from_non_participant_refused(self):
        service, _, network, _ = build_world(n_institutions=4)
        study_id = propose(service, threshold=1,
                           participants=["inst-00", "inst-01"])
        service.approve(study_id, "inst-00")
        with pytest.raises(EndorsementError):
            network.invoke(COORDINATOR_ID, "study", "record_commitment",
                           study_id=study_id, round_tag="r0",
                           institution="inst-03", commitment="deadbeef",
                           committed_at=0.0)


class TestRunEndToEnd:
    def test_delt_study_completes(self):
        service, institutions, _, tracer = build_world()
        study_id = propose(service, threshold=2)
        service.approve(study_id, "inst-00")
        service.approve(study_id, "inst-01")
        summary = service.run(study_id)

        assert summary["state"] == "complete"
        assert service.ledger_status(study_id)["state"] == "complete"
        # Two rounds (partials + loss) per DELT iteration.
        assert summary["rounds"] % 2 == 0 and summary["rounds"] >= 2
        assert len(summary["job_ids"]) == summary["rounds"]
        effects = service.result_object(study_id).effects
        assert effects.shape == (N_DRUGS,)

        # Every round leaves one endorsed commitment per institution.
        commits = service.ledger_commitments(study_id)
        assert len(commits) == summary["rounds"] * 3

        # Nothing but masked partials ever left any institution.
        for institution in institutions:
            assert institution.egress_log, "no egress recorded"
            assert {r.kind for r in institution.egress_log} == {
                "masked-partial"}

        # The run is fully traced and attribution closes at 100%.
        path = tracer.critical_path(summary["trace_id"])
        assert "federation" in path.by_layer()
        assert sum(path.layer_percentages().values()) == pytest.approx(100.0)

    def test_sharded_write_path(self):
        service, _, network, _ = build_world(sharded=True)
        study_id = propose(service, threshold=2)
        service.approve(study_id, "inst-00")
        service.approve(study_id, "inst-01")
        summary = service.run(study_id)
        assert summary["state"] == "complete"
        commits = service.ledger_commitments(study_id)
        assert len(commits) == summary["rounds"] * 3
        # The whole study routes to one shard by its id.
        channel = network.channel_for(study_id)
        assert channel.query("study", "status",
                             study_id=study_id)["state"] == "complete"

    def test_chaos_link_drop_is_retried(self):
        service, institutions, _, _ = build_world()
        plan = FaultPlan(seed=3, clock=service.clock)
        plan.drop_link("inst-00", "coordinator", 1.0,
                       start_s=0.0, end_s=service.clock.now + 1.0)
        institutions[0].fault_plan = plan
        study_id = propose(service, threshold=2)
        service.approve(study_id, "inst-00")
        service.approve(study_id, "inst-01")
        summary = service.run(study_id)
        assert summary["state"] == "complete"
        assert summary["upload_retries"] > 0
        assert plan.counters.get("link_drop", 0) > 0

    def test_tenant_bookkeeping(self):
        service, *_ = build_world()
        study_id = propose(service)
        assert service.study_tenant(study_id) == "tenant-lab"
        assert service.study_tenant("study-999999") is None
        assert service.studies_for_tenant("tenant-lab") == [study_id]
        assert service.studies_for_tenant("tenant-other") == []
