"""Tests for the synthetic universe, KB interfaces, remote/caching, NLP."""

import numpy as np
import pytest

from repro.cloudsim.clock import SimClock
from repro.core.errors import NotFoundError
from repro.knowledge.bases import (
    DisGeNetLike,
    DrugBankLike,
    PubChemLike,
    PubMedLite,
    SiderLike,
    WordNetLite,
)
from repro.knowledge.remote import CachedKnowledgeBase, RemoteKnowledgeBase
from repro.knowledge.synthetic import generate_universe
from repro.knowledge.textmining import FactExtractor


class TestUniverse:
    def test_deterministic(self):
        u1 = generate_universe(n_drugs=20, n_diseases=15, seed=5)
        u2 = generate_universe(n_drugs=20, n_diseases=15, seed=5)
        assert [d.name for d in u1.drugs] == [d.name for d in u2.drugs]
        assert np.array_equal(u1.association_matrix, u2.association_matrix)

    def test_seed_changes_world(self):
        u1 = generate_universe(n_drugs=20, n_diseases=15, seed=5)
        u2 = generate_universe(n_drugs=20, n_diseases=15, seed=6)
        assert not np.array_equal(u1.association_matrix,
                                  u2.association_matrix)

    def test_association_density(self, universe):
        density = universe.association_matrix.mean()
        assert 0.03 < density < 0.10

    def test_names_unique(self, universe):
        names = [d.name for d in universe.drugs] + [d.name
                                                    for d in universe.diseases]
        assert len(names) == len(set(names))

    def test_fingerprints_binary(self, universe):
        for drug in universe.drugs[:5]:
            assert set(np.unique(drug.fingerprint)) <= {0, 1}

    def test_indices(self, universe):
        assert universe.drug_index(universe.drugs[3].drug_id) == 3
        assert universe.disease_index(universe.diseases[2].disease_id) == 2

    def test_abstracts_mention_real_entities(self, universe):
        drug_names = {d.name for d in universe.drugs}
        mentioned = sum(1 for a in universe.abstracts
                        if any(name in a.text for name in drug_names))
        assert mentioned > len(universe.abstracts) * 0.8


class TestKbInterfaces:
    def test_pubchem(self, universe):
        kb = PubChemLike(universe)
        fp = kb.fingerprint(universe.drugs[0].drug_id)
        assert fp.shape == universe.drugs[0].fingerprint.shape
        with pytest.raises(NotFoundError):
            kb.fingerprint("DRG9999")

    def test_drugbank(self, universe):
        kb = DrugBankLike(universe)
        assert kb.targets(universe.drugs[0].drug_id) == set(
            universe.drugs[0].targets)
        assert kb.therapeutic_class(universe.drugs[0].drug_id)

    def test_sider(self, universe):
        kb = SiderLike(universe)
        assert kb.side_effects(universe.drugs[0].drug_id) == set(
            universe.drugs[0].side_effects)

    def test_disgenet_bidirectional(self, universe):
        kb = DisGeNetLike(universe)
        disease = next(d for d in universe.diseases if d.genes)
        gene = next(iter(disease.genes))
        assert gene in kb.genes_for_disease(disease.disease_id)
        assert disease.disease_id in kb.diseases_for_gene(gene)

    def test_pubmed_search(self, universe):
        kb = PubMedLite(universe.abstracts)
        drug_name = universe.drugs[0].name
        hits = kb.search(drug_name)
        for pmid in hits:
            assert drug_name.lower() in kb.fetch(pmid).text.lower() or \
                drug_name.lower() in kb.fetch(pmid).title.lower()

    def test_pubmed_search_all(self, universe):
        kb = PubMedLite(universe.abstracts)
        abstract = universe.abstracts[0]
        tokens = [t.strip(".,:;()") for t in abstract.title.split()
                  if len(t.strip(".,:;()")) > 4][:2]
        if tokens:
            assert abstract.pmid in kb.search_all(tokens)

    def test_wordnet_expand(self):
        wordnet = WordNetLite()
        expanded = wordnet.expand(["drug", "outcome"])
        assert "medication" in expanded
        assert "endpoint" in expanded
        assert "drug" in expanded


class TestRemoteAndCached:
    def test_remote_charges_latency(self, universe):
        clock = SimClock()
        remote = RemoteKnowledgeBase(PubChemLike(universe), clock,
                                     round_trip_s=0.08)
        remote.call("fingerprint", universe.drugs[0].drug_id)
        assert clock.now == pytest.approx(0.08)
        assert remote.remote_calls == 1

    def test_cache_avoids_remote(self, universe):
        clock = SimClock()
        remote = RemoteKnowledgeBase(DrugBankLike(universe), clock)
        cached = CachedKnowledgeBase(remote)
        drug = universe.drugs[0].drug_id
        first = cached.get("targets", drug)
        t_after_first = clock.now
        second = cached.get("targets", drug)
        assert first == second
        assert remote.remote_calls == 1
        assert clock.now - t_after_first < 1e-3  # local access only

    def test_refresh_bypasses_cache(self, universe):
        remote = RemoteKnowledgeBase(DrugBankLike(universe))
        cached = CachedKnowledgeBase(remote)
        drug = universe.drugs[0].drug_id
        cached.get("targets", drug)
        cached.refresh("targets", drug)
        assert remote.remote_calls == 2


class TestRemoteKbChaos:
    def test_dropped_link_fails_the_call(self, universe):
        from repro.cloudsim.faults import FaultPlan
        from repro.core.errors import ServiceUnavailableError

        clock = SimClock()
        remote = RemoteKnowledgeBase(PubChemLike(universe), clock,
                                     round_trip_s=0.08)
        remote.fault_plan = FaultPlan(seed=0, clock=clock).drop_link(
            "cloud-a", "external-kb", 1.0)
        with pytest.raises(ServiceUnavailableError):
            remote.call("fingerprint", universe.drugs[0].drug_id)
        assert remote.failed_calls == 1
        assert clock.now == pytest.approx(0.08)  # timed-out trip still paid

    def test_latency_spike_slows_the_call(self, universe):
        clock = SimClock()
        remote = RemoteKnowledgeBase(PubChemLike(universe), clock,
                                     round_trip_s=0.08)
        from repro.cloudsim.faults import FaultPlan
        remote.fault_plan = FaultPlan(clock=clock).spike_link(
            "cloud-a", "external-kb", 5.0)
        remote.call("fingerprint", universe.drugs[0].drug_id)
        assert clock.now == pytest.approx(0.40)

    def test_resilient_call_retries_through_outage(self, universe):
        from repro.cloudsim.faults import FaultPlan
        from repro.core.resilience import ResiliencePolicy, ResilientExecutor

        clock = SimClock()
        remote = RemoteKnowledgeBase(PubChemLike(universe), clock,
                                     round_trip_s=0.08)
        # The link drops everything for the first 100 ms of simulated
        # time; the first attempt fails inside the window, the backoff
        # pushes the retry past it.
        remote.fault_plan = FaultPlan(seed=0, clock=clock).drop_link(
            "cloud-a", "external-kb", 1.0, start_s=0.0, end_s=0.1)
        remote.resilience = ResilientExecutor(
            ResiliencePolicy(max_attempts=3, base_backoff_s=0.05,
                             jitter=0.0, seed=0),
            clock, None)
        result = remote.call("fingerprint", universe.drugs[0].drug_id)
        assert result is not None
        assert remote.failed_calls == 1
        assert remote.remote_calls == 1
        assert remote.resilience.monitoring.metrics.counter(
            "resilience.kb.pubchem.retries") == 1.0


class TestTextMining:
    def test_extraction_finds_signal(self, universe):
        extractor = FactExtractor(universe)
        evidence = extractor.evidence_matrix(universe.abstracts)
        truth = universe.association_matrix
        mean_true = evidence[truth == 1].mean()
        mean_false = evidence[truth == 0].mean()
        assert mean_true > mean_false * 2

    def test_negation_filtered(self, universe):
        extractor = FactExtractor(universe)
        facts = extractor.extract_corpus(universe.abstracts)
        negated = [f for f in facts if f.negated]
        positive = [f for f in facts if not f.negated]
        assert negated and positive
        for fact in negated[:5]:
            assert any(marker in fact.sentence.lower() for marker in
                       ("no association", "remains unclear", "not associated",
                        "failed to", "no significant"))

    def test_facts_reference_known_entities(self, universe):
        extractor = FactExtractor(universe)
        drug_ids = {d.drug_id for d in universe.drugs}
        disease_ids = {d.disease_id for d in universe.diseases}
        for fact in extractor.extract_corpus(universe.abstracts[:50]):
            assert fact.drug_id in drug_ids
            assert fact.disease_id in disease_ids
