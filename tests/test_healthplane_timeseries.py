"""Tests for the windowed time-series store: windows, labels, cardinality."""

import pytest

from repro.cloudsim.clock import SimClock
from repro.cloudsim.healthplane import TimeSeriesStore, WindowAggregate
from repro.cloudsim.healthplane.timeseries import series_key
from repro.core.errors import ConfigurationError


def _store(**kwargs):
    clock = SimClock()
    defaults = dict(interval_s=10.0, window_count=6, max_series=8)
    defaults.update(kwargs)
    return clock, TimeSeriesStore(clock, **defaults)


class TestSeriesKey:
    def test_bare_name(self):
        assert series_key("api.latency") == "api.latency"
        assert series_key("api.latency", {}) == "api.latency"

    def test_labels_sorted(self):
        key = series_key("api.latency", {"tenant": "t1", "route": "/r"})
        assert key == "api.latency{route=/r,tenant=t1}"

    def test_label_order_irrelevant(self):
        a = series_key("m", {"a": "1", "b": "2"})
        b = series_key("m", {"b": "2", "a": "1"})
        assert a == b


class TestWindows:
    def test_samples_in_one_window_aggregate(self):
        clock, store = _store()
        for v in (1.0, 5.0, 3.0):
            store.record("m", v)
            clock.advance(1.0)
        windows = store.windows("m")
        assert len(windows) == 1
        w = windows[0]
        assert (w.count, w.sum, w.min, w.max, w.last) == (3, 9.0, 1.0, 5.0, 3.0)
        assert w.mean == pytest.approx(3.0)

    def test_window_boundaries_aligned_to_interval(self):
        clock, store = _store()
        clock.advance(27.0)                       # inside [20, 30)
        store.record("m", 1.0)
        w = store.windows("m")[0]
        assert (w.start_s, w.end_s) == (20.0, 30.0)

    def test_rollover_closes_previous_window(self):
        clock, store = _store()
        store.record("m", 1.0)
        clock.advance(10.0)                       # next window
        store.record("m", 2.0)
        windows = store.windows("m")
        assert len(windows) == 2
        assert windows[0].sum == 1.0 and windows[1].sum == 2.0

    def test_ring_buffer_caps_history(self):
        clock, store = _store(window_count=3)
        for i in range(10):
            store.record("m", 1.0)
            clock.advance(10.0)
        # 3 closed windows max, plus the live one; oldest windows fell off.
        windows = store.windows("m")
        assert len(windows) == 4
        assert windows[0].start_s == 60.0

    def test_percentiles_nearest_rank(self):
        clock, store = _store()
        for v in range(1, 101):
            store.record("m", float(v))
        w = store.windows("m")[0]
        assert w.p50 == 50.0
        assert w.p99 == 99.0

    def test_empty_gap_windows_are_skipped_not_zero_filled(self):
        clock, store = _store()
        store.record("m", 1.0)
        clock.advance(50.0)                       # 4 empty windows pass
        store.record("m", 2.0)
        assert len(store.windows("m")) == 2       # no zero-count windows


class TestHorizonQueries:
    def test_total_over_trailing_horizon(self):
        clock, store = _store()
        store.record("good", 1.0)
        clock.advance(10.0)
        store.record("good", 1.0)
        clock.advance(10.0)
        store.record("good", 1.0)
        # Horizon of 10s from now=20 covers windows ending > 10s.
        assert store.total("good", 10.0) == 2.0
        assert store.total("good", 1000.0) == 3.0

    def test_aggregate_returns_count_and_sum(self):
        clock, store = _store()
        store.record("m", 2.0)
        store.record("m", 3.0)
        count, total = store.aggregate("m", 60.0)
        assert (count, total) == (2, 5.0)

    def test_unknown_series_is_zero(self):
        _, store = _store()
        assert store.total("nope", 60.0) == 0.0
        assert store.aggregate("nope", 60.0) == (0, 0.0)
        assert store.latest("nope") is None

    def test_nonpositive_horizon_rejected(self):
        _, store = _store()
        store.record("m", 1.0)
        with pytest.raises(ConfigurationError):
            store.total("m", 0.0)
        with pytest.raises(ConfigurationError):
            store.total("m", -5.0)

    def test_span_is_interval_times_window_count(self):
        _, store = _store(interval_s=60.0, window_count=4320)
        assert store.span_s == 259200.0           # exactly 3 days


class TestLabelsAndCardinality:
    def test_labeled_series_are_distinct(self):
        clock, store = _store()
        store.record("lat", 1.0, labels={"tenant": "a"})
        store.record("lat", 9.0, labels={"tenant": "b"})
        assert store.total("lat", 60.0, labels={"tenant": "a"}) == 1.0
        assert store.total("lat", 60.0, labels={"tenant": "b"}) == 9.0

    def test_cardinality_cap_evicts_least_recently_updated(self):
        clock, store = _store(max_series=3)
        for name in ("a", "b", "c"):
            store.record(name, 1.0)
        store.record("a", 1.0)                    # refresh a; b is now LRU
        store.record("d", 1.0)                    # evicts b
        assert store.evictions == 1
        assert not store.has_series("b")
        assert store.has_series("a") and store.has_series("d")
        assert store.cardinality == 3

    def test_describe_is_serializable_accounting(self):
        _, store = _store()
        store.record("m", 1.0)
        desc = store.describe()
        assert desc["cardinality"] == 1
        assert desc["span_s"] == 60.0
        assert desc["evictions"] == 0

    def test_invalid_configs_rejected(self):
        clock = SimClock()
        with pytest.raises(ConfigurationError):
            TimeSeriesStore(clock, interval_s=0.0)
        with pytest.raises(ConfigurationError):
            TimeSeriesStore(clock, window_count=0)
        with pytest.raises(ConfigurationError):
            TimeSeriesStore(clock, max_series=0)


class TestClockDiscipline:
    def test_recording_never_advances_the_clock(self):
        clock, store = _store()
        clock.advance(123.0)
        before = clock.now
        for i in range(100):
            store.record("m", float(i), labels={"i": str(i % 5)})
        store.total("m", 60.0, labels={"i": "0"})
        assert clock.now == before
