"""Tests for trusted containers and the intercloud secure gateway."""

import pytest

from repro.cloudsim.network import NetworkFabric
from repro.cloudsim.nodes import Host, SoftwareComponent, VirtualMachine
from repro.core.errors import AttestationError, GatewayError
from repro.crypto.rsa import generate_keypair
from repro.gateway.containers import (
    TrustedAuthoringEnvironment,
    verify_container,
)
from repro.gateway.transfer import CloudInstance, IntercloudGateway
from repro.trusted.attestation import AttestationService
from repro.trusted.chain import TrustedBootOrchestrator


@pytest.fixture
def authoring():
    key = generate_keypair(bits=1024, seed=70)
    env = TrustedAuthoringEnvironment(key)
    env.register_entrypoint("count-bytes",
                            lambda payload: len(payload["data"]))
    return env, key


def make_cloud(name, orchestrator_seed):
    attestation = AttestationService(seed=orchestrator_seed)
    orchestrator = TrustedBootOrchestrator(attestation,
                                           seed=orchestrator_seed)
    host = Host(f"{name}-host",
                bios=SoftwareComponent("bios", b"b1"),
                hypervisor=SoftwareComponent("kvm", b"k1"))
    host.start()
    orchestrator.boot_host(host)
    vm = VirtualMachine(f"{name}-vm",
                        bios=SoftwareComponent("seabios", b"s1"),
                        kernel=SoftwareComponent("linux", b"k5"),
                        image=SoftwareComponent("ubuntu", b"u22"))
    host.launch_vm(vm)
    orchestrator.boot_vm(host.host_id, vm)
    return CloudInstance(name=name, orchestrator=orchestrator,
                         host_id=host.host_id, vm=vm)


@pytest.fixture
def gateway(authoring):
    env, key = authoring
    fabric = NetworkFabric()
    fabric.add_endpoint("cloud-a")
    fabric.add_endpoint("cloud-b")
    fabric.connect("cloud-a", "cloud-b", latency_s=0.06,
                   bandwidth_bps=125e6)
    gateway = IntercloudGateway(fabric, env, key.public_key())
    cloud_a = make_cloud("cloud-a", 71)
    cloud_b = make_cloud("cloud-b", 72)
    cloud_b.datasets["emr"] = b"x" * 1_000_000
    cloud_a.datasets["emr-copy"] = b"x" * 1_000_000
    gateway.register_cloud(cloud_a)
    gateway.register_cloud(cloud_b)
    return gateway, cloud_a, cloud_b


class TestContainers:
    def test_build_and_verify(self, authoring):
        env, key = authoring
        container = env.build("jmf", "count-bytes", ("numpy",))
        assert verify_container(container, key.public_key())

    def test_untrusted_library_rejected(self, authoring):
        env, _ = authoring
        with pytest.raises(GatewayError):
            env.build("jmf", "count-bytes", ("numpy", "left-pad"))

    def test_unvetted_entrypoint_rejected(self, authoring):
        env, _ = authoring
        with pytest.raises(GatewayError):
            env.build("jmf", "rm-rf", ("numpy",))

    def test_wrong_key_fails_verification(self, authoring):
        env, _ = authoring
        container = env.build("jmf", "count-bytes", ("numpy",))
        other = generate_keypair(bits=512, seed=99)
        assert not verify_container(container, other.public_key())

    def test_tampered_manifest_fails(self, authoring):
        env, key = authoring
        container = env.build("jmf", "count-bytes", ("numpy",))
        import dataclasses
        forged_manifest = dataclasses.replace(container.manifest,
                                              entrypoint="rm-rf")
        forged = dataclasses.replace(container, manifest=forged_manifest)
        assert not verify_container(forged, key.public_key())


class TestGateway:
    def test_ship_container_to_data(self, gateway, authoring):
        env, _ = authoring
        gw, _, cloud_b = gateway
        container = env.build("counter", "count-bytes", ("numpy",),
                              payload_size_bytes=5_000_000)
        report = gw.ship_container(container, "cloud-a", "cloud-b", "emr")
        assert report.result == 1_000_000
        assert report.executed_at == "cloud-b"
        assert report.bytes_transferred == 5_000_000
        assert report.attested

    def test_ship_data_to_compute(self, gateway):
        gw, _, _ = gateway
        report = gw.ship_data("cloud-b", "cloud-a", "emr", "count-bytes")
        assert report.result == 1_000_000
        assert report.bytes_transferred == 1_000_000

    def test_container_cheaper_when_data_large(self, gateway, authoring):
        env, _ = authoring
        gw, _, _ = gateway
        container = env.build("counter", "count-bytes", ("numpy",),
                              payload_size_bytes=10_000)
        to_data = gw.ship_container(container, "cloud-a", "cloud-b", "emr")
        to_compute = gw.ship_data("cloud-b", "cloud-a", "emr", "count-bytes")
        assert to_data.transfer_time_s < to_compute.transfer_time_s

    def test_untrusted_target_refused(self, gateway, authoring):
        env, _ = authoring
        gw, _, cloud_b = gateway
        # Tamper with cloud-b's VM kernel PCR.
        vtpm = cloud_b.orchestrator.host_of(
            cloud_b.host_id).vtpm_manager.instance_for(cloud_b.vm.vm_id)
        vtpm.extend(9, "rootkit", "ff" * 32)
        container = env.build("counter", "count-bytes", ("numpy",))
        with pytest.raises(AttestationError):
            gw.ship_container(container, "cloud-a", "cloud-b", "emr")

    def test_forged_container_refused(self, gateway):
        gw, _, _ = gateway
        rogue_key = generate_keypair(bits=512, seed=500)
        rogue_env = TrustedAuthoringEnvironment(rogue_key)
        rogue_env.register_entrypoint("count-bytes",
                                      lambda payload: 0)
        container = rogue_env.build("evil", "count-bytes", ("numpy",))
        with pytest.raises(GatewayError):
            gw.ship_container(container, "cloud-a", "cloud-b", "emr")

    def test_missing_dataset(self, gateway, authoring):
        env, _ = authoring
        gw, _, _ = gateway
        container = env.build("counter", "count-bytes", ("numpy",))
        with pytest.raises(GatewayError):
            gw.ship_container(container, "cloud-a", "cloud-b", "nope")

    def test_unknown_cloud(self, gateway, authoring):
        env, _ = authoring
        gw, _, _ = gateway
        container = env.build("counter", "count-bytes", ("numpy",))
        with pytest.raises(GatewayError):
            gw.ship_container(container, "cloud-a", "cloud-z", "emr")

    def test_workload_containers_attested_into_chain(self, gateway,
                                                     authoring):
        env, _ = authoring
        gw, _, cloud_b = gateway
        container = env.build("counter", "count-bytes", ("numpy",))
        gw.ship_container(container, "cloud-a", "cloud-b", "emr")
        result = cloud_b.orchestrator.attest_vm_with_containers(
            cloud_b.host_id, cloud_b.vm.vm_id)
        assert result.trusted
