"""Tests for Merkle trees and proofs."""

import pytest

from repro.core.errors import IntegrityError
from repro.crypto.merkle import (
    IncrementalMerkleTree,
    MerkleTree,
    require_proof,
    verify_proof,
)


class TestMerkleTree:
    def test_single_leaf(self):
        tree = MerkleTree([b"only"])
        assert verify_proof(tree.root, b"only", tree.proof(0))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MerkleTree([])

    def test_all_proofs_verify(self):
        leaves = [f"leaf-{i}".encode() for i in range(7)]  # odd count
        tree = MerkleTree(leaves)
        for i, leaf in enumerate(leaves):
            assert verify_proof(tree.root, leaf, tree.proof(i))

    def test_power_of_two_leaves(self):
        leaves = [f"leaf-{i}".encode() for i in range(8)]
        tree = MerkleTree(leaves)
        for i, leaf in enumerate(leaves):
            assert verify_proof(tree.root, leaf, tree.proof(i))

    def test_wrong_leaf_fails(self):
        leaves = [b"a", b"b", b"c"]
        tree = MerkleTree(leaves)
        assert not verify_proof(tree.root, b"x", tree.proof(0))

    def test_wrong_position_fails(self):
        leaves = [b"a", b"b", b"c", b"d"]
        tree = MerkleTree(leaves)
        assert not verify_proof(tree.root, b"b", tree.proof(0))

    def test_root_changes_with_content(self):
        assert MerkleTree([b"a", b"b"]).root != MerkleTree([b"a", b"c"]).root

    def test_root_changes_with_order(self):
        assert MerkleTree([b"a", b"b"]).root != MerkleTree([b"b", b"a"]).root

    def test_leaf_node_domain_separation(self):
        # A single leaf's hash must not equal an inner node of its content.
        t1 = MerkleTree([b"a", b"b"])
        t2 = MerkleTree([t1.root])
        assert t1.root != t2.root

    def test_index_out_of_range(self):
        tree = MerkleTree([b"a"])
        with pytest.raises(IndexError):
            tree.proof(1)

    def test_require_proof_raises(self):
        tree = MerkleTree([b"a", b"b"])
        with pytest.raises(IntegrityError):
            require_proof(tree.root, b"z", tree.proof(0))

    def test_leaf_count(self):
        assert MerkleTree([b"a", b"b", b"c"]).leaf_count == 3


class TestIncrementalMerkleTree:
    def test_matches_batch_tree_for_all_small_sizes(self):
        leaves = [f"leaf-{i}".encode() for i in range(100)]
        incremental = IncrementalMerkleTree()
        for n, leaf in enumerate(leaves, start=1):
            incremental.append(leaf)
            assert incremental.root == MerkleTree(leaves[:n]).root, n
            assert incremental.leaf_count == n

    def test_extend_matches_append(self):
        leaves = [f"leaf-{i}".encode() for i in range(17)]
        by_extend = IncrementalMerkleTree(leaves[:5])
        by_extend.extend(leaves[5:])
        by_append = IncrementalMerkleTree()
        for leaf in leaves:
            by_append.append(leaf)
        assert by_extend.root == by_append.root == MerkleTree(leaves).root

    def test_append_returns_leaf_index(self):
        tree = IncrementalMerkleTree()
        assert tree.append(b"a") == 0
        assert tree.append(b"b") == 1

    def test_empty_tree_has_no_root(self):
        with pytest.raises(ValueError):
            IncrementalMerkleTree().root

    def test_root_hex_matches_batch(self):
        leaves = [b"x", b"y", b"z"]
        assert (IncrementalMerkleTree(leaves).root_hex
                == MerkleTree(leaves).root.hex())
