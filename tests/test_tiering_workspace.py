"""Tests for privacy-tiered storage routing and the analysis workspace."""

import pytest

from repro.analytics.workspace import AnalysisWorkspace
from repro.core.errors import (
    ComplianceError,
    ModelLifecycleError,
    NotFoundError,
)
from repro.crypto.kms import KeyManagementService
from repro.fhir.resources import Bundle, Observation, Patient
from repro.ingestion.datalake import DataLake
from repro.ingestion.tiering import (
    ANALYTICS_TIER,
    CONFIDENTIAL_TIER,
    DataClassification,
    TieredStorageRouter,
    classify_bundle,
)
from repro.privacy.deidentify import Deidentifier, ReidentificationMap


@pytest.fixture
def router():
    return TieredStorageRouter(DataLake(KeyManagementService("t", seed=3)))


def phi_bundle():
    return Bundle(id="b").add(
        Patient(id="pt-1", name={"family": "Doe"}, birthDate="1980-03-12",
                gender="female"))


def deidentified_bundle():
    deidentifier = Deidentifier(b"tier-test-secret-0123456789")
    clean = deidentifier.deidentify_patient(
        Patient(id="pt-1", name={"family": "Doe"}, birthDate="1980-03-12",
                gender="female"), ReidentificationMap())
    bundle = Bundle(id="b2").add(clean)
    bundle.add(Observation(id="o", code={"text": "x"},
                           subject=f"Patient/{clean.id}",
                           valueQuantity={"value": 1.0}))
    return bundle


class TestClassification:
    def test_identified_patient_is_phi(self):
        assert classify_bundle(phi_bundle()) is DataClassification.PHI

    def test_pseudonymous_is_deidentified(self):
        assert classify_bundle(
            deidentified_bundle()) is DataClassification.DEIDENTIFIED

    def test_no_clinical_content_is_internal(self):
        from repro.fhir.resources import Practitioner
        bundle = Bundle(id="b3").add(
            Practitioner(id="dr-1", name={"family": "House"}))
        assert classify_bundle(bundle) is DataClassification.INTERNAL


class TestRouting:
    def test_phi_routes_to_confidential_server(self, router):
        placement = router.place_bundle(phi_bundle(), patient_ref="ref-x")
        assert placement.tier == CONFIDENTIAL_TIER.name
        assert placement.record is not None
        # Confidential tier stores ciphertext only.
        assert b"Doe" not in placement.record.ciphertext

    def test_deidentified_routes_to_analytics_server(self, router):
        placement = router.place_bundle(deidentified_bundle(),
                                        patient_ref="ref-x")
        assert placement.tier == ANALYTICS_TIER.name
        assert placement.key is not None
        assert router.read_analytics(placement.key)

    def test_phi_refused_on_analytics_tier(self, router):
        with pytest.raises(ComplianceError):
            router.place_on_analytics_tier(b"raw phi",
                                           DataClassification.PHI)

    def test_only_analytics_tier_cacheable(self, router):
        analytics = router.place_bundle(deidentified_bundle(), "ref-a")
        confidential = router.place_bundle(phi_bundle(), "ref-b")
        assert router.is_cacheable(analytics.key)
        assert confidential.key is None  # nothing cacheable to hand out

    def test_tier_policies(self, router):
        confidential = router.place_bundle(phi_bundle(), "ref-b")
        policy = router.tier_of(confidential)
        assert policy.requires_encryption
        assert not policy.cacheable

    def test_inventory(self, router):
        router.place_on_analytics_tier(b"kb data",
                                       DataClassification.PUBLIC)
        router.place_on_analytics_tier(b"aggregate",
                                       DataClassification.INTERNAL)
        inventory = router.analytics_inventory()
        assert len(inventory) == 2
        assert {c for _, c in inventory} == {DataClassification.PUBLIC,
                                             DataClassification.INTERNAL}

    def test_missing_key(self, router):
        with pytest.raises(NotFoundError):
            router.read_analytics("an-404")


class TestTieringProperties:
    def test_phi_never_reaches_analytics_tier(self, router):
        """Property: however a PHI bundle arrives, it lands encrypted on
        the confidential server and never in the cacheable store."""
        import numpy as np
        rng = np.random.default_rng(9)
        for i in range(25):
            patient = Patient(
                id=f"pt-{i}",
                name={"family": f"Fam{i}"} if rng.random() < 0.7 else {},
                birthDate=f"19{50 + int(rng.integers(40))}-03-1{int(rng.integers(10))}"
                if rng.random() < 0.8 else None,
                gender="female",
                identifier=([{"value": "ssn"}] if rng.random() < 0.5
                            else []),
            )
            bundle = Bundle(id=f"b{i}").add(patient)
            placement = router.place_bundle(bundle, patient_ref=f"ref-{i}")
            if classify_bundle(bundle) is DataClassification.PHI:
                assert placement.tier == CONFIDENTIAL_TIER.name
                assert placement.key is None
        # Nothing PHI-classified ever appears in the analytics inventory.
        for _, classification in router.analytics_inventory():
            assert classification is not DataClassification.PHI


class TestWorkspace:
    def _workspace(self):
        workspace = AnalysisWorkspace("delt-study")
        workspace.add_cell("load", lambda ns: list(range(10)))
        workspace.add_cell("clean", lambda ns: [x for x in ns["load"]
                                                if x % 2 == 0])
        workspace.add_cell("stats", lambda ns: sum(ns["clean"]))
        return workspace

    def test_cells_share_namespace(self):
        workspace = self._workspace()
        workspace.run_all()
        assert workspace.namespace["stats"] == 20

    def test_execution_log(self):
        workspace = self._workspace()
        log = workspace.run_all()
        assert [e.name for e in log] == ["load", "clean", "stats"]
        assert all(e.output_hash for e in log)

    def test_run_single_cell(self):
        workspace = self._workspace()
        workspace.run_all()
        execution = workspace.run_cell(2)
        assert execution.name == "stats"

    def test_unknown_cell(self):
        with pytest.raises(NotFoundError):
            self._workspace().run_cell(9)

    def test_reproducibility_check_passes_for_deterministic(self):
        assert self._workspace().reproducibility_check()

    def test_reproducibility_check_fails_for_nondeterministic(self):
        workspace = AnalysisWorkspace("flaky")
        state = {"n": 0}

        def impure(ns):
            state["n"] += 1
            return state["n"]

        workspace.add_cell("impure", impure)
        assert not workspace.reproducibility_check()

    def test_artifact_versioning(self):
        workspace = self._workspace()
        v1 = workspace.commit_artifact("model", b"weights-v1", "initial")
        v2 = workspace.commit_artifact("model", b"weights-v2", "retrained")
        assert v2.parent_hash == v1.commit_hash
        assert workspace.checkout("model") == b"weights-v2"
        assert workspace.checkout("model", version=1) == b"weights-v1"
        assert [v.message for v in workspace.log("model")] == [
            "initial", "retrained"]

    def test_history_verification(self):
        workspace = self._workspace()
        workspace.commit_artifact("model", b"w1", "a")
        workspace.commit_artifact("model", b"w2", "b")
        assert workspace.verify_history("model")

    def test_history_tamper_detected(self):
        import dataclasses
        workspace = self._workspace()
        workspace.commit_artifact("model", b"w1", "a")
        workspace.commit_artifact("model", b"w2", "b")
        history = workspace._artifacts["model"]
        history[0] = dataclasses.replace(history[0], message="forged")
        with pytest.raises(ModelLifecycleError):
            workspace.verify_history("model")

    def test_checkout_missing(self):
        workspace = self._workspace()
        with pytest.raises(NotFoundError):
            workspace.checkout("ghost")
        workspace.commit_artifact("model", b"w", "a")
        with pytest.raises(NotFoundError):
            workspace.checkout("model", version=5)
