"""Tests for the multi-level cache hierarchy."""

import pytest

from repro.caching.hierarchy import CacheHierarchy, CacheLevel, Origin
from repro.caching.policies import LruCache
from repro.cloudsim.clock import SimClock
from repro.core.errors import ConfigurationError


def make_hierarchy(client_size=4, server_size=16, promote=True):
    clock = SimClock()
    hierarchy = CacheHierarchy(
        levels=[
            CacheLevel("client", LruCache(client_size), access_cost_s=50e-6),
            CacheLevel("server", LruCache(server_size), access_cost_s=2e-3),
        ],
        origin=Origin("kb", loader=lambda k: f"value-{k}",
                      access_cost_s=80e-3),
        clock=clock,
        promote=promote,
    )
    return hierarchy


class TestLookups:
    def test_miss_goes_to_origin(self):
        hierarchy = make_hierarchy()
        result = hierarchy.get("x")
        assert result.value == "value-x"
        assert result.served_by == "kb"
        assert hierarchy.origin.fetches == 1

    def test_second_lookup_hits_client(self):
        hierarchy = make_hierarchy()
        hierarchy.get("x")
        result = hierarchy.get("x")
        assert result.served_by == "client"
        assert hierarchy.origin.fetches == 1

    def test_client_hit_is_orders_of_magnitude_cheaper(self):
        hierarchy = make_hierarchy()
        miss = hierarchy.get("x")
        hit = hierarchy.get("x")
        assert miss.latency_s / hit.latency_s > 100

    def test_server_hit_after_client_eviction(self):
        hierarchy = make_hierarchy(client_size=1)
        hierarchy.get("x")
        hierarchy.get("y")  # evicts x from the 1-slot client cache
        result = hierarchy.get("x")
        assert result.served_by == "server"

    def test_promotion_refills_client(self):
        hierarchy = make_hierarchy(client_size=1)
        hierarchy.get("x")
        hierarchy.get("y")
        hierarchy.get("x")   # served by server, promoted back to client
        result = hierarchy.get("x")
        assert result.served_by == "client"

    def test_no_promotion_mode(self):
        # promote=False disables hit-path promotion: a value evicted from
        # the client and later served by the server stays at the server.
        hierarchy = make_hierarchy(client_size=1, promote=False)
        hierarchy.get("x")
        hierarchy.get("y")          # evicts x from the 1-slot client
        assert hierarchy.get("x").served_by == "server"
        assert hierarchy.get("x").served_by == "server"  # still not promoted

    def test_latency_accumulates_per_level(self):
        hierarchy = make_hierarchy()
        result = hierarchy.get("x")
        expected = 50e-6 + 2e-3 + 80e-3
        assert result.latency_s == pytest.approx(expected)


class TestWriteAndInvalidate:
    def test_write_through(self):
        hierarchy = make_hierarchy()
        hierarchy.put("k", "v")
        result = hierarchy.get("k")
        assert result.served_by == "client"
        assert result.value == "v"

    def test_invalidate_all_levels(self):
        hierarchy = make_hierarchy()
        hierarchy.get("x")
        assert hierarchy.invalidate("x") == 2
        result = hierarchy.get("x")
        assert result.served_by == "kb"


class TestReporting:
    def test_overall_hit_ratio(self):
        hierarchy = make_hierarchy()
        for _ in range(10):
            hierarchy.get("same")
        assert hierarchy.overall_hit_ratio() == pytest.approx(0.9)

    def test_stats_by_level(self):
        hierarchy = make_hierarchy()
        hierarchy.get("x")
        hierarchy.get("x")
        stats = dict(hierarchy.stats_by_level())
        assert stats["client"].hits == 1

    def test_empty_hierarchy_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheHierarchy([], Origin("o", lambda k: k, 0.1))

    def test_negative_cost_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheLevel("bad", LruCache(2), access_cost_s=-1.0)
