"""Integration: AnalysisWorkspace on the compute layer + hashing unification."""

import pytest

from repro.analytics import AnalysisWorkspace
from repro.cloudsim.clock import SimClock
from repro.cloudsim.monitoring import MonitoringService
from repro.compute import JobState, standard_scheduler
from repro.core.errors import TaskFailedError


def build_workspace():
    ws = AnalysisWorkspace("study")
    ws.add_cell("base", lambda ns: list(range(50)))
    ws.add_cell("squares", lambda ns: [x * x for x in ns["base"]])
    ws.add_cell("total", lambda ns: sum(ns["squares"]))
    return ws


class TestHashingUnification:
    def test_long_output_hashes_identically_in_run_all_and_run_cell(self):
        # Regression: a cell output whose repr exceeds the 200-char
        # display cut must hash the same through both execution paths,
        # or the reproducibility check compares unlike things.
        ws = AnalysisWorkspace("long")
        ws.add_cell("wide", lambda ns: list(range(500)))
        via_run_all = ws.run_all()[0]
        via_run_cell = ws.run_cell(0)
        assert len(repr(list(range(500)))) > 200
        assert len(via_run_all.output_repr) == 200
        assert via_run_all.output_repr == via_run_cell.output_repr
        assert via_run_all.output_hash == via_run_cell.output_hash

    def test_reproducibility_check_with_long_outputs(self):
        ws = AnalysisWorkspace("long")
        ws.add_cell("wide", lambda ns: list(range(500)))
        assert ws.reproducibility_check()


class TestScheduledRunAll:
    def make_scheduler(self):
        clock = SimClock()
        return standard_scheduler(clock=clock,
                                  monitoring=MonitoringService(clock))

    def test_scheduled_run_matches_inline_run(self):
        inline = build_workspace().run_all()
        scheduler = self.make_scheduler()
        scheduled = build_workspace().run_all(scheduler=scheduler)
        assert [e.name for e in scheduled] == [e.name for e in inline]
        assert [e.output_hash for e in scheduled] == \
            [e.output_hash for e in inline]
        job = next(iter(scheduler.jobs.values()))
        assert job.state is JobState.SUCCEEDED
        assert job.graph.name == "workspace:study"
        assert len(job.placements) == 3

    def test_scheduled_cells_preserve_order_and_namespace(self):
        scheduler = self.make_scheduler()
        ws = build_workspace()
        executions = ws.run_all(scheduler=scheduler)
        assert [e.cell_index for e in executions] == [0, 1, 2]
        assert ws.namespace["total"] == sum(x * x for x in range(50))

    def test_scheduled_cell_failure_raises_typed_error(self):
        scheduler = self.make_scheduler()
        ws = AnalysisWorkspace("bad")
        ws.add_cell("ok", lambda ns: 1)
        ws.add_cell("boom", lambda ns: 1 / 0)
        with pytest.raises(TaskFailedError, match="cell-001"):
            ws.run_all(scheduler=scheduler)

    def test_empty_workspace_scheduled(self):
        scheduler = self.make_scheduler()
        assert AnalysisWorkspace("empty").run_all(
            scheduler=scheduler) == []
