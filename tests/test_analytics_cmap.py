"""Tests for the Connectivity-Map-style expression baseline."""

import numpy as np
import pytest

from repro.analytics.cmap import ConnectivityMapScorer
from repro.analytics.metrics import auc_roc
from repro.core.errors import ConfigurationError


class TestScorerMechanics:
    def test_shape(self, universe):
        scorer = ConnectivityMapScorer(universe.drug_expression,
                                       universe.disease_expression)
        scores = scorer.reversal_scores()
        assert scores.shape == (len(universe.drugs), len(universe.diseases))

    def test_perfect_reversal_scores_one(self):
        rng = np.random.default_rng(0)
        disease = rng.normal(size=(1, 30))
        drug = -disease  # exact signature reversal
        scorer = ConnectivityMapScorer(drug, disease)
        assert scorer.reversal_scores()[0, 0] == pytest.approx(1.0)

    def test_identical_signature_scores_minus_one(self):
        rng = np.random.default_rng(1)
        disease = rng.normal(size=(1, 30))
        scorer = ConnectivityMapScorer(disease.copy(), disease)
        assert scorer.reversal_scores()[0, 0] == pytest.approx(-1.0)

    def test_mismatched_panels_rejected(self):
        with pytest.raises(ConfigurationError):
            ConnectivityMapScorer(np.zeros((2, 10)), np.zeros((3, 12)))

    def test_enrichment_bounds(self, universe):
        scorer = ConnectivityMapScorer(universe.drug_expression,
                                       universe.disease_expression)
        scores = scorer.enrichment_scores(top_k=5)
        assert scores.min() >= -1.0
        assert scores.max() <= 1.0

    def test_enrichment_k_validated(self, universe):
        scorer = ConnectivityMapScorer(universe.drug_expression,
                                       universe.disease_expression)
        with pytest.raises(ConfigurationError):
            scorer.enrichment_scores(top_k=0)


class TestScorerSignal:
    def test_reversal_predicts_true_associations(self, universe):
        scorer = ConnectivityMapScorer(universe.drug_expression,
                                       universe.disease_expression)
        scores = scorer.reversal_scores()
        labels = universe.association_matrix.ravel().astype(float)
        assert auc_roc(labels, scores.ravel()) > 0.75

    def test_enrichment_also_predictive(self, universe):
        scorer = ConnectivityMapScorer(universe.drug_expression,
                                       universe.disease_expression)
        scores = scorer.enrichment_scores()
        labels = universe.association_matrix.ravel().astype(float)
        assert auc_roc(labels, scores.ravel()) > 0.7

    def test_jmf_still_beats_cmap_on_heldout(self, universe,
                                             drug_similarities,
                                             disease_similarities):
        """The paper's point: single-aspect methods are biased; JMF wins."""
        from repro.analytics import (
            JointMatrixFactorization,
            evaluate_masked,
            holdout_mask,
        )
        rng = np.random.default_rng(8)
        training, heldout = holdout_mask(universe.association_matrix, 0.3,
                                         rng)
        jmf = JointMatrixFactorization(rank=10, alpha=0.5, seed=1,
                                       max_iterations=120).fit(
            training, drug_similarities, disease_similarities)
        jmf_auc = evaluate_masked(universe.association_matrix, jmf.scores(),
                                  heldout).auc
        cmap = ConnectivityMapScorer(universe.drug_expression,
                                     universe.disease_expression)
        cmap_auc = evaluate_masked(universe.association_matrix,
                                   cmap.reversal_scores(), heldout).auc
        assert jmf_auc > cmap_auc
