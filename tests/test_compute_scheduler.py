"""Unit/integration: the deterministic task-graph scheduler.

Covers the ISSUE 8 edge cases — empty graph, cycle detection, all
workers crashed, cancellation of a half-finished graph, determinism —
plus placement locality, autoscaling, lineage recovery, and critical-path
attribution summing to exactly 100%.
"""

import pytest

from repro.cloudsim.clock import SimClock
from repro.cloudsim.faults import FaultPlan
from repro.cloudsim.healthplane import HealthPlane
from repro.cloudsim.monitoring import MonitoringService
from repro.cloudsim.tracing import Tracer
from repro.compute import (
    JobState,
    TaskGraph,
    TaskState,
    standard_scheduler,
)
from repro.core.errors import (
    ComputeError,
    ConfigurationError,
    NonIdempotentReplayError,
    NotFoundError,
    RateLimitError,
    TaskCancelledError,
    TaskFailedError,
    WorkerExhaustedError,
)


def make_world(**kwargs):
    clock = SimClock()
    monitoring = MonitoringService(clock)
    plane = HealthPlane(monitoring)
    tracer = Tracer(clock)
    fault_plan = FaultPlan(seed=0, clock=clock)
    scheduler = standard_scheduler(clock=clock, monitoring=monitoring,
                                   tracer=tracer, fault_plan=fault_plan,
                                   **kwargs)
    return scheduler, clock, monitoring, plane, tracer, fault_plan


def fan_out(n=8, cost_s=0.05):
    g = TaskGraph("fan")
    g.add_data("seed", 2, nbytes=4096)
    for i in range(n):
        g.add_task(f"t-{i:02d}", lambda ins, i=i: ins["seed"] * i,
                   inputs=("seed",), cost_s=cost_s)
    return g


class TestLifecycle:
    def test_fan_out_job_succeeds_with_results(self):
        scheduler, *_ = make_world()
        g = fan_out(4)
        g.add_task("total", lambda ins: sum(ins[f"t-{i:02d}"]
                                            for i in range(4)),
                   inputs=tuple(f"t-{i:02d}" for i in range(4)))
        job = scheduler.submit(g)
        assert job.state is JobState.PENDING
        scheduler.run(job.job_id)
        assert job.state is JobState.SUCCEEDED
        assert scheduler.result(job.job_id) == {"total": 2 * (0 + 1 + 2 + 3)}
        assert job.makespan_s > 0

    def test_empty_graph_succeeds_immediately(self):
        scheduler, *_ = make_world()
        job = scheduler.submit(TaskGraph("empty"))
        scheduler.run(job.job_id)
        assert job.state is JobState.SUCCEEDED
        assert scheduler.result(job.job_id) == {}

    def test_cycle_rejected_at_submit_with_typed_error(self):
        scheduler, *_ = make_world()
        g = TaskGraph("loop")
        g.add_task("a", lambda ins: 1, deps=("b",))
        g.add_task("b", lambda ins: 2, deps=("a",))
        with pytest.raises(ConfigurationError, match="cycle"):
            scheduler.submit(g)
        assert scheduler.jobs == {}

    def test_task_exception_fails_job_with_typed_error(self):
        scheduler, *_ = make_world()
        g = TaskGraph("boom")
        g.add_task("bad", lambda ins: 1 / 0)
        job = scheduler.submit(g)
        scheduler.run(job.job_id)
        assert job.state is JobState.FAILED
        assert job.error_type == "TaskFailedError"
        with pytest.raises(TaskFailedError, match="bad"):
            scheduler.result(job.job_id)

    def test_unknown_job_raises_not_found(self):
        scheduler, *_ = make_world()
        with pytest.raises(NotFoundError):
            scheduler.job("job-nope")

    def test_result_before_finish_raises(self):
        scheduler, *_ = make_world()
        job = scheduler.submit(fan_out(2))
        with pytest.raises(ComputeError, match="not finished"):
            scheduler.result(job.job_id)

    def test_job_queue_bound_enforced(self):
        scheduler, *_ = make_world(max_pending_jobs=2)
        scheduler.submit(fan_out(1))
        scheduler.submit(fan_out(1))
        with pytest.raises(RateLimitError, match="queue full"):
            scheduler.submit(fan_out(1))

    def test_run_pending_drains_fifo(self):
        scheduler, *_ = make_world()
        first = scheduler.submit(fan_out(2))
        second = scheduler.submit(fan_out(2))
        finished = scheduler.run_pending()
        assert [j.job_id for j in finished] == [first.job_id, second.job_id]
        assert all(j.state is JobState.SUCCEEDED for j in finished)


class TestCancellation:
    def test_cancel_pending_job(self):
        scheduler, *_ = make_world()
        job = scheduler.submit(fan_out(4))
        scheduler.cancel(job.job_id)
        assert job.state is JobState.CANCELLED
        with pytest.raises(TaskCancelledError):
            scheduler.result(job.job_id)

    def test_cancel_half_finished_graph(self):
        scheduler, *_ = make_world(min_workers=1, max_workers=1,
                                   autoscale=False)
        job = scheduler.submit(fan_out(6))
        # Step until some (not all) tasks have finished, then cancel.
        while not any(s is TaskState.SUCCEEDED
                      for s in job.task_states.values()):
            assert scheduler.step(job.job_id)
        done_before = job.counts()["succeeded"]
        assert 0 < done_before < 6
        scheduler.cancel(job.job_id)
        assert scheduler.step(job.job_id) is False
        assert job.state is JobState.CANCELLED
        assert job.counts()["succeeded"] == done_before
        with pytest.raises(TaskCancelledError):
            scheduler.result(job.job_id)

    def test_cancel_terminal_job_raises(self):
        scheduler, *_ = make_world()
        job = scheduler.submit(fan_out(1))
        scheduler.run(job.job_id)
        with pytest.raises(TaskCancelledError, match="already succeeded"):
            scheduler.cancel(job.job_id)


class TestPlacementAndScaling:
    def test_locality_prefers_node_holding_largest_input(self):
        scheduler, *_ = make_world(min_workers=2, max_workers=2,
                                   autoscale=False)
        g = TaskGraph("local")
        g.add_task("big", lambda ins: "big", cost_s=0.01,
                   output_bytes=10_000_000)
        g.add_task("small", lambda ins: "small", cost_s=0.01,
                   output_bytes=8)
        g.add_task("join", lambda ins: ins["big"] + ins["small"],
                   inputs=("big", "small"), cost_s=0.01)
        job = scheduler.submit(g)
        scheduler.run(job.job_id)
        assert job.state is JobState.SUCCEEDED
        by_task = {p["task"]: p for p in job.placements}
        assert by_task["join"]["node"] == by_task["big"]["node"]

    def test_autoscaler_grows_with_queue_and_shrinks_after(self):
        scheduler, *_ = make_world(min_workers=1, max_workers=8,
                                   tasks_per_worker=4)
        job = scheduler.submit(fan_out(32))
        scheduler.run(job.job_id)
        assert job.state is JobState.SUCCEEDED
        assert scheduler.pool.scaled_up >= 2      # grew past the floor
        assert scheduler.pool.scaled_down >= 1    # drained idle workers
        nodes = {p["node"] for p in job.placements}
        assert len(nodes) > 1                      # work actually spread

    def test_eight_workers_at_least_4x_faster_than_one(self):
        makespans = {}
        for workers in (1, 8):
            scheduler, *_ = make_world(min_workers=workers,
                                       max_workers=workers, autoscale=False)
            job = scheduler.submit(fan_out(64))
            scheduler.run(job.job_id)
            assert job.state is JobState.SUCCEEDED
            makespans[workers] = job.makespan_s
        assert makespans[1] / makespans[8] >= 4.0


class TestFaults:
    def crash_world(self, idempotent=True, crash_all=False):
        scheduler, clock, monitoring, plane, tracer, fault_plan = make_world(
            min_workers=4, max_workers=4, autoscale=False)
        g = fan_out(16, cost_s=0.1)
        if not idempotent:
            g = TaskGraph("fragile")
            g.add_data("seed", 2, nbytes=4096)
            for i in range(16):
                g.add_task(f"t-{i:02d}", lambda ins, i=i: i,
                           inputs=("seed",), cost_s=0.1, idempotent=False)
        job = scheduler.submit(g)
        # Crash windows target hosts, whose ids are stable by name.
        if crash_all:
            for i in range(4):
                fault_plan.crash_node(f"compute-host-{i:02d}", start_s=0.4)
        else:
            fault_plan.crash_node("compute-host-00", start_s=0.4, end_s=10.0)
        return scheduler, job, tracer, plane

    def test_idempotent_tasks_rerun_after_crash(self):
        scheduler, job, tracer, _ = self.crash_world()
        scheduler.run(job.job_id)
        assert job.state is JobState.SUCCEEDED
        retried = [t for t, n in job.attempts.items() if n > 1]
        assert retried                              # crash forced re-execution
        # Recovery is visible as extra attempt spans under the job root.
        root = tracer.get_trace(job.trace_id)
        attempt_spans = [s for s in root.walk()
                         if s.name.startswith("compute.task:")]
        assert len(attempt_spans) == sum(job.attempts.values())
        assert any(s.status == "ERROR" for s in attempt_spans)

    def test_non_idempotent_task_fails_job_with_typed_error(self):
        scheduler, job, _, _ = self.crash_world(idempotent=False)
        scheduler.run(job.job_id)
        assert job.state is JobState.FAILED
        assert job.error_type == "NonIdempotentReplayError"
        with pytest.raises(TaskFailedError):
            scheduler.result(job.job_id)

    def test_all_workers_crashed_exhausts(self):
        scheduler, job, _, _ = self.crash_world(crash_all=True)
        scheduler.run(job.job_id)
        assert job.state is JobState.FAILED
        assert job.error_type == "WorkerExhaustedError"

    def test_crash_recovery_events_published(self):
        scheduler, job, _, plane = self.crash_world()
        scheduler.run(job.job_id)
        kinds = {e.kind for e in plane.events.recent()}
        assert "worker.crashed" in kinds
        assert "task.retried" in kinds
        assert "job.succeeded" in kinds


class TestObservability:
    def test_lifecycle_events_in_order_on_event_bus(self):
        scheduler, _, _, plane, _, _ = make_world()
        sub = plane.events.subscribe("watcher", kinds=["job"])
        job = scheduler.submit(fan_out(2))
        scheduler.run(job.job_id)
        kinds = [e.kind for e in sub.poll()]
        assert kinds == ["job.pending", "job.scheduled", "job.running",
                         "job.succeeded"]

    def test_gauges_mirrored_into_metrics(self):
        scheduler, _, monitoring, _, _, _ = make_world()
        job = scheduler.submit(fan_out(2))
        scheduler.run(job.job_id)
        metrics = monitoring.metrics
        assert metrics.gauge("compute.jobs.running") == 0.0
        assert metrics.gauge("compute.queue.depth") == 0.0
        assert metrics.gauge("compute.workers") >= 1.0
        assert metrics.counter("compute.tasks.succeeded") == 2

    def test_critical_path_covers_compute_phases_and_sums_to_100(self):
        scheduler, _, _, _, tracer, _ = make_world()
        g = fan_out(6)
        g.add_task("reduce", lambda ins: 0,
                   inputs=tuple(f"t-{i:02d}" for i in range(6)))
        job = scheduler.submit(g)
        scheduler.run(job.job_id)
        path = tracer.critical_path(job.trace_id)
        pct = path.layer_percentages()
        assert abs(sum(pct.values()) - 100.0) < 1e-9
        assert {"compute-queue", "compute-sched", "compute-exec"} <= set(pct)
        assert path.total_s == pytest.approx(job.makespan_s)
        assert tracer.verify_trace(job.trace_id)


class TestDeterminism:
    def run_once(self):
        scheduler, _, _, plane, _, fault_plan = make_world(
            min_workers=1, max_workers=6, tasks_per_worker=2)
        fault_plan.crash_node("compute-host-01", start_s=0.5, end_s=3.0)
        g = fan_out(24, cost_s=0.07)
        g.add_task("reduce", lambda ins: 0,
                   inputs=tuple(f"t-{i:02d}" for i in range(24)))
        job = scheduler.submit(g)
        scheduler.run(job.job_id)
        events = [(e.seq, e.event_id, e.timestamp_s, e.kind)
                  for e in plane.events.recent()]
        return job, events

    def test_two_seeded_runs_identical_events_and_placements(self):
        job_a, events_a = self.run_once()
        job_b, events_b = self.run_once()
        assert job_a.state is JobState.SUCCEEDED
        assert events_a == events_b
        assert job_a.placements == job_b.placements
        assert job_a.makespan_s == job_b.makespan_s
