"""Tests for resilience policies, circuit breakers, and the executor."""

import random

import pytest

from repro.cloudsim.clock import SimClock
from repro.cloudsim.monitoring import MonitoringService
from repro.core.errors import (
    ConfigurationError,
    DeadlineExceededError,
    ServiceUnavailableError,
)
from repro.core.resilience import (
    BreakerState,
    CircuitBreaker,
    ResiliencePolicy,
    ResilientExecutor,
)


class TestResiliencePolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ResiliencePolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            ResiliencePolicy(timeout_s=0.0)
        with pytest.raises(ConfigurationError):
            ResiliencePolicy(jitter=1.5)
        with pytest.raises(ConfigurationError):
            ResiliencePolicy(breaker_failure_threshold=0)

    def test_backoff_exponential_and_capped(self):
        policy = ResiliencePolicy(base_backoff_s=0.1, max_backoff_s=0.5,
                                  jitter=0.0)
        rng = random.Random(0)
        assert policy.backoff_s(0, rng) == pytest.approx(0.1)
        assert policy.backoff_s(1, rng) == pytest.approx(0.2)
        assert policy.backoff_s(2, rng) == pytest.approx(0.4)
        assert policy.backoff_s(3, rng) == pytest.approx(0.5)  # capped
        assert policy.backoff_s(10, rng) == pytest.approx(0.5)

    def test_backoff_jitter_is_seed_deterministic(self):
        policy = ResiliencePolicy(base_backoff_s=0.1, jitter=0.2)
        first = [policy.backoff_s(i, random.Random(7)) for i in range(5)]
        second = [policy.backoff_s(i, random.Random(7)) for i in range(5)]
        assert first == second
        # Jitter stays within +/- 20% of the deterministic base.
        rng = random.Random(7)
        for i in range(5):
            base = min(policy.max_backoff_s,
                       policy.base_backoff_s * 2 ** i)
            assert abs(policy.backoff_s(i, rng) - base) <= 0.2 * base + 1e-12


class TestCircuitBreaker:
    def _breaker(self, threshold=3, reset_s=10.0):
        clock = SimClock()
        policy = ResiliencePolicy(breaker_failure_threshold=threshold,
                                  breaker_reset_s=reset_s)
        return CircuitBreaker("kb", policy, clock), clock

    def test_opens_after_consecutive_failures(self):
        breaker, _ = self._breaker(threshold=3)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow()

    def test_success_resets_failure_streak(self):
        breaker, _ = self._breaker(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED

    def test_half_open_probe_then_close(self):
        breaker, clock = self._breaker(threshold=1, reset_s=10.0)
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        clock.advance(9.0)
        assert not breaker.allow()
        clock.advance(1.0)
        assert breaker.allow()                      # the half-open probe
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow()

    def test_failed_probe_reopens(self):
        breaker, clock = self._breaker(threshold=1, reset_s=10.0)
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_failure()                    # probe fails
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow()

    def test_transitions_emit_metrics(self):
        clock = SimClock()
        monitoring = MonitoringService(clock)
        policy = ResiliencePolicy(breaker_failure_threshold=1)
        breaker = CircuitBreaker("ai.x", policy, clock, monitoring)
        breaker.record_failure()
        assert monitoring.metrics.counter(
            "resilience.breaker.ai.x.open") == 1.0


class TestResilientExecutor:
    def _executor(self, **kwargs):
        clock = SimClock()
        monitoring = MonitoringService(clock)
        policy = ResiliencePolicy(**kwargs)
        return ResilientExecutor(policy, clock, monitoring)

    def test_retries_then_succeeds(self):
        executor = self._executor(max_attempts=3)
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise ServiceUnavailableError("transient")
            return "ok"

        assert executor.call("kb", flaky) == "ok"
        assert len(attempts) == 3
        assert executor.monitoring.metrics.counter("resilience.retries") == 2.0
        assert executor.monitoring.metrics.counter(
            "resilience.kb.success") == 1.0

    def test_backoff_advances_simulated_time_deterministically(self):
        elapsed = []
        for _ in range(2):
            executor = self._executor(max_attempts=3, base_backoff_s=0.5,
                                      jitter=0.5, seed=11)
            calls = [0]

            def flaky():
                calls[0] += 1
                if calls[0] < 3:
                    raise ServiceUnavailableError("transient")
                return "ok"

            executor.call("kb", flaky)
            elapsed.append(executor.clock.now)
        assert elapsed[0] == elapsed[1]
        assert elapsed[0] > 0.0

    def test_raises_after_exhausting_attempts(self):
        executor = self._executor(max_attempts=2)

        def dead():
            raise ServiceUnavailableError("down")

        with pytest.raises(ServiceUnavailableError):
            executor.call("kb", dead)
        assert executor.monitoring.metrics.counter(
            "resilience.kb.failures") == 2.0

    def test_retry_budget_caps_retries(self):
        executor = self._executor(max_attempts=5, retry_budget=1)

        def dead():
            raise ServiceUnavailableError("down")

        with pytest.raises(ServiceUnavailableError):
            executor.call("kb", dead)
        # 1 initial attempt + 1 budgeted retry, then the budget is dry.
        assert executor.monitoring.metrics.counter(
            "resilience.kb.failures") == 2.0
        assert executor.monitoring.metrics.counter(
            "resilience.budget_exhausted") == 1.0
        assert executor.retries_left == 0

    def test_slow_success_counts_as_timeout(self):
        executor = self._executor(max_attempts=1, timeout_s=0.1)
        clock = executor.clock

        def slow():
            clock.advance(0.5)
            return "late"

        with pytest.raises(DeadlineExceededError):
            executor.call("kb", slow)
        assert executor.monitoring.metrics.counter(
            "resilience.kb.timeouts") == 1.0

    def test_failover_to_fallback(self):
        executor = self._executor(max_attempts=1)

        def dead():
            raise ServiceUnavailableError("primary down")

        result = executor.call("a", dead, fallbacks=[("b", lambda: "backup")])
        assert result == "backup"
        assert executor.monitoring.metrics.counter(
            "resilience.failover") == 1.0
        assert executor.monitoring.metrics.counter(
            "resilience.b.success") == 1.0

    def test_open_breaker_skipped_at_dispatch(self):
        executor = self._executor(max_attempts=1,
                                  breaker_failure_threshold=1,
                                  breaker_reset_s=1e9)
        executor.breaker("a").record_failure()  # trip it
        result = executor.call(
            "a", lambda: "never", fallbacks=[("b", lambda: "backup")])
        assert result == "backup"
        assert executor.monitoring.metrics.counter(
            "resilience.a.rejected_open") == 1.0

    def test_hedged_request_jumps_to_fallback(self):
        executor = self._executor(max_attempts=2, hedge_after_s=0.05)

        def dead():
            raise ServiceUnavailableError("primary down")

        result = executor.call("a", dead, fallbacks=[("b", lambda: "hedge")])
        assert result == "hedge"
        assert executor.monitoring.metrics.counter("resilience.hedged") == 1.0

    def test_breaker_instances_are_cached_per_target(self):
        executor = self._executor()
        assert executor.breaker("x") is executor.breaker("x")
        assert executor.breaker("x") is not executor.breaker("y")
