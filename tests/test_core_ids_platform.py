"""Tests for deterministic id generation and platform facade basics."""

import pytest

from repro import HealthCloudPlatform
from repro.core.ids import IdFactory, content_id


class TestIdFactory:
    def test_prefixed_format(self):
        ids = IdFactory(seed=1)
        identifier = ids.new("patient")
        assert identifier.startswith("patient-")
        assert len(identifier.split("-", 1)[1]) == 12

    def test_unique_within_factory(self):
        ids = IdFactory(seed=1)
        generated = {ids.new("x") for _ in range(1000)}
        assert len(generated) == 1000

    def test_deterministic_across_factories(self):
        a = IdFactory(seed=9)
        b = IdFactory(seed=9)
        assert [a.new("t") for _ in range(5)] == [b.new("t")
                                                  for _ in range(5)]

    def test_seed_changes_ids(self):
        assert IdFactory(seed=1).new("t") != IdFactory(seed=2).new("t")

    def test_pseudo_uuid_shape(self):
        uuid = IdFactory(seed=3).pseudo_uuid()
        parts = uuid.split("-")
        assert [len(p) for p in parts] == [8, 4, 4, 4, 12]

    def test_content_id_stable(self):
        assert content_id(b"abc") == content_id(b"abc")
        assert content_id(b"abc") != content_id(b"abd")
        assert content_id(b"abc", prefix="rec").startswith("rec-")


class TestPlatformFacade:
    def test_register_tenant_creates_defaults(self):
        platform = HealthCloudPlatform(seed=2, use_blockchain=False)
        context = platform.register_tenant("acme")
        assert context.default_org.name == "default"
        assert context.default_env.kind == "development"
        assert context.default_org.org_id in \
            context.tenant.organization_ids

    def test_platform_deterministic_per_seed(self):
        a = HealthCloudPlatform(seed=3, use_blockchain=False)
        b = HealthCloudPlatform(seed=3, use_blockchain=False)
        reg_a = a.ingestion.register_client("c")
        reg_b = b.ingestion.register_client("c")
        assert reg_a.public_key.fingerprint() == \
            reg_b.public_key.fingerprint()

    def test_no_blockchain_mode(self):
        platform = HealthCloudPlatform(seed=4, use_blockchain=False)
        assert platform.blockchain is None
        platform.flush_blockchain()  # no-op, must not raise
        report = platform.audit.run_audit()
        assert report.ledger_valid is None

    def test_run_ingestion_empty_queue(self):
        platform = HealthCloudPlatform(seed=5, use_blockchain=False)
        assert platform.run_ingestion() == 0

    def test_default_controls_marked(self):
        platform = HealthCloudPlatform(seed=6, use_blockchain=False)
        from repro.compliance.hipaa import ControlStatus
        control = next(c for c in platform.controls.controls()
                       if c.control_id == "gdpr-17-erasure")
        assert control.status is ControlStatus.IMPLEMENTED
        assert "gdpr" in control.satisfied_by
