"""Tests for federated identity management."""

import dataclasses
import hashlib
import hmac

import pytest

from repro.cloudsim.clock import SimClock
from repro.core.errors import AuthenticationError, NotFoundError
from repro.rbac.engine import RbacEngine
from repro.rbac.federation import (
    ExternalIdentityProvider,
    FederatedIdentityService,
)


@pytest.fixture
def federation():
    clock = SimClock()
    engine = RbacEngine()
    tenant = engine.create_tenant("acme")
    user = engine.register_user(tenant.tenant_id, "alice",
                                external_identity="alice@hospital.org")
    idp = ExternalIdentityProvider("hospital-idp", b"idp-secret-key", clock)
    service = FederatedIdentityService(engine, clock)
    service.approve_idp("hospital-idp", b"idp-secret-key")
    service.link_identity("hospital-idp", "alice@hospital.org", user.user_id)
    return clock, idp, service, user


class TestFederation:
    def test_valid_token_authenticates(self, federation):
        _, idp, service, user = federation
        token = idp.issue_token("alice@hospital.org")
        assert service.authenticate(token).user_id == user.user_id

    def test_unapproved_idp_rejected(self, federation):
        clock, _, service, _ = federation
        rogue = ExternalIdentityProvider("rogue-idp", b"rogue-secret", clock)
        with pytest.raises(AuthenticationError):
            service.authenticate(rogue.issue_token("alice@hospital.org"))

    def test_forged_signature_rejected(self, federation):
        clock, _, service, _ = federation
        # Same issuer name, wrong secret -> signature check fails.
        imposter = ExternalIdentityProvider("hospital-idp", b"wrong-secret",
                                            clock)
        with pytest.raises(AuthenticationError):
            service.authenticate(imposter.issue_token("alice@hospital.org"))

    def test_expired_token_rejected(self, federation):
        clock, idp, service, _ = federation
        token = idp.issue_token("alice@hospital.org", ttl_s=10.0)
        clock.advance(11.0)
        with pytest.raises(AuthenticationError):
            service.authenticate(token)

    def test_unlinked_subject_rejected(self, federation):
        _, idp, service, _ = federation
        token = idp.issue_token("mallory@hospital.org")
        with pytest.raises(AuthenticationError):
            service.authenticate(token)

    def test_tampered_subject_rejected(self, federation):
        _, idp, service, _ = federation
        token = idp.issue_token("alice@hospital.org")
        tampered = dataclasses.replace(token, subject="admin@hospital.org")
        with pytest.raises(AuthenticationError):
            service.authenticate(tampered)

    def test_revoked_idp_rejected(self, federation):
        _, idp, service, _ = federation
        token = idp.issue_token("alice@hospital.org")
        service.revoke_idp("hospital-idp")
        with pytest.raises(AuthenticationError):
            service.authenticate(token)

    def test_link_requires_registered_user(self, federation):
        _, _, service, _ = federation
        with pytest.raises(NotFoundError):
            service.link_identity("hospital-idp", "x@y", "user-ghost")

    def test_future_issued_token_rejected(self, federation):
        # A token claiming to be issued in the future must not validate
        # merely because it also has not expired yet.
        _, idp, service, _ = federation
        token = idp.issue_token("alice@hospital.org")
        forged = dataclasses.replace(token, issued_at=token.issued_at + 500.0,
                                     expires_at=token.expires_at + 500.0)
        signature = hmac.new(b"idp-secret-key", forged.payload(),
                             hashlib.sha256).digest()
        forged = dataclasses.replace(forged, signature=signature)
        with pytest.raises(AuthenticationError, match="not yet valid"):
            service.authenticate(forged)

    def test_ill_formed_validity_window_rejected(self, federation):
        # iat > exp is a contradiction; such a token must never authenticate
        # even when "now" happens to fall before the expiry check.
        _, idp, service, _ = federation
        token = idp.issue_token("alice@hospital.org")
        forged = dataclasses.replace(token, issued_at=token.expires_at + 1.0)
        signature = hmac.new(b"idp-secret-key", forged.payload(),
                             hashlib.sha256).digest()
        forged = dataclasses.replace(forged, signature=signature)
        with pytest.raises(AuthenticationError, match="iat > exp"):
            service.authenticate(forged)

    def test_token_becomes_valid_once_clock_catches_up(self, federation):
        clock, idp, service, user = federation
        token = idp.issue_token("alice@hospital.org")
        forged = dataclasses.replace(token, issued_at=token.issued_at + 500.0,
                                     expires_at=token.expires_at + 500.0)
        signature = hmac.new(b"idp-secret-key", forged.payload(),
                             hashlib.sha256).digest()
        forged = dataclasses.replace(forged, signature=signature)
        clock.advance(500.0)
        assert service.authenticate(forged).user_id == user.user_id
