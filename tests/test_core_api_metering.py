"""Tests for the API management gateway and metering service."""

import pytest

from repro.cloudsim.clock import SimClock
from repro.core.api import ApiGateway, ApiRequest, RateLimiter, RouteSpec
from repro.core.errors import ConfigurationError, NotFoundError
from repro.core.metering import MeteringService
from repro.rbac.engine import RbacEngine
from repro.rbac.federation import (
    ExternalIdentityProvider,
    FederatedIdentityService,
)
from repro.rbac.model import Action, Permission, Scope, ScopeKind


@pytest.fixture
def api_world():
    clock = SimClock()
    rbac = RbacEngine()
    tenant = rbac.create_tenant("acme")
    org = rbac.create_organization(tenant.tenant_id, "org")
    env = rbac.create_environment(org.org_id, "prod")
    user = rbac.register_user(tenant.tenant_id, "alice")
    scope = Scope(ScopeKind.ORGANIZATION, org.org_id)
    rbac.define_role("reader", [Permission(Action.READ, "records", scope)])
    rbac.bind_role(user.user_id, org.org_id, env.env_id, "reader")

    federation = FederatedIdentityService(rbac, clock)
    idp = ExternalIdentityProvider("idp", b"idp-secret-key-01", clock)
    federation.approve_idp("idp", b"idp-secret-key-01")
    federation.link_identity("idp", "alice@acme", user.user_id)

    meter = MeteringService(clock=clock)
    gateway = ApiGateway(rbac, federation, clock=clock, rate_limit=5,
                         rate_window_s=60.0,
                         meter=lambda tenant_id, path: meter.record(
                             tenant_id, "api.call"))
    gateway.register_route(RouteSpec(
        path="/records/list",
        handler=lambda context, **kw: {"records": ["r1", "r2"], "kw": kw},
        action=Action.READ, resource_type="records",
        scope_kind=ScopeKind.ORGANIZATION))
    gateway.register_route(RouteSpec(
        path="/records/write",
        handler=lambda context, **kw: {"written": True},
        action=Action.WRITE, resource_type="records",
        scope_kind=ScopeKind.ORGANIZATION))
    gateway.register_route(RouteSpec(
        path="/boom",
        handler=lambda context, **kw: 1 / 0,
        action=Action.READ, resource_type="records",
        scope_kind=ScopeKind.ORGANIZATION))
    return gateway, idp, org, env, meter, tenant


def _call(gateway, idp, org, env, path="/records/list", subject="alice@acme",
          **kwargs):
    token = idp.issue_token(subject)
    return gateway.dispatch(ApiRequest(
        path=path, token=token, scope_entity_id=org.org_id,
        org_id=org.org_id, env_id=env.env_id, params=kwargs))


class TestApiGateway:
    def test_authenticated_authorized_call(self, api_world):
        gateway, idp, org, env, _, _ = api_world
        response = _call(gateway, idp, org, env)
        assert response.status == 200
        assert response.body["records"] == ["r1", "r2"]

    def test_unauthenticated_401(self, api_world):
        gateway, _, org, env, _, _ = api_world
        rogue = ExternalIdentityProvider("rogue", b"rogue-secret-0001")
        response = gateway.dispatch(ApiRequest(
            path="/records/list", token=rogue.issue_token("alice@acme"),
            scope_entity_id=org.org_id, org_id=org.org_id,
            env_id=env.env_id))
        assert response.status == 401

    def test_unauthorized_403(self, api_world):
        gateway, idp, org, env, _, _ = api_world
        response = _call(gateway, idp, org, env, path="/records/write")
        assert response.status == 403

    def test_unknown_route_404(self, api_world):
        gateway, idp, org, env, _, _ = api_world
        response = _call(gateway, idp, org, env, path="/nothing")
        assert response.status == 404

    def test_handler_fault_500(self, api_world):
        gateway, idp, org, env, _, _ = api_world
        response = _call(gateway, idp, org, env, path="/boom")
        assert response.status == 500

    def test_rate_limit_429(self, api_world):
        gateway, idp, org, env, _, _ = api_world
        statuses = [_call(gateway, idp, org, env).status for _ in range(7)]
        assert statuses[:5] == [200] * 5
        assert statuses[5] == 429

    def test_rate_window_resets(self, api_world):
        gateway, idp, org, env, _, _ = api_world
        for _ in range(5):
            _call(gateway, idp, org, env)
        assert _call(gateway, idp, org, env).status == 429
        gateway.clock.advance(61.0)
        assert _call(gateway, idp, org, env).status == 200

    def test_every_call_audited(self, api_world):
        gateway, idp, org, env, _, _ = api_world
        _call(gateway, idp, org, env)
        _call(gateway, idp, org, env, path="/records/write")  # 403
        entries = gateway.monitoring.logs.entries(stream="api")
        assert len(entries) == 2
        assert gateway.monitoring.logs.verify_chain()

    def test_successful_calls_metered(self, api_world):
        gateway, idp, org, env, meter, tenant = api_world
        _call(gateway, idp, org, env)                          # 200, metered
        _call(gateway, idp, org, env, path="/records/write")   # 403, not
        assert meter.usage_for(tenant.tenant_id, "api.call") == 1

    def test_duplicate_route_rejected(self, api_world):
        gateway, *_ = api_world
        with pytest.raises(ConfigurationError):
            gateway.register_route(RouteSpec(
                "/records/list", lambda context: None, Action.READ,
                "records", ScopeKind.ORGANIZATION))

    def test_legacy_call_shim_deprecated_but_working(self, api_world):
        gateway, idp, org, env, _, _ = api_world
        token = idp.issue_token("alice@acme")
        with pytest.warns(DeprecationWarning):
            response = gateway.call(
                "/records/list", token, scope_entity_id=org.org_id,
                org_id=org.org_id, env_id=env.env_id)
        assert response.status == 200
        assert response.body["records"] == ["r1", "r2"]


class TestRateLimiter:
    def test_window_semantics(self):
        clock = SimClock()
        limiter = RateLimiter(limit=2, window_s=10.0, clock=clock)
        assert limiter.allow("t")
        assert limiter.allow("t")
        assert not limiter.allow("t")
        clock.advance(10.0)
        assert limiter.allow("t")

    def test_keys_independent(self):
        limiter = RateLimiter(limit=1, window_s=10.0, clock=SimClock())
        assert limiter.allow("a")
        assert limiter.allow("b")
        assert not limiter.allow("a")


class TestMetering:
    def test_usage_and_invoice(self):
        clock = SimClock()
        meter = MeteringService(clock=clock)
        meter.record("t1", "ingestion.bundle", 10)
        clock.advance(100.0)
        meter.record("t1", "export.full", 2)
        meter.record("t2", "ingestion.bundle", 3)
        invoice = meter.invoice("t1")
        assert invoice.total == pytest.approx(10 * 0.02 + 2 * 2.00)
        assert len(invoice.lines) == 2

    def test_invoice_period_filter(self):
        clock = SimClock()
        meter = MeteringService(clock=clock)
        meter.record("t1", "api.call", 100)
        clock.advance(1000.0)
        meter.record("t1", "api.call", 50)
        invoice = meter.invoice("t1", period_start=500.0)
        assert invoice.total == pytest.approx(50 * 0.0005)

    def test_unknown_service_rejected(self):
        with pytest.raises(NotFoundError):
            MeteringService().record("t1", "teleportation")

    def test_negative_values_rejected(self):
        meter = MeteringService()
        with pytest.raises(ConfigurationError):
            meter.record("t1", "api.call", -1)
        with pytest.raises(ConfigurationError):
            meter.set_price("api.call", -0.1)

    def test_top_consumers(self):
        meter = MeteringService()
        meter.record("t1", "api.call", 100)
        meter.record("t2", "api.call", 300)
        meter.record("t3", "api.call", 200)
        assert meter.top_consumers("api.call", k=2) == [("t2", 300.0),
                                                        ("t3", 200.0)]
