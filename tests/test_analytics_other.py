"""Tests for DDI prediction, gene-disease completion, and model lifecycle."""

import numpy as np
import pytest

from repro.analytics.genedisease import GeneDiseasePredictor
from repro.analytics.interactions import (
    LogisticRegression,
    TiresiasPredictor,
)
from repro.analytics.lifecycle import ModelRegistry, ModelStage
from repro.analytics.metrics import auc_roc
from repro.core.errors import (
    ConfigurationError,
    ModelLifecycleError,
    NotFoundError,
)


class TestLogisticRegression:
    def test_learns_separable_data(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(200, 2))
        y = (X[:, 0] + X[:, 1] > 0).astype(float)
        model = LogisticRegression(iterations=500).fit(X, y)
        predictions = model.predict_proba(X)
        assert auc_roc(y, predictions) > 0.95

    def test_unfitted_rejected(self):
        with pytest.raises(ConfigurationError):
            LogisticRegression().predict_proba(np.zeros((1, 2)))


class TestTiresias:
    @pytest.fixture(scope="class")
    def ddi_world(self, universe, drug_similarities):
        """Known interactions derived from latent similarity (planted)."""
        latents = universe.drug_latents
        norms = np.linalg.norm(latents, axis=1, keepdims=True)
        similarity = (latents / norms) @ (latents / norms).T
        n = len(universe.drugs)
        pairs = [(i, j) for i in range(n) for j in range(i + 1, n)
                 if similarity[i, j] > 0.65]
        rng = np.random.default_rng(4)
        rng.shuffle(pairs)
        split = max(1, len(pairs) // 2)
        return pairs[:split], pairs[split:], n

    def test_scores_known_pairs_higher(self, ddi_world, drug_similarities):
        train_pairs, test_pairs, n_drugs = ddi_world
        if len(test_pairs) < 3:
            pytest.skip("not enough planted interactions in this universe")
        predictor = TiresiasPredictor(drug_similarities, seed=1)
        predictor.fit(train_pairs, n_drugs)
        rng = np.random.default_rng(9)
        known = set(map(tuple, train_pairs)) | set(map(tuple, test_pairs))
        negatives = []
        while len(negatives) < len(test_pairs):
            a, b = sorted(rng.integers(n_drugs, size=2).tolist())
            if a != b and (a, b) not in known:
                negatives.append((a, b))
        positive_scores = predictor.score_pairs(test_pairs)
        negative_scores = predictor.score_pairs(negatives)
        labels = np.concatenate([np.ones(len(test_pairs)),
                                 np.zeros(len(negatives))])
        scores = np.concatenate([positive_scores, negative_scores])
        assert auc_roc(labels, scores) > 0.6

    def test_unfitted_rejected(self, drug_similarities):
        with pytest.raises(ConfigurationError):
            TiresiasPredictor(drug_similarities).score((0, 1))


class TestGeneDisease:
    def test_completion_recovers_heldout(self, universe):
        truth = universe.gene_disease_matrix.astype(float)
        rng = np.random.default_rng(3)
        mask = rng.random(truth.shape) < 0.8  # observe 80%
        observed = truth * mask
        result = GeneDiseasePredictor(rank=10, seed=1).fit(observed, mask)
        heldout = ~mask
        labels = truth[heldout]
        scores = result.scores()[heldout]
        assert auc_roc(labels, scores) > 0.7

    def test_top_novel_excludes_training(self, universe):
        truth = universe.gene_disease_matrix.astype(float)
        result = GeneDiseasePredictor(rank=8, seed=1,
                                      max_iterations=50).fit(truth)
        for gene, disease, _ in result.top_novel(truth, k=10):
            assert truth[gene, disease] == 0

    def test_mask_shape_checked(self):
        predictor = GeneDiseasePredictor(rank=4)
        with pytest.raises(ConfigurationError):
            predictor.fit(np.zeros((4, 4)), np.zeros((3, 3), dtype=bool))


class TestModelLifecycle:
    def test_full_happy_path(self):
        registry = ModelRegistry()
        registry.start("jmf", acceptance={"auc": 0.7})
        registry.mark_generated("jmf", artifact=object())
        registry.record_test("jmf", {"auc": 0.85})
        record = registry.deploy("jmf")
        assert record.stage is ModelStage.DEPLOYED
        assert record.approved_for_clients

    def test_deploy_blocked_by_acceptance(self):
        registry = ModelRegistry()
        registry.start("jmf", acceptance={"auc": 0.9})
        registry.mark_generated("jmf", artifact=object())
        registry.record_test("jmf", {"auc": 0.85})
        with pytest.raises(ModelLifecycleError):
            registry.deploy("jmf")

    def test_deploy_blocked_by_missing_metric(self):
        registry = ModelRegistry()
        registry.start("jmf", acceptance={"auc": 0.5})
        registry.mark_generated("jmf", artifact=object())
        registry.record_test("jmf", {"aupr": 0.9})
        with pytest.raises(ModelLifecycleError):
            registry.deploy("jmf")

    def test_cannot_skip_stages(self):
        registry = ModelRegistry()
        registry.start("jmf")
        with pytest.raises(ModelLifecycleError):
            registry.record_test("jmf", {"auc": 1.0})
        with pytest.raises(ModelLifecycleError):
            registry.deploy("jmf")

    def test_update_creates_new_version(self):
        registry = ModelRegistry()
        registry.start("jmf", acceptance={"auc": 0.5})
        registry.mark_generated("jmf", artifact="v1")
        registry.record_test("jmf", {"auc": 0.8})
        registry.deploy("jmf")
        new = registry.update("jmf")
        assert new.version == 2
        assert new.stage is ModelStage.DATA_CLEANING
        assert registry.version("jmf", 1).stage is ModelStage.RETIRED
        assert new.acceptance == {"auc": 0.5}  # inherited

    def test_retest_after_failure(self):
        registry = ModelRegistry()
        registry.start("jmf")
        registry.mark_generated("jmf", artifact="v1")
        registry.record_test("jmf", {"auc": 0.4})
        # tested -> generated (rework) -> tested again is legal
        record = registry.latest("jmf")
        registry._transition(record, ModelStage.GENERATED)
        registry.record_test("jmf", {"auc": 0.9})
        assert record.test_metrics == {"auc": 0.9}

    def test_deployed_models_listing(self):
        registry = ModelRegistry()
        registry.start("a")
        registry.mark_generated("a", artifact=1)
        registry.record_test("a", {})
        registry.deploy("a")
        registry.start("b")
        assert [r.name for r in registry.deployed_models()] == ["a"]

    def test_unknown_model(self):
        with pytest.raises(NotFoundError):
            ModelRegistry().latest("ghost")
