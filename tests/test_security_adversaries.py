"""Adversary-model tests (Section IV-A).

Exercises the threat model's two adversary classes against the deployed
defenses:

* **honest-but-curious insiders** — follow the protocol but try to learn
  PHI from what they can legitimately touch (logs, ciphertexts, the
  ledger, anonymized exports);
* **malicious adversaries** — deviate arbitrarily: tamper with uploads,
  replay tokens, forge endorsements, inject malware, rewrite history.

Each test is one attack; the assertion is the defense holding.
"""

import dataclasses

import pytest

from repro import HealthCloudPlatform
from repro.core.errors import (
    AuthenticationError,
    AuthorizationError,
    IntegrityError,
    KeyManagementError,
)
from repro.fhir.resources import Bundle, Observation, Patient
from repro.ingestion.pipeline import IngestionStatus, encrypt_bundle_for_upload


@pytest.fixture
def deployed():
    platform = HealthCloudPlatform(seed=201)
    context = platform.register_tenant("hospital")
    group = platform.rbac.create_group(context.tenant.tenant_id, "study")
    registration = platform.ingestion.register_client("bridge")
    platform.consent.grant("pt-alice", group.group_id)
    bundle = Bundle(id="b1")
    bundle.add(Patient(id="pt-alice", name={"family": "Anderson"},
                       birthDate="1975-08-20", gender="female",
                       identifier=[{"system": "ssn",
                                    "value": "987-65-4321"}]))
    bundle.add(Observation(id="o1", code={"text": "HbA1c"},
                           subject="Patient/pt-alice",
                           valueQuantity={"value": 8.1, "unit": "%"}))
    job = platform.ingestion.upload(
        "bridge", encrypt_bundle_for_upload(bundle, registration),
        group.group_id)
    platform.run_ingestion()
    assert platform.ingestion.status(job.job_id)[0] is IngestionStatus.STORED
    return platform, context, group, registration, job


class TestHonestButCurious:
    def test_logs_leak_no_phi(self, deployed):
        """An insider reading every log line learns no identifiers."""
        platform, *_ = deployed
        for entry in platform.monitoring.logs.entries():
            assert "Anderson" not in entry.message
            assert "987-65-4321" not in entry.message

    def test_ledger_carries_no_phi(self, deployed):
        """The replicated ledger holds handles and hashes, never PHI."""
        platform, _, _, _, job = deployed
        for tx in platform.blockchain.peers[0].ledger.transactions():
            serialized = str(tx.args)
            assert "Anderson" not in serialized
            assert "987-65-4321" not in serialized
            assert "pt-alice" not in serialized  # de-identified actor paths

    def test_lake_ciphertexts_opaque(self, deployed):
        """Raw storage access without key grants reveals nothing."""
        platform, _, _, _, job = deployed
        for record_id in job.stored_record_ids:
            record = platform.datalake._records[record_id]
            assert b"Anderson" not in record.ciphertext
            assert b"987-65-4321" not in record.ciphertext

    def test_curious_kms_principal_blocked(self, deployed):
        """A service identity without a grant cannot unwrap data keys."""
        platform, _, _, _, job = deployed
        record = platform.datalake._records[job.stored_record_ids[0]]
        with pytest.raises(AuthorizationError):
            platform.kms.unwrap_data_key(record.key_id, record.wrapped_key,
                                         "curious-billing-service",
                                         key_version=record.key_version)

    def test_anonymized_record_is_deidentified(self, deployed):
        """The version analysts read has pseudonymous ids, no identifiers."""
        platform, _, _, _, job = deployed
        anonymized = platform.datalake.retrieve(job.stored_record_ids[1])
        assert b"Anderson" not in anonymized
        assert b"987-65-4321" not in anonymized
        assert b"ref-" in anonymized

    def test_unauthorized_export_denied_and_audited(self, deployed):
        platform, context, group, _, _ = deployed
        snoop = platform.rbac.register_user(context.tenant.tenant_id,
                                            "curious-admin")
        with pytest.raises(AuthorizationError):
            platform.export.export_full(snoop.user_id, group.group_id,
                                        context.default_org.org_id,
                                        context.default_env.env_id)
        denials = [d for d in platform.rbac.decision_log() if not d.allowed]
        assert any(d.user_id == snoop.user_id for d in denials)


class TestMaliciousAdversaries:
    def test_tampered_upload_rejected(self, deployed):
        """Bit-flipping an in-flight envelope breaks the AEAD tag."""
        platform, _, group, registration, _ = deployed
        platform.consent.grant("pt-bob", group.group_id)
        bundle = Bundle(id="b2").add(
            Patient(id="pt-bob", name={"family": "B"}, birthDate="1980-01-01",
                    gender="male"))
        envelope = encrypt_bundle_for_upload(bundle, registration)
        body = envelope.body
        flipped = dataclasses.replace(
            body, body=bytes([body.body[0] ^ 0xFF]) + body.body[1:])
        tampered = dataclasses.replace(envelope, body=flipped)
        job = platform.ingestion.upload("bridge", tampered, group.group_id)
        platform.run_ingestion()
        status, reason = platform.ingestion.status(job.job_id)
        assert status is IngestionStatus.REJECTED
        assert "decryption" in reason

    def test_replayed_attestation_quote_rejected(self, deployed):
        """A captured quote cannot satisfy a later nonce challenge."""
        from repro.trusted import AttestationService, Tpm, verify_quote
        attestation = AttestationService(seed=5)
        tpm = Tpm("tpm:victim", seed=6)
        old_nonce = attestation.fresh_nonce()
        captured = tpm.quote(old_nonce, (0,))
        fresh_nonce = attestation.fresh_nonce()
        assert not verify_quote(tpm.attestation_public_key, captured,
                                fresh_nonce)

    def test_expired_token_replay_rejected(self, deployed):
        platform, context, _, _, _ = deployed
        from repro.rbac import ExternalIdentityProvider
        user = platform.rbac.register_user(context.tenant.tenant_id, "dr-x")
        idp = ExternalIdentityProvider("idp", b"secret-0123456789",
                                       platform.clock)
        platform.federation.approve_idp("idp", b"secret-0123456789")
        platform.federation.link_identity("idp", "dr-x@idp", user.user_id)
        token = idp.issue_token("dr-x@idp", ttl_s=60.0)
        assert platform.federation.authenticate(token).user_id == user.user_id
        platform.clock.advance(61.0)  # attacker replays after expiry
        with pytest.raises(AuthenticationError):
            platform.federation.authenticate(token)

    def test_history_rewrite_detected_by_audit(self, deployed):
        """A malicious peer admin rewrites a block; the audit pass flags it."""
        platform, *_ = deployed
        ledger = platform.blockchain.peers[0].ledger
        block = ledger.block(0)
        forged_tx = dataclasses.replace(block.transactions[0],
                                        args={"handle": "SCRUBBED"})
        ledger._blocks[0] = dataclasses.replace(
            block, transactions=(forged_tx,) + block.transactions[1:])
        report = platform.audit.run_audit()
        assert not report.clean
        assert report.ledger_valid is False

    def test_malware_sender_flagged_as_risky(self, deployed):
        """Repeated malware uploads trip the malware network's analytics."""
        from repro.crypto.rsa import hybrid_encrypt
        platform, _, group, registration, _ = deployed
        for i in range(3):
            payload = f'{{"n": {i}}}'.encode() + b"\x7fELF evil"
            envelope = hybrid_encrypt(registration.public_key, payload)
            platform.ingestion.upload("bridge", envelope, group.group_id)
        platform.run_ingestion()
        assert platform.blockchain.query("malware", "is_risky_sender",
                                         sender="bridge")

    def test_erased_patient_stays_erased_for_attackers(self, deployed):
        """Post-erasure, even full storage compromise yields nothing."""
        platform, _, _, _, job = deployed
        platform.gdpr.erase_subject("pt-alice")
        record = platform.datalake._records[job.stored_record_ids[0]]
        # The attacker has the ciphertext and the wrapped key...
        assert record.ciphertext and record.wrapped_key
        # ...but the KMS material is gone for every key version.
        with pytest.raises(KeyManagementError):
            platform.kms.unwrap_data_key(record.key_id, record.wrapped_key,
                                         platform.datalake.SERVICE_PRINCIPAL,
                                         key_version=record.key_version)

    def test_consent_forgery_blocked_at_export(self, deployed):
        """Revoked consent cannot be bypassed by asking again nicely."""
        platform, context, group, _, _ = deployed
        from repro.rbac.model import Action, Permission, Scope, ScopeKind
        analyst = platform.rbac.register_user(context.tenant.tenant_id,
                                              "cro")
        scope = Scope(ScopeKind.TENANT, context.tenant.tenant_id)
        platform.rbac.define_role("full-access", [
            Permission(Action.READ, "phi-data", scope)])
        platform.rbac.bind_role(analyst.user_id, context.default_org.org_id,
                                context.default_env.env_id, "full-access")
        platform.rbac.add_group_member(group.group_id, analyst.user_id)
        platform.consent.revoke_all_for_patient("pt-alice")
        from repro.core.errors import ConsentError
        with pytest.raises(ConsentError):
            platform.export.export_full(analyst.user_id, group.group_id,
                                        context.default_org.org_id,
                                        context.default_env.env_id)
