"""End-to-end health-plane tests: every instrumented layer feeds the plane.

The gateway, resilience executor, cache hierarchy, sharded blockchain,
and ingestion frontend all publish through the optional
``monitoring.healthplane`` hook; attaching a :class:`HealthPlane` must
light all of them up without changing simulated time, and leaving it
detached must cost nothing.
"""

import pytest

from repro.blockchain import ShardedBlockchainNetwork
from repro.caching import CacheHierarchy, CacheLevel, LruCache, Origin
from repro.cloudsim.clock import SimClock
from repro.cloudsim.healthplane import HealthPlane
from repro.cloudsim.monitoring import MonitoringService
from repro.core.api import ApiGateway, ApiRequest, RouteSpec
from repro.core.errors import ServiceUnavailableError
from repro.core.resilience import ResiliencePolicy, ResilientExecutor
from repro.ingestion import ShardedIngestionFrontend
from repro.rbac.engine import RbacEngine
from repro.rbac.federation import (
    ExternalIdentityProvider,
    FederatedIdentityService,
)
from repro.rbac.model import Action, Permission, Scope, ScopeKind


@pytest.fixture
def world():
    clock = SimClock()
    monitoring = MonitoringService(clock)
    plane = HealthPlane(monitoring, seed=11)

    rbac = RbacEngine()
    tenant = rbac.create_tenant("acme")
    org = rbac.create_organization(tenant.tenant_id, "org")
    env = rbac.create_environment(org.org_id, "prod")
    user = rbac.register_user(tenant.tenant_id, "alice")
    scope = Scope(ScopeKind.ORGANIZATION, org.org_id)
    rbac.define_role("reader", [Permission(Action.READ, "records", scope)])
    rbac.bind_role(user.user_id, org.org_id, env.env_id, "reader")

    federation = FederatedIdentityService(rbac, clock)
    idp = ExternalIdentityProvider("idp", b"idp-secret-key-01", clock)
    federation.approve_idp("idp", b"idp-secret-key-01")
    federation.link_identity("idp", "alice@acme", user.user_id)

    gateway = ApiGateway(rbac, federation, monitoring=monitoring,
                         clock=clock, rate_limit=100_000)
    state = {"fail": False}

    def handler(context, **kw):
        if state["fail"]:
            raise ServiceUnavailableError("kb down")
        return {"ok": True}

    gateway.register_route(RouteSpec(
        path="/echo", handler=handler, action=Action.READ,
        resource_type="records", scope_kind=ScopeKind.ORGANIZATION))
    return clock, monitoring, plane, gateway, idp, org, env, state


def _call(gateway, idp, org, env):
    return gateway.dispatch(ApiRequest(
        path="/echo", token=idp.issue_token("alice@acme"),
        scope_entity_id=org.org_id, org_id=org.org_id, env_id=env.env_id))


class TestGatewayFeed:
    def test_requests_land_in_series_accounting_and_stream(self, world):
        clock, monitoring, plane, gateway, idp, org, env, state = world
        sub = plane.events.subscribe("dash", kinds=["api"])
        assert _call(gateway, idp, org, env).status == 200
        state["fail"] = True
        assert _call(gateway, idp, org, env).status == 503
        # SLO counters: one good, one bad.
        assert plane.series.total("api.requests.good", 3600.0) == 1.0
        assert plane.series.total("api.requests.bad", 3600.0) == 1.0
        # Accounting saw the authenticated tenant and the route.
        tenants = plane.accounting.top("tenant", "requests")
        assert [h.key for h in tenants] == [org.tenant_id]
        assert plane.accounting.top("route", "faults")[0].key == "/echo"
        # The stream carries both request events with statuses.
        statuses = [e.attributes["status"] for e in sub.poll()]
        assert statuses == [200, 503]

    def test_unauthenticated_request_never_learns_a_tenant(self, world):
        clock, monitoring, plane, gateway, idp, org, env, _ = world
        import dataclasses
        bad = dataclasses.replace(idp.issue_token("alice@acme"),
                                  signature=b"forged")
        response = gateway.dispatch(ApiRequest(
            path="/echo", token=bad, scope_entity_id=org.org_id,
            org_id=org.org_id, env_id=env.env_id))
        assert response.status == 401
        tenants = [h.key for h in plane.accounting.top("tenant", "requests")]
        assert tenants == ["unauthenticated"]

    def test_page_fires_within_fast_window_of_sustained_fault(self, world):
        clock, monitoring, plane, gateway, idp, org, env, state = world
        plane.register_api_slo()
        # One calm hour seeds the long window.
        end = clock.now + 3600.0
        while clock.now < end:
            _call(gateway, idp, org, env)
            clock.advance(2.0)
        assert plane.evaluate() == []
        fault_start = clock.now
        state["fail"] = True
        pages = []
        while not pages and clock.now < fault_start + 1800.0:
            _call(gateway, idp, org, env)
            clock.advance(2.0)
            pages = [a for a in plane.evaluate() if a.severity == "page"]
        assert pages, "sustained 100% failure must page"
        assert pages[0].fired_at_s - fault_start <= 300.0

    def test_exemplar_links_latency_to_trace_when_traced(self):
        from repro.cloudsim.tracing import Tracer
        clock = SimClock()
        monitoring = MonitoringService(clock)
        plane = HealthPlane(monitoring)
        tracer = Tracer(clock)

        rbac = RbacEngine()
        tenant = rbac.create_tenant("t")
        org = rbac.create_organization(tenant.tenant_id, "o")
        env = rbac.create_environment(org.org_id, "e")
        user = rbac.register_user(tenant.tenant_id, "u")
        scope = Scope(ScopeKind.ORGANIZATION, org.org_id)
        rbac.define_role("r", [Permission(Action.READ, "records", scope)])
        rbac.bind_role(user.user_id, org.org_id, env.env_id, "r")
        federation = FederatedIdentityService(rbac, clock)
        idp = ExternalIdentityProvider("idp", b"idp-secret-key-01", clock)
        federation.approve_idp("idp", b"idp-secret-key-01")
        federation.link_identity("idp", "u@t", user.user_id)
        gateway = ApiGateway(rbac, federation, monitoring=monitoring,
                             clock=clock, tracer=tracer)
        gateway.register_route(RouteSpec(
            path="/echo", handler=lambda context, **kw: {},
            action=Action.READ, resource_type="records",
            scope_kind=ScopeKind.ORGANIZATION))
        gateway.dispatch(ApiRequest(
            path="/echo", token=idp.issue_token("u@t"),
            scope_entity_id=org.org_id, org_id=org.org_id,
            env_id=env.env_id))
        report = plane.snapshot()
        assert "api.latency" in report.exemplars
        trace_id = report.exemplars["api.latency"]["trace_id"]
        assert tracer.has_trace(trace_id)


class TestResilienceFeed:
    def test_breaker_transitions_and_hedges_hit_the_stream(self):
        clock = SimClock()
        monitoring = MonitoringService(clock)
        plane = HealthPlane(monitoring)
        sub = plane.events.subscribe("dash", kinds=["breaker", "hedge"])
        policy = ResiliencePolicy(max_attempts=1,
                                  breaker_failure_threshold=2,
                                  hedge_after_s=0.5)
        executor = ResilientExecutor(policy, clock, monitoring)

        def boom():
            raise ServiceUnavailableError("down")

        for _ in range(2):
            with pytest.raises(Exception):
                executor.call("kb", boom, fallbacks=[("kb2", boom)])
        kinds = [e.kind for e in sub.poll()]
        assert "breaker.transition" in kinds
        assert "hedge.fired" in kinds

    def test_slow_success_publishes_would_fire(self):
        clock = SimClock()
        monitoring = MonitoringService(clock)
        plane = HealthPlane(monitoring)
        sub = plane.events.subscribe("dash", kinds=["hedge"])
        policy = ResiliencePolicy(timeout_s=10.0, hedge_after_s=0.1)
        executor = ResilientExecutor(policy, clock, monitoring)

        def slow():
            clock.advance(0.5)
            return "ok"

        assert executor.call("kb", slow, fallbacks=[("kb2", slow)]) == "ok"
        assert [e.kind for e in sub.poll()] == ["hedge.would_fire"]


class TestCacheFeed:
    def test_origin_fetches_publish_events(self):
        clock = SimClock()
        monitoring = MonitoringService(clock)
        plane = HealthPlane(monitoring)
        sub = plane.events.subscribe("dash", kinds=["cache"])
        hierarchy = CacheHierarchy(
            [CacheLevel("server", LruCache(8), access_cost_s=1e-3)],
            Origin("kb", loader=lambda k: f"v{k}", access_cost_s=10e-3),
            clock=clock, monitoring=monitoring)
        hierarchy.get("a")                     # miss: origin fetch
        hierarchy.get("a")                     # hit: no event
        hierarchy.get_many(["b", "c"])         # one bulk origin fetch
        events = sub.poll()
        assert [e.kind for e in events] == ["cache.origin_fetch"] * 2
        assert events[0].attributes["keys"] == 1
        assert events[1].attributes["keys"] == 2


class TestShardAndIngestFeed:
    def test_shard_commits_feed_series_accounting_and_stream(self):
        network = ShardedBlockchainNetwork(2, seed=3, batch_size=4)
        plane = HealthPlane(network.monitoring)
        sub = plane.events.subscribe("dash", kinds=["shard", "ingestion"])
        frontend = ShardedIngestionFrontend(network, events_per_batch=4)
        for i in range(16):
            frontend.record_event(f"patient-{i % 8:03d}", handle=f"h-{i}",
                                  data_hash=f"{i:02x}", event="received",
                                  actor="ingest")
        report = frontend.flush()
        assert report is not None
        kinds = [e.kind for e in sub.poll()]
        assert "ingestion.batch_sealed" in kinds
        assert "ingestion.flush" in kinds
        assert "shard.commit" in kinds
        shards = [h.key for h in plane.accounting.top("shard", "requests")]
        assert shards and all(s.startswith("shard-") for s in shards)
        assert plane.series.has_series(
            "blockchain.shard.commit_s", labels={"shard": shards[0]})


class TestLogTail:
    def test_log_tail_publishes_warn_and_up_exactly_once(self):
        clock = SimClock()
        monitoring = MonitoringService(clock)
        plane = HealthPlane(monitoring)
        monitoring.log("api", "fine", level="INFO")
        monitoring.log("api", "slow", level="WARN")
        monitoring.log("api", "broken", level="ERROR")
        first = plane.log_tail()
        assert [e.attributes["level"] for e in first] == ["WARN", "ERROR"]
        assert plane.log_tail() == []          # cursor advanced
        monitoring.log("api", "again", level="ERROR")
        assert [e.attributes["message"] for e in plane.log_tail()] == ["again"]


class TestZeroCostWhenDetached:
    def test_attaching_the_plane_never_changes_simulated_time(self, world):
        clock, monitoring, plane, gateway, idp, org, env, state = world
        t0 = clock.now
        _call(gateway, idp, org, env)
        with_plane = clock.now - t0
        # Same world, no plane attached.
        clock2 = SimClock()
        monitoring2 = MonitoringService(clock2)
        rbac = RbacEngine()
        tenant = rbac.create_tenant("acme")
        org2 = rbac.create_organization(tenant.tenant_id, "org")
        env2 = rbac.create_environment(org2.org_id, "prod")
        user = rbac.register_user(tenant.tenant_id, "alice")
        scope = Scope(ScopeKind.ORGANIZATION, org2.org_id)
        rbac.define_role("reader",
                         [Permission(Action.READ, "records", scope)])
        rbac.bind_role(user.user_id, org2.org_id, env2.env_id, "reader")
        federation = FederatedIdentityService(rbac, clock2)
        idp2 = ExternalIdentityProvider("idp", b"idp-secret-key-01", clock2)
        federation.approve_idp("idp", b"idp-secret-key-01")
        federation.link_identity("idp", "alice@acme", user.user_id)
        gateway2 = ApiGateway(rbac, federation, monitoring=monitoring2,
                              clock=clock2, rate_limit=100_000)
        gateway2.register_route(RouteSpec(
            path="/echo", handler=lambda context, **kw: {"ok": True},
            action=Action.READ, resource_type="records",
            scope_kind=ScopeKind.ORGANIZATION))
        t0 = clock2.now
        _call(gateway2, idp2, org2, env2)
        assert clock2.now - t0 == with_plane

    def test_snapshot_reports_all_substrates(self, world):
        clock, monitoring, plane, gateway, idp, org, env, _ = world
        plane.register_api_slo()
        _call(gateway, idp, org, env)
        report = plane.snapshot()
        payload = report.to_dict()
        assert payload["series"]["cardinality"] >= 2
        assert payload["events"]["published"] >= 1
        assert payload["alerts_total"] == 0
        assert "tenant" in payload["top_usage"]
