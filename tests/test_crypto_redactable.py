"""Tests for leakage-free redactable signatures."""

import pytest

from repro.core.errors import IntegrityError
from repro.crypto.redactable import (
    RedactableSigner,
    deterministic_rng,
    merkle_baseline_leakage_bits,
    redact,
    require_share,
    structural_leakage_bits,
    verify_share,
)

FIELDS = [b"name=alice", b"dob=1980-03-12", b"dx=E11.9", b"rx=metformin",
          b"ssn=123-45-6789"]


@pytest.fixture
def signer(rsa_keypair):
    return RedactableSigner(rsa_keypair, rng=deterministic_rng(3))


@pytest.fixture
def record(signer):
    return signer.sign(FIELDS)


class TestSigning:
    def test_empty_record_rejected(self, signer):
        with pytest.raises(ValueError):
            signer.sign([])

    def test_full_disclosure_verifies(self, record, rsa_keypair):
        share = redact(record, range(len(FIELDS)))
        assert verify_share(rsa_keypair.public_key(), share)

    def test_partial_disclosure_verifies(self, record, rsa_keypair):
        share = redact(record, [1, 3])
        assert verify_share(rsa_keypair.public_key(), share)
        assert set(share.disclosed) == {1, 3}

    def test_empty_disclosure_verifies(self, record, rsa_keypair):
        share = redact(record, [])
        assert verify_share(rsa_keypair.public_key(), share)

    def test_out_of_range_disclosure(self, record):
        with pytest.raises(IndexError):
            redact(record, [99])


class TestHiding:
    def test_hidden_fields_not_in_share(self, record):
        share = redact(record, [2])
        revealed = b"".join(field for field, _ in share.disclosed.values())
        assert b"ssn" not in revealed
        assert b"alice" not in revealed

    def test_commitments_hide_equal_values(self, signer):
        # Two records with an identical field must produce different
        # commitments (randomness differs), or values leak cross-record.
        r1 = signer.sign([b"dx=E11.9", b"x"])
        r2 = signer.sign([b"dx=E11.9", b"y"])
        assert r1.randomness[0] != r2.randomness[0]
        s1 = redact(r1, [])
        s2 = redact(r2, [])
        assert s1.commitments[0] != s2.commitments[0]


class TestTampering:
    def test_forged_field_fails(self, record, rsa_keypair):
        share = redact(record, [0])
        field, randomness = share.disclosed[0]
        share.disclosed[0] = (b"name=mallory", randomness)
        assert not verify_share(rsa_keypair.public_key(), share)

    def test_moved_field_fails(self, record, rsa_keypair):
        share = redact(record, [0])
        opening = share.disclosed.pop(0)
        share.disclosed[1] = opening
        assert not verify_share(rsa_keypair.public_key(), share)

    def test_dropped_commitment_fails(self, record, rsa_keypair):
        share = redact(record, [0])
        truncated = type(share)(
            disclosed=share.disclosed,
            commitments=share.commitments[:-1],
            order_tokens=share.order_tokens[:-1],
            signature=share.signature,
        )
        assert not verify_share(rsa_keypair.public_key(), truncated)

    def test_wrong_key_fails(self, record, small_rsa_keypair):
        share = redact(record, [0])
        assert not verify_share(small_rsa_keypair.public_key(), share)

    def test_require_share_raises(self, record, small_rsa_keypair):
        share = redact(record, [0])
        with pytest.raises(IntegrityError):
            require_share(small_rsa_keypair.public_key(), share)


class TestLeakageMeasure:
    def test_redactable_leaks_less_than_merkle(self, record):
        share = redact(record, [0, 1])
        assert (structural_leakage_bits(share)
                < merkle_baseline_leakage_bits(len(FIELDS), 2))

    def test_merkle_leakage_grows_with_disclosure(self):
        assert (merkle_baseline_leakage_bits(16, 8)
                > merkle_baseline_leakage_bits(16, 2))
