"""Tests for request-path tracing: span trees, sealing, critical path,
and end-to-end propagation through the gateway/cache/resilience/KB/
blockchain stack."""

import json
from types import SimpleNamespace

import pytest

from repro.blockchain import standard_network
from repro.caching.hierarchy import CacheHierarchy, CacheLevel, Origin
from repro.caching.policies import LruCache
from repro.cloudsim.clock import SimClock
from repro.cloudsim.faults import FaultPlan
from repro.cloudsim.monitoring import MonitoringService
from repro.cloudsim.tracing import (
    NOOP_SPAN,
    TraceContext,
    Tracer,
    maybe_span,
)
from repro.core.api import ApiGateway, ApiRequest, RouteSpec
from repro.core.errors import IntegrityError, NotFoundError
from repro.core.resilience import ResiliencePolicy, ResilientExecutor
from repro.knowledge.remote import RemoteKnowledgeBase
from repro.rbac.engine import RbacEngine
from repro.rbac.federation import (
    ExternalIdentityProvider,
    FederatedIdentityService,
)
from repro.rbac.model import Action, Permission, Scope, ScopeKind
from repro import HealthCloudPlatform


# ---------------------------------------------------------------------------
# Unit level: the tracer itself.
# ---------------------------------------------------------------------------


class TestSpanTree:
    def test_root_span_starts_a_new_trace(self):
        tracer = Tracer()
        with tracer.span("op", "layer-a", k=1) as span:
            assert span.trace_id == "t-00000001"
            assert span.span_id == "s-00000001"
            assert span.parent_id is None
            assert span.attributes == {"k": 1}
        assert tracer.trace_ids() == ["t-00000001"]
        assert tracer.get_trace("t-00000001") is span

    def test_nested_spans_form_a_tree(self):
        tracer = Tracer()
        with tracer.span("root", "a") as root:
            with tracer.span("left", "b") as left:
                pass
            with tracer.span("right", "b") as right:
                with tracer.span("leaf", "c") as leaf:
                    pass
        assert [c.span_id for c in root.children] == [left.span_id,
                                                      right.span_id]
        assert right.children == [leaf]
        assert leaf.trace_id == root.trace_id
        assert leaf.parent_id == right.span_id
        assert [s.name for s in root.walk()] == ["root", "left", "right",
                                                 "leaf"]

    def test_timestamps_come_from_the_sim_clock(self):
        clock = SimClock()
        tracer = Tracer(clock)
        with tracer.span("root", "a") as root:
            clock.advance(1.5)
            with tracer.span("child", "b") as child:
                clock.advance(0.5)
        assert root.start_s == 0.0
        assert child.start_s == 1.5
        assert child.end_s == 2.0
        assert root.end_s == 2.0
        assert root.duration_s == pytest.approx(2.0)

    def test_tracer_never_advances_the_clock(self):
        clock = SimClock()
        tracer = Tracer(clock)
        with tracer.span("root", "a"):
            with tracer.span("child", "b") as child:
                child.set_attribute("x", 1)
                child.add_event("e", clock.now)
        assert clock.now == 0.0

    def test_exception_marks_error_status(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("root", "a") as span:
                raise ValueError("boom")
        assert span.status == "ERROR"
        assert "ValueError" in span.error
        assert span.finished
        assert tracer.has_trace(span.trace_id)

    def test_unwind_closes_abandoned_descendants(self):
        # A span entered without a `with` block (or abandoned by an
        # exception) must not wedge the stack: finishing an ancestor pops
        # and closes it.
        tracer = Tracer()
        with tracer.span("root", "a") as root:
            abandoned_cm = tracer.span("abandoned", "b")
            abandoned = abandoned_cm.__enter__()
        assert abandoned.finished
        assert tracer.current_context() is None
        assert [s.name for s in root.walk()] == ["root", "abandoned"]

    def test_current_context_tracks_innermost_span(self):
        tracer = Tracer()
        assert tracer.current_context() is None
        with tracer.span("root", "a") as root:
            assert tracer.current_context() == TraceContext(
                root.trace_id, root.span_id)
            with tracer.span("child", "b") as child:
                assert tracer.current_context().span_id == child.span_id
        assert tracer.current_context() is None

    def test_disabled_tracer_hands_out_the_noop(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("x", "y") is NOOP_SPAN
        assert maybe_span(tracer, "x", "y") is NOOP_SPAN
        assert maybe_span(None, "x", "y") is NOOP_SPAN
        assert tracer.trace_ids() == []

    def test_noop_span_absorbs_the_whole_span_api(self):
        with maybe_span(None, "x", "y") as span:
            span.set_attribute("a", 1)
            span.add_event("e", 0.0, detail="d")
            span.set_status("ERROR", "nope")
        assert span.trace_id is None

    def test_max_traces_bounds_storage(self):
        tracer = Tracer(max_traces=2)
        for _ in range(3):
            with tracer.span("op", "a"):
                pass
        assert tracer.trace_ids() == ["t-00000002", "t-00000003"]
        assert not tracer.has_trace("t-00000001")

    def test_get_trace_unknown_raises_not_found(self):
        with pytest.raises(NotFoundError):
            Tracer().get_trace("t-99999999")


class TestIntegrity:
    def _tree(self):
        tracer = Tracer()
        with tracer.span("root", "a") as root:
            with tracer.span("child", "b") as child:
                child.set_attribute("k", "v")
        return tracer, root, child

    def test_sealed_trace_verifies(self):
        tracer, root, child = self._tree()
        assert root.span_hash is not None
        assert child.span_hash is not None
        assert tracer.verify_trace(root.trace_id)

    def test_tampered_attribute_detected(self):
        tracer, root, child = self._tree()
        child.attributes["k"] = "forged"
        with pytest.raises(IntegrityError):
            tracer.verify_trace(root.trace_id)

    def test_tampered_leaf_breaks_the_root_hash(self):
        # The root hash commits to child hashes Merkle-style, so editing a
        # leaf *and* recomputing only its own hash still fails at the root.
        tracer, root, child = self._tree()
        child.name = "forged"
        from repro.cloudsim.tracing import _recompute
        child.span_hash = _recompute(child)
        with pytest.raises(IntegrityError):
            tracer.verify_trace(root.trace_id)

    def test_export_is_deterministic_json(self):
        tracer, root, _ = self._tree()
        exported = tracer.export_trace(root.trace_id)
        parsed = json.loads(exported)
        assert exported == json.dumps(parsed, sort_keys=True,
                                      separators=(",", ":"))
        assert parsed["name"] == "root"
        assert parsed["children"][0]["name"] == "child"


class TestCriticalPath:
    def test_sequential_children_attribute_everything(self):
        clock = SimClock()
        tracer = Tracer(clock)
        with tracer.span("root", "gateway") as root:
            clock.advance(1.0)                    # root self time
            with tracer.span("fetch", "cache"):
                clock.advance(2.0)
            clock.advance(0.5)                    # more root self time
        path = tracer.critical_path(root.trace_id)
        assert path.total_s == pytest.approx(3.5)
        by_layer = path.by_layer()
        assert by_layer["gateway"] == pytest.approx(1.5)
        assert by_layer["cache"] == pytest.approx(2.0)
        pct = path.layer_percentages()
        assert sum(pct.values()) == pytest.approx(100.0)
        assert pct["cache"] == pytest.approx(100.0 * 2.0 / 3.5)

    def test_deep_nesting_sums_to_root_duration(self):
        clock = SimClock()
        tracer = Tracer(clock)
        with tracer.span("a", "l1") as root:
            clock.advance(0.25)
            with tracer.span("b", "l2"):
                clock.advance(0.25)
                with tracer.span("c", "l3"):
                    clock.advance(0.5)
                clock.advance(0.125)
            clock.advance(0.125)
        path = tracer.critical_path(root.trace_id)
        assert sum(s.self_time_s for s in path.segments) == pytest.approx(
            path.total_s)
        assert path.total_s == pytest.approx(root.duration_s)
        assert {s.layer for s in path.segments} == {"l1", "l2", "l3"}

    def test_zero_duration_trace_has_no_percentages(self):
        tracer = Tracer()
        with tracer.span("instant", "a") as root:
            pass
        path = tracer.critical_path(root.trace_id)
        assert path.total_s == 0.0
        assert path.layer_percentages() == {}


# ---------------------------------------------------------------------------
# End to end: one traced dispatch through the whole stack.
# ---------------------------------------------------------------------------


class _TermKb:
    """A tiny knowledge base the remote proxy wraps."""

    name = "terms"

    def lookup(self, key):
        return f"definition-of-{key}"


def build_world(traced=True):
    """A full request path: gateway -> cache -> resilient KB -> blockchain.

    Identical construction with tracing on or off, so simulated latencies
    can be compared bit-for-bit between the two.
    """
    clock = SimClock()
    monitoring = MonitoringService(clock)
    tracer = Tracer(clock) if traced else None

    rbac = RbacEngine()
    tenant = rbac.create_tenant("acme")
    org = rbac.create_organization(tenant.tenant_id, "org")
    env = rbac.create_environment(org.org_id, "prod")
    user = rbac.register_user(tenant.tenant_id, "alice")
    scope = Scope(ScopeKind.ORGANIZATION, org.org_id)
    rbac.define_role("reader", [Permission(Action.READ, "records", scope)])
    rbac.bind_role(user.user_id, org.org_id, env.env_id, "reader")

    federation = FederatedIdentityService(rbac, clock)
    idp = ExternalIdentityProvider("idp", b"idp-secret-key-01", clock)
    federation.approve_idp("idp", b"idp-secret-key-01")
    federation.link_identity("idp", "alice@acme", user.user_id)

    executor = ResilientExecutor(
        ResiliencePolicy(timeout_s=5.0, max_attempts=3, jitter=0.0),
        clock=clock, monitoring=monitoring, tracer=tracer)
    remote = RemoteKnowledgeBase(_TermKb(), clock, resilience=executor)
    remote.tracer = tracer

    hierarchy = CacheHierarchy(
        [CacheLevel("l1", LruCache(64), 50e-6)],
        Origin("kb-origin", lambda key: remote.call("lookup", key),
               access_cost_s=0.0),
        clock=clock, monitoring=monitoring, tracer=tracer)

    net = standard_network(seed=7, batch_size=1, clock=clock,
                           monitoring=monitoring)
    net.tracer = tracer

    gateway = ApiGateway(rbac, federation, monitoring=monitoring,
                         clock=clock, rate_limit=1000, tracer=tracer)
    seen_contexts = []

    def lookup_handler(context, key):
        seen_contexts.append(context)
        result = hierarchy.get(key)
        net.submit("ingestion-service", "provenance", "record_event",
                   handle=key, data_hash="aa" * 32, event="received",
                   actor="client")
        net.flush()
        return {"value": result.value, "served_by": result.served_by}

    gateway.register_route(RouteSpec(
        path="/lookup", handler=lookup_handler,
        action=Action.READ, resource_type="records",
        scope_kind=ScopeKind.ORGANIZATION))

    return SimpleNamespace(
        clock=clock, monitoring=monitoring, tracer=tracer,
        gateway=gateway, idp=idp, org=org, env=env,
        remote=remote, hierarchy=hierarchy, net=net,
        seen_contexts=seen_contexts)


def _request(world, path="/lookup", **overrides):
    fields = dict(path=path, token=world.idp.issue_token("alice@acme"),
                  scope_entity_id=world.org.org_id, org_id=world.org.org_id,
                  env_id=world.env.env_id)
    fields.update(overrides)
    return ApiRequest(**fields)


class TestEndToEnd:
    def test_one_dispatch_yields_one_tree_covering_four_plus_layers(self):
        world = build_world()
        response = world.gateway.dispatch(
            _request(world, params={"key": "hba1c"}))
        assert response.status == 200
        assert response.body["value"] == "definition-of-hba1c"

        assert world.tracer.trace_ids() == ["t-00000001"]
        spans = world.tracer.spans("t-00000001")
        names = [s.name for s in spans]
        layers = {s.layer for s in spans}
        assert names[0] == "api.dispatch"
        assert "cache.get" in names
        assert "cache.origin_fetch" in names
        assert "resilience.kb.terms" in names
        assert "resilience.attempt" in names
        assert "kb.call" in names
        assert "blockchain.endorse" in names
        assert "blockchain.commit" in names
        assert {"gateway", "cache", "resilience",
                "knowledge", "blockchain"} <= layers
        assert len(layers) >= 4
        # Everything hangs off the single dispatch root.
        root = world.tracer.get_trace("t-00000001")
        assert all(s.trace_id == root.trace_id for s in spans)

    def test_critical_path_attribution_sums_to_end_to_end_latency(self):
        world = build_world()
        world.gateway.dispatch(_request(world, params={"key": "hba1c"}))
        root = world.tracer.get_trace("t-00000001")
        path = world.tracer.critical_path("t-00000001")
        assert root.duration_s > 0.0
        assert path.total_s == pytest.approx(root.duration_s, abs=0.0)
        assert sum(path.by_layer().values()) == pytest.approx(
            path.total_s, rel=1e-12)
        assert sum(path.layer_percentages().values()) == pytest.approx(
            100.0, abs=1e-6)
        # The 80 ms WAN round trip dominates a cold lookup.
        pct = path.layer_percentages()
        assert max(pct, key=pct.get) == "knowledge"

    def test_request_context_carries_the_trace_context(self):
        world = build_world()
        world.gateway.dispatch(_request(world, params={"key": "hba1c"}))
        (context,) = world.seen_contexts
        assert isinstance(context.trace, TraceContext)
        assert context.trace.trace_id == "t-00000001"
        # The handler ran inside the dispatch span.
        root = world.tracer.get_trace("t-00000001")
        assert context.trace.span_id == root.span_id

    def test_untraced_gateway_leaves_context_trace_none(self):
        world = build_world(traced=False)
        world.gateway.dispatch(_request(world, params={"key": "hba1c"}))
        (context,) = world.seen_contexts
        assert context.trace is None

    def test_latency_exemplar_resolves_to_a_stored_trace(self):
        world = build_world()
        world.gateway.dispatch(_request(world, params={"key": "hba1c"}))
        exemplar = world.monitoring.metrics.exemplar("api.latency")
        assert exemplar is not None
        assert world.tracer.has_trace(exemplar["trace_id"])
        assert exemplar["value"] == pytest.approx(
            world.tracer.get_trace(exemplar["trace_id"]).duration_s)

    def test_audit_log_entries_carry_the_trace_id(self):
        world = build_world()
        world.gateway.dispatch(_request(world, params={"key": "hba1c"}))
        entries = world.monitoring.logs.entries(stream="api")
        assert entries
        assert entries[-1].attributes["trace"] == "t-00000001"
        assert world.monitoring.logs.verify_chain()

    def test_error_dispatches_are_traced_too(self):
        world = build_world()
        response = world.gateway.dispatch(_request(world, path="/missing"))
        assert response.status == 404
        root = world.tracer.get_trace("t-00000001")
        assert root.status == "ERROR"
        assert root.attributes["http.status"] == 404
        assert world.tracer.verify_trace("t-00000001")

    def test_disabled_tracing_is_latency_bit_identical(self):
        # The tracer only reads clock.now; a traced run and an untraced
        # run of the same request sequence end at the *exact* same
        # simulated time (== on floats, no tolerance).
        keys = ["hba1c", "ldl", "hba1c", "a1c", "ldl"]
        finals = []
        for traced in (True, False):
            world = build_world(traced=traced)
            for key in keys:
                response = world.gateway.dispatch(
                    _request(world, params={"key": key}))
                assert response.status == 200
            finals.append(world.clock.now)
        assert finals[0] == finals[1]

    def test_export_is_identical_across_identical_runs(self):
        exports = []
        for _ in range(2):
            world = build_world()
            world.gateway.dispatch(_request(world, params={"key": "hba1c"}))
            exports.append(world.tracer.export_trace("t-00000001"))
        assert exports[0] == exports[1]

    def test_end_to_end_trace_verifies_and_tamper_is_caught(self):
        world = build_world()
        world.gateway.dispatch(_request(world, params={"key": "hba1c"}))
        assert world.tracer.verify_trace("t-00000001")
        victim = world.tracer.spans("t-00000001")[-1]
        victim.attributes["forged"] = True
        with pytest.raises(IntegrityError):
            world.tracer.verify_trace("t-00000001")


class TestFaultsInTraces:
    def test_dropped_link_shows_up_as_extra_attempt_spans(self):
        # Seeded plan: random.Random(1) draws ~0.134 then ~0.847, so at
        # drop_rate=0.5 the first KB call is dropped and the retry lands.
        world = build_world()
        plan = FaultPlan(seed=1, clock=world.clock)
        plan.drop_link("cloud-a", "external-kb", drop_rate=0.5)
        world.remote.fault_plan = plan

        response = world.gateway.dispatch(
            _request(world, params={"key": "hba1c"}))
        assert response.status == 200
        assert world.remote.failed_calls == 1

        spans = world.tracer.spans("t-00000001")
        attempts = [s for s in spans if s.name == "resilience.attempt"]
        assert len(attempts) == 2
        assert attempts[0].status == "ERROR"
        assert attempts[1].status == "OK"
        assert any(e.name == "backoff" for e in attempts[1].events)
        kb_spans = [s for s in spans if s.name == "kb.call"]
        assert kb_spans[0].attributes.get("dropped") is True
        assert kb_spans[0].status == "ERROR"
        # The retry's extra round trip and backoff are on the critical
        # path, still summing to 100%.
        pct = world.tracer.critical_path("t-00000001").layer_percentages()
        assert sum(pct.values()) == pytest.approx(100.0, abs=1e-6)

    def test_all_attempts_dropped_traces_the_503(self):
        world = build_world()
        plan = FaultPlan(seed=1, clock=world.clock)
        plan.drop_link("cloud-a", "external-kb", drop_rate=1.0)
        world.remote.fault_plan = plan

        response = world.gateway.dispatch(
            _request(world, params={"key": "hba1c"}))
        assert response.status == 503
        spans = world.tracer.spans("t-00000001")
        attempts = [s for s in spans if s.name == "resilience.attempt"]
        assert len(attempts) == 3              # policy.max_attempts
        assert all(s.status == "ERROR" for s in attempts)
        root = world.tracer.get_trace("t-00000001")
        assert root.status == "ERROR"
        assert root.attributes["http.status"] == 503


class TestIngestionTracing:
    def test_process_pending_produces_job_spans(self):
        from repro.ingestion.pipeline import encrypt_bundle_for_upload
        from repro.fhir.resources import Bundle, Observation, Patient

        p = HealthCloudPlatform(seed=17)
        tracer = Tracer(p.clock)
        p.ingestion.tracer = tracer
        p.blockchain.tracer = tracer

        context = p.register_tenant("acme")
        group = p.rbac.create_group(context.tenant.tenant_id, "study")
        registration = p.ingestion.register_client("client-1")
        p.consent.grant("pt-1", group.group_id)

        bundle = Bundle(id="b1")
        bundle.add(Patient(id="pt-1", name={"family": "Doe"},
                           birthDate="1980-03-12", gender="female"))
        bundle.add(Observation(id="pt-1-obs", code={"text": "HbA1c"},
                               subject="Patient/pt-1",
                               valueQuantity={"value": 7.0, "unit": "%"}))
        p.ingestion.upload(
            "client-1", encrypt_bundle_for_upload(bundle, registration),
            group.group_id)
        p.run_ingestion()

        roots = [tracer.get_trace(tid) for tid in tracer.trace_ids()]
        batch = next(r for r in roots
                     if r.name == "ingestion.process_pending")
        jobs = [s for s in batch.walk() if s.name == "ingestion.job"]
        assert len(jobs) == 1
        assert jobs[0].attributes["status"] == "stored"
        assert batch.attributes["processed"] == 1
        # Provenance endorsement ran inside the batch span.
        layers = {s.layer for s in batch.walk()}
        assert "blockchain" in layers
        for tid in tracer.trace_ids():
            assert tracer.verify_trace(tid)
