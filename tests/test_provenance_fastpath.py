"""Tests for the provenance fast path: Merkle-batched endorsement,
batched pipeline processing, and per-event audit semantics.

The fast path must not weaken what Fig. 6 depends on: every per-stage
event stays individually queryable through the auditor view, carries a
verifying Merkle inclusion proof against its endorsed batch root, and a
single mutated event inside a committed batch is detected both by the
chain walk and by the event's own proof.
"""

import dataclasses

import pytest

from repro import HealthCloudPlatform
from repro.blockchain import AuditorView, standard_network
from repro.blockchain.chaincode import provenance_event_leaf
from repro.core.errors import EndorsementError, LedgerError, ValidationError
from repro.crypto.merkle import MerkleTree, verify_proof
from repro.fhir.resources import Bundle, Observation, Patient
from repro.ingestion.pipeline import IngestionStatus, encrypt_bundle_for_upload


def make_bundle(patient_id="pt-1", bundle_id="b1"):
    bundle = Bundle(id=bundle_id)
    bundle.add(Patient(id=patient_id, name={"family": "Doe"},
                       birthDate="1980-03-12", gender="female"))
    bundle.add(Observation(id=f"{patient_id}-obs", code={"text": "HbA1c"},
                           subject=f"Patient/{patient_id}",
                           valueQuantity={"value": 7.0, "unit": "%"}))
    return bundle


def build_platform(provenance_batch_size, n_bundles=6, seed=29):
    platform = HealthCloudPlatform(
        seed=seed, provenance_batch_size=provenance_batch_size)
    context = platform.register_tenant("fastpath")
    group = platform.rbac.create_group(context.tenant.tenant_id, "study")
    registration = platform.ingestion.register_client("client-1")
    jobs = []
    for i in range(n_bundles):
        pid = f"pt-{i}"
        platform.consent.grant(pid, group.group_id)
        bundle = make_bundle(patient_id=pid, bundle_id=f"b-{i}")
        jobs.append(platform.ingestion.upload(
            "client-1", encrypt_bundle_for_upload(bundle, registration),
            group.group_id))
    return platform, jobs


class TestBatchedPipeline:
    def test_all_jobs_stored_and_histories_preserved(self):
        platform, jobs = build_platform(provenance_batch_size=4)
        platform.run_ingestion()
        for job in jobs:
            assert job.status is IngestionStatus.STORED, job.reason
            history = platform.blockchain.query(
                "provenance", "get_history", handle=job.job_id)
            assert [e["event"] for e in history] == [
                "received", "validated", "deidentified", "stored"]
            # Every batched event is tagged with its batch and leaf index.
            for entry in history:
                assert entry["meta"]["batch"].startswith("provbatch-")
                assert entry["meta"]["leaf"] >= 0

    def test_one_batched_transaction_per_flush(self):
        platform, jobs = build_platform(provenance_batch_size=3, n_bundles=6)
        platform.run_ingestion()
        view = AuditorView(platform.blockchain)
        batched = view.search(chaincode="provenance", method="record_batch")
        singles = view.search(chaincode="provenance", method="record_event")
        # 6 jobs in batches of 3 -> 2 flushes -> 2 batched transactions,
        # instead of 24 individually endorsed event transactions.
        assert len(batched) == 2
        assert singles == []
        batches = platform.monitoring.metrics.counter(
            "ingestion.provenance_batches")
        events = platform.monitoring.metrics.counter(
            "ingestion.provenance_events")
        assert batches == 2
        assert events == 24  # 6 jobs x 4 per-stage events

    def test_legacy_batch_size_one_keeps_per_event_transactions(self):
        platform, jobs = build_platform(provenance_batch_size=1, n_bundles=2)
        platform.run_ingestion()
        view = AuditorView(platform.blockchain)
        assert view.search(chaincode="provenance", method="record_batch") == []
        singles = view.search(chaincode="provenance", method="record_event")
        assert len(singles) == 8  # 2 jobs x 4 per-stage events

    def test_queue_drains_in_fifo_order_with_limit(self):
        platform, jobs = build_platform(provenance_batch_size=4, n_bundles=5)
        assert platform.run_ingestion(limit=2) == 2
        statuses = [platform.ingestion.status(j.job_id)[0] for j in jobs]
        assert statuses[:2] == [IngestionStatus.STORED] * 2
        assert statuses[2:] == [IngestionStatus.UPLOADED] * 3
        assert platform.run_ingestion() == 3
        assert all(platform.ingestion.status(j.job_id)[0]
                   is IngestionStatus.STORED for j in jobs)

    def test_verdict_reports_ride_in_the_batch_flush(self):
        platform, jobs = build_platform(provenance_batch_size=4, n_bundles=2)
        platform.run_ingestion()
        for job in jobs:
            level = platform.blockchain.query(
                "privacy", "record_level_of", record_id=job.job_id)
            assert level["passed"]


class TestAuditSemantics:
    def test_every_event_individually_queryable_with_proof(self):
        platform, jobs = build_platform(provenance_batch_size=4)
        platform.run_ingestion()
        view = AuditorView(platform.blockchain)
        for job in jobs:
            findings = view.search_events(handle=job.job_id)
            assert [f.event for f in findings] == [
                "received", "validated", "deidentified", "stored"]
            for finding in findings:
                proof = view.event_proof(finding)
                assert proof is not None
                assert view.verify_event(finding)

    def test_search_events_filters(self):
        platform, jobs = build_platform(provenance_batch_size=4, n_bundles=3)
        platform.run_ingestion()
        view = AuditorView(platform.blockchain)
        stored = view.search_events(event="stored")
        assert len(stored) == 3
        by_actor = view.search_events(actor="client-1")
        assert len(by_actor) == 12

    def test_tampered_batch_event_detected_twice(self):
        """Mutating one event inside a committed batch must fail both the
        chain walk and that event's Merkle inclusion proof."""
        platform, jobs = build_platform(provenance_batch_size=4)
        platform.run_ingestion()
        view = AuditorView(platform.blockchain)
        assert view.verify_integrity()

        # Admin-level tamper: rewrite one event's hash inside the stored
        # batched transaction on one peer's ledger copy.
        ledger = platform.blockchain.peers[0].ledger
        target = None
        for height, block in enumerate(ledger.blocks()):
            for tx_index, tx in enumerate(block.transactions):
                if tx.method == "record_batch":
                    target = (height, tx_index, tx)
                    break
            if target:
                break
        assert target is not None
        height, tx_index, tx = target
        forged_events = [dict(e) for e in tx.args["events"]]
        forged_events[1]["data_hash"] = "f0" * 32
        forged_tx = dataclasses.replace(
            tx, args={**tx.args, "events": forged_events})
        block = ledger.block(height)
        txs = list(block.transactions)
        txs[tx_index] = forged_tx
        ledger._blocks[height] = dataclasses.replace(
            block, transactions=tuple(txs))

        # Detection 1: the hash chain no longer verifies.
        with pytest.raises(LedgerError):
            ledger.verify()

        # Detection 2: the mutated event's own inclusion proof fails
        # against the endorsed batch root.
        findings = view.search_events(handle=forged_events[1]["handle"])
        mutated = [f for f in findings if f.data_hash == "f0" * 32]
        assert mutated and not view.verify_event(mutated[0])
        # Proof-level check: the forged leaf cannot verify against the
        # root the endorsers signed.
        recorded_root = bytes.fromhex(forged_tx.args["merkle_root"])
        forged_tree = MerkleTree(
            [provenance_event_leaf(e) for e in forged_events])
        assert not verify_proof(recorded_root,
                                provenance_event_leaf(forged_events[1]),
                                forged_tree.proof(1))
        # Untampered sibling events still carry valid anchors on honest
        # peers: replace nothing there, so their ledgers stay verifiable.
        platform.blockchain.peers[1].ledger.verify()

    def test_endorsers_reject_wrong_merkle_root(self):
        network = standard_network(seed=5)
        events = [{"handle": "h1", "data_hash": "aa" * 32,
                   "event": "received", "actor": "c", "metadata": {}}]
        with pytest.raises(EndorsementError):
            network.submit("ingestion-service", "provenance", "record_batch",
                           batch_id="bad", merkle_root="00" * 32,
                           events=events)
        # The rejection is the chaincode's root check, visible in the logs.
        failures = network.monitoring.metrics.counter(
            "blockchain.endorsement_failures")
        assert failures >= 2  # every endorsing peer refused to sign

    def test_record_batch_requires_events(self):
        from repro.blockchain.chaincode import ProvenanceContract, WorldState
        with pytest.raises(ValidationError):
            ProvenanceContract().invoke(WorldState(), "record_batch",
                                        {"batch_id": "b", "merkle_root": "",
                                         "events": []})


class TestSubmitBatch:
    @staticmethod
    def _requests(n, prefix="h"):
        return [("provenance", "record_event",
                 {"handle": f"{prefix}{i}", "data_hash": "aa" * 32,
                  "event": "received", "actor": "c"}) for i in range(n)]

    def test_batch_endorses_and_commits(self):
        network = standard_network(seed=8, batch_size=10)
        txs = network.submit_batch("ingestion-service", self._requests(5))
        assert len(txs) == 5
        assert all(len(tx.endorsements) == 4 for tx in txs)
        network.flush()
        assert network.peers_converged()
        assert len(network.peers[0].ledger.transactions()) == 5

    def test_empty_batch_is_noop(self):
        network = standard_network(seed=8)
        assert network.submit_batch("ingestion-service", []) == []

    def test_batch_amortizes_simulated_latency(self):
        per_tx = standard_network(seed=9)
        for chaincode, method, args in self._requests(6):
            per_tx.submit("ingestion-service", chaincode, method, **args)
        batched = standard_network(seed=9)
        batched.submit_batch("ingestion-service", self._requests(6))
        # One endorsement round-trip per peer for the whole batch vs one
        # per transaction per peer.
        assert batched.clock.now < per_tx.clock.now
        assert batched.clock.now == pytest.approx(
            len(batched.endorsing_peers())
            * batched.ENDORSE_LATENCY)

    def test_batch_policy_enforced(self):
        from repro.blockchain.chaincode import ProvenanceContract
        from repro.blockchain.identity import MembershipServiceProvider
        from repro.blockchain.network import (
            BlockchainNetwork,
            EndorsementPolicy,
            Peer,
        )
        msp = MembershipServiceProvider(seed=31)
        network = BlockchainNetwork(msp, policy=EndorsementPolicy(2, 2))
        msp.enroll("peer.solo", "solo-org", roles={"peer"})
        network.add_peer(Peer("peer.solo", "solo-org", msp,
                              {"provenance": ProvenanceContract()}))
        msp.enroll("ingestion-service", "solo-org")
        with pytest.raises(EndorsementError):
            network.submit_batch("ingestion-service", self._requests(2))
        assert network.orderer.pending_count == 0  # nothing half-ordered


class TestEndorsementFailureVisibility:
    def _network_with_broken_peer(self):
        from repro.blockchain.chaincode import Chaincode, ProvenanceContract
        from repro.blockchain.identity import MembershipServiceProvider
        from repro.blockchain.network import (
            BlockchainNetwork,
            EndorsementPolicy,
            Peer,
        )

        class BrokenContract(Chaincode):
            NAME = "provenance"

            def invoke(self, state, method, args):
                raise RuntimeError("endorser crashed")

        msp = MembershipServiceProvider(seed=41)
        network = BlockchainNetwork(msp, policy=EndorsementPolicy(2, 2),
                                    batch_size=1)
        good = {"provenance": ProvenanceContract()}
        for org in ("org-a", "org-b", "org-c"):
            msp.enroll(f"peer.{org}", org, roles={"peer"})
        network.add_peer(Peer("peer.org-a", "org-a", msp, good))
        network.add_peer(Peer("peer.org-b", "org-b", msp,
                              {"provenance": BrokenContract()}))
        network.add_peer(Peer("peer.org-c", "org-c", msp, good))
        msp.enroll("client", "org-a")
        return network

    def test_failures_logged_and_counted(self):
        network = self._network_with_broken_peer()
        network.submit("client", "provenance", "record_event", handle="h",
                       data_hash="aa" * 32, event="received", actor="c")
        metrics = network.monitoring.metrics
        assert metrics.counter("blockchain.endorsement_failures") == 1
        assert metrics.counter(
            "blockchain.endorsement_failures.peer.org-b") == 1
        warnings = network.monitoring.logs.entries(stream="blockchain",
                                                   level="WARN")
        assert len(warnings) == 1
        assert "peer.org-b" in warnings[0].message

    def test_failures_counted_in_batches_too(self):
        network = self._network_with_broken_peer()
        network.submit_batch("client", TestSubmitBatch._requests(3))
        metrics = network.monitoring.metrics
        assert metrics.counter("blockchain.endorsement_failures") == 3
