"""Tests for the platform event stream: order, determinism, bounded fans."""

import pytest

from repro.cloudsim.clock import SimClock
from repro.cloudsim.healthplane import EventBus
from repro.cloudsim.monitoring import MonitoringService
from repro.core.errors import ConfigurationError


class TestOrdering:
    def test_sequence_numbers_are_total_order(self):
        bus = EventBus(SimClock())
        events = [bus.publish("gateway", "api.request", i=i)
                  for i in range(5)]
        assert [e.seq for e in events] == [1, 2, 3, 4, 5]

    def test_subscribers_see_publish_order(self):
        bus = EventBus(SimClock())
        sub = bus.subscribe("dash")
        for i in range(4):
            bus.publish("gateway", "api.request", i=i)
        polled = sub.poll()
        assert [e.attributes["i"] for e in polled] == [0, 1, 2, 3]

    def test_timestamps_follow_the_clock(self):
        clock = SimClock()
        bus = EventBus(clock)
        a = bus.publish("x", "k")
        clock.advance(2.5)
        b = bus.publish("x", "k")
        assert (a.timestamp_s, b.timestamp_s) == (0.0, 2.5)


class TestDeterminism:
    def test_event_ids_reproduce_across_runs(self):
        ids_a = [EventBus(SimClock(), seed=7).publish("g", "api.request").event_id]
        ids_b = [EventBus(SimClock(), seed=7).publish("g", "api.request").event_id]
        assert ids_a == ids_b
        assert ids_a[0].startswith("ev-")

    def test_seed_changes_ids(self):
        a = EventBus(SimClock(), seed=1).publish("g", "k").event_id
        b = EventBus(SimClock(), seed=2).publish("g", "k").event_id
        assert a != b

    def test_ids_distinct_within_a_run(self):
        bus = EventBus(SimClock())
        ids = {bus.publish("g", "k").event_id for _ in range(50)}
        assert len(ids) == 50


class TestSubscriptions:
    def test_kind_prefix_filtering(self):
        bus = EventBus(SimClock())
        sub = bus.subscribe("slo-only", kinds=["slo"])
        bus.publish("healthplane", "slo.alert")
        bus.publish("gateway", "api.request")
        bus.publish("healthplane", "slo.alert_resolved")
        kinds = [e.kind for e in sub.poll()]
        assert kinds == ["slo.alert", "slo.alert_resolved"]

    def test_exact_kind_match(self):
        bus = EventBus(SimClock())
        sub = bus.subscribe("s", kinds=["api.request"])
        bus.publish("g", "api.request")
        bus.publish("g", "api.requests.other")    # not a dotted child
        assert len(sub.poll()) == 1

    def test_bounded_queue_drops_oldest(self):
        bus = EventBus(SimClock())
        sub = bus.subscribe("slow", maxlen=3)
        for i in range(5):
            bus.publish("g", "k", i=i)
        assert sub.dropped == 2
        assert bus.dropped == 2
        assert [e.attributes["i"] for e in sub.poll()] == [2, 3, 4]

    def test_drops_mirrored_to_metrics(self):
        clock = SimClock()
        monitoring = MonitoringService(clock)
        bus = EventBus(clock, monitoring=monitoring)
        bus.subscribe("slow", maxlen=1)
        for _ in range(3):
            bus.publish("g", "k")
        assert monitoring.metrics.counter(
            "healthplane.events.dropped.slow") == 2
        assert monitoring.metrics.counter("healthplane.events.published") == 3

    def test_clean_deliveries_mirrored_to_metrics(self):
        clock = SimClock()
        monitoring = MonitoringService(clock)
        bus = EventBus(clock, monitoring=monitoring)
        bus.subscribe("dash", maxlen=8)
        for _ in range(3):
            bus.publish("g", "k")
        assert monitoring.metrics.counter(
            "healthplane.events.delivered.dash") == 3
        assert monitoring.metrics.counter(
            "healthplane.events.dropped.dash") == 0

    def test_poll_budget(self):
        bus = EventBus(SimClock())
        sub = bus.subscribe("s")
        for i in range(5):
            bus.publish("g", "k", i=i)
        assert len(sub.poll(max_events=2)) == 2
        assert sub.backlog == 3

    def test_duplicate_subscriber_rejected(self):
        bus = EventBus(SimClock())
        bus.subscribe("dash")
        with pytest.raises(ConfigurationError):
            bus.subscribe("dash")

    def test_unknown_subscriber_lookup_raises(self):
        bus = EventBus(SimClock())
        with pytest.raises(ConfigurationError):
            bus.subscription("nope")

    def test_zero_maxlen_rejected(self):
        bus = EventBus(SimClock())
        with pytest.raises(ConfigurationError):
            bus.subscribe("s", maxlen=0)


class TestIntrospection:
    def test_recent_ring_is_bounded(self):
        bus = EventBus(SimClock(), history=4)
        for i in range(10):
            bus.publish("g", "k", i=i)
        recent = bus.recent()
        assert [e.attributes["i"] for e in recent] == [6, 7, 8, 9]
        assert [e.attributes["i"] for e in bus.recent(limit=2)] == [8, 9]

    def test_describe_accounts_by_source(self):
        bus = EventBus(SimClock())
        bus.subscribe("dash", maxlen=8)
        bus.publish("gateway", "api.request")
        bus.publish("gateway", "api.request")
        bus.publish("cache", "cache.origin_fetch")
        desc = bus.describe()
        assert desc["published"] == 3
        assert desc["by_source"] == {"cache": 1, "gateway": 2}
        assert desc["subscribers"]["dash"]["backlog"] == 3

    def test_to_dict_round_trips(self):
        import json
        bus = EventBus(SimClock())
        event = bus.publish("g", "k", a=1)
        assert json.loads(json.dumps(event.to_dict()))["attributes"] == {"a": 1}

    def test_publish_never_advances_the_clock(self):
        clock = SimClock()
        bus = EventBus(clock, monitoring=MonitoringService(clock))
        bus.subscribe("s", maxlen=1)
        for _ in range(10):
            bus.publish("g", "k")
        assert clock.now == 0.0


class TestSubscriberSlo:
    """Regression: a saturated slow subscriber must page, not silently
    lose history."""

    def _plane(self):
        from repro.cloudsim.healthplane import HealthPlane
        monitoring = MonitoringService(SimClock())
        plane = HealthPlane(monitoring)
        return monitoring.clock, plane

    def _publish(self, clock, plane, *, seconds, period_s=2.0):
        end = clock.now + seconds
        while clock.now < end:
            plane.events.publish("gateway", "api.request")
            clock.advance(period_s)

    def test_saturated_slow_subscriber_pages(self):
        clock, plane = self._plane()
        slow = plane.events.subscribe("slow-dashboard", maxlen=16)
        plane.register_subscriber_slo("slow-dashboard", target=0.99)
        # A healthy hour: the dashboard keeps up (polls every event).
        end = clock.now + 3600
        while clock.now < end:
            plane.events.publish("gateway", "api.request")
            slow.poll()
            clock.advance(2.0)
        assert plane.evaluate() == []
        # The dashboard stalls; its 16-slot queue saturates and every
        # further publish drops the oldest.  Sustained, both FAST_PAGE
        # windows burn past 14.4x -> page.
        self._publish(clock, plane, seconds=1400)
        fired = plane.evaluate()
        assert [a.severity for a in fired] == ["page"]
        assert fired[0].slo == "events-slow-dashboard"
        assert slow.dropped > 0

    def test_keeping_up_never_pages(self):
        clock, plane = self._plane()
        plane.events.subscribe("healthy-dashboard", maxlen=64)
        plane.register_subscriber_slo("healthy-dashboard")
        sub = plane.events.subscription("healthy-dashboard")
        end = clock.now + 4800
        while clock.now < end:
            plane.events.publish("gateway", "api.request")
            sub.poll()
            clock.advance(2.0)
        assert plane.evaluate() == []
        assert sub.dropped == 0
