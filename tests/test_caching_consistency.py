"""Tests for the cache consistency protocols."""

import pytest

from repro.caching.consistency import (
    ConsistencyHarness,
    ConsistentCache,
    VersionedStore,
)
from repro.cloudsim.clock import SimClock
from repro.core.errors import CacheConsistencyError, ConfigurationError


class TestInvalidationProtocol:
    def test_no_stale_reads_ever(self):
        harness = ConsistencyHarness("invalidate", num_caches=3)
        harness.write("k", 1)
        assert harness.read(0, "k") == 1
        harness.write("k", 2)
        assert harness.read(0, "k") == 2
        report = harness.report()
        assert report.stale_reads == 0

    def test_invalidations_fan_out(self):
        harness = ConsistencyHarness("invalidate", num_caches=4)
        harness.write("k", 1)
        for i in range(4):
            harness.read(i, "k")
        harness.write("k", 2)
        report = harness.report()
        assert report.invalidations_sent == 8  # 4 caches x 2 writes


class TestTtlProtocol:
    def test_stale_within_ttl(self):
        harness = ConsistencyHarness("ttl", ttl_s=10.0)
        harness.write("k", 1)
        harness.read(0, "k")
        harness.write("k", 2)
        # Within the TTL the cache serves the old value.
        assert harness.read(0, "k") == 1
        assert harness.report().stale_reads == 1

    def test_fresh_after_ttl(self):
        harness = ConsistencyHarness("ttl", ttl_s=10.0)
        harness.write("k", 1)
        harness.read(0, "k")
        harness.write("k", 2)
        harness.advance(11.0)
        assert harness.read(0, "k") == 2

    def test_no_protocol_messages(self):
        harness = ConsistencyHarness("ttl", ttl_s=10.0)
        harness.write("k", 1)
        for _ in range(5):
            harness.read(0, "k")
        harness.write("k", 2)
        assert harness.report().protocol_messages == 0


class TestLeaseProtocol:
    def test_revalidates_after_lease(self):
        harness = ConsistencyHarness("lease", lease_s=5.0)
        harness.write("k", 1)
        harness.read(0, "k")
        harness.write("k", 2)
        harness.advance(6.0)
        assert harness.read(0, "k") == 2
        assert harness.report().version_checks >= 1

    def test_lease_renewed_when_unchanged(self):
        harness = ConsistencyHarness("lease", lease_s=5.0)
        harness.write("k", 1)
        harness.read(0, "k")
        harness.advance(6.0)
        harness.read(0, "k")  # version check, renewal, no refetch
        report = harness.report()
        assert report.origin_fetches == 1
        assert report.version_checks == 1

    def test_cheaper_than_refetching(self):
        # Lease: many reads of unchanged data cost version checks, not
        # full fetches.
        harness = ConsistencyHarness("lease", lease_s=1.0)
        harness.write("k", 1)
        for _ in range(10):
            harness.read(0, "k")
            harness.advance(2.0)
        report = harness.report()
        assert report.origin_fetches == 1
        assert report.version_checks == 9


class TestProtocolComparison:
    def test_ttl_trades_staleness_for_messages(self):
        def run(protocol):
            harness = ConsistencyHarness(protocol, num_caches=2, ttl_s=50.0,
                                         lease_s=50.0)
            harness.write("k", 0)
            for i in range(20):
                harness.read(i % 2, "k")
                if i % 4 == 3:
                    harness.write("k", i)
                harness.advance(1.0)
            return harness.report()

        ttl = run("ttl")
        invalidate = run("invalidate")
        assert ttl.stale_reads > invalidate.stale_reads
        assert ttl.protocol_messages < invalidate.protocol_messages


class TestEdgeCases:
    def test_unknown_protocol(self):
        with pytest.raises(ConfigurationError):
            ConsistentCache("c", VersionedStore(), "gossip")

    def test_missing_key(self):
        store = VersionedStore()
        cache = ConsistentCache("c", store, "ttl")
        with pytest.raises(CacheConsistencyError):
            cache.get("missing")

    def test_capacity_eviction(self):
        store = VersionedStore()
        clock = SimClock()
        cache = ConsistentCache("c", store, "invalidate", capacity=2,
                                clock=clock)
        for i in range(3):
            store.write(f"k{i}", i)
        for i in range(3):
            cache.get(f"k{i}")
            clock.advance(1.0)
        assert len(cache._entries) == 2
