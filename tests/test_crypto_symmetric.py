"""Tests for the shared-key AEAD and HMAC helpers."""

import pytest

from repro.core.errors import IntegrityError
from repro.crypto.symmetric import (
    Ciphertext,
    SharedKeyCipher,
    compute_hmac,
    generate_key,
    hkdf_expand,
    verify_hmac,
)


class TestKeys:
    def test_seeded_keys_deterministic(self):
        assert generate_key(7) == generate_key(7)
        assert generate_key(7) != generate_key(8)

    def test_unseeded_keys_random(self):
        assert generate_key() != generate_key()

    def test_hkdf_lengths(self):
        key = generate_key(1)
        assert len(hkdf_expand(key, b"a", 16)) == 16
        assert len(hkdf_expand(key, b"a", 100)) == 100

    def test_hkdf_info_separation(self):
        key = generate_key(1)
        assert hkdf_expand(key, b"enc") != hkdf_expand(key, b"mac")


class TestAead:
    def test_roundtrip(self):
        cipher = SharedKeyCipher(generate_key(1))
        ciphertext = cipher.encrypt(b"protected health information")
        assert cipher.decrypt(ciphertext) == b"protected health information"

    def test_empty_plaintext(self):
        cipher = SharedKeyCipher(generate_key(1))
        assert cipher.decrypt(cipher.encrypt(b"")) == b""

    def test_large_plaintext(self):
        cipher = SharedKeyCipher(generate_key(2))
        data = bytes(range(256)) * 4096  # 1 MiB
        assert cipher.decrypt(cipher.encrypt(data)) == data

    def test_ciphertext_differs_from_plaintext(self):
        cipher = SharedKeyCipher(generate_key(1))
        assert cipher.encrypt(b"hello" * 10).body != b"hello" * 10

    def test_nonces_unique_per_message(self):
        cipher = SharedKeyCipher(generate_key(1))
        c1 = cipher.encrypt(b"same")
        c2 = cipher.encrypt(b"same")
        assert c1.nonce != c2.nonce
        assert c1.body != c2.body

    def test_tamper_detected(self):
        cipher = SharedKeyCipher(generate_key(1))
        ciphertext = cipher.encrypt(b"attack at dawn")
        flipped = bytes([ciphertext.body[0] ^ 1]) + ciphertext.body[1:]
        tampered = Ciphertext(ciphertext.nonce, flipped, ciphertext.tag)
        with pytest.raises(IntegrityError):
            cipher.decrypt(tampered)

    def test_wrong_key_rejected(self):
        good = SharedKeyCipher(generate_key(1))
        evil = SharedKeyCipher(generate_key(2))
        with pytest.raises(IntegrityError):
            evil.decrypt(good.encrypt(b"secret"))

    def test_associated_data_bound(self):
        cipher = SharedKeyCipher(generate_key(1))
        ciphertext = cipher.encrypt(b"payload", associated_data=b"record-1")
        assert cipher.decrypt(ciphertext, b"record-1") == b"payload"
        with pytest.raises(IntegrityError):
            cipher.decrypt(ciphertext, b"record-2")

    def test_serialization_roundtrip(self):
        cipher = SharedKeyCipher(generate_key(3))
        ciphertext = cipher.encrypt(b"data")
        restored = Ciphertext.from_bytes(ciphertext.to_bytes())
        assert cipher.decrypt(restored) == b"data"

    def test_short_blob_rejected(self):
        with pytest.raises(IntegrityError):
            Ciphertext.from_bytes(b"short")

    def test_bad_key_length(self):
        with pytest.raises(ValueError):
            SharedKeyCipher(b"short")


class TestHmac:
    def test_verify_roundtrip(self):
        key = generate_key(4)
        tag = compute_hmac(key, b"graph data")
        assert verify_hmac(key, b"graph data", tag)

    def test_verify_rejects_changes(self):
        key = generate_key(4)
        tag = compute_hmac(key, b"graph data")
        assert not verify_hmac(key, b"graph datum", tag)
        assert not verify_hmac(generate_key(5), b"graph data", tag)


class TestKeystreamAlignment:
    def test_xor_length_mismatch_raises(self):
        # A short keystream used to silently truncate the data via zip();
        # that corrupts ciphertexts undetectably, so it must be an error.
        from repro.crypto.symmetric import _xor
        with pytest.raises(IntegrityError, match="keystream length"):
            _xor(b"twelve bytes", b"short")
        with pytest.raises(IntegrityError, match="keystream length"):
            _xor(b"short", b"a much longer keystream")

    def test_xor_equal_lengths_round_trips(self):
        from repro.crypto.symmetric import _xor
        data, stream = b"payload-bytes", b"keystream-byt"
        assert _xor(_xor(data, stream), stream) == data
