"""Tests for DELT and the marginal SCCS baseline (experiment E9)."""

import numpy as np
import pytest

from repro.analytics.delt import (
    DeltModel,
    MarginalSccs,
    PatientSeries,
    effect_recovery,
)
from repro.core.errors import ConfigurationError


class TestPatientSeries:
    def test_shape_validation(self):
        with pytest.raises(ConfigurationError):
            PatientSeries("p", np.arange(3), np.arange(2), np.zeros((3, 2)))


class TestDeltOnCohort:
    @pytest.fixture(scope="class")
    def fits(self, emr_cohort):
        delt = DeltModel(n_drugs=emr_cohort.n_drugs, ridge=1.0)
        marginal = MarginalSccs(emr_cohort.n_drugs)
        return (delt.fit(emr_cohort.patients),
                marginal.fit(emr_cohort.patients))

    def test_delt_recovers_planted_effects(self, emr_cohort, fits):
        delt_result, _ = fits
        recovery = effect_recovery(delt_result.effects,
                                   emr_cohort.true_effects, 0.8)
        assert recovery["recall"] == 1.0
        assert recovery["precision"] >= 0.8

    def test_delt_beats_marginal_under_confounding(self, emr_cohort, fits):
        delt_result, marginal_effects = fits
        delt_score = effect_recovery(delt_result.effects,
                                     emr_cohort.true_effects, 0.8)
        marginal_score = effect_recovery(marginal_effects,
                                         emr_cohort.true_effects, 0.8)
        assert delt_score["f1"] > marginal_score["f1"]

    def test_both_fine_without_confounders(self, clean_emr_cohort):
        delt = DeltModel(n_drugs=clean_emr_cohort.n_drugs, ridge=1.0)
        marginal = MarginalSccs(clean_emr_cohort.n_drugs)
        delt_score = effect_recovery(delt.fit(clean_emr_cohort.patients).effects,
                                     clean_emr_cohort.true_effects, 0.8)
        marginal_score = effect_recovery(marginal.fit(clean_emr_cohort.patients),
                                         clean_emr_cohort.true_effects, 0.8)
        assert delt_score["f1"] >= 0.9
        assert marginal_score["f1"] >= 0.8

    def test_effect_estimates_correlate_with_truth(self, emr_cohort, fits):
        delt_result, _ = fits
        correlation = np.corrcoef(delt_result.effects,
                                  emr_cohort.true_effects)[0, 1]
        assert correlation > 0.95

    def test_baselines_patient_specific(self, emr_cohort, fits):
        delt_result, _ = fits
        baselines = np.array(list(delt_result.baselines.values()))
        assert baselines.std() > 0.3  # diverse HbA1c profiles preserved

    def test_objective_decreases(self, emr_cohort, fits):
        delt_result, _ = fits
        history = delt_result.objective_history
        assert history[-1] <= history[0]

    def test_significant_drugs_query(self, emr_cohort, fits):
        delt_result, _ = fits
        lowering = set(np.nonzero(
            emr_cohort.true_effects <= -0.8)[0].tolist())
        detected = set(delt_result.significant_drugs(0.4))
        assert lowering <= detected


class TestDeltVariants:
    def test_drift_disabled_hurts_under_confounding(self, emr_cohort):
        with_drift = DeltModel(n_drugs=emr_cohort.n_drugs,
                               use_time_drift=True).fit(emr_cohort.patients)
        without_drift = DeltModel(n_drugs=emr_cohort.n_drugs,
                                  use_time_drift=False).fit(emr_cohort.patients)
        corr_with = np.corrcoef(with_drift.effects,
                                emr_cohort.true_effects)[0, 1]
        corr_without = np.corrcoef(without_drift.effects,
                                   emr_cohort.true_effects)[0, 1]
        assert corr_with >= corr_without

    def test_network_regularization(self, emr_cohort):
        rng = np.random.default_rng(5)
        n = emr_cohort.n_drugs
        similarity = np.abs(rng.normal(size=(n, n)))
        similarity = (similarity + similarity.T) / 2
        model = DeltModel(n_drugs=n, network_weight=0.5,
                          drug_similarity=similarity)
        result = model.fit(emr_cohort.patients)
        assert result.effects.shape == (n,)

    def test_network_weight_requires_similarity(self):
        with pytest.raises(ConfigurationError):
            DeltModel(n_drugs=4, network_weight=0.5)

    def test_empty_patients_rejected(self):
        with pytest.raises(ConfigurationError):
            DeltModel(n_drugs=4).fit([])

    def test_exposure_width_checked(self, emr_cohort):
        model = DeltModel(n_drugs=emr_cohort.n_drugs + 5)
        with pytest.raises(ConfigurationError):
            model.fit(emr_cohort.patients)


class TestMarginalBaseline:
    def test_unexposed_drugs_get_zero(self):
        patients = [PatientSeries(
            "p0", np.array([0.0, 10.0]), np.array([5.0, 5.1]),
            np.zeros((2, 3)))]
        effects = MarginalSccs(3).fit(patients)
        assert np.allclose(effects, 0.0)

    def test_single_drug_effect_detected(self):
        rng = np.random.default_rng(0)
        patients = []
        for i in range(50):
            times = np.sort(rng.uniform(0, 100, size=10))
            exposures = np.zeros((10, 1))
            exposures[5:, 0] = 1.0
            values = 6.0 + exposures[:, 0] * (-1.0) + rng.normal(
                scale=0.1, size=10)
            patients.append(PatientSeries(f"p{i}", times, values, exposures))
        effects = MarginalSccs(1).fit(patients)
        assert effects[0] == pytest.approx(-1.0, abs=0.1)
