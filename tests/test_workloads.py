"""Tests for workload generators: EMR cohorts and access traces."""

import numpy as np
import pytest

from repro.workloads.emr import cohort_to_tabular, generate_emr_cohort
from repro.workloads.traces import (
    looping_trace,
    mixed_read_write_trace,
    shifting_trace,
    zipf_trace,
)


class TestEmrGenerator:
    def test_deterministic(self):
        a = generate_emr_cohort(n_patients=20, n_drugs=10, seed=1)
        b = generate_emr_cohort(n_patients=20, n_drugs=10, seed=1)
        assert np.array_equal(a.true_effects, b.true_effects)
        assert np.array_equal(a.patients[0].values, b.patients[0].values)

    def test_planted_effect_counts(self):
        cohort = generate_emr_cohort(n_patients=20, n_drugs=20,
                                     n_lowering=5, seed=2)
        lowering = (cohort.true_effects < 0).sum()
        raising = (cohort.true_effects > 0).sum()
        assert lowering == 5
        assert raising == 2

    def test_measurement_counts_in_range(self):
        cohort = generate_emr_cohort(n_patients=30, n_drugs=5, seed=3,
                                     measurements_per_patient=(5, 9))
        for patient in cohort.patients:
            assert 5 <= len(patient.times) <= 9

    def test_times_sorted(self):
        cohort = generate_emr_cohort(n_patients=10, n_drugs=5, seed=4)
        for patient in cohort.patients:
            assert (np.diff(patient.times) >= 0).all()

    def test_baselines_diverse(self):
        cohort = generate_emr_cohort(n_patients=100, n_drugs=5, seed=5)
        means = [p.values.mean() for p in cohort.patients]
        assert np.std(means) > 0.5

    def test_confounders_flag(self):
        confounded = generate_emr_cohort(n_patients=50, n_drugs=10, seed=6)
        clean = generate_emr_cohort(n_patients=50, n_drugs=10, seed=6,
                                    confounders=False)
        assert confounded.confounders_enabled
        assert not clean.confounders_enabled

    def test_exposures_binary(self):
        cohort = generate_emr_cohort(n_patients=10, n_drugs=5, seed=7)
        for patient in cohort.patients:
            assert set(np.unique(patient.exposures)) <= {0.0, 1.0}

    def test_tabular_conversion(self):
        cohort = generate_emr_cohort(n_patients=15, n_drugs=5, seed=8)
        rows = cohort_to_tabular(cohort)
        assert len(rows) == 15
        for row in rows:
            assert 18 <= row["age"] < 95
            assert row["gender"] in ("female", "male")


class TestTraces:
    def test_zipf_skew(self):
        trace = zipf_trace(100, 10_000, skew=1.2, seed=1)
        counts = np.bincount(trace, minlength=100)
        # Most popular item dominates the median item.
        assert counts.max() > 20 * np.median(counts[counts > 0])

    def test_zipf_deterministic(self):
        assert zipf_trace(50, 100, seed=3) == zipf_trace(50, 100, seed=3)

    def test_looping(self):
        trace = looping_trace(5, 12)
        assert trace == [0, 1, 2, 3, 4, 0, 1, 2, 3, 4, 0, 1]

    def test_shifting_changes_popular_set(self):
        trace = shifting_trace(50, 4000, phases=2, seed=2)
        first = trace[:2000]
        second = trace[2000:]
        top_first = np.argmax(np.bincount(first, minlength=50))
        top_second = np.argmax(np.bincount(second, minlength=50))
        assert top_first != top_second

    def test_mixed_trace_write_fraction(self):
        trace = mixed_read_write_trace(20, 5000, write_fraction=0.2, seed=4)
        writes = sum(1 for op, _ in trace if op == "write")
        assert 0.15 < writes / len(trace) < 0.25

    def test_trace_length(self):
        assert len(shifting_trace(10, 999, phases=4, seed=1)) == 999
