"""Tests for the P4 scale-out read path: batched hierarchy lookups,
single-flight coalescing, negative caching, bulk KB queries, and the
batched client/workspace wiring."""

import pytest

from repro.analytics.workspace import AnalysisWorkspace
from repro.caching.hierarchy import CacheHierarchy, CacheLevel, Origin
from repro.caching.policies import LruCache, TinyLfuCache
from repro.client.connection import PlatformConnection
from repro.client.enhanced import BasicClient, EnhancedClient
from repro.cloudsim.clock import SimClock
from repro.cloudsim.faults import FaultPlan
from repro.cloudsim.monitoring import MonitoringService
from repro.cloudsim.network import NetworkFabric
from repro.core.errors import NotFoundError, ServiceUnavailableError
from repro.core.resilience import ResiliencePolicy, ResilientExecutor
from repro.knowledge.bases import DrugBankLike, PubChemLike, PubMedLite
from repro.knowledge.remote import CachedKnowledgeBase, RemoteKnowledgeBase

CLIENT_COST = 50e-6
SERVER_COST = 2e-3
ORIGIN_COST = 80e-3


def make_hierarchy(client_size=4, server_size=16, loader=None,
                   batch_loader=None, per_item_cost_s=0.0,
                   negative_ttl_s=0.0, monitoring=None, clock=None):
    clock = clock if clock is not None else SimClock()
    return CacheHierarchy(
        levels=[
            CacheLevel("client", LruCache(client_size), CLIENT_COST),
            CacheLevel("server", LruCache(server_size), SERVER_COST),
        ],
        origin=Origin("kb", loader=loader or (lambda k: f"value-{k}"),
                      access_cost_s=ORIGIN_COST, batch_loader=batch_loader,
                      per_item_cost_s=per_item_cost_s),
        clock=clock, negative_ttl_s=negative_ttl_s, monitoring=monitoring)


class TestNoneValueFix:
    def test_stored_none_hits(self):
        """A stored None must hit, not fall through to the origin."""
        hierarchy = make_hierarchy(loader=lambda k: None)
        first = hierarchy.get("x")
        assert first.value is None and first.served_by == "kb"
        second = hierarchy.get("x")
        assert second.value is None
        assert second.served_by == "client"
        assert hierarchy.origin.fetches == 1

    def test_put_none_then_get(self):
        hierarchy = make_hierarchy()
        hierarchy.put("k", None)
        assert hierarchy.get("k").served_by == "client"
        assert hierarchy.origin.fetches == 0


class TestGetMany:
    def test_values_and_sources(self):
        hierarchy = make_hierarchy(client_size=64, server_size=256)
        hierarchy.get("a")                    # warm one key
        batch = hierarchy.get_many(["a", "b", "c"])
        assert batch.values == {"a": "value-a", "b": "value-b",
                                "c": "value-c"}
        assert batch.served_by["a"] == "client"
        assert batch.served_by["b"] == "kb"
        assert batch.origin_keys == 2
        assert hierarchy.origin.batch_loads == 1

    def test_one_level_charge_per_batch(self):
        """A batch pays each level cost once, not once per key."""
        hierarchy = make_hierarchy()
        batch = hierarchy.get_many([f"k{i}" for i in range(10)])
        expected = CLIENT_COST + SERVER_COST + ORIGIN_COST
        assert batch.latency_s == pytest.approx(expected)
        assert batch.levels_probed == 2

    def test_per_item_marginal_cost(self):
        hierarchy = make_hierarchy(per_item_cost_s=1e-4)
        batch = hierarchy.get_many(["a", "b", "c", "d"])
        expected = CLIENT_COST + SERVER_COST + ORIGIN_COST + 4 * 1e-4
        assert batch.latency_s == pytest.approx(expected)

    def test_all_hits_skip_origin(self):
        hierarchy = make_hierarchy(client_size=64)
        keys = ["a", "b", "c"]
        hierarchy.get_many(keys)
        batch = hierarchy.get_many(keys)
        assert batch.origin_keys == 0
        assert batch.latency_s == pytest.approx(CLIENT_COST)
        assert batch.levels_probed == 1

    def test_duplicates_coalesce_within_batch(self):
        hierarchy = make_hierarchy()
        batch = hierarchy.get_many(["a", "a", "a", "b"])
        assert batch.coalesced == 2
        assert hierarchy.origin.fetches == 2   # a and b once each

    def test_batch_loader_used(self):
        calls = []

        def batch_loader(keys):
            calls.append(list(keys))
            return {k: f"bulk-{k}" for k in keys}

        hierarchy = make_hierarchy(batch_loader=batch_loader)
        batch = hierarchy.get_many(["x", "y"])
        assert calls == [["x", "y"]]
        assert batch.values["x"] == "bulk-x"

    def test_missing_keys_reported(self):
        def batch_loader(keys):
            return {k: k for k in keys if k != "gone"}

        hierarchy = make_hierarchy(batch_loader=batch_loader,
                                   negative_ttl_s=1.0)
        batch = hierarchy.get_many(["ok", "gone"])
        assert batch.missing == ("gone",)
        assert batch.values == {"ok": "ok"}

    def test_put_many_write_through(self):
        hierarchy = make_hierarchy()
        hierarchy.put_many({"a": 1, "b": 2})
        batch = hierarchy.get_many(["a", "b"])
        assert batch.origin_keys == 0
        assert batch.values == {"a": 1, "b": 2}


class TestSingleFlight:
    def test_hot_key_storm_costs_one_fetch(self):
        hierarchy = make_hierarchy()
        t0 = hierarchy.clock.now
        results = [hierarchy.get("hot", start_at=t0) for _ in range(100)]
        assert hierarchy.origin.fetches == 1
        assert hierarchy.coalesced == 99
        assert all(r.value == "value-hot" for r in results)
        leader, followers = results[0], results[1:]
        assert not leader.coalesced
        assert all(f.coalesced for f in followers)
        # Followers wait out the leader's in-flight window, no longer.
        assert all(f.latency_s == pytest.approx(leader.latency_s)
                   for f in followers)

    def test_request_after_window_misses_the_flight(self):
        hierarchy = make_hierarchy(client_size=1)
        hierarchy.get("a")
        hierarchy.get("b")       # evicts a from the 1-slot client
        later = hierarchy.get("a")   # starts now, window long over
        assert not later.coalesced
        assert later.served_by == "server"

    def test_batch_joins_inflight_window(self):
        hierarchy = make_hierarchy()
        t0 = hierarchy.clock.now
        hierarchy.get("hot", start_at=t0)
        batch = hierarchy.get_many(["hot", "cold"], start_at=t0)
        assert batch.served_by["hot"] == "inflight:kb"
        assert batch.coalesced == 1
        assert hierarchy.origin.fetches == 2   # hot once, cold once

    def test_invalidate_clears_flight(self):
        hierarchy = make_hierarchy()
        t0 = hierarchy.clock.now
        hierarchy.get("k", start_at=t0)
        hierarchy.invalidate("k")
        result = hierarchy.get("k", start_at=t0)
        assert not result.coalesced
        assert hierarchy.origin.fetches == 2


class TestNegativeCaching:
    def _flaky_origin(self):
        def loader(key):
            if key.startswith("missing"):
                raise NotFoundError(f"no {key}")
            return f"value-{key}"
        return loader

    def test_not_found_is_cached(self):
        hierarchy = make_hierarchy(loader=self._flaky_origin(),
                                   negative_ttl_s=5.0)
        with pytest.raises(NotFoundError):
            hierarchy.get("missing-1")
        with pytest.raises(NotFoundError):
            hierarchy.get("missing-1")
        assert hierarchy.origin.fetches == 1
        assert hierarchy.negative_hits == 1

    def test_negative_entry_expires(self):
        hierarchy = make_hierarchy(loader=self._flaky_origin(),
                                   negative_ttl_s=0.5)
        with pytest.raises(NotFoundError):
            hierarchy.get("missing-1")
        hierarchy.clock.advance(1.0)
        with pytest.raises(NotFoundError):
            hierarchy.get("missing-1")
        assert hierarchy.origin.fetches == 2

    def test_put_clears_negative_entry(self):
        hierarchy = make_hierarchy(loader=self._flaky_origin(),
                                   negative_ttl_s=5.0)
        with pytest.raises(NotFoundError):
            hierarchy.get("missing-1")
        hierarchy.put("missing-1", "now-present")
        assert hierarchy.get("missing-1").value == "now-present"

    def test_disabled_without_ttl(self):
        hierarchy = make_hierarchy(loader=self._flaky_origin())
        for _ in range(3):
            with pytest.raises(NotFoundError):
                hierarchy.get("missing-1")
        assert hierarchy.origin.fetches == 3


class TestHitRatioAccounting:
    def test_counts_batched_lookups(self):
        """get_many bypasses per-key level-0 probes; the ratio must still
        see every key-request."""
        hierarchy = make_hierarchy(client_size=64)
        keys = [f"k{i}" for i in range(10)]
        hierarchy.get_many(keys)     # 10 requests, 10 origin loads
        hierarchy.get_many(keys)     # 10 requests, all client hits
        assert hierarchy.requests == 20
        assert hierarchy.origin_loads == 10
        assert hierarchy.overall_hit_ratio() == pytest.approx(0.5)

    def test_counts_coalesced_as_hits(self):
        hierarchy = make_hierarchy()
        t0 = hierarchy.clock.now
        for _ in range(10):
            hierarchy.get("hot", start_at=t0)
        assert hierarchy.overall_hit_ratio() == pytest.approx(0.9)

    def test_monitoring_counters_surface(self):
        clock = SimClock()
        monitoring = MonitoringService(clock)
        hierarchy = make_hierarchy(monitoring=monitoring, clock=clock,
                                   loader=lambda k: (_ for _ in ()).throw(
                                       NotFoundError(k))
                                   if str(k).startswith("missing")
                                   else f"value-{k}",
                                   negative_ttl_s=5.0)
        t0 = clock.now
        hierarchy.get("hot", start_at=t0)
        hierarchy.get("hot", start_at=t0)
        with pytest.raises(NotFoundError):
            hierarchy.get("missing-x")
        with pytest.raises(NotFoundError):
            hierarchy.get("missing-x")
        hierarchy.get_many(["a", "b"])
        counter = monitoring.metrics.counter
        assert counter("cache.coalesced") == 1
        assert counter("cache.negative_hits") == 1
        assert counter("cache.batched_lookups") == 1
        assert counter("cache.origin_loads") == 4   # hot, missing-x, a, b

    def test_publish_metrics_gauges(self):
        clock = SimClock()
        monitoring = MonitoringService(clock)
        hierarchy = CacheHierarchy(
            [CacheLevel("client", TinyLfuCache(2), CLIENT_COST)],
            Origin("kb", lambda k: k, ORIGIN_COST), clock=clock)
        for key in ("a", "b", "c", "d"):
            hierarchy.get(key)
        hierarchy.publish_metrics(monitoring)
        gauge = monitoring.metrics.gauge
        assert gauge("cache.hierarchy.requests") == 4.0
        assert gauge("cache.client.admission_rejections") is not None
        assert gauge("cache.hierarchy.hit_ratio") == pytest.approx(
            hierarchy.overall_hit_ratio())


class TestBulkKnowledgeBases:
    def test_pubchem_bulk_matches_singles(self, universe):
        kb = PubChemLike(universe)
        ids = [d.drug_id for d in universe.drugs[:5]]
        bulk = kb.fingerprints(ids)
        assert list(bulk) == ids
        for drug_id in ids:
            assert (bulk[drug_id] == kb.fingerprint(drug_id)).all()

    def test_bulk_missing_id_raises(self, universe):
        kb = DrugBankLike(universe)
        with pytest.raises(NotFoundError):
            kb.targets_many([universe.drugs[0].drug_id, "DRG9999"])

    def test_pubmed_fetch_many(self, universe):
        kb = PubMedLite(universe.abstracts)
        pmids = [a.pmid for a in universe.abstracts[:4]]
        fetched = kb.fetch_many(pmids)
        assert [fetched[p].pmid for p in pmids] == pmids

    def test_call_batch_one_round_trip(self, universe):
        clock = SimClock()
        remote = RemoteKnowledgeBase(PubChemLike(universe), clock,
                                     round_trip_s=0.08,
                                     per_item_cost_s=2e-4)
        ids = [d.drug_id for d in universe.drugs[:10]]
        result = remote.call_batch("fingerprints", ids)
        assert len(result) == 10
        assert remote.remote_calls == 1
        assert remote.batched_items == 10
        assert clock.now == pytest.approx(0.08 + 10 * 2e-4)

    def test_cached_get_many_batches_misses(self, universe):
        clock = SimClock()
        remote = RemoteKnowledgeBase(DrugBankLike(universe), clock)
        cached = CachedKnowledgeBase(remote)
        ids = [d.drug_id for d in universe.drugs[:6]]
        cached.get("targets", ids[0])             # warm one key singly
        result = cached.get_many("targets", ids, batch_method="targets_many")
        assert remote.remote_calls == 2           # 1 single + 1 batch
        assert remote.batched_items == 5          # only the misses shipped
        assert result[ids[0]] == cached.get("targets", ids[0])
        # Everything is now cached: no further remote traffic.
        cached.get_many("targets", ids, batch_method="targets_many")
        assert remote.remote_calls == 2


class TestBulkUnderFaults:
    def test_dropped_batch_retries_whole_without_double_count(self, universe):
        """A FaultPlan drop mid-batch fails the whole batch; resilience
        retries it as a whole, and success-side counters advance once."""
        clock = SimClock()
        monitoring = MonitoringService(clock)
        remote = RemoteKnowledgeBase(PubChemLike(universe), clock,
                                     round_trip_s=0.08)
        # Drop everything in the first 100 ms; the retry backoff pushes
        # the second attempt past the outage window.
        remote.fault_plan = FaultPlan(seed=0, clock=clock).drop_link(
            "cloud-a", "external-kb", 1.0, start_s=0.0, end_s=0.1)
        remote.resilience = ResilientExecutor(
            ResiliencePolicy(max_attempts=3, base_backoff_s=0.05,
                             jitter=0.0, seed=0),
            clock, monitoring)
        ids = [d.drug_id for d in universe.drugs[:8]]
        result = remote.call_batch("fingerprints", ids)
        assert len(result) == 8
        assert remote.failed_calls == 1
        assert remote.remote_calls == 1          # one *successful* batch
        assert remote.batched_items == 8         # not 16: no double count
        counter = monitoring.metrics.counter
        assert counter("resilience.kb.pubchem.retries") == 1.0
        assert counter("resilience.kb.pubchem.success") == 1.0

    def test_exhausted_retries_surface_failure(self, universe):
        clock = SimClock()
        remote = RemoteKnowledgeBase(PubChemLike(universe), clock,
                                     round_trip_s=0.08)
        remote.fault_plan = FaultPlan(seed=0, clock=clock).drop_link(
            "cloud-a", "external-kb", 1.0)
        remote.resilience = ResilientExecutor(
            ResiliencePolicy(max_attempts=2, base_backoff_s=0.01,
                             jitter=0.0, seed=0), clock, None)
        with pytest.raises(ServiceUnavailableError):
            remote.call_batch("fingerprints",
                              [universe.drugs[0].drug_id])
        assert remote.failed_calls == 2
        assert remote.batched_items == 0


def _batched_world():
    clock = SimClock()
    fabric = NetworkFabric(clock)
    fabric.add_endpoint("client")
    fabric.add_endpoint("server")
    fabric.connect("client", "server", latency_s=0.01,
                   bandwidth_bps=1_000_000.0)
    connection = PlatformConnection(fabric, "client", "server")
    store = {f"k{i}": f"v{i}" for i in range(100)}
    calls = []

    def handler(body):
        calls.append(body)
        if "keys" in body:
            return {key: store[key] for key in body["keys"]}
        return store[body["key"]]

    connection.register_handler("/records", handler)
    return connection, calls


class TestClientFetchMany:
    def test_enhanced_batches_misses_into_one_request(self):
        connection, calls = _batched_world()
        client = EnhancedClient(connection, cache=LruCache(64))
        client.fetch("/records", "k0")           # warm one key
        result = client.fetch_many("/records", ["k0", "k1", "k2"])
        assert result == {"k0": "v0", "k1": "v1", "k2": "v2"}
        assert len(calls) == 2                   # 1 single + 1 batch
        assert calls[1] == {"keys": ["k1", "k2"]}
        # All cached now: zero requests.
        client.fetch_many("/records", ["k0", "k1", "k2"])
        assert len(calls) == 2

    def test_basic_client_pays_per_key(self):
        connection, calls = _batched_world()
        client = BasicClient(connection)
        client.fetch_many("/records", ["k0", "k1", "k2"])
        assert len(calls) == 3

    def test_batched_request_is_cheaper(self):
        conn_a, _ = _batched_world()
        conn_b, _ = _batched_world()
        keys = [f"k{i}" for i in range(20)]
        BasicClient(conn_a).fetch_many("/records", keys)
        per_key_time = conn_a.fabric.clock.now
        EnhancedClient(conn_b, cache=LruCache(64)).fetch_many("/records",
                                                              keys)
        batched_time = conn_b.fabric.clock.now
        assert per_key_time / batched_time > 5


class TestWorkspacePrefetch:
    def test_prefetch_through_hierarchy(self):
        hierarchy = make_hierarchy(client_size=64)
        workspace = AnalysisWorkspace("study")
        values = workspace.prefetch(hierarchy, ["a", "b", "c"])
        assert values == {"a": "value-a", "b": "value-b", "c": "value-c"}
        assert hierarchy.origin.batch_loads == 1
        assert workspace.namespace["prefetched"]["b"] == "value-b"

    def test_prefetched_data_survives_run_all(self):
        hierarchy = make_hierarchy(client_size=64)
        workspace = AnalysisWorkspace("study")
        workspace.prefetch(hierarchy, ["a", "b"])
        workspace.add_cell("use", lambda ns: sorted(ns["prefetched"]))
        executions = workspace.run_all()
        assert executions[0].output_repr == "['a', 'b']"
        assert workspace.reproducibility_check()

    def test_prefetch_from_plain_cache(self):
        cache = LruCache(16)
        cache.put_many({"x": 1, "y": 2})
        workspace = AnalysisWorkspace("study")
        assert workspace.prefetch(cache, ["x", "y"]) == {"x": 1, "y": 2}
