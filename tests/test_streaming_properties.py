"""Property tests: incremental operators == full recompute (atol 1e-9).

The correctness backstop for the O(delta) fast path: after *any*
interleaving of feature updates and entity inserts, every incrementally
maintained matrix must match a from-scratch builder rebuild over the
same knowledge bases, and the Welford baselines must match a full
numpy re-fit.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytics.similarity import (DiseaseSimilarityBuilder,
                                        DrugSimilarityBuilder)
from repro.knowledge.synthetic import generate_universe
from repro.streaming import IncrementalSimilarityEngine, RunningMoments

UNIVERSE = generate_universe(n_drugs=8, n_diseases=6, seed=11)
FP_BITS = UNIVERSE.drugs[0].fingerprint.size
PHENO_DIM = UNIVERSE.diseases[0].phenotype.size


def _fresh_engine():
    return IncrementalSimilarityEngine(DrugSimilarityBuilder(UNIVERSE),
                                       DiseaseSimilarityBuilder(UNIVERSE))


def _rebuild(engine):
    drugs = DrugSimilarityBuilder(UNIVERSE, pubchem=engine.drugs.pubchem,
                                  drugbank=engine.drugs.drugbank,
                                  sider=engine.drugs.sider)
    drugs._drug_ids = list(engine.drugs.drug_ids)
    diseases = DiseaseSimilarityBuilder(UNIVERSE,
                                        disgenet=engine.diseases.disgenet)
    diseases._disease_ids = list(engine.diseases.disease_ids)
    return {**drugs.all_sources(), **diseases.all_sources()}


# One operation = (kind, entity-slot, payload seed).  Entity slots index
# into the current id list modulo its length, so sequences stay valid as
# inserts grow the universe.
_OPERATION = st.tuples(
    st.sampled_from(["fingerprint", "targets", "side_effects", "phenotype",
                     "ontology", "genes", "insert_drug", "insert_disease"]),
    st.integers(min_value=0, max_value=63),
    st.integers(min_value=0, max_value=2 ** 16))


def _apply(engine, op, counter):
    kind, slot, payload_seed = op
    rng = np.random.default_rng(payload_seed)
    if kind == "insert_drug":
        engine.add_drug(f"NEW-D-{counter}",
                        fingerprint=rng.integers(0, 2, FP_BITS),
                        targets={f"T{rng.integers(60):03d}"},
                        side_effects={f"SE{rng.integers(90):03d}"})
        return
    if kind == "insert_disease":
        engine.add_disease(f"NEW-Z-{counter}",
                           phenotype=rng.normal(size=PHENO_DIM),
                           ontology_path=("root", f"n{payload_seed % 7}"),
                           genes={f"G{rng.integers(200):04d}"})
        return
    if kind in ("fingerprint", "targets", "side_effects"):
        ids = engine.drugs.drug_ids
        drug_id = ids[slot % len(ids)]
        if kind == "fingerprint":
            engine.update_drug(drug_id,
                               fingerprint=rng.integers(0, 2, FP_BITS))
        elif kind == "targets":
            engine.update_drug(drug_id, targets={
                f"T{rng.integers(60):03d}" for _ in range(3)})
        else:
            engine.update_drug(drug_id, side_effects={
                f"SE{rng.integers(90):03d}" for _ in range(3)})
        return
    ids = engine.diseases.disease_ids
    disease_id = ids[slot % len(ids)]
    if kind == "phenotype":
        engine.update_disease(disease_id,
                              phenotype=rng.normal(size=PHENO_DIM))
    elif kind == "ontology":
        engine.update_disease(
            disease_id,
            ontology_path=tuple(f"n{i}" for i in
                                range(1 + payload_seed % 4)))
    else:
        engine.update_disease(disease_id, genes={
            f"G{rng.integers(200):04d}" for _ in range(2)})


class TestSimilarityEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(_OPERATION, min_size=1, max_size=12))
    def test_any_interleaving_matches_full_rebuild(self, operations):
        engine = _fresh_engine()
        for counter, op in enumerate(operations):
            _apply(engine, op, counter)
        reference = _rebuild(engine)
        for source, matrix in engine.matrices.items():
            assert np.allclose(matrix, reference[source], atol=1e-9), source

    @settings(max_examples=25, deadline=None)
    @given(st.lists(_OPERATION, min_size=1, max_size=10))
    def test_incremental_cost_is_linear_not_quadratic(self, operations):
        """Every operation pays at most (sources x (n-1)) pair evals —
        never the full n(n-1)/2 rebuild."""
        engine = _fresh_engine()
        for counter, op in enumerate(operations):
            before = engine.pair_evals
            _apply(engine, op, counter)
            spent = engine.pair_evals - before
            n = max(len(engine.drugs.drug_ids),
                    len(engine.diseases.disease_ids))
            assert spent <= 3 * (n - 1)


class TestBaselineEquivalence:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(min_value=3.0, max_value=15.0,
                              allow_nan=False), min_size=1, max_size=60))
    def test_welford_matches_full_refit(self, values):
        moments = RunningMoments()
        for value in values:
            moments.update(value)
        assert abs(moments.mean - float(np.mean(values))) <= 1e-9
        assert abs(moments.variance - float(np.var(values))) <= 1e-9
