"""Tests for Joint Matrix Factorization and the repositioning baselines.

These are the scientific core of experiment E8 (Fig. 9): JMF must beat
each single-source baseline, converge monotonically (approximately), and
learn interpretable source weights.
"""

import numpy as np
import pytest

from repro.analytics.baselines import (
    GuiltByAssociation,
    PlainMatrixFactorization,
    SideEffectKnn,
    combined_similarity,
)
from repro.analytics.jmf import JointMatrixFactorization
from repro.analytics.metrics import evaluate_masked, holdout_mask
from repro.core.errors import ConfigurationError


@pytest.fixture(scope="module")
def split(universe):
    rng = np.random.default_rng(7)
    return holdout_mask(universe.association_matrix, 0.2, rng)


@pytest.fixture(scope="module")
def jmf_result(universe, drug_similarities, disease_similarities, split):
    training, _ = split
    model = JointMatrixFactorization(rank=10, alpha=0.5, seed=1,
                                     max_iterations=150)
    return model.fit(training, drug_similarities, disease_similarities)


class TestJmfMechanics:
    def test_factor_shapes(self, jmf_result, universe):
        n_drugs = len(universe.drugs)
        n_diseases = len(universe.diseases)
        assert jmf_result.drug_factors.shape == (n_drugs, 10)
        assert jmf_result.disease_factors.shape == (n_diseases, 10)

    def test_factors_nonnegative(self, jmf_result):
        assert (jmf_result.drug_factors >= 0).all()
        assert (jmf_result.disease_factors >= 0).all()

    def test_objective_decreases(self, jmf_result):
        history = jmf_result.objective_history
        assert history[-1] < history[0]
        # Approximately monotone: the factor updates are monotone for fixed
        # source weights, but the weight re-softmax between iterations can
        # bump the objective slightly — bound any single increase at 10%.
        for before, after in zip(history, history[1:]):
            assert after <= before * 1.10

    def test_weights_are_distributions(self, jmf_result):
        assert sum(jmf_result.drug_source_weights.values()) == pytest.approx(1.0)
        assert sum(jmf_result.disease_source_weights.values()) == \
            pytest.approx(1.0)
        assert all(w >= 0 for w in jmf_result.drug_source_weights.values())

    def test_weights_interpretable(self, jmf_result):
        # The universe generates 'chemical' as the most informative drug
        # source, and 'ontology' as the least informative disease source
        # (its measured similarity_quality is far below the other two).
        # Source weighting is winner-take-most, so we assert the winners
        # and losers rather than a full ranking.
        assert max(jmf_result.drug_source_weights,
                   key=jmf_result.drug_source_weights.get) == "chemical"
        assert max(jmf_result.disease_source_weights,
                   key=jmf_result.disease_source_weights.get) != "ontology"

    def test_groups_byproduct(self, jmf_result, universe):
        groups = jmf_result.drug_groups()
        assert groups.shape == (len(universe.drugs),)
        assert groups.max() < 10

    def test_deterministic(self, universe, drug_similarities,
                           disease_similarities, split):
        training, _ = split
        model = JointMatrixFactorization(rank=5, seed=3, max_iterations=30)
        r1 = model.fit(training, drug_similarities, disease_similarities)
        r2 = model.fit(training, drug_similarities, disease_similarities)
        assert np.allclose(r1.drug_factors, r2.drug_factors)

    def test_shape_validation(self, universe, drug_similarities,
                              disease_similarities):
        model = JointMatrixFactorization(rank=5)
        bad = {"x": np.eye(3)}
        with pytest.raises(ConfigurationError):
            model.fit(universe.association_matrix, bad, disease_similarities)

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            JointMatrixFactorization(rank=0)
        with pytest.raises(ConfigurationError):
            JointMatrixFactorization(alpha=-1)


class TestRepositioningQuality:
    def test_jmf_beats_every_baseline(self, universe, drug_similarities,
                                      split, jmf_result):
        truth = universe.association_matrix
        training, mask = split
        jmf_auc = evaluate_masked(truth, jmf_result.scores(), mask).auc

        gba = GuiltByAssociation(10).predict(training,
                                             drug_similarities["chemical"])
        mf = PlainMatrixFactorization(rank=10, seed=1).predict(training)
        knn = SideEffectKnn(5).predict(training,
                                       drug_similarities["side_effect"])
        for name, scores in [("gba", gba), ("mf", mf), ("knn", knn)]:
            baseline_auc = evaluate_masked(truth, scores, mask).auc
            assert jmf_auc > baseline_auc, (name, jmf_auc, baseline_auc)

    def test_jmf_auc_meaningful(self, universe, split, jmf_result):
        _, mask = split
        evaluation = evaluate_masked(universe.association_matrix,
                                     jmf_result.scores(), mask)
        assert evaluation.auc > 0.75


class TestBaselines:
    def test_gba_scores_bounded(self, universe, drug_similarities, split):
        training, _ = split
        scores = GuiltByAssociation(5).predict(training,
                                               drug_similarities["chemical"])
        assert scores.min() >= 0.0
        assert scores.max() <= 1.0

    def test_gba_better_than_random(self, universe, drug_similarities, split):
        training, mask = split
        scores = GuiltByAssociation(10).predict(
            training, drug_similarities["chemical"])
        assert evaluate_masked(universe.association_matrix, scores,
                               mask).auc > 0.6

    def test_plain_mf_reconstructs_training(self, universe, split):
        training, _ = split
        scores = PlainMatrixFactorization(rank=10, seed=1).predict(training)
        observed = scores[training == 1].mean()
        unobserved = scores[training == 0].mean()
        assert observed > unobserved * 2

    def test_combined_similarity_weights(self, drug_similarities):
        combined = combined_similarity(drug_similarities)
        assert combined.shape == drug_similarities["chemical"].shape
        weighted = combined_similarity(drug_similarities,
                                       {"chemical": 1.0, "target": 0.0,
                                        "side_effect": 0.0})
        assert np.allclose(weighted, drug_similarities["chemical"])

    def test_invalid_params(self, drug_similarities):
        with pytest.raises(ConfigurationError):
            GuiltByAssociation(0)
        with pytest.raises(ConfigurationError):
            SideEffectKnn(0)
        with pytest.raises(ConfigurationError):
            combined_similarity(drug_similarities,
                                {"chemical": 0.0, "target": 0.0,
                                 "side_effect": 0.0})
