"""Tests for k-anonymity, l-diversity, and re-identification risk."""

import numpy as np
import pytest

from repro.core.errors import AnonymizationError
from repro.privacy.kanonymity import (
    MondrianAnonymizer,
    QuasiIdentifier,
    achieved_k,
    equivalence_classes,
    generalize_age,
    generalize_zip,
    l_diversity,
    reidentification_risk,
)

QIS = [QuasiIdentifier("age", numeric=True),
       QuasiIdentifier("zip", numeric=False)]


def cohort(n=60, seed=3):
    rng = np.random.default_rng(seed)
    return [{"age": int(rng.integers(20, 80)),
             "zip": f"0211{int(rng.integers(0, 5))}",
             "dx": rng.choice(["E11", "I10", "J45"])}
            for _ in range(n)]


class TestDiagnostics:
    def test_achieved_k_identical_rows(self):
        rows = [{"age": 30, "zip": "02115"}] * 4
        assert achieved_k(rows, ["age", "zip"]) == 4

    def test_achieved_k_unique_rows(self):
        rows = [{"age": a, "zip": "02115"} for a in range(5)]
        assert achieved_k(rows, ["age", "zip"]) == 1

    def test_equivalence_classes(self):
        rows = [{"age": 30}, {"age": 30}, {"age": 40}]
        classes = equivalence_classes(rows, ["age"])
        assert sorted(len(v) for v in classes.values()) == [1, 2]

    def test_l_diversity(self):
        rows = [{"age": 30, "dx": "E11"}, {"age": 30, "dx": "I10"},
                {"age": 40, "dx": "E11"}, {"age": 40, "dx": "E11"}]
        assert l_diversity(rows, ["age"], "dx") == 1  # the 40 class

    def test_risk_bounds(self):
        unique = [{"age": a} for a in range(10)]
        assert reidentification_risk(unique, ["age"]) == pytest.approx(1.0)
        uniform = [{"age": 30}] * 10
        assert reidentification_risk(uniform, ["age"]) == pytest.approx(0.1)


class TestMondrian:
    def test_achieves_requested_k(self):
        release = MondrianAnonymizer(QIS, k=5).anonymize(cohort())
        assert release.achieved_k >= 5
        assert achieved_k(release.rows, ["age", "zip"]) >= 5

    def test_higher_k_fewer_classes(self):
        rows = cohort(100)
        k2 = MondrianAnonymizer(QIS, k=2).anonymize(rows)
        k20 = MondrianAnonymizer(QIS, k=20).anonymize(rows)
        assert len(k20.class_sizes) <= len(k2.class_sizes)

    def test_sensitive_values_untouched(self):
        rows = cohort(40)
        release = MondrianAnonymizer(QIS, k=5).anonymize(rows)
        assert sorted(r["dx"] for r in release.rows) == sorted(
            r["dx"] for r in rows)

    def test_row_count_preserved(self):
        rows = cohort(40)
        release = MondrianAnonymizer(QIS, k=5).anonymize(rows)
        assert len(release.rows) == 40

    def test_generalized_labels(self):
        rows = [{"age": 20, "zip": "a"}, {"age": 30, "zip": "b"},
                {"age": 40, "zip": "a"}, {"age": 50, "zip": "b"}]
        release = MondrianAnonymizer(QIS, k=4).anonymize(rows)
        assert release.rows[0]["age"] == "[20-50]"
        assert release.rows[0]["zip"] == "{a,b}"

    def test_too_few_rows_rejected(self):
        with pytest.raises(AnonymizationError):
            MondrianAnonymizer(QIS, k=10).anonymize(cohort(5))

    def test_invalid_k_rejected(self):
        with pytest.raises(AnonymizationError):
            MondrianAnonymizer(QIS, k=0)

    def test_no_qis_rejected(self):
        with pytest.raises(AnonymizationError):
            MondrianAnonymizer([], k=2)

    def test_risk_decreases_with_k(self):
        rows = cohort(120)
        risk_raw = reidentification_risk(rows, ["age", "zip"])
        release = MondrianAnonymizer(QIS, k=10).anonymize(rows)
        risk_anon = reidentification_risk(release.rows, ["age", "zip"])
        assert risk_anon < risk_raw


class TestLadders:
    def test_zip_ladder(self):
        assert generalize_zip("02115", 0) == "02115"
        assert generalize_zip("02115", 1) == "021**"
        assert generalize_zip("02115", 2) == "*****"

    def test_age_buckets(self):
        assert generalize_age(37, 10) == "30-39"
        assert generalize_age(37, 1) == "37"
        assert generalize_age(93, 10) == "90+"


class TestInputValidation:
    def test_non_five_digit_zip_rejected(self):
        for bad in ("123", "1234567", "0211a", "", "02 15"):
            with pytest.raises(AnonymizationError):
                generalize_zip(bad, 1)

    def test_zip_whitespace_normalized(self):
        assert generalize_zip(" 60601 ", 0) == "60601"
        assert generalize_zip(" 60601 ", 1) == "606**"

    def test_integer_zip_accepted(self):
        assert generalize_zip(60601, 1) == "606**"

    def test_missing_qi_column_is_anonymization_error(self):
        rows = cohort(n=20)
        del rows[7]["zip"]
        with pytest.raises(AnonymizationError, match="missing required"):
            equivalence_classes(rows, ["age", "zip"])
        with pytest.raises(AnonymizationError, match="missing required"):
            l_diversity(rows, ["age", "zip"], "dx")
        with pytest.raises(AnonymizationError, match="missing required"):
            MondrianAnonymizer(QIS, k=5).anonymize(rows)

    def test_missing_sensitive_column_is_anonymization_error(self):
        rows = cohort(n=20)
        del rows[3]["dx"]
        with pytest.raises(AnonymizationError, match="missing required"):
            l_diversity(rows, ["age", "zip"], "dx")
