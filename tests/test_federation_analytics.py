"""Federated JMF / DELT match their centralized counterparts.

The acceptance bound is rtol 1e-2; in practice JMF is bit-identical
(integer counts aggregate exactly in fixed point, and the factorization
is a deterministic seeded fit at the coordinator) and DELT agrees to
within the ``2^-24`` fixed-point quantization.
"""

import numpy as np
import pytest

from repro.analytics.delt import DeltModel
from repro.analytics.jmf import JointMatrixFactorization
from repro.analytics.similarity import (
    DiseaseSimilarityBuilder,
    DrugSimilarityBuilder,
)
from repro.blockchain import standard_network
from repro.cloudsim.clock import SimClock
from repro.compute.scheduler import standard_scheduler
from repro.federation import (
    DeltStudyConfig,
    FederatedStudyService,
    JmfStudyConfig,
    build_institutions,
    consented_union,
)
from repro.knowledge.synthetic import generate_universe
from repro.workloads.emr import generate_emr_cohort

GROUP = "grp-fed-analytics"


@pytest.fixture(scope="module")
def small_universe():
    return generate_universe(n_drugs=16, n_diseases=12, n_genes=30,
                             n_abstracts=60, seed=3)


def run_study(service, analysis, participants, threshold=None):
    threshold = threshold if threshold is not None else len(participants)
    opened = service.propose(
        tenant_id="tenant-lab", researcher="user-researcher",
        analysis=analysis, group_id=GROUP, participants=participants,
        threshold=threshold)
    study_id = opened["study_id"]
    for name in participants[:threshold]:
        service.approve(study_id, name)
    service.run(study_id)
    return service.result_object(study_id)


def build_service(institutions, seed=9, jmf_config=None, delt_config=None):
    clock = institutions[0].clock
    network = standard_network(seed=seed, clock=clock)
    scheduler = standard_scheduler(clock=clock)
    return FederatedStudyService(
        clock=clock, network=network, scheduler=scheduler,
        institutions=institutions, seed=seed,
        jmf_config=jmf_config, delt_config=delt_config)


class TestFederatedJmf:
    @pytest.mark.parametrize("n_institutions", [2, 4])
    def test_matches_centralized_bitwise(self, small_universe,
                                         n_institutions):
        universe = small_universe
        clock = SimClock()
        patient_ids = [f"pt-{i:03d}" for i in range(40)]
        institutions = build_institutions(
            n_institutions, clock, GROUP,
            patients=(), association_matrix=universe.association_matrix,
            seed=17, consent_rate=0.85)
        # build_institutions partitions PatientSeries; for JMF-only
        # studies the evidence is attached directly instead.
        from repro.federation.cohorts import synthesize_evidence
        for index, institution in enumerate(institutions):
            local_ids = patient_ids[index::n_institutions]
            institution._evidence = synthesize_evidence(
                universe.association_matrix, local_ids, seed=17 + index)
            for pid in local_ids:
                institution.grant_consent(pid, GROUP)

        drug_sims = DrugSimilarityBuilder(universe).all_sources()
        disease_sims = DiseaseSimilarityBuilder(universe).all_sources()
        config = JmfStudyConfig(
            n_drugs=len(universe.drugs), n_diseases=len(universe.diseases),
            drug_similarities=drug_sims, disease_similarities=disease_sims,
            jmf_kwargs={"rank": 4, "max_iterations": 40, "seed": 5})
        service = build_service(institutions, jmf_config=config)
        participants = [inst.name for inst in institutions]
        federated = run_study(service, "jmf", participants)

        # Centralized fit over the pooled consented evidence.
        counts = np.zeros((len(universe.drugs), len(universe.diseases)))
        for institution in institutions:
            counts += institution.jmf_counts(
                GROUP, len(universe.drugs),
                len(universe.diseases)).reshape(counts.shape)
        associations = (counts >= 1.0).astype(float)
        centralized = JointMatrixFactorization(
            rank=4, max_iterations=40, seed=5).fit(
                associations, drug_sims, disease_sims)

        np.testing.assert_array_equal(federated.scores(),
                                      centralized.scores())
        assert federated.drug_source_weights == \
            centralized.drug_source_weights


class TestFederatedDelt:
    @pytest.mark.parametrize("n_institutions", [2, 3])
    def test_matches_centralized_within_rtol(self, n_institutions):
        clock = SimClock()
        cohort = generate_emr_cohort(n_patients=45, n_drugs=10,
                                     n_lowering=3, seed=11)
        institutions = build_institutions(
            n_institutions, clock, GROUP, patients=cohort.patients,
            seed=11, consent_rate=0.9)
        config = DeltStudyConfig(n_drugs=10, ridge=1.0, max_iterations=6)
        service = build_service(institutions, delt_config=config)
        participants = [inst.name for inst in institutions]
        federated = run_study(service, "delt", participants)

        pooled_patients, _ = consented_union(institutions, GROUP)
        assert 0 < len(pooled_patients) < len(cohort.patients)
        centralized = DeltModel(n_drugs=10, ridge=1.0,
                                max_iterations=6).fit(pooled_patients)

        np.testing.assert_allclose(federated.effects, centralized.effects,
                                   rtol=1e-2, atol=1e-6)
        # Far tighter than the acceptance bound in practice.
        np.testing.assert_allclose(federated.effects, centralized.effects,
                                   rtol=1e-5, atol=1e-7)
        assert len(federated.objective_history) == \
            len(centralized.objective_history)
        np.testing.assert_allclose(federated.objective_history,
                                   centralized.objective_history, rtol=1e-5)

    def test_consent_respected_in_aggregates(self):
        """Revoking one patient's consent changes exactly their contribution."""
        clock = SimClock()
        cohort = generate_emr_cohort(n_patients=20, n_drugs=6,
                                     n_lowering=2, seed=13)
        institutions = build_institutions(2, clock, GROUP,
                                          patients=cohort.patients, seed=13)
        beta = np.zeros(6)
        before = sum(len(i.consented_patients(GROUP)) for i in institutions)
        partial_before = institutions[0].delt_partials(GROUP, beta)

        victim = institutions[0].consented_patients(GROUP)[0]
        institutions[0].consent.revoke_all_for_patient(victim)
        after = sum(len(i.consented_patients(GROUP)) for i in institutions)
        partial_after = institutions[0].delt_partials(GROUP, beta)

        assert after == before - 1
        assert not np.array_equal(partial_before, partial_after)
