"""Tests for the enhanced client and the thin baseline."""

import pytest

from repro.caching.policies import LruCache
from repro.client.connection import PlatformConnection
from repro.client.enhanced import BasicClient, EnhancedClient
from repro.cloudsim.network import standard_topology
from repro.core.errors import (
    DisconnectedError,
    ModelLifecycleError,
    NotFoundError,
)
from repro.crypto.kms import KeyManagementService
from repro.fhir.resources import Bundle, Patient
from repro.ingestion.pipeline import ClientRegistration
from repro.crypto.rsa import generate_keypair, hybrid_decrypt
from repro.privacy.deidentify import Deidentifier


@pytest.fixture
def connection():
    fabric = standard_topology()
    connection = PlatformConnection(fabric, "client", "cloud-a")
    store = {"kb-1": "knowledge", "kb-2": "more knowledge"}
    connection.register_handler("/kb/get",
                                lambda body: store.get(body["key"]))
    connection.register_handler("/analytics/run",
                                lambda body: {"ran": body["model"]})
    uploads = []
    connection.register_handler("/upload",
                                lambda body: uploads.append(body) or "ok")
    connection._uploads = uploads  # test hook
    return connection


class TestConnection:
    def test_request_roundtrip(self, connection):
        assert connection.request("/kb/get", {"key": "kb-1"}) == "knowledge"
        assert connection.requests_sent == 1

    def test_charges_network_time(self, connection):
        before = connection.fabric.clock.now
        connection.request("/kb/get", {"key": "kb-1"})
        assert connection.fabric.clock.now > before

    def test_unknown_route(self, connection):
        with pytest.raises(NotFoundError):
            connection.request("/nope")

    def test_offline_raises(self, connection):
        connection.go_offline()
        with pytest.raises(DisconnectedError):
            connection.request("/kb/get", {"key": "kb-1"})
        connection.go_online()
        assert connection.request("/kb/get", {"key": "kb-1"}) == "knowledge"


class TestBasicClient:
    def test_every_fetch_is_remote(self, connection):
        client = BasicClient(connection)
        client.fetch("/kb/get", "kb-1")
        client.fetch("/kb/get", "kb-1")
        assert connection.requests_sent == 2

    def test_model_runs_remote(self, connection):
        client = BasicClient(connection)
        assert client.run_model("jmf", {}) == {"ran": "jmf"}

    def test_offline_upload_fails(self, connection):
        client = BasicClient(connection)
        connection.go_offline()
        with pytest.raises(DisconnectedError):
            client.upload("/upload", {"x": 1})


class TestEnhancedClientCaching:
    def test_cache_eliminates_repeat_requests(self, connection):
        client = EnhancedClient(connection, cache=LruCache(16))
        first = client.fetch("/kb/get", "kb-1")
        second = client.fetch("/kb/get", "kb-1")
        assert first == second == "knowledge"
        assert connection.requests_sent == 1

    def test_cached_fetch_is_faster(self, connection):
        client = EnhancedClient(connection)
        client.fetch("/kb/get", "kb-1")
        t_before = connection.fabric.clock.now
        client.fetch("/kb/get", "kb-1")
        assert connection.fabric.clock.now == t_before  # no network charged


class TestEnhancedClientEdgeCompute:
    def test_installed_model_runs_locally(self, connection):
        client = EnhancedClient(connection)
        client.install_model("risk-score", lambda payload: payload["x"] * 2)
        assert client.run_model("risk-score", {"x": 21}) == 42
        assert client.local_model_runs == 1
        assert connection.requests_sent == 0

    def test_missing_model_falls_back_remote(self, connection):
        client = EnhancedClient(connection)
        assert client.run_model("jmf", {}) == {"ran": "jmf"}
        assert client.remote_model_runs == 1

    def test_unapproved_model_rejected(self, connection):
        client = EnhancedClient(connection)
        with pytest.raises(ModelLifecycleError):
            client.install_model("sketchy", lambda p: p, approved=False)

    def test_local_model_works_offline(self, connection):
        client = EnhancedClient(connection)
        client.install_model("risk-score", lambda payload: payload["x"] + 1)
        connection.go_offline()
        assert client.run_model("risk-score", {"x": 1}) == 2


class TestEnhancedClientPrivacy:
    def test_prepare_bundle_encrypts(self, connection):
        keypair = generate_keypair(bits=1024, seed=42)
        registration = ClientRegistration("c1", keypair.public_key())
        client = EnhancedClient(connection, registration=registration)
        bundle = Bundle(id="b").add(
            Patient(id="p", name={"family": "Doe"}))
        envelope = client.prepare_bundle(bundle)
        decrypted = hybrid_decrypt(keypair, envelope)
        assert b"Doe" in decrypted

    def test_prepare_bundle_anonymizes_first(self, connection):
        keypair = generate_keypair(bits=1024, seed=43)
        registration = ClientRegistration("c1", keypair.public_key())
        client = EnhancedClient(
            connection, registration=registration,
            anonymizer=Deidentifier(b"client-side-secret-0123456789"))
        bundle = Bundle(id="b").add(
            Patient(id="p", name={"family": "Doe"},
                    identifier=[{"value": "ssn"}]))
        envelope = client.prepare_bundle(bundle, anonymize=True)
        decrypted = hybrid_decrypt(keypair, envelope)
        assert b"Doe" not in decrypted

    def test_unregistered_client_cannot_prepare(self, connection):
        client = EnhancedClient(connection)
        with pytest.raises(ModelLifecycleError):
            client.prepare_bundle(Bundle(id="b"))


class TestOfflineQueue:
    def test_uploads_queue_while_offline(self, connection):
        client = EnhancedClient(connection)
        connection.go_offline()
        assert client.upload("/upload", {"n": 1}) is None
        assert client.upload("/upload", {"n": 2}) is None
        assert client.queued_uploads == 2
        assert connection._uploads == []

    def test_queue_drains_on_reconnect(self, connection):
        client = EnhancedClient(connection)
        connection.go_offline()
        client.upload("/upload", {"n": 1})
        client.upload("/upload", {"n": 2})
        connection.go_online()
        responses = client.drain_queue()
        assert responses == ["ok", "ok"]
        assert [u["n"] for u in connection._uploads] == [1, 2]
        assert client.queued_uploads == 0

    def test_drain_while_offline_rejected(self, connection):
        client = EnhancedClient(connection)
        connection.go_offline()
        client.upload("/upload", {"n": 1})
        with pytest.raises(DisconnectedError):
            client.drain_queue()

    def test_online_upload_immediate(self, connection):
        client = EnhancedClient(connection)
        assert client.upload("/upload", {"n": 1}) == "ok"
        assert client.queued_uploads == 0
