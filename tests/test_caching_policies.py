"""Tests for cache eviction policies."""

from collections import Counter

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.caching.policies import (
    LfuCache,
    LruCache,
    TinyLfuCache,
    TtlCache,
    TwoQueueCache,
    make_cache,
)
from repro.cloudsim.clock import SimClock
from repro.core.errors import ConfigurationError


class TestLru:
    def test_hit_miss_accounting(self):
        cache = LruCache(2)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("b") is None
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_ratio == 0.5

    def test_evicts_least_recent(self):
        cache = LruCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")           # refresh a
        cache.put("c", 3)        # evicts b
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.stats.evictions == 1

    def test_update_refreshes(self):
        cache = LruCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)
        cache.put("c", 3)        # evicts b, not a
        assert cache.get("a") == 10
        assert cache.get("b") is None

    def test_invalidate(self):
        cache = LruCache(2)
        cache.put("a", 1)
        assert cache.invalidate("a")
        assert not cache.invalidate("a")
        assert cache.get("a") is None
        assert cache.stats.invalidations == 1

    def test_capacity_validated(self):
        with pytest.raises(ConfigurationError):
            LruCache(0)


class TestLfu:
    def test_evicts_least_frequent(self):
        cache = LfuCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        for _ in range(5):
            cache.get("a")
        cache.put("c", 3)        # b (freq 1) evicted, a (freq 6) kept
        assert cache.get("a") == 1
        assert cache.get("b") is None

    def test_tie_broken_by_recency(self):
        cache = LfuCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)        # a and b tied at freq 1; a older -> evicted
        assert cache.get("a") is None
        assert cache.get("b") == 2

    def test_remove_cleans_metadata(self):
        cache = LfuCache(2)
        cache.put("a", 1)
        cache.invalidate("a")
        assert len(cache) == 0
        cache.put("a", 2)
        assert cache.get("a") == 2


class TestTwoQueue:
    def test_one_hit_wonders_do_not_pollute_main(self):
        cache = TwoQueueCache(8, probation_fraction=0.25)
        cache.put("hot", 1)
        cache.get("hot")         # promoted to main
        for i in range(20):      # a scan of one-hit wonders
            cache.put(f"scan-{i}", i)
        assert cache.get("hot") == 1

    def test_second_touch_promotes(self):
        cache = TwoQueueCache(8)
        cache.put("a", 1)
        assert cache.get("a") == 1      # promotion
        assert "a" in cache._main

    def test_len_counts_both_queues(self):
        cache = TwoQueueCache(8)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")
        assert len(cache) == 2

    def test_invalid_fraction(self):
        with pytest.raises(ConfigurationError):
            TwoQueueCache(8, probation_fraction=1.5)


class TestTtl:
    def test_expires_after_ttl(self):
        clock = SimClock()
        cache = TtlCache(4, ttl_s=10.0, clock=clock)
        cache.put("a", 1)
        assert cache.get("a") == 1
        clock.advance(11.0)
        assert cache.get("a") is None
        assert cache.stats.expirations == 1

    def test_fresh_within_ttl(self):
        clock = SimClock()
        cache = TtlCache(4, ttl_s=10.0, clock=clock)
        cache.put("a", 1)
        clock.advance(9.0)
        assert cache.get("a") == 1

    def test_rewrite_resets_ttl(self):
        clock = SimClock()
        cache = TtlCache(4, ttl_s=10.0, clock=clock)
        cache.put("a", 1)
        clock.advance(9.0)
        cache.put("a", 2)
        clock.advance(9.0)
        assert cache.get("a") == 2

    def test_capacity_still_bounds(self):
        cache = TtlCache(2, ttl_s=100.0)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        assert cache.stats.evictions == 1

    def test_invalid_ttl(self):
        with pytest.raises(ConfigurationError):
            TtlCache(2, ttl_s=0.0)


class _ReferenceLfu:
    """The pre-P4 O(n) LFU (min scan over (freq, recency)) — the oracle
    for trace-for-trace eviction equivalence of the O(1) bucket rewrite."""

    def __init__(self, capacity):
        self.capacity = capacity
        self._data = {}
        self._freq = Counter()
        self._recency = {}
        self._tick = 0
        self.evicted = []

    def _touch(self, key):
        self._tick += 1
        self._freq[key] += 1
        self._recency[key] = self._tick

    def get(self, key):
        if key in self._data:
            self._touch(key)
            return self._data[key]
        return None

    def put(self, key, value):
        if key not in self._data and len(self._data) >= self.capacity:
            victim = min(self._data,
                         key=lambda k: (self._freq[k], self._recency[k]))
            del self._data[victim]
            del self._freq[victim]
            del self._recency[victim]
            self.evicted.append(victim)
        self._data[key] = value
        self._touch(key)

    def invalidate(self, key):
        if key in self._data:
            del self._data[key]
            del self._freq[key]
            del self._recency[key]


class _TrackingLfu(LfuCache):
    def __init__(self, capacity):
        super().__init__(capacity)
        self.evicted = []

    def _evict(self):
        before = set(self._data)
        super()._evict()
        self.evicted.extend(before - set(self._data))


_lfu_ops = st.lists(
    st.tuples(st.sampled_from(["get", "put", "invalidate"]),
              st.integers(min_value=0, max_value=9)),
    min_size=1, max_size=200)


class TestLfuO1Equivalence:
    @settings(max_examples=200, deadline=None)
    @given(capacity=st.integers(min_value=1, max_value=6), ops=_lfu_ops)
    def test_eviction_trace_matches_reference(self, capacity, ops):
        """The O(1) bucket LFU evicts exactly the keys, in exactly the
        order, of the old O(n) min-scan implementation."""
        fast = _TrackingLfu(capacity)
        reference = _ReferenceLfu(capacity)
        for op, key in ops:
            if op == "put":
                fast.put(key, key)
                reference.put(key, key)
            elif op == "get":
                assert fast.get(key) == reference.get(key)
            else:
                fast.invalidate(key)
                reference.invalidate(key)
            assert fast.evicted == reference.evicted
            assert set(fast._data) == set(reference._data)

    def test_eviction_is_o1_buckets(self):
        """Structural check: no O(n) min scan — the victim comes straight
        off the minimum-frequency bucket."""
        cache = LfuCache(3)
        for key in ("a", "b", "c"):
            cache.put(key, key)
        cache.get("b")
        cache.get("c")
        assert cache._min_freq == 1
        assert list(cache._buckets[1]) == ["a"]
        cache.put("d", "d")          # evicts a straight off bucket 1
        assert "a" not in cache._data
        assert cache.stats.evictions == 1


class TestTinyLfu:
    def test_hot_key_survives_scan(self):
        cache = TinyLfuCache(2)
        cache.put("hot", 1)
        for _ in range(5):
            cache.get("hot")
        cache.put("warm", 2)
        # A cold scan cannot displace the hot entries.
        for i in range(10):
            cache.put(f"scan-{i}", i)
        assert cache.get("hot") == 1
        assert cache.stats.admission_rejections > 0

    def test_repeat_misses_earn_admission(self):
        cache = TinyLfuCache(1)
        cache.put("a", 1)
        for _ in range(3):
            cache.get("a")
        assert cache.put("b", 2) is None and cache.get("b") is None
        for _ in range(6):
            cache.get("b")          # misses feed the sketch
        cache.put("b", 2)
        assert cache.get("b") == 2  # b out-frequencied a

    def test_update_in_place_never_rejected(self):
        cache = TinyLfuCache(1)
        cache.put("a", 1)
        cache.put("a", 2)
        assert cache.get("a") == 2
        assert cache.stats.admission_rejections == 0

    def test_stored_none_distinguishable(self):
        cache = TinyLfuCache(4)
        cache.put("k", None)
        hit, value = cache.lookup("k")
        assert hit and value is None

    def test_invalidate(self):
        cache = TinyLfuCache(4)
        cache.put("a", 1)
        assert cache.invalidate("a")
        assert cache.get("a") is None


class TestBulkSurface:
    def test_get_many_counts_per_key_stats(self):
        cache = LruCache(8)
        cache.put_many({"a": 1, "b": 2})
        found = cache.get_many(["a", "b", "c"])
        assert found == {"a": 1, "b": 2}
        assert cache.stats.hits == 2
        assert cache.stats.misses == 1
        assert cache.stats.batch_gets == 1
        assert cache.stats.batch_puts == 1

    def test_put_many_accepts_pairs(self):
        cache = LruCache(8)
        cache.put_many([("a", 1), ("b", 2)])
        assert cache.get_many(["a", "b"]) == {"a": 1, "b": 2}


class TestFactory:
    @pytest.mark.parametrize("policy,cls", [
        ("lru", LruCache), ("lfu", LfuCache), ("2q", TwoQueueCache),
        ("ttl", TtlCache), ("tinylfu", TinyLfuCache),
    ])
    def test_make_cache(self, policy, cls):
        assert isinstance(make_cache(policy, 16), cls)

    def test_unknown_policy(self):
        with pytest.raises(ConfigurationError):
            make_cache("arc", 16)
