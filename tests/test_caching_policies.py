"""Tests for cache eviction policies."""

import pytest

from repro.caching.policies import (
    LfuCache,
    LruCache,
    TtlCache,
    TwoQueueCache,
    make_cache,
)
from repro.cloudsim.clock import SimClock
from repro.core.errors import ConfigurationError


class TestLru:
    def test_hit_miss_accounting(self):
        cache = LruCache(2)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("b") is None
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_ratio == 0.5

    def test_evicts_least_recent(self):
        cache = LruCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")           # refresh a
        cache.put("c", 3)        # evicts b
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.stats.evictions == 1

    def test_update_refreshes(self):
        cache = LruCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)
        cache.put("c", 3)        # evicts b, not a
        assert cache.get("a") == 10
        assert cache.get("b") is None

    def test_invalidate(self):
        cache = LruCache(2)
        cache.put("a", 1)
        assert cache.invalidate("a")
        assert not cache.invalidate("a")
        assert cache.get("a") is None
        assert cache.stats.invalidations == 1

    def test_capacity_validated(self):
        with pytest.raises(ConfigurationError):
            LruCache(0)


class TestLfu:
    def test_evicts_least_frequent(self):
        cache = LfuCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        for _ in range(5):
            cache.get("a")
        cache.put("c", 3)        # b (freq 1) evicted, a (freq 6) kept
        assert cache.get("a") == 1
        assert cache.get("b") is None

    def test_tie_broken_by_recency(self):
        cache = LfuCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)        # a and b tied at freq 1; a older -> evicted
        assert cache.get("a") is None
        assert cache.get("b") == 2

    def test_remove_cleans_metadata(self):
        cache = LfuCache(2)
        cache.put("a", 1)
        cache.invalidate("a")
        assert len(cache) == 0
        cache.put("a", 2)
        assert cache.get("a") == 2


class TestTwoQueue:
    def test_one_hit_wonders_do_not_pollute_main(self):
        cache = TwoQueueCache(8, probation_fraction=0.25)
        cache.put("hot", 1)
        cache.get("hot")         # promoted to main
        for i in range(20):      # a scan of one-hit wonders
            cache.put(f"scan-{i}", i)
        assert cache.get("hot") == 1

    def test_second_touch_promotes(self):
        cache = TwoQueueCache(8)
        cache.put("a", 1)
        assert cache.get("a") == 1      # promotion
        assert "a" in cache._main

    def test_len_counts_both_queues(self):
        cache = TwoQueueCache(8)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")
        assert len(cache) == 2

    def test_invalid_fraction(self):
        with pytest.raises(ConfigurationError):
            TwoQueueCache(8, probation_fraction=1.5)


class TestTtl:
    def test_expires_after_ttl(self):
        clock = SimClock()
        cache = TtlCache(4, ttl_s=10.0, clock=clock)
        cache.put("a", 1)
        assert cache.get("a") == 1
        clock.advance(11.0)
        assert cache.get("a") is None
        assert cache.stats.expirations == 1

    def test_fresh_within_ttl(self):
        clock = SimClock()
        cache = TtlCache(4, ttl_s=10.0, clock=clock)
        cache.put("a", 1)
        clock.advance(9.0)
        assert cache.get("a") == 1

    def test_rewrite_resets_ttl(self):
        clock = SimClock()
        cache = TtlCache(4, ttl_s=10.0, clock=clock)
        cache.put("a", 1)
        clock.advance(9.0)
        cache.put("a", 2)
        clock.advance(9.0)
        assert cache.get("a") == 2

    def test_capacity_still_bounds(self):
        cache = TtlCache(2, ttl_s=100.0)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        assert cache.stats.evictions == 1

    def test_invalid_ttl(self):
        with pytest.raises(ConfigurationError):
            TtlCache(2, ttl_s=0.0)


class TestFactory:
    @pytest.mark.parametrize("policy,cls", [
        ("lru", LruCache), ("lfu", LfuCache), ("2q", TwoQueueCache),
        ("ttl", TtlCache),
    ])
    def test_make_cache(self, policy, cls):
        assert isinstance(make_cache(policy, 16), cls)

    def test_unknown_policy(self):
        with pytest.raises(ConfigurationError):
            make_cache("arc", 16)
