"""Tests for FHIR resources, validation, and the HL7v2 adapter."""

import pytest

from repro.core.errors import ValidationError
from repro.fhir.hl7v2 import bundle_to_hl7, hl7_to_bundle, message_type
from repro.fhir.resources import (
    Bundle,
    Condition,
    Consent,
    MedicationRequest,
    Observation,
    Patient,
    resource_from_dict,
)
from repro.fhir.validation import BundleValidator


def sample_bundle():
    bundle = Bundle(id="b1")
    bundle.add(Patient(id="pt-1", name={"family": "Doe", "given": ["Jane"]},
                       birthDate="1980-03-12", gender="female"))
    bundle.add(Observation(id="o1", code={"text": "HbA1c"},
                           subject="Patient/pt-1",
                           effectiveDateTime="2024-01-15",
                           valueQuantity={"value": 7.2, "unit": "%"}))
    bundle.add(MedicationRequest(id="m1", medication={"text": "metformin"},
                                 subject="Patient/pt-1",
                                 authoredOn="2024-01-10"))
    return bundle


class TestResources:
    def test_json_roundtrip(self):
        bundle = sample_bundle()
        restored = Bundle.from_json(bundle.to_json())
        assert restored.to_json() == bundle.to_json()
        assert len(restored.entries) == 3

    def test_polymorphic_from_dict(self):
        data = {"resourceType": "Condition", "id": "c1",
                "code": {"text": "T2D"}, "subject": "Patient/p"}
        resource = resource_from_dict(data)
        assert isinstance(resource, Condition)

    def test_unknown_resource_type(self):
        with pytest.raises(ValidationError):
            resource_from_dict({"resourceType": "Alien", "id": "x"})

    def test_unknown_element_rejected(self):
        with pytest.raises(ValidationError):
            Patient.from_dict({"resourceType": "Patient", "id": "p",
                               "hovercraft": True})

    def test_wrong_discriminator_rejected(self):
        with pytest.raises(ValidationError):
            Patient.from_dict({"resourceType": "Observation", "id": "p"})

    def test_resources_of_filters(self):
        bundle = sample_bundle()
        assert len(bundle.resources_of(Patient)) == 1
        assert len(bundle.resources_of(Observation)) == 1
        assert len(bundle.resources_of(Consent)) == 0

    def test_invalid_json_raises(self):
        with pytest.raises(ValidationError):
            Bundle.from_json("{not json")


class TestValidation:
    def test_valid_bundle_passes(self):
        report = BundleValidator().validate(sample_bundle())
        assert report.valid, report.errors

    def test_empty_bundle_fails(self):
        report = BundleValidator().validate(Bundle(id="b"))
        assert not report.valid

    def test_dangling_subject_fails(self):
        bundle = Bundle(id="b")
        bundle.add(Observation(id="o", code={"text": "x"},
                               subject="Patient/ghost"))
        report = BundleValidator().validate(bundle)
        assert any("unknown patient" in e for e in report.errors)

    def test_known_patient_registry_accepted(self):
        bundle = Bundle(id="b")
        bundle.add(Observation(id="o", code={"text": "x"},
                               subject="Patient/known-1"))
        report = BundleValidator({"known-1"}).validate(bundle)
        assert report.valid

    def test_bad_birthdate_fails(self):
        bundle = Bundle(id="b")
        bundle.add(Patient(id="p", name={"family": "X"},
                           birthDate="03/12/1980"))
        report = BundleValidator().validate(bundle)
        assert any("birthDate" in e for e in report.errors)

    def test_bad_gender_fails(self):
        bundle = Bundle(id="b")
        bundle.add(Patient(id="p", name={"family": "X"}, gender="robot"))
        assert not BundleValidator().validate(bundle).valid

    def test_non_numeric_value_fails(self):
        bundle = Bundle(id="b")
        bundle.add(Patient(id="p", name={"family": "X"}))
        bundle.add(Observation(id="o", code={"text": "x"},
                               subject="Patient/p",
                               valueQuantity={"value": "high"}))
        assert not BundleValidator().validate(bundle).valid

    def test_duplicate_ids_fail(self):
        bundle = Bundle(id="b")
        bundle.add(Patient(id="p", name={"family": "X"}))
        bundle.add(Patient(id="p", name={"family": "Y"}))
        report = BundleValidator().validate(bundle)
        assert any("duplicate" in e for e in report.errors)

    def test_bad_status_fails(self):
        bundle = Bundle(id="b")
        bundle.add(Patient(id="p", name={"family": "X"}))
        bundle.add(Observation(id="o", status="guessed", code={"text": "x"},
                               subject="Patient/p"))
        assert not BundleValidator().validate(bundle).valid

    def test_unconsented_warning(self):
        bundle = Bundle(id="b")
        bundle.add(Patient(id="p", name={"family": "X"}))
        bundle.add(Consent(id="c", patient="Patient/p"))
        report = BundleValidator().validate(bundle)
        assert report.valid
        assert any("study group" in w for w in report.warnings)


HL7_ORU = (
    "MSH|^~\\&|LAB|HOSP|||20240115||ORU^R01|msg-1|P|2.5\r"
    "PID|1||pt-9||Doe^Jane||19800312|F|||12 Main St^^Boston^MA^02115\r"
    "OBX|1|NM|4548-4^HbA1c||7.2|%\r"
    "OBX|2|NM|2345-7^Glucose||140|mg/dL"
)


class TestHl7Adapter:
    def test_message_type(self):
        assert message_type(HL7_ORU) == "ORU^R01"

    def test_oru_to_bundle(self):
        bundle = hl7_to_bundle(HL7_ORU, "b-hl7")
        patients = bundle.resources_of(Patient)
        observations = bundle.resources_of(Observation)
        assert len(patients) == 1
        assert patients[0].birthDate == "1980-03-12"
        assert patients[0].gender == "female"
        assert patients[0].address["city"] == "Boston"
        assert len(observations) == 2
        assert observations[0].valueQuantity["value"] == 7.2

    def test_converted_bundle_validates(self):
        bundle = hl7_to_bundle(HL7_ORU, "b-hl7")
        assert BundleValidator().validate(bundle).valid

    def test_rde_to_medication(self):
        message = ("MSH|^~\\&|PHARM|||||20240110|RDE^O11|m2|P|2.5\r"
                   "PID|1||pt-3||Roe^Bob||19701201|M\r"
                   "RXE|1|860975^metformin|500mg bid")
        bundle = hl7_to_bundle(message, "b-rx")
        meds = bundle.resources_of(MedicationRequest)
        assert len(meds) == 1
        assert meds[0].medication["text"] == "metformin"
        assert meds[0].dosageText == "500mg bid"

    def test_roundtrip_preserves_key_data(self):
        bundle = hl7_to_bundle(HL7_ORU, "b-hl7")
        rendered = bundle_to_hl7(bundle)
        back = hl7_to_bundle(rendered, "b-rt")
        assert back.resources_of(Patient)[0].birthDate == "1980-03-12"
        assert len(back.resources_of(Observation)) == 2

    def test_missing_pid_rejected(self):
        with pytest.raises(ValidationError):
            hl7_to_bundle("MSH|^~\\&|LAB|||||20240101|ORU^R01|m|P|2.5\r"
                          "OBX|1|NM|X^Y||1|u", "b")

    def test_obx_before_pid_rejected(self):
        with pytest.raises(ValidationError):
            hl7_to_bundle("MSH|^~\\&|LAB|||||20240101|ORU^R01|m|P|2.5\r"
                          "OBX|1|NM|X^Y||1|u\rPID|1||p||N^M||19800101|F", "b")

    def test_non_msh_start_rejected(self):
        with pytest.raises(ValidationError):
            hl7_to_bundle("PID|1||p", "b")

    def test_export_requires_patient(self):
        with pytest.raises(ValidationError):
            bundle_to_hl7(Bundle(id="empty"))
