"""Tests for the typed ApiRequest envelope, versioned routes, and the
centralized exception -> HTTP-status table."""

import pytest

from repro.cloudsim.clock import SimClock
from repro.core.api import (
    ApiGateway,
    ApiRequest,
    RateLimiter,
    RouteSpec,
)
from repro.core import errors
from repro.core.errors import http_status_for
from repro.rbac.engine import RbacEngine
from repro.rbac.federation import (
    ExternalIdentityProvider,
    FederatedIdentityService,
)
from repro.rbac.model import Action, Permission, Scope, ScopeKind


@pytest.fixture
def world():
    clock = SimClock()
    rbac = RbacEngine()
    tenant = rbac.create_tenant("acme")
    org = rbac.create_organization(tenant.tenant_id, "org")
    env = rbac.create_environment(org.org_id, "prod")
    user = rbac.register_user(tenant.tenant_id, "alice")
    scope = Scope(ScopeKind.ORGANIZATION, org.org_id)
    rbac.define_role("reader", [Permission(Action.READ, "records", scope)])
    rbac.bind_role(user.user_id, org.org_id, env.env_id, "reader")

    federation = FederatedIdentityService(rbac, clock)
    idp = ExternalIdentityProvider("idp", b"idp-secret-key-01", clock)
    federation.approve_idp("idp", b"idp-secret-key-01")
    federation.link_identity("idp", "alice@acme", user.user_id)

    gateway = ApiGateway(rbac, federation, clock=clock, rate_limit=1000,
                         rate_window_s=60.0)
    gateway.register_route(RouteSpec(
        path="/echo",
        handler=lambda context, **kw: {"kw": kw,
                                       "request_id": context.request_id,
                                       "tenant": context.tenant_id},
        action=Action.READ, resource_type="records",
        scope_kind=ScopeKind.ORGANIZATION))
    return gateway, idp, org, env


def _request(idp, org, env, path="/echo", **overrides):
    fields = dict(path=path, token=idp.issue_token("alice@acme"),
                  scope_entity_id=org.org_id, org_id=org.org_id,
                  env_id=env.env_id)
    fields.update(overrides)
    return ApiRequest(**fields)


class TestStatusTable:
    def test_table_covers_the_gateway_statuses(self):
        assert http_status_for(errors.AuthenticationError("x")) == 401
        assert http_status_for(errors.AuthorizationError("x")) == 403
        assert http_status_for(errors.NotFoundError("x")) == 404
        assert http_status_for(errors.AlreadyExistsError("x")) == 409
        assert http_status_for(errors.ValidationError("x")) == 422
        assert http_status_for(errors.RateLimitError("x")) == 429
        assert http_status_for(errors.ServiceUnavailableError("x")) == 503
        assert http_status_for(errors.DeadlineExceededError("x")) == 504

    def test_unknown_exception_maps_to_500(self):
        assert http_status_for(ZeroDivisionError("x")) == 500

    def test_subclasses_inherit_via_mro(self):
        class CustomNotFound(errors.NotFoundError):
            pass

        assert http_status_for(CustomNotFound("x")) == 404


class TestEnvelope:
    def test_success_round_trip(self, world):
        gateway, idp, org, env = world
        response = gateway.dispatch(
            _request(idp, org, env, params={"a": 1}))
        assert response.status == 200
        assert response.body["kw"] == {"a": 1}
        assert response.body["tenant"] == org.tenant_id

    def test_request_ids_are_monotonic(self, world):
        gateway, idp, org, env = world
        ids = [gateway.dispatch(_request(idp, org, env)).request_id
               for _ in range(3)]
        assert ids == ["req-00000001", "req-00000002", "req-00000003"]
        # Failures consume request ids too.
        response = gateway.dispatch(_request(idp, org, env, path="/none"))
        assert response.request_id == "req-00000004"

    def test_handler_receives_context(self, world):
        gateway, idp, org, env = world
        response = gateway.dispatch(_request(idp, org, env))
        assert response.body["request_id"] == response.request_id

    def test_envelope_is_immutable(self, world):
        _, idp, org, env = world
        request = _request(idp, org, env)
        with pytest.raises(Exception):
            request.path = "/other"

    def test_expired_deadline_times_out_504(self, world):
        gateway, idp, org, env = world
        gateway.clock.advance(100.0)
        response = gateway.dispatch(
            _request(idp, org, env, deadline_s=50.0))
        assert response.status == 504

    def test_deadline_in_future_passes(self, world):
        gateway, idp, org, env = world
        response = gateway.dispatch(
            _request(idp, org, env, deadline_s=1e9))
        assert response.status == 200

    def test_status_metrics_emitted(self, world):
        gateway, idp, org, env = world
        gateway.dispatch(_request(idp, org, env))
        gateway.dispatch(_request(idp, org, env, path="/none"))
        assert gateway.monitoring.metrics.counter("api.status.200") == 1.0
        assert gateway.monitoring.metrics.counter("api.status.404") == 1.0


class TestVersioning:
    def test_routes_live_under_version_prefix(self, world):
        gateway, *_ = world
        assert gateway.routes() == ["/v1/echo"]

    def test_explicit_versioned_path_resolves(self, world):
        gateway, idp, org, env = world
        response = gateway.dispatch(_request(idp, org, env, path="/v1/echo"))
        assert response.status == 200

    def test_unversioned_path_falls_back_to_default(self, world):
        gateway, idp, org, env = world
        assert gateway.dispatch(_request(idp, org, env)).status == 200

    def test_unknown_version_is_404(self, world):
        gateway, idp, org, env = world
        response = gateway.dispatch(_request(idp, org, env, path="/v2/echo"))
        assert response.status == 404

    def test_same_path_different_versions_coexist(self, world):
        gateway, idp, org, env = world
        gateway.register_route(RouteSpec(
            path="/echo", version="v2",
            handler=lambda context, **kw: {"v": 2},
            action=Action.READ, resource_type="records",
            scope_kind=ScopeKind.ORGANIZATION))
        response = gateway.dispatch(_request(idp, org, env, path="/v2/echo"))
        assert response.status == 200
        assert response.body == {"v": 2}


class TestPerRouteRateLimit:
    def test_route_limit_applies_on_top_of_gateway_limit(self, world):
        gateway, idp, org, env = world
        gateway.register_route(RouteSpec(
            path="/scarce",
            handler=lambda context, **kw: {"ok": True},
            action=Action.READ, resource_type="records",
            scope_kind=ScopeKind.ORGANIZATION,
            rate_limit=2, rate_window_s=60.0))
        statuses = [gateway.dispatch(
            _request(idp, org, env, path="/scarce")).status
            for _ in range(3)]
        assert statuses == [200, 200, 429]
        # The generously limited route is unaffected.
        assert gateway.dispatch(_request(idp, org, env)).status == 200

    def test_route_window_rolls_over(self, world):
        gateway, idp, org, env = world
        gateway.register_route(RouteSpec(
            path="/scarce",
            handler=lambda context, **kw: {"ok": True},
            action=Action.READ, resource_type="records",
            scope_kind=ScopeKind.ORGANIZATION,
            rate_limit=1, rate_window_s=30.0))
        assert gateway.dispatch(
            _request(idp, org, env, path="/scarce")).status == 200
        assert gateway.dispatch(
            _request(idp, org, env, path="/scarce")).status == 429
        gateway.clock.advance(30.0)
        assert gateway.dispatch(
            _request(idp, org, env, path="/scarce")).status == 200


class TestRateLimiterBounds:
    def test_expired_windows_are_pruned(self):
        clock = SimClock()
        limiter = RateLimiter(limit=5, window_s=10.0, clock=clock)
        for i in range(100):
            limiter.allow(f"tenant-{i}")
        assert limiter.tracked_keys == 100
        clock.advance(10.0)
        limiter.prune()
        assert limiter.tracked_keys == 0

    def test_key_count_is_capped_lru(self):
        clock = SimClock()
        limiter = RateLimiter(limit=5, window_s=1e9, clock=clock,
                              max_keys=10)
        for i in range(50):
            limiter.allow(f"tenant-{i}")
        assert limiter.tracked_keys <= 10
        # The most recent key is still tracked with its count.
        assert limiter._windows["tenant-49"][1] == 1

    def test_eviction_does_not_reset_active_keys_unfairly(self):
        clock = SimClock()
        limiter = RateLimiter(limit=2, window_s=1e9, clock=clock,
                              max_keys=1000)
        assert limiter.allow("t")
        assert limiter.allow("t")
        assert not limiter.allow("t")   # still over limit, no eviction
