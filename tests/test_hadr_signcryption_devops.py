"""Tests for HA/DR replication, signcryption, and the DevOps pipeline."""

import pytest

from repro.cloudsim.nodes import SoftwareComponent
from repro.compliance.change import ChangeManagementService
from repro.compliance.devops import BuildStage, CompliantDevOpsPipeline
from repro.core.errors import (
    ComplianceError,
    IntegrityError,
    KeyManagementError,
    ServiceUnavailableError,
)
from repro.crypto.kms import KeyManagementService
from repro.crypto.rsa import generate_keypair
from repro.crypto.signcryption import signcrypt, unsigncrypt
from repro.ingestion.replication import ReplicatedDataLake
from repro.trusted.attestation import AttestationService
from repro.trusted.images import ImageManagementService


@pytest.fixture
def replicated():
    kms = KeyManagementService("t", seed=44)
    return ReplicatedDataLake(kms, ["zone-a", "zone-b", "zone-c"])


class TestReplicatedDataLake:
    def test_write_replicates_synchronously(self, replicated):
        replicated.store("ref-1", b"record one")
        assert replicated.zones_consistent()

    def test_read_after_primary_failure(self, replicated):
        record = replicated.store("ref-1", b"survives failover")
        replicated.fail_zone("zone-a")
        assert replicated.primary_zone != "zone-a"
        assert replicated.retrieve(record.record_id) == b"survives failover"

    def test_writes_continue_after_failover(self, replicated):
        replicated.store("ref-1", b"before")
        replicated.fail_zone("zone-a")
        record = replicated.store("ref-2", b"after failover")
        assert replicated.retrieve(record.record_id) == b"after failover"

    def test_healed_zone_catches_up(self, replicated):
        replicated.store("ref-1", b"one")
        replicated.fail_zone("zone-b")
        replicated.store("ref-2", b"two")   # zone-b misses this
        replicated.heal_zone("zone-b")
        assert replicated.zones_consistent()

    def test_dr_drill_no_data_loss(self, replicated):
        for i in range(10):
            replicated.store(f"ref-{i}", f"record {i}".encode())
        report = replicated.disaster_recovery_drill()
        assert report["records_verified"] == 10
        assert not report["data_loss"]

    def test_total_outage_rejected(self, replicated):
        replicated.fail_zone("zone-b")
        replicated.fail_zone("zone-c")
        with pytest.raises(ServiceUnavailableError):
            replicated.fail_zone("zone-a")  # nothing left to promote

    def test_forget_covers_all_zones(self, replicated):
        record = replicated.store("ref-1", b"to forget")
        replicated.forget_patient("ref-1")
        with pytest.raises(KeyManagementError):
            replicated.retrieve(record.record_id)
        # Even replicas cannot serve it: the shared key is destroyed.
        replicated.fail_zone("zone-a")
        with pytest.raises(KeyManagementError):
            replicated.retrieve(record.record_id)

    def test_needs_two_zones(self):
        with pytest.raises(ServiceUnavailableError):
            ReplicatedDataLake(KeyManagementService("t", seed=1), ["only"])

    def test_async_mode_converges_on_read(self):
        kms = KeyManagementService("t", seed=45)
        lake = ReplicatedDataLake(kms, ["a", "b"], synchronous=False)
        record = lake.store("ref-1", b"lazy replication")
        lake.fail_zone("a")
        assert lake.retrieve(record.record_id) == b"lazy replication"


class TestReplicatedDataLakeChaos:
    def test_crash_window_fails_over_then_heals(self, replicated):
        from repro.cloudsim.clock import SimClock
        from repro.cloudsim.faults import FaultPlan

        clock = SimClock()
        replicated.fault_plan = FaultPlan(clock=clock).crash_node(
            "zone-a", 5.0, 10.0)
        record = replicated.store("ref-1", b"survives the window")

        clock.advance(6.0)   # inside the crash window
        assert replicated.retrieve(record.record_id) == (
            b"survives the window")
        assert replicated.primary_zone != "zone-a"
        metrics = replicated.monitoring.metrics
        assert metrics.counter("hadr.promotions") == 1.0
        assert metrics.counter("hadr.failover_reads") == 1.0

        clock.advance(10.0)  # window over: zone-a heals and catches up
        replicated.tick_faults()
        assert replicated.zones_consistent()


class TestSigncryption:
    @pytest.fixture(scope="class")
    def parties(self):
        sender = generate_keypair(bits=1024, seed=91)
        receiver = generate_keypair(bits=1024, seed=92)
        mallory = generate_keypair(bits=1024, seed=93)
        return sender, receiver, mallory

    def test_roundtrip(self, parties):
        sender, receiver, _ = parties
        message = signcrypt(sender, receiver.public_key(), b"phi payload")
        assert unsigncrypt(receiver, sender.public_key(),
                           message) == b"phi payload"

    def test_wrong_receiver_cannot_open(self, parties):
        sender, receiver, mallory = parties
        message = signcrypt(sender, receiver.public_key(), b"secret")
        with pytest.raises(IntegrityError):
            unsigncrypt(mallory, sender.public_key(), message)

    def test_sender_spoofing_detected(self, parties):
        sender, receiver, mallory = parties
        message = signcrypt(mallory, receiver.public_key(), b"forged")
        # Receiver believes it came from sender -> must fail.
        with pytest.raises(IntegrityError):
            unsigncrypt(receiver, sender.public_key(), message)

    def test_ciphertext_tamper_detected(self, parties):
        import dataclasses
        sender, receiver, _ = parties
        message = signcrypt(sender, receiver.public_key(), b"data")
        body = message.envelope.body
        flipped = dataclasses.replace(
            body, body=bytes([body.body[0] ^ 1]) + body.body[1:])
        tampered = dataclasses.replace(
            message, envelope=dataclasses.replace(message.envelope,
                                                  body=flipped))
        with pytest.raises(IntegrityError):
            unsigncrypt(receiver, sender.public_key(), tampered)

    def test_forwarding_attack_blocked(self, parties):
        # A message signcrypted for receiver cannot be re-targeted: the
        # signature binds the receiver fingerprint.
        sender, receiver, mallory = parties
        original = signcrypt(sender, receiver.public_key(), b"for receiver")
        plaintext = unsigncrypt(receiver, sender.public_key(), original)
        # Receiver (now acting badly) re-encrypts the inner payload to
        # mallory, claiming it came from sender -> fails verification
        # because the signature covers 'to: receiver'.
        from repro.crypto.rsa import hybrid_encrypt
        import json
        inner = json.dumps({
            "sig": "00" * 128,
            "body": plaintext.hex(),
        }).encode()
        import dataclasses
        forged_envelope = hybrid_encrypt(
            mallory.public_key(), inner,
            associated_data=sender.public_key().fingerprint().encode())
        forged = dataclasses.replace(original, envelope=forged_envelope)
        with pytest.raises(IntegrityError):
            unsigncrypt(mallory, sender.public_key(), forged)


class TestDevOpsPipeline:
    @pytest.fixture
    def pipeline(self):
        attestation = AttestationService(seed=30)
        images = ImageManagementService(attestation)
        change_management = ChangeManagementService(attestation)
        key = generate_keypair(bits=1024, seed=31)
        return (CompliantDevOpsPipeline(key, attestation, images,
                                        change_management),
                attestation, images)

    def test_full_pipeline_produces_approved_image(self, pipeline):
        devops, attestation, images = pipeline
        signed = devops.run_full_pipeline(
            "analytics-svc", b"def main(): ...",
            requested_by="dev1", approver="sec-officer")
        assert images.is_approved(signed.image)

    def test_stages_cannot_be_skipped(self, pipeline):
        devops, _, _ = pipeline
        record = devops.submit_source("svc", b"code")
        with pytest.raises(ComplianceError):
            devops.test(record.build_id)  # not built yet
        devops.build(record.build_id)
        with pytest.raises(ComplianceError):
            devops.sign_and_register(record.build_id)  # no review/approval

    def test_failing_tests_block(self, pipeline):
        devops, _, _ = pipeline
        record = devops.submit_source("svc", b"broken code")
        devops.build(record.build_id)
        with pytest.raises(ComplianceError):
            devops.test(record.build_id, test_fn=lambda src: False)
        assert record.stage is BuildStage.BUILT

    def test_separation_of_duties_enforced(self, pipeline):
        devops, _, _ = pipeline
        record = devops.submit_source("svc", b"code")
        devops.build(record.build_id)
        devops.test(record.build_id)
        devops.security_review(record.build_id, "sec")
        from repro.core.errors import ChangeManagementError
        with pytest.raises(ChangeManagementError):
            devops.request_approval(record.build_id, requested_by="dev1",
                                    approver="dev1")

    def test_out_of_band_image_rejected(self, pipeline):
        devops, attestation, images = pipeline
        rogue_key = generate_keypair(bits=512, seed=666)
        images.register_signer(rogue_key.public_key())
        from repro.trusted.images import sign_image
        from repro.core.errors import AttestationError
        rogue_image = sign_image(SoftwareComponent("backdoor", b"evil"),
                                 rogue_key)
        with pytest.raises(AttestationError):
            images.register_image(rogue_image)

    def test_change_record_attached(self, pipeline):
        devops, _, _ = pipeline
        record = devops.submit_source("svc", b"code")
        devops.build(record.build_id)
        devops.test(record.build_id)
        devops.security_review(record.build_id, "sec", "lgtm")
        devops.request_approval(record.build_id, "dev1", "sec-officer")
        assert record.change_id is not None
