"""Tests for the from-scratch RSA and hybrid envelope encryption."""

import pytest

from repro.core.errors import IntegrityError
from repro.crypto.rsa import (
    _is_probable_prime,
    generate_keypair,
    hybrid_decrypt,
    hybrid_encrypt,
    rsa_decrypt,
    rsa_encrypt,
    rsa_sign,
    rsa_verify,
    rsa_verify_batch,
)


class TestPrimality:
    def test_known_primes(self):
        for p in (2, 3, 101, 7919, 104729):
            assert _is_probable_prime(p)

    def test_known_composites(self):
        for n in (0, 1, 4, 100, 7917, 561, 41041):  # incl. Carmichaels
            assert not _is_probable_prime(n)


class TestKeygen:
    def test_seeded_deterministic(self):
        k1 = generate_keypair(bits=512, seed=1)
        k2 = generate_keypair(bits=512, seed=1)
        assert k1.n == k2.n and k1.d == k2.d

    def test_different_seeds_different_keys(self):
        assert (generate_keypair(bits=512, seed=1).n
                != generate_keypair(bits=512, seed=2).n)

    def test_modulus_size(self):
        key = generate_keypair(bits=512, seed=3)
        assert key.n.bit_length() >= 512

    def test_key_identity(self):
        key = generate_keypair(bits=512, seed=4)
        message = 0x1234567890ABCDEF
        assert pow(pow(message, key.e, key.n), key.d, key.n) == message

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            generate_keypair(bits=128)

    def test_fingerprint_stable(self):
        key = generate_keypair(bits=512, seed=5).public_key()
        assert key.fingerprint() == key.fingerprint()
        assert len(key.fingerprint()) == 24


class TestEncryption:
    def test_roundtrip(self, small_rsa_keypair):
        public = small_rsa_keypair.public_key()
        ciphertext = rsa_encrypt(public, b"short secret")
        assert rsa_decrypt(small_rsa_keypair, ciphertext) == b"short secret"

    def test_randomized_padding(self, small_rsa_keypair):
        public = small_rsa_keypair.public_key()
        assert rsa_encrypt(public, b"m") != rsa_encrypt(public, b"m")

    def test_message_too_long(self, small_rsa_keypair):
        public = small_rsa_keypair.public_key()
        with pytest.raises(ValueError):
            rsa_encrypt(public, b"x" * 200)

    def test_wrong_length_ciphertext(self, small_rsa_keypair):
        with pytest.raises(IntegrityError):
            rsa_decrypt(small_rsa_keypair, b"abc")


class TestSignatures:
    def test_sign_verify(self, small_rsa_keypair):
        signature = rsa_sign(small_rsa_keypair, b"the message")
        assert rsa_verify(small_rsa_keypair.public_key(), b"the message",
                          signature)

    def test_verify_rejects_other_message(self, small_rsa_keypair):
        signature = rsa_sign(small_rsa_keypair, b"the message")
        assert not rsa_verify(small_rsa_keypair.public_key(),
                              b"another message", signature)

    def test_verify_rejects_other_key(self, small_rsa_keypair):
        other = generate_keypair(bits=512, seed=77)
        signature = rsa_sign(small_rsa_keypair, b"m")
        assert not rsa_verify(other.public_key(), b"m", signature)

    def test_verify_rejects_garbage(self, small_rsa_keypair):
        assert not rsa_verify(small_rsa_keypair.public_key(), b"m", b"junk")


class TestHybrid:
    def test_bulk_roundtrip(self, rsa_keypair):
        data = b"phi-record " * 10_000
        envelope = hybrid_encrypt(rsa_keypair.public_key(), data)
        assert hybrid_decrypt(rsa_keypair, envelope) == data

    def test_associated_data(self, rsa_keypair):
        envelope = hybrid_encrypt(rsa_keypair.public_key(), b"d", b"ctx")
        assert hybrid_decrypt(rsa_keypair, envelope, b"ctx") == b"d"
        with pytest.raises(IntegrityError):
            hybrid_decrypt(rsa_keypair, envelope, b"other")

    def test_wrong_private_key(self, rsa_keypair):
        other = generate_keypair(bits=1024, seed=31337)
        envelope = hybrid_encrypt(rsa_keypair.public_key(), b"data")
        with pytest.raises(IntegrityError):
            hybrid_decrypt(other, envelope)

    def test_envelope_overhead_is_bounded(self, rsa_keypair):
        data = b"x" * 100_000
        envelope = hybrid_encrypt(rsa_keypair.public_key(), data)
        assert len(envelope) < len(data) + 1024


class TestBatchVerification:
    def _signed_pairs(self, key, n):
        messages = [f"payload-{i}".encode() for i in range(n)]
        return [(m, rsa_sign(key, m)) for m in messages]

    def test_all_valid_batch(self, small_rsa_keypair):
        pairs = self._signed_pairs(small_rsa_keypair, 8)
        assert rsa_verify_batch(small_rsa_keypair.public_key(), pairs) == [
            True] * 8

    def test_culprit_identified(self, small_rsa_keypair):
        pairs = self._signed_pairs(small_rsa_keypair, 6)
        bad = bytearray(pairs[3][1])
        bad[0] ^= 0x55
        pairs[3] = (pairs[3][0], bytes(bad))
        verdicts = rsa_verify_batch(small_rsa_keypair.public_key(), pairs)
        assert verdicts == [True, True, True, False, True, True]

    def test_matches_per_signature_verify(self, small_rsa_keypair):
        public = small_rsa_keypair.public_key()
        pairs = self._signed_pairs(small_rsa_keypair, 5)
        pairs[1] = (pairs[1][0], pairs[2][1])  # signature over wrong message
        assert rsa_verify_batch(public, pairs) == [
            rsa_verify(public, m, s) for m, s in pairs]

    def test_duplicate_messages_fall_back_safely(self, small_rsa_keypair):
        # Screening soundness needs distinct messages; duplicates must
        # route to the per-signature path and still verify correctly.
        public = small_rsa_keypair.public_key()
        message = b"same-payload"
        sig = rsa_sign(small_rsa_keypair, message)
        pairs = [(message, sig), (message, sig),
                 (b"other", rsa_sign(small_rsa_keypair, b"other"))]
        assert rsa_verify_batch(public, pairs) == [True, True, True]

    def test_wrong_length_signature_rejected(self, small_rsa_keypair):
        public = small_rsa_keypair.public_key()
        pairs = self._signed_pairs(small_rsa_keypair, 3)
        pairs[0] = (pairs[0][0], pairs[0][1] + b"\x00")
        verdicts = rsa_verify_batch(public, pairs)
        assert verdicts == [False, True, True]

    def test_empty_and_single(self, small_rsa_keypair):
        public = small_rsa_keypair.public_key()
        assert rsa_verify_batch(public, []) == []
        message = b"solo"
        sig = rsa_sign(small_rsa_keypair, message)
        assert rsa_verify_batch(public, [(message, sig)]) == [True]
        assert rsa_verify_batch(public, [(b"not-solo", sig)]) == [False]

    def test_wrong_key_all_rejected(self, small_rsa_keypair):
        other = generate_keypair(bits=512, seed=31337)
        pairs = self._signed_pairs(small_rsa_keypair, 4)
        assert rsa_verify_batch(other.public_key(), pairs) == [False] * 4
