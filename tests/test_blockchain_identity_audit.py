"""Tests for MSP, self-sovereign identity, auditor view, and the DB baseline."""

import pytest

from repro.blockchain import standard_network
from repro.blockchain.audit import AuditorView, CentralizedProvenanceDb
from repro.blockchain.identity import (
    MembershipServiceProvider,
    PseudonymVerifier,
    SelfSovereignIdentity,
)
from repro.core.errors import AuthenticationError, LedgerError, NotFoundError


class TestMsp:
    def test_enroll_and_verify(self):
        msp = MembershipServiceProvider(seed=1)
        msp.enroll("alice", "org-a")
        signature = msp.sign_as("alice", b"payload")
        assert msp.verify("alice", b"payload", signature)
        assert not msp.verify("alice", b"other", signature)

    def test_duplicate_enrollment_rejected(self):
        msp = MembershipServiceProvider(seed=1)
        msp.enroll("alice", "org-a")
        with pytest.raises(AuthenticationError):
            msp.enroll("alice", "org-b")

    def test_unknown_member(self):
        msp = MembershipServiceProvider(seed=1)
        assert not msp.verify("ghost", b"x", b"y")
        with pytest.raises(NotFoundError):
            msp.identity("ghost")

    def test_roles_and_orgs(self):
        msp = MembershipServiceProvider(seed=1)
        msp.enroll("p1", "org-a", roles={"peer"})
        msp.enroll("c1", "org-b", roles={"client"})
        assert [m.member_id for m in msp.members_with_role("peer")] == ["p1"]
        assert msp.organizations() == {"org-a", "org-b"}


class TestSelfSovereignIdentity:
    def test_pseudonyms_unlinkable_across_parties(self):
        identity = SelfSovereignIdentity("dr-jones", b"master-secret-0123456")
        nym_a = identity.pseudonym_for("hospital-a")
        nym_b = identity.pseudonym_for("hospital-b")
        assert nym_a != nym_b

    def test_pseudonym_stable_per_party(self):
        identity = SelfSovereignIdentity("dr-jones", b"master-secret-0123456")
        assert (identity.pseudonym_for("hospital-a")
                == identity.pseudonym_for("hospital-a"))

    def test_proof_verifies(self):
        identity = SelfSovereignIdentity("dr-jones", b"master-secret-0123456")
        verifier = PseudonymVerifier("hospital-a")
        verifier.register(identity)
        proof = identity.prove("hospital-a", b"challenge-1")
        assert verifier.verify(proof)

    def test_proof_bound_to_party(self):
        identity = SelfSovereignIdentity("dr-jones", b"master-secret-0123456")
        verifier_a = PseudonymVerifier("hospital-a")
        verifier_a.register(identity)
        proof_for_b = identity.prove("hospital-b", b"challenge-1")
        assert not verifier_a.verify(proof_for_b)

    def test_unregistered_pseudonym_rejected(self):
        identity = SelfSovereignIdentity("dr-jones", b"master-secret-0123456")
        verifier = PseudonymVerifier("hospital-a")
        proof = identity.prove("hospital-a", b"challenge-1")
        assert not verifier.verify(proof)

    def test_short_secret_rejected(self):
        with pytest.raises(ValueError):
            SelfSovereignIdentity("x", b"short")


@pytest.fixture
def populated_network():
    net = standard_network(seed=8, batch_size=5)
    for i in range(6):
        net.submit("ingestion-service", "provenance", "record_event",
                   handle=f"rec-{i % 2}", data_hash=f"{i:02x}" * 32,
                   event="received" if i % 2 == 0 else "stored",
                   actor=f"client-{i % 3}")
    net.flush()
    return net


class TestAuditorView:
    def test_search_by_chaincode(self, populated_network):
        view = AuditorView(populated_network)
        assert len(view.search(chaincode="provenance")) == 6
        assert view.search(chaincode="consent") == []

    def test_search_by_args(self, populated_network):
        view = AuditorView(populated_network)
        findings = view.search(arg_equals={"handle": "rec-0"})
        assert len(findings) == 3

    def test_record_history(self, populated_network):
        view = AuditorView(populated_network)
        assert len(view.record_history("rec-1")) == 3

    def test_integrity_verifies(self, populated_network):
        view = AuditorView(populated_network)
        assert view.verify_integrity()

    def test_tamper_detected(self, populated_network):
        import dataclasses
        view = AuditorView(populated_network)
        ledger = populated_network.peers[0].ledger
        block = ledger.block(0)
        forged_tx = dataclasses.replace(
            block.transactions[0], args={"handle": "FORGED"})
        ledger._blocks[0] = dataclasses.replace(
            block, transactions=(forged_tx,) + block.transactions[1:])
        with pytest.raises(LedgerError):
            view.verify_integrity()

    def test_empty_network_rejected(self):
        from repro.blockchain.identity import MembershipServiceProvider
        from repro.blockchain.network import BlockchainNetwork
        net = BlockchainNetwork(MembershipServiceProvider(seed=9))
        with pytest.raises(LedgerError):
            AuditorView(net)


class TestCentralizedBaseline:
    def test_same_logical_api(self):
        db = CentralizedProvenanceDb()
        db.record_event("h1", "aa", "received", "svc")
        db.record_event("h1", "bb", "stored", "svc")
        assert [e["event"] for e in db.get_history("h1")] == ["received",
                                                              "stored"]

    def test_tampering_succeeds_and_is_undetectable(self):
        db = CentralizedProvenanceDb()
        db.record_event("h1", "aa", "received", "svc")
        assert db.tamper("h1", 0, "FORGED")
        assert db.get_history("h1")[0]["hash"] == "FORGED"
        # The baseline's verification has nothing to catch it with.
        assert db.verify_integrity()

    def test_tamper_missing_target(self):
        db = CentralizedProvenanceDb()
        assert not db.tamper("ghost", 0, "x")
