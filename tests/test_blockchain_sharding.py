"""Tests for the sharded write path: routing, pipelining, cross-shard 2PC."""

import pytest

from repro.blockchain import (
    CrossShardCoordinator,
    EndorsementPolicy,
    ShardedBlockchainNetwork,
    ShardRouter,
    pipeline_makespan,
)
from repro.cloudsim.clock import SimClock
from repro.cloudsim.faults import FaultPlan
from repro.cloudsim.tracing import Tracer


def _prov_request(i):
    return ("provenance", "record_event",
            {"handle": f"h-{i}", "data_hash": f"{i:04x}",
             "event": "received", "actor": "ingestion-service"})


def _keyed_requests(n, n_keys=20):
    return [(f"patient-{i % n_keys:04d}", _prov_request(i))
            for i in range(n)]


class TestShardRouter:
    def test_deterministic(self):
        a = ShardRouter(8, seed=3)
        b = ShardRouter(8, seed=3)
        keys = [f"patient-{i}" for i in range(200)]
        assert [a.shard_for(k) for k in keys] == [b.shard_for(k) for k in keys]

    def test_seed_changes_placement(self):
        keys = [f"patient-{i}" for i in range(200)]
        a = ShardRouter(8, seed=0)
        b = ShardRouter(8, seed=1)
        assert [a.shard_for(k) for k in keys] != [b.shard_for(k) for k in keys]

    def test_every_shard_gets_keys(self):
        router = ShardRouter(8, seed=0)
        groups = router.partition(f"patient-{i}" for i in range(2000))
        assert set(groups) == set(range(8))
        # No shard should be grossly over-loaded with virtual replicas on.
        assert max(len(v) for v in groups.values()) < 3 * 2000 / 8

    def test_resharding_moves_a_minority_of_keys(self):
        keys = [f"patient-{i}" for i in range(2000)]
        before = ShardRouter(8, seed=0)
        after = ShardRouter(9, seed=0)
        moved = sum(1 for k in keys
                    if before.shard_for(k) != after.shard_for(k))
        # Consistent hashing: ~1/9 of keys move; modulo hashing would
        # move ~8/9 of them.
        assert moved < len(keys) * 0.35

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            ShardRouter(0)
        with pytest.raises(ValueError):
            ShardRouter(2, replicas=0)


class TestPipelineMakespan:
    def test_single_round_is_serial(self):
        assert pipeline_makespan([(3.0, 2.0)]) == pytest.approx(5.0)

    def test_two_rounds_overlap(self):
        # endorse_done = 3, 6; commit_done = 5, max(6,5)+2 = 8 < serial 10.
        assert pipeline_makespan([(3.0, 2.0), (3.0, 2.0)]) == pytest.approx(8.0)

    def test_commit_bound_rounds(self):
        # Commit dominates: endorse hides entirely behind the commit chain
        # after the first round.
        rounds = [(1.0, 4.0)] * 3
        assert pipeline_makespan(rounds) == pytest.approx(1.0 + 12.0)

    def test_never_worse_than_serial_never_better_than_stage_sum(self):
        rounds = [(2.0, 1.0), (0.5, 3.0), (1.5, 1.5)]
        serial = sum(e + c for e, c in rounds)
        endorse = sum(e for e, _ in rounds)
        commit = sum(c for _, c in rounds)
        span = pipeline_makespan(rounds)
        assert span <= serial
        assert span >= max(endorse, commit)


class TestShardedIngest:
    def test_ingest_commits_and_converges(self):
        net = ShardedBlockchainNetwork(4, seed=0, batch_size=8)
        report = net.ingest("ingestion-service", _keyed_requests(40),
                            round_size=8)
        assert report.transactions == 40
        assert net.peers_converged()
        # Every event is queryable from the shard owning its key.
        history = net.query("patient-0000", "provenance", "get_history",
                            handle="h-0")
        assert history and history[0]["event"] == "received"

    def test_clock_advances_by_slowest_shard_makespan(self):
        clock = SimClock()
        net = ShardedBlockchainNetwork(4, seed=0, batch_size=8, clock=clock)
        report = net.ingest("ingestion-service", _keyed_requests(40),
                            round_size=8)
        worst = max(r.makespan_s for r in report.shard_reports.values())
        assert clock.now == pytest.approx(report.started_s + worst)
        assert report.elapsed_s == pytest.approx(worst)

    def test_pipelining_beats_serial_per_shard(self):
        net = ShardedBlockchainNetwork(2, seed=0, batch_size=4)
        report = net.ingest("ingestion-service", _keyed_requests(48),
                            round_size=4)
        for shard_report in report.shard_reports.values():
            if shard_report.rounds > 1:
                assert shard_report.makespan_s < shard_report.serial_s
                assert shard_report.overlap_fraction > 0
        assert any(r.rounds > 1 for r in report.shard_reports.values())

    def test_more_shards_cut_elapsed_time(self):
        reqs = _keyed_requests(96, n_keys=96)
        single = ShardedBlockchainNetwork(1, seed=0, batch_size=8).ingest(
            "ingestion-service", reqs, round_size=8)
        sharded = ShardedBlockchainNetwork(8, seed=0, batch_size=8).ingest(
            "ingestion-service", reqs, round_size=8)
        assert sharded.elapsed_s < single.elapsed_s / 3

    def test_unpipelined_ingest_charges_serial_cost(self):
        reqs = _keyed_requests(32)
        piped = ShardedBlockchainNetwork(2, seed=0, batch_size=4).ingest(
            "ingestion-service", reqs, round_size=4, pipelined=True)
        serial = ShardedBlockchainNetwork(2, seed=0, batch_size=4).ingest(
            "ingestion-service", reqs, round_size=4, pipelined=False)
        assert piped.elapsed_s < serial.elapsed_s
        worst_serial = max(r.serial_s for r in serial.shard_reports.values())
        assert serial.elapsed_s == pytest.approx(worst_serial)

    def test_per_shard_pending_gauges_published(self):
        net = ShardedBlockchainNetwork(4, seed=0, batch_size=8)
        report = net.ingest("ingestion-service", _keyed_requests(40),
                            round_size=8)
        for name in report.shard_reports:
            gauge = net.monitoring.metrics.gauge(f"blockchain.{name}.pending")
            assert gauge == 0  # everything flushed by the end of ingest

    def test_routing_is_sticky_per_key(self):
        net = ShardedBlockchainNetwork(4, seed=0)
        channel = net.channel_for("patient-0007")
        for _ in range(3):
            assert net.channel_for("patient-0007") is channel

    def test_single_tx_submit_routes_by_key(self):
        net = ShardedBlockchainNetwork(4, seed=0)
        net.submit("ingestion-service", "patient-0001", "provenance",
                   "record_event", handle="solo", data_hash="ff",
                   event="received", actor="a")
        net.flush_all()
        owner = net.channel_for("patient-0001")
        assert owner.peers[0].ledger.height == 1
        assert sum(c.peers[0].ledger.height for c in net.channels) == 1


class TestShardedTraceAttribution:
    def test_sharded_ingest_attribution_sums_to_100(self):
        clock = SimClock()
        net = ShardedBlockchainNetwork(4, seed=0, batch_size=8, clock=clock)
        tracer = Tracer(clock)
        net.tracer = tracer
        report = net.ingest("ingestion-service", _keyed_requests(40),
                            round_size=8)
        root = tracer.get_trace("t-00000001")
        assert root.name == "blockchain.sharded_ingest"
        assert root.duration_s == pytest.approx(report.elapsed_s)
        path = tracer.critical_path("t-00000001")
        assert sum(path.layer_percentages().values()) == pytest.approx(100.0)
        # Channel-level spans carry their shard tag.
        tagged = [s for s in root.walk()
                  if s.attributes.get("shard") is not None]
        assert tagged
        assert {s.attributes["shard"] for s in tagged} <= set(
            report.shard_reports)

    def test_tracing_does_not_change_simulated_time(self):
        untraced = ShardedBlockchainNetwork(4, seed=0, batch_size=8)
        plain = untraced.ingest("ingestion-service", _keyed_requests(40),
                                round_size=8)
        clock = SimClock()
        traced_net = ShardedBlockchainNetwork(4, seed=0, batch_size=8,
                                              clock=clock)
        traced_net.tracer = Tracer(clock)
        traced = traced_net.ingest("ingestion-service", _keyed_requests(40),
                                   round_size=8)
        assert traced.elapsed_s == pytest.approx(plain.elapsed_s)


def _two_shard_keys(net):
    """Two routing keys living on different shards."""
    first_key = "patient-0000"
    first = net.router.shard_for(first_key)
    for i in range(1, 500):
        key = f"patient-{i:04d}"
        if net.router.shard_for(key) != first:
            return first_key, key
    raise AssertionError("could not find keys on two shards")


def _consent_op(key, ref):
    return (key, "consent", "grant",
            {"patient_ref": ref, "group_id": "study-1", "granted_at": 1.0})


def _crash_shard_peers(net, shard, plan, n=3, **window):
    """Crash ``n`` of the shard's four peers so the 2/2 policy is unmeetable."""
    channel = net.channels[shard]
    for peer in channel.peers[:n]:
        plan.crash_node(peer.peer_id, **window)
    for peer in channel.peers:
        peer.fault_plan = plan


class TestCrossShardCommit:
    def test_happy_path_commits_on_every_participant(self):
        net = ShardedBlockchainNetwork(4, seed=0)
        coordinator = CrossShardCoordinator(net)
        key_a, key_b = _two_shard_keys(net)
        txn = coordinator.submit("ingestion-service", [
            _consent_op(key_a, "p-a"), _consent_op(key_b, "p-b")])
        assert txn.state == "committed"
        statuses = coordinator.ledger_status(txn.txn_id)
        assert len(statuses) == 2
        assert set(statuses.values()) == {"committed"}
        # The staged operations were applied through the delegates.
        assert net.query(key_a, "consent", "is_active",
                         patient_ref="p-a", group_id="study-1")
        assert net.query(key_b, "consent", "is_active",
                         patient_ref="p-b", group_id="study-1")
        assert net.peers_converged()

    def test_malformed_request_aborts_at_prepare_not_wedged_at_commit(self):
        # Prepare simulates the staged requests on a scratch overlay, so
        # a request that cannot apply (wrong kwarg name here) votes no
        # at prepare and the coordinator aborts everywhere -- instead of
        # preparing fine and then failing every commit retry forever.
        net = ShardedBlockchainNetwork(4, seed=0)
        coordinator = CrossShardCoordinator(net)
        key_a, key_b = _two_shard_keys(net)
        txn = coordinator.submit("ingestion-service", [
            _consent_op(key_a, "p-a"),
            (key_b, "consent", "grant",
             {"patient_id": "p-b", "group_id": "study-1"})])
        assert txn.state == "aborted"
        assert coordinator.outstanding() == []
        assert set(coordinator.ledger_status(txn.txn_id).values()) == {
            "aborted"}
        # The healthy operation was not applied either: all-or-nothing.
        assert not net.query(key_a, "consent", "is_active",
                             patient_ref="p-a", group_id="study-1")
        # The scratch overlay never leaked simulated writes.
        assert not net.query(key_b, "consent", "is_active",
                             patient_ref="p-b", group_id="study-1")

    def test_prepare_simulation_does_not_mutate_state(self):
        # A successful prepare stages requests without applying them.
        net = ShardedBlockchainNetwork(2, seed=0)
        coordinator = CrossShardCoordinator(net)
        key_a, key_b = _two_shard_keys(net)
        txn = coordinator.submit("ingestion-service", [
            _consent_op(key_a, "p-a"), _consent_op(key_b, "p-b")])
        assert txn.state == "committed"
        # Grant applied exactly once (commit), not twice (prepare+commit):
        # the consent chain has a single grant entry.
        chain = net.query(key_a, "consent", "history", patient_ref="p-a",
                          group_id="study-1")
        grants = [entry for entry in chain if entry["action"] == "grant"]
        assert len(grants) == 1

    def test_failed_prepare_aborts_everywhere(self):
        clock = SimClock()
        net = ShardedBlockchainNetwork(4, seed=0, clock=clock)
        coordinator = CrossShardCoordinator(net)
        key_a, key_b = _two_shard_keys(net)
        shard_b = net.router.shard_for(key_b)
        plan = FaultPlan(seed=1, clock=clock)
        _crash_shard_peers(net, shard_b, plan, start_s=0.0, end_s=5_000.0)
        txn = coordinator.submit("ingestion-service", [
            _consent_op(key_a, "p-a"), _consent_op(key_b, "p-b")])
        # Shard B could not prepare -> global abort. Its own abort
        # tombstone cannot land while its peers are down.
        assert txn.state == "aborting"
        assert coordinator.outstanding() == [txn.txn_id]
        statuses = coordinator.ledger_status(txn.txn_id)
        assert statuses[net.shard_name(net.router.shard_for(key_a))] == "aborted"
        # Nothing was applied on the healthy shard.
        assert not net.query(key_a, "consent", "is_active",
                             patient_ref="p-a", group_id="study-1")
        # Recovery after the crash window lands the tombstone on shard B.
        clock.advance(10_000.0)
        assert coordinator.recover() == 1
        assert txn.state == "aborted"
        assert set(coordinator.ledger_status(txn.txn_id).values()) == {
            "aborted"}
        assert not net.query(key_b, "consent", "is_active",
                             patient_ref="p-b", group_id="study-1")

    def test_crash_between_prepare_and_commit_recovers_atomically(self):
        clock = SimClock()
        net = ShardedBlockchainNetwork(4, seed=0, clock=clock)
        coordinator = CrossShardCoordinator(net)
        key_a, key_b = _two_shard_keys(net)
        # Measure, on an identical dry-run transaction, when the prepare
        # round ends — the sim is deterministic, so the second txn hits
        # the same offsets.
        probe = coordinator.submit("ingestion-service", [
            _consent_op(key_a, "probe-a"), _consent_op(key_b, "probe-b")])
        assert probe.state == "committed"
        per_invoke = (clock.now - 0.0) / 4  # prepare x2 + commit x2
        window_start = clock.now + 2 * per_invoke
        # Both shards prepare, then every peer everywhere crashes before
        # the commit decision can be endorsed.
        plan = FaultPlan(seed=1, clock=clock)
        for shard in (net.router.shard_for(key_a),
                      net.router.shard_for(key_b)):
            _crash_shard_peers(net, shard, plan, n=4,
                               start_s=window_start,
                               end_s=window_start + 1.0)
        txn = coordinator.submit("ingestion-service", [
            _consent_op(key_a, "p-a"), _consent_op(key_b, "p-b")])
        # Decision was commit (both prepared) but no ledger has it yet.
        assert txn.state == "committing"
        assert set(coordinator.ledger_status(txn.txn_id).values()) == {
            "prepared"}
        # Nothing is applied while the decision is outstanding.
        assert not net.query(key_a, "consent", "is_active",
                             patient_ref="p-a", group_id="study-1")
        # Crash window passes; recovery re-drives the decided commit.
        clock.advance(2.0)
        assert coordinator.recover() == 1
        assert txn.state == "committed"
        assert set(coordinator.ledger_status(txn.txn_id).values()) == {
            "committed"}
        assert net.query(key_a, "consent", "is_active",
                         patient_ref="p-a", group_id="study-1")
        assert net.query(key_b, "consent", "is_active",
                         patient_ref="p-b", group_id="study-1")
        assert net.peers_converged()

    def test_recover_is_idempotent(self):
        net = ShardedBlockchainNetwork(2, seed=0)
        coordinator = CrossShardCoordinator(net)
        key_a, key_b = _two_shard_keys(net)
        txn = coordinator.submit("ingestion-service", [
            _consent_op(key_a, "p-a"), _consent_op(key_b, "p-b")])
        assert txn.state == "committed"
        assert coordinator.recover() == 0
        assert coordinator.outstanding() == []

    def test_empty_operations_rejected(self):
        net = ShardedBlockchainNetwork(2, seed=0)
        coordinator = CrossShardCoordinator(net)
        from repro.core.errors import LedgerError
        with pytest.raises(LedgerError):
            coordinator.submit("ingestion-service", [])

    def test_single_shard_transaction_still_works(self):
        net = ShardedBlockchainNetwork(4, seed=0)
        coordinator = CrossShardCoordinator(net)
        txn = coordinator.submit("ingestion-service", [
            _consent_op("patient-0000", "p-a")])
        assert txn.state == "committed"
        assert len(txn.participants) == 1


class TestDegradedShardedChannels:
    def test_shard_channel_degrades_with_audit_mark(self):
        clock = SimClock()
        net = ShardedBlockchainNetwork(
            2, seed=0, clock=clock,
            policy=EndorsementPolicy(4, 4),
            degraded_policy=EndorsementPolicy(2, 2))
        plan = FaultPlan(seed=1, clock=clock)
        shard = net.router.shard_for("patient-0000")
        _crash_shard_peers(net, shard, plan, n=2, start_s=0.0)
        net.submit("ingestion-service", "patient-0000", "provenance",
                   "record_event", handle="h-deg", data_hash="ab",
                   event="received", actor="a")
        net.flush_all()
        channel = net.channels[shard]
        assert channel.degraded_tx_ids
        assert net.monitoring.metrics.counter(
            "blockchain.degraded_commits") >= 1
        assert channel.peers_converged()


class TestPendingGaugeFreshness:
    """Regressions: ``blockchain.<shard>.pending`` must never go stale."""

    def _gauge(self, net, shard):
        return net.monitoring.metrics.gauge(
            f"blockchain.{net.shard_name(shard)}.pending")

    def test_submit_keeps_gauge_equal_to_orderer_queue(self):
        # Regression: submit() enqueued on the shard orderer without
        # touching the gauge, so it read whatever the last bulk ingest
        # left behind.
        net = ShardedBlockchainNetwork(4, seed=0, batch_size=100)
        key = "patient-0001"
        shard = net.router.shard_for(key)
        for i in range(3):
            net.submit("ingestion-service", key, "provenance",
                       "record_event", handle=f"h-{i}", data_hash="aa",
                       event="received", actor="a")
            assert self._gauge(net, shard) == \
                net.channels[shard].orderer.pending_count == i + 1

    def test_flush_all_drains_gauges_to_zero(self):
        net = ShardedBlockchainNetwork(4, seed=0, batch_size=100)
        for i in range(8):
            net.submit("ingestion-service", f"patient-{i:04d}",
                       "provenance", "record_event", handle=f"h-{i}",
                       data_hash="aa", event="received", actor="a")
        net.flush_all()
        for shard in range(net.n_shards):
            assert self._gauge(net, shard) == 0
            assert net.channels[shard].orderer.pending_count == 0

    def test_aborted_ingest_leaves_true_residue_not_stale_snapshot(self):
        # Regression: an ingest that died mid-run (here: round 2's batch
        # cannot meet the endorsement policy because its chaincode is
        # not installed) left round 1's mid-round snapshot on the gauge
        # forever, even though round 1 had already flushed to 0.
        from repro.core.errors import EndorsementError
        net = ShardedBlockchainNetwork(2, seed=0, batch_size=8)
        key = "patient-0001"
        shard = net.router.shard_for(key)
        good = [(key, _prov_request(i)) for i in range(4)]
        bad = [(key, ("not-installed", "boom", {}))]
        with pytest.raises(EndorsementError):
            net.ingest("ingestion-service", good + bad, round_size=4)
        assert net.channels[shard].orderer.pending_count == 0
        assert self._gauge(net, shard) == 0   # was 4 before the fix
