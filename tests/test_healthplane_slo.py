"""Tests for SLO burn-rate alerting: rules, edges, episodes, stream events."""

import pytest

from repro.cloudsim.clock import SimClock
from repro.cloudsim.healthplane import (
    BurnRateRule,
    EventBus,
    SloEvaluator,
    SloObjective,
    TimeSeriesStore,
)
from repro.cloudsim.healthplane.slo import FAST_PAGE, SLOW_TICKET, Severity
from repro.cloudsim.monitoring import MonitoringService
from repro.core.errors import ConfigurationError


def _setup(target=0.999, rules=None):
    clock = SimClock()
    store = TimeSeriesStore(clock, interval_s=60.0, window_count=4320)
    evaluator = SloEvaluator(store, clock)
    objective = SloObjective(
        "api", good_series="good", bad_series="bad", target=target,
        rules=rules if rules is not None else (FAST_PAGE, SLOW_TICKET))
    evaluator.register(objective)
    return clock, store, evaluator, objective


def _traffic(clock, store, *, seconds, period_s=2.0, bad_every=0):
    """Constant-rate traffic; every ``bad_every``-th request fails."""
    n = 0
    end = clock.now + seconds
    while clock.now < end:
        n += 1
        bad = bad_every and n % bad_every == 0
        store.record("bad" if bad else "good", 1.0)
        clock.advance(period_s)


class TestBurnRateMath:
    def test_zero_traffic_is_zero_burn(self):
        _, _, evaluator, objective = _setup()
        assert evaluator.burn_rate(objective, 300.0) == 0.0

    def test_all_good_is_zero_burn(self):
        clock, store, evaluator, objective = _setup()
        _traffic(clock, store, seconds=300)
        assert evaluator.burn_rate(objective, 300.0) == 0.0

    def test_burn_is_error_rate_over_budget(self):
        clock, store, evaluator, objective = _setup(target=0.999)
        _traffic(clock, store, seconds=300, bad_every=10)  # 10% errors
        burn = evaluator.burn_rate(objective, 600.0)
        assert burn == pytest.approx(0.1 / 0.001, rel=0.05)

    def test_error_budget(self):
        _, _, _, objective = _setup(target=0.999)
        assert objective.error_budget == pytest.approx(0.001)


class TestAlertLifecycle:
    def test_page_fires_only_when_both_windows_burn(self):
        clock, store, evaluator, _ = _setup(rules=(FAST_PAGE,))
        # 50% failures for one minute: the 5m window burns far past
        # 14.4x immediately, but so does the 1h window (it has no calm
        # history), so seed an hour of clean traffic first.
        _traffic(clock, store, seconds=3600)
        assert evaluator.evaluate() == []
        # Now a short 60s blip: 5m window burns hot; 1h window still
        # dominated by the clean hour -> burn stays under 14.4 -> no page.
        _traffic(clock, store, seconds=60, bad_every=2)
        assert evaluator.evaluate() == []
        # Sustain the failures: the 1h window crosses too -> page.
        _traffic(clock, store, seconds=600, bad_every=2)
        fired = evaluator.evaluate()
        assert [a.severity for a in fired] == ["page"]

    def test_rising_edge_dedupe(self):
        clock, store, evaluator, _ = _setup(rules=(FAST_PAGE,))
        _traffic(clock, store, seconds=1200, bad_every=2)
        assert len(evaluator.evaluate()) == 1
        _traffic(clock, store, seconds=120, bad_every=2)
        assert evaluator.evaluate() == []          # still the same episode
        assert len(evaluator.active_alerts()) == 1

    def test_alert_resolves_when_burn_stops(self):
        clock, store, evaluator, _ = _setup(rules=(FAST_PAGE,))
        _traffic(clock, store, seconds=1200, bad_every=2)
        assert len(evaluator.evaluate()) == 1
        _traffic(clock, store, seconds=600)        # calm again: 5m recovers
        assert evaluator.evaluate() == []
        assert evaluator.active_alerts() == []
        assert len(evaluator.alerts) == 1          # history keeps the episode

    def test_new_episode_fires_a_new_alert(self):
        clock, store, evaluator, _ = _setup(rules=(FAST_PAGE,))
        _traffic(clock, store, seconds=1200, bad_every=2)
        first = evaluator.evaluate()[0]
        _traffic(clock, store, seconds=4000)       # full recovery (1h drains)
        evaluator.evaluate()
        _traffic(clock, store, seconds=1200, bad_every=2)
        second = evaluator.evaluate()[0]
        assert second.alert_id != first.alert_id

    def test_ticket_rule_fires_on_sustained_slow_burn(self):
        clock, store, evaluator, _ = _setup(rules=(SLOW_TICKET,))
        # 0.2% errors: burn 2x -- over the ticket factor, far under page.
        _traffic(clock, store, seconds=int(3.2 * 86400), period_s=20.0,
                 bad_every=500)
        fired = evaluator.evaluate()
        assert [a.severity for a in fired] == ["ticket"]


class TestWiring:
    def test_alert_publishes_stream_event_and_metric_and_log(self):
        clock = SimClock()
        monitoring = MonitoringService(clock)
        store = TimeSeriesStore(clock)
        bus = EventBus(clock, monitoring=monitoring)
        sub = bus.subscribe("dash", kinds=["slo"])
        evaluator = SloEvaluator(store, clock, events=bus,
                                 monitoring=monitoring)
        evaluator.register(SloObjective("api", good_series="good",
                                        bad_series="bad",
                                        rules=(FAST_PAGE,)))
        _traffic(clock, store, seconds=1200, bad_every=2)
        alert = evaluator.evaluate()[0]
        _traffic(clock, store, seconds=600)
        evaluator.evaluate()                       # resolves
        kinds = [e.kind for e in sub.poll()]
        assert kinds == ["slo.alert", "slo.alert_resolved"]
        assert monitoring.metrics.counter("healthplane.alerts.page") == 1
        assert monitoring.metrics.counter("healthplane.alerts.resolved") == 1
        pages = monitoring.logs.entries(stream="healthplane", level="ERROR")
        assert pages and alert.alert_id in pages[0].message

    def test_alert_to_dict_is_json_ready(self):
        import json
        clock, store, evaluator, _ = _setup(rules=(FAST_PAGE,))
        _traffic(clock, store, seconds=1200, bad_every=2)
        alert = evaluator.evaluate()[0]
        payload = json.loads(json.dumps(alert.to_dict()))
        assert payload["severity"] == "page"
        assert payload["factor"] == 14.4


class TestValidation:
    def test_rule_window_order_enforced(self):
        with pytest.raises(ConfigurationError):
            BurnRateRule("bad", short_window_s=3600.0, long_window_s=300.0,
                         factor=2.0, severity=Severity.PAGE)

    def test_rule_positive_factor(self):
        with pytest.raises(ConfigurationError):
            BurnRateRule("bad", short_window_s=60.0, long_window_s=300.0,
                         factor=0.0, severity=Severity.PAGE)

    def test_target_must_be_fractional(self):
        for target in (0.0, 1.0, 1.5):
            with pytest.raises(ConfigurationError):
                SloObjective("s", good_series="g", bad_series="b",
                             target=target)

    def test_good_and_bad_series_must_differ(self):
        with pytest.raises(ConfigurationError):
            SloObjective("s", good_series="same", bad_series="same")

    def test_duplicate_objective_rejected(self):
        _, _, evaluator, _ = _setup()
        with pytest.raises(ConfigurationError):
            evaluator.register(SloObjective("api", good_series="g",
                                            bad_series="b"))

    def test_rule_window_must_fit_store_span(self):
        clock = SimClock()
        store = TimeSeriesStore(clock, interval_s=60.0, window_count=10)
        evaluator = SloEvaluator(store, clock)
        with pytest.raises(ConfigurationError):
            evaluator.register(SloObjective("api", good_series="g",
                                            bad_series="b"))  # needs 3 days
