"""Tests for hosts, VMs, containers, and the datacenter."""

import pytest

from repro.cloudsim.nodes import (
    Container,
    Datacenter,
    Host,
    NodeState,
    SoftwareComponent,
    VirtualMachine,
    measure,
)
from repro.core.errors import ConfigurationError, NotFoundError


def make_host(host_id="h1", cpus=8, memory_mb=16384):
    host = Host(host_id,
                bios=SoftwareComponent("bios", b"bios-v1"),
                hypervisor=SoftwareComponent("kvm", b"kvm-v4"),
                cpus=cpus, memory_mb=memory_mb)
    host.start()
    return host


def make_vm(vm_id="vm1", vcpus=2, memory_mb=4096):
    return VirtualMachine(
        vm_id,
        bios=SoftwareComponent("seabios", b"sb"),
        kernel=SoftwareComponent("linux", b"k5"),
        image=SoftwareComponent("ubuntu", b"u22"),
        vcpus=vcpus, memory_mb=memory_mb)


class TestMeasurement:
    def test_measure_is_deterministic(self):
        assert measure("x", b"abc") == measure("x", b"abc")

    def test_measure_depends_on_name_and_content(self):
        assert measure("x", b"abc") != measure("y", b"abc")
        assert measure("x", b"abc") != measure("x", b"abd")

    def test_component_measurement(self):
        component = SoftwareComponent("kernel", b"v5")
        assert component.measurement == measure("kernel", b"v5")


class TestHost:
    def test_launch_vm(self):
        host = make_host()
        vm = make_vm()
        host.launch_vm(vm)
        assert vm.state is NodeState.RUNNING
        assert host.available_vcpus() == 6

    def test_overcommit_cpu_rejected(self):
        host = make_host(cpus=2)
        with pytest.raises(ConfigurationError):
            host.launch_vm(make_vm(vcpus=4))

    def test_overcommit_memory_rejected(self):
        host = make_host(memory_mb=2048)
        with pytest.raises(ConfigurationError):
            host.launch_vm(make_vm(memory_mb=4096))

    def test_duplicate_vm_rejected(self):
        host = make_host()
        host.launch_vm(make_vm())
        with pytest.raises(ConfigurationError):
            host.launch_vm(make_vm())

    def test_stopped_host_rejects_vms(self):
        host = Host("h2", bios=SoftwareComponent("b", b"1"),
                    hypervisor=SoftwareComponent("h", b"1"))
        with pytest.raises(ConfigurationError):
            host.launch_vm(make_vm())

    def test_find_vm_missing(self):
        with pytest.raises(NotFoundError):
            make_host().find_vm("nope")


class TestVirtualMachine:
    def test_launch_container(self):
        host = make_host()
        vm = make_vm()
        host.launch_vm(vm)
        container = vm.launch_container("c1", SoftwareComponent("app", b"a1"))
        assert container.state is NodeState.RUNNING

    def test_container_on_stopped_vm_rejected(self):
        vm = make_vm()
        with pytest.raises(ConfigurationError):
            vm.launch_container("c1", SoftwareComponent("app", b"a1"))

    def test_duplicate_container_rejected(self):
        host = make_host()
        vm = make_vm()
        host.launch_vm(vm)
        vm.launch_container("c1", SoftwareComponent("app", b"a1"))
        with pytest.raises(ConfigurationError):
            vm.launch_container("c1", SoftwareComponent("app", b"a2"))

    def test_stop_vm_stops_containers(self):
        host = make_host()
        vm = make_vm()
        host.launch_vm(vm)
        container = vm.launch_container("c1", SoftwareComponent("app", b"a1"))
        vm.stop()
        assert container.state is NodeState.STOPPED


class TestDatacenter:
    def test_first_fit_picks_host_with_room(self):
        datacenter = Datacenter("dc1")
        small = make_host("small", cpus=2)
        big = make_host("big", cpus=32)
        datacenter.add_host(small)
        datacenter.add_host(big)
        small.launch_vm(make_vm("pre", vcpus=2))
        chosen = datacenter.first_fit(vcpus=4, memory_mb=4096)
        assert chosen.host_id == "big"

    def test_first_fit_no_room(self):
        datacenter = Datacenter("dc1")
        datacenter.add_host(make_host("only", cpus=1))
        with pytest.raises(ConfigurationError):
            datacenter.first_fit(vcpus=64, memory_mb=4096)

    def test_duplicate_host_rejected(self):
        datacenter = Datacenter("dc1")
        datacenter.add_host(make_host("h"))
        with pytest.raises(ConfigurationError):
            datacenter.add_host(make_host("h"))

    def test_all_vms(self):
        datacenter = Datacenter("dc1")
        host = make_host()
        datacenter.add_host(host)
        host.launch_vm(make_vm("v1"))
        host.launch_vm(make_vm("v2"))
        assert {vm.vm_id for vm in datacenter.all_vms()} == {"v1", "v2"}
