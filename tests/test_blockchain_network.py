"""Tests for the permissioned network: endorsement, ordering, commit."""

import pytest

from repro.blockchain import standard_network
from repro.blockchain.identity import MembershipServiceProvider
from repro.blockchain.chaincode import ProvenanceContract
from repro.blockchain.network import (
    BlockchainNetwork,
    EndorsementPolicy,
    OrderingService,
    Peer,
)
from repro.core.errors import EndorsementError, LedgerError


@pytest.fixture(scope="module")
def network():
    net = standard_network(seed=2, batch_size=4)
    return net


class TestEndorsementPolicy:
    def test_satisfied(self):
        policy = EndorsementPolicy(2, 2)
        assert policy.satisfied_by(["org-a", "org-b"])

    def test_insufficient_count(self):
        assert not EndorsementPolicy(3, 2).satisfied_by(["a", "b"])

    def test_insufficient_orgs(self):
        assert not EndorsementPolicy(2, 2).satisfied_by(["a", "a"])


class TestTransactionFlow:
    def test_submit_gathers_endorsements(self, network):
        tx = network.submit("ingestion-service", "provenance",
                            "record_event", handle="flow-1",
                            data_hash="aa" * 32, event="received",
                            actor="client")
        assert len(tx.endorsements) == 4  # all four org peers endorse

    def test_flush_commits_to_all_peers(self, network):
        network.submit("ingestion-service", "provenance", "record_event",
                       handle="flow-2", data_hash="bb" * 32,
                       event="received", actor="client")
        network.flush()
        assert network.peers_converged()
        history = network.query("provenance", "get_history", handle="flow-2")
        assert len(history) == 1

    def test_batching(self):
        net = standard_network(seed=3, batch_size=3)
        for i in range(7):
            net.submit("ingestion-service", "provenance", "record_event",
                       handle=f"b{i}", data_hash="cc" * 32,
                       event="received", actor="c")
        blocks = net.flush()
        # 7 transactions at batch size 3 -> blocks of 3, 3, 1.
        assert [len(b.transactions) for b in blocks] == [3, 3, 1]

    def test_unknown_chaincode_method_fails_endorsement(self):
        net = standard_network(seed=4)
        with pytest.raises(EndorsementError):
            net.submit("ingestion-service", "provenance", "nonexistent",
                       foo=1)

    def test_strict_policy_unmet(self):
        msp = MembershipServiceProvider(seed=5)
        net = BlockchainNetwork(msp, policy=EndorsementPolicy(3, 3))
        contracts = {"provenance": ProvenanceContract()}
        msp.enroll("peer.only", "solo-org", roles={"peer"})
        net.add_peer(Peer("peer.only", "solo-org", msp, contracts))
        msp.enroll("client", "solo-org")
        with pytest.raises(EndorsementError):
            net.submit("client", "provenance", "record_event", handle="h",
                       data_hash="aa" * 32, event="received", actor="c")

    def test_ledgers_identical_across_peers(self, network):
        network.invoke("ingestion-service", "provenance", "record_event",
                       handle="conv", data_hash="dd" * 32, event="received",
                       actor="c")
        tips = {p.ledger.tip_hash for p in network.peers}
        assert len(tips) == 1

    def test_endorsement_simulation_does_not_mutate_state(self, network):
        before = network.peers[0].state.snapshot_hash()
        network.submit("ingestion-service", "provenance", "record_event",
                       handle="sim-only", data_hash="ee" * 32,
                       event="received", actor="c")
        # Not flushed yet: endorsement simulation must not have written.
        assert network.peers[0].state.snapshot_hash() == before
        network.flush()
        assert network.peers[0].state.snapshot_hash() != before

    def test_forged_endorsement_not_applied(self):
        net = standard_network(seed=6, batch_size=1)
        tx = net.submit("ingestion-service", "provenance", "record_event",
                        handle="forge", data_hash="aa" * 32,
                        event="received", actor="c")
        # Replace all endorsement signatures with junk before ordering.
        forged = tx.with_endorsements(
            [(peer_id, b"\x00" * len(sig))
             for peer_id, sig in tx.endorsements])
        net.orderer._pending[-1] = forged
        net.flush()
        history = net.query("provenance", "get_history", handle="forge")
        assert history == []  # validation dropped the forged transaction


class TestEndorserFailure:
    def test_one_failing_endorser_tolerated(self):
        """A crashing endorser just doesn't sign; policy still satisfiable."""
        from repro.blockchain.chaincode import Chaincode

        class BrokenContract(Chaincode):
            NAME = "provenance"

            def invoke(self, state, method, args):
                raise RuntimeError("endorser crashed")

        msp = MembershipServiceProvider(seed=21)
        net = BlockchainNetwork(msp, policy=EndorsementPolicy(2, 2),
                                batch_size=1)
        good = {"provenance": ProvenanceContract()}
        for org in ("org-a", "org-b", "org-c"):
            msp.enroll(f"peer.{org}", org, roles={"peer"})
        net.add_peer(Peer("peer.org-a", "org-a", msp, good))
        net.add_peer(Peer("peer.org-b", "org-b", msp,
                          {"provenance": BrokenContract()}))
        net.add_peer(Peer("peer.org-c", "org-c", msp, good))
        msp.enroll("client", "org-a")
        tx = net.submit("client", "provenance", "record_event",
                        handle="h", data_hash="aa" * 32, event="received",
                        actor="c")
        # Only the two healthy orgs endorsed.
        assert len(tx.endorsements) == 2
        net.flush()
        assert net.peers[0].query("provenance", "get_history",
                                  handle="h")

    def test_too_many_failures_block_policy(self):
        from repro.blockchain.chaincode import Chaincode

        class BrokenContract(Chaincode):
            NAME = "provenance"

            def invoke(self, state, method, args):
                raise RuntimeError("down")

        msp = MembershipServiceProvider(seed=22)
        net = BlockchainNetwork(msp, policy=EndorsementPolicy(2, 2))
        msp.enroll("peer.org-a", "org-a", roles={"peer"})
        msp.enroll("peer.org-b", "org-b", roles={"peer"})
        net.add_peer(Peer("peer.org-a", "org-a", msp,
                          {"provenance": ProvenanceContract()}))
        net.add_peer(Peer("peer.org-b", "org-b", msp,
                          {"provenance": BrokenContract()}))
        msp.enroll("client", "org-a")
        with pytest.raises(EndorsementError):
            net.submit("client", "provenance", "record_event",
                       handle="h", data_hash="aa" * 32, event="received",
                       actor="c")


class TestPeerSync:
    def test_late_joining_peer_catches_up(self):
        net = standard_network(seed=11, batch_size=5)
        for i in range(12):
            net.submit("ingestion-service", "provenance", "record_event",
                       handle=f"s{i}", data_hash="aa" * 32,
                       event="received", actor="c")
        net.flush()
        # A fresh peer from a new org joins after the fact.
        contracts = {"provenance": ProvenanceContract()}
        net.msp.enroll("peer.late-org", "late-org", roles={"peer"})
        late = Peer("peer.late-org", "late-org", net.msp, contracts)
        applied = late.sync_from(net.peers[0], net.policy)
        assert applied == net.peers[0].ledger.height
        assert late.ledger.tip_hash == net.peers[0].ledger.tip_hash
        assert late.query("provenance", "get_history", handle="s3")

    def test_sync_validates_blocks(self):
        import dataclasses
        net = standard_network(seed=12, batch_size=2)
        for i in range(4):
            net.submit("ingestion-service", "provenance", "record_event",
                       handle=f"v{i}", data_hash="bb" * 32,
                       event="received", actor="c")
        net.flush()
        source = net.peers[0]
        # Tamper with the source's chain; a syncing peer must reject it.
        block = source.ledger.block(0)
        forged_tx = dataclasses.replace(block.transactions[0],
                                        args={"handle": "FORGED"})
        source.ledger._blocks[0] = dataclasses.replace(
            block, transactions=(forged_tx,) + block.transactions[1:])
        contracts = {"provenance": ProvenanceContract()}
        net.msp.enroll("peer.sync-org", "sync-org", roles={"peer"})
        fresh = Peer("peer.sync-org", "sync-org", net.msp, contracts)
        with pytest.raises(LedgerError):
            fresh.sync_from(source, net.policy)

    def test_partial_sync_resumes(self):
        net = standard_network(seed=13, batch_size=2)
        for i in range(4):
            net.submit("ingestion-service", "provenance", "record_event",
                       handle=f"p{i}", data_hash="cc" * 32,
                       event="received", actor="c")
        net.flush()
        contracts = {"provenance": ProvenanceContract()}
        net.msp.enroll("peer.resume-org", "resume-org", roles={"peer"})
        fresh = Peer("peer.resume-org", "resume-org", net.msp, contracts)
        fresh.sync_from(net.peers[0], net.policy)
        # More activity, then a second incremental sync.
        net.submit("ingestion-service", "provenance", "record_event",
                   handle="p-new", data_hash="dd" * 32, event="received",
                   actor="c")
        net.flush()
        applied = fresh.sync_from(net.peers[0], net.policy)
        assert applied == 1
        assert fresh.ledger.tip_hash == net.peers[0].ledger.tip_hash


class TestOrderingService:
    def test_no_block_until_batch_full(self):
        orderer = OrderingService(batch_size=3)
        from repro.blockchain.ledger import GENESIS_HASH, Transaction
        orderer.submit(Transaction("t1", "cc", "m", {}, "s", 0.0))
        assert orderer.cut_block(0, GENESIS_HASH) is None
        assert orderer.cut_block(0, GENESIS_HASH, force=True) is not None

    def test_invalid_batch_size(self):
        with pytest.raises(LedgerError):
            OrderingService(batch_size=0)

    def test_query_without_peers(self):
        msp = MembershipServiceProvider(seed=7)
        net = BlockchainNetwork(msp)
        with pytest.raises(LedgerError):
            net.query("provenance", "get_history", handle="x")


class TestCopyOnWriteState:
    """Regression tests: the scratch state must shadow the base through a
    tuple probe, not an ``is not None`` check."""

    def _states(self):
        from repro.blockchain.chaincode import WorldState
        from repro.blockchain.network import _CopyOnWriteState
        base = WorldState()
        base.put("k", "committed-value")
        base.put("other", 7)
        return base, _CopyOnWriteState(base)

    def test_simulated_none_write_shadows_base(self):
        base, scratch = self._states()
        scratch.put("k", None)
        assert scratch.get("k") is None
        assert base.get("k") == "committed-value"

    def test_simulated_delete_shadows_base(self):
        base, scratch = self._states()
        assert scratch.delete("k") is True
        assert scratch.get("k") is None
        assert scratch.lookup("k") == (False, None)
        assert base.get("k") == "committed-value"

    def test_delete_of_missing_key_reports_absent(self):
        _, scratch = self._states()
        assert scratch.delete("never-existed") is False

    def test_delete_of_local_write_reports_present(self):
        _, scratch = self._states()
        scratch.put("fresh", None)  # even a stored None counts as present
        assert scratch.delete("fresh") is True

    def test_put_after_delete_restores_visibility(self):
        _, scratch = self._states()
        scratch.delete("k")
        scratch.put("k", "resurrected")
        assert scratch.get("k") == "resurrected"

    def test_keys_with_prefix_excludes_deleted(self):
        base, scratch = self._states()
        scratch.put("k2", 1)
        scratch.delete("k")
        assert scratch.keys_with_prefix("k") == ["k2"]
        assert base.keys_with_prefix("k") == ["k"]


class TestBatchVerifiedCommit:
    def test_batch_and_per_signature_commit_agree_on_tampered_block(self):
        """A forged signature in a block invalidates exactly that tx under
        both validation modes (screening falls back per-signature)."""
        import dataclasses

        def run(batch_verify):
            net = standard_network(seed=31, batch_size=4)
            net.batch_verify = batch_verify
            for i in range(4):
                net.submit("ingestion-service", "provenance",
                           "record_event", handle=f"bv{i}",
                           data_hash="aa" * 32, event="received", actor="c")
            # Tamper with one endorsement of one pending transaction.
            victim = net.orderer._pending[2]
            member_id, sig = victim.endorsements[0]
            bad = bytes([sig[0] ^ 0xFF]) + sig[1:]
            net.orderer._pending[2] = dataclasses.replace(
                victim, endorsements=((member_id, bad),)
                + victim.endorsements[1:])
            net.flush()
            return [net.query("provenance", "get_history",
                              handle=f"bv{i}") for i in range(4)]

        batched = run(True)
        unbatched = run(False)
        assert batched == unbatched
        assert batched[2] == []          # tampered tx dropped
        assert all(batched[i] for i in (0, 1, 3))


class TestDegradedSync:
    def _degraded_world(self):
        """A 4/4-policy network that commits one tx under a 2/2 degraded
        quorum while one peer is crashed and another is out of the
        network entirely (it will late-join)."""
        from repro.cloudsim.faults import FaultPlan
        net = standard_network(seed=41, batch_size=1,
                               policy=EndorsementPolicy(4, 4))
        net.degraded_policy = EndorsementPolicy(2, 2)
        lagging = net.peers.pop()  # misses all blocks until it syncs
        plan = FaultPlan(seed=1, clock=net.clock)
        plan.crash_node(net.peers[2].peer_id, start_s=0.0, end_s=1_000.0)
        for peer in net.peers:
            peer.fault_plan = plan
        net.submit("ingestion-service", "provenance", "record_event",
                   handle="deg-sync", data_hash="ab" * 32,
                   event="received", actor="c")
        net.flush()
        assert net.monitoring.metrics.counter("blockchain.degraded_commits") == 1
        return net, lagging

    def test_degraded_metadata_survives_flush(self):
        net, _ = self._degraded_world()
        assert net.degraded_tx_ids  # committed, but still visible for sync

    def test_sync_without_metadata_diverges(self):
        """The failure mode sync_peer exists to prevent: full-policy
        re-validation skips the degraded tx and world state forks."""
        net, lagging = self._degraded_world()
        lagging.sync_from(net.peers[0], net.policy)
        net.add_peer(lagging)
        assert lagging.ledger.tip_hash == net.peers[0].ledger.tip_hash
        assert not net.peers_converged()

    def test_sync_peer_threads_degraded_metadata(self):
        net, lagging = self._degraded_world()
        applied = net.sync_peer(lagging)
        net.add_peer(lagging)
        assert applied == net.peers[0].ledger.height
        assert net.peers_converged()
        assert lagging.query("provenance", "get_history",
                             handle="deg-sync")
