"""Tests for the logging/monitoring service: scrubbing, chaining, metrics."""

import dataclasses

import pytest

from repro.cloudsim.clock import SimClock
from repro.cloudsim.monitoring import (
    LogStore,
    MetricsRegistry,
    MonitoringService,
    scrub,
)
from repro.core.errors import IntegrityError


class TestScrubbing:
    def test_ssn_redacted(self):
        assert "123-45-6789" not in scrub("patient ssn 123-45-6789 seen")

    def test_email_redacted(self):
        assert "a@b.com" not in scrub("contact a@b.com now")

    def test_card_number_redacted(self):
        assert "4111111111111111" not in scrub("card 4111111111111111")

    def test_clean_text_untouched(self):
        text = "job-000001 stored 3 records"
        assert scrub(text) == text

    def test_attributes_scrubbed_on_append(self):
        store = LogStore()
        entry = store.append("ingest", "ok", contact="reach me at a@b.com")
        assert "a@b.com" not in entry.attributes["contact"]


class TestLogChain:
    def test_chain_verifies(self):
        store = LogStore()
        for i in range(5):
            store.append("s", f"message {i}")
        assert store.verify_chain()

    def test_tampered_message_detected(self):
        store = LogStore()
        store.append("s", "original")
        entry = store._entries[0]
        store._entries[0] = dataclasses.replace(entry, message="forged")
        with pytest.raises(IntegrityError):
            store.verify_chain()

    def test_deleted_entry_detected(self):
        store = LogStore()
        store.append("s", "one")
        store.append("s", "two")
        del store._entries[0]
        with pytest.raises(IntegrityError):
            store.verify_chain()

    def test_entries_filter_by_stream_and_level(self):
        store = LogStore()
        store.append("a", "x", level="INFO")
        store.append("b", "y", level="WARN")
        store.append("a", "z", level="WARN")
        assert len(store.entries(stream="a")) == 2
        assert len(store.entries(level="WARN")) == 2
        assert len(store.entries(stream="a", level="WARN")) == 1

    def test_timestamps_follow_clock(self):
        clock = SimClock()
        store = LogStore(clock)
        store.append("s", "first")
        clock.advance(5.0)
        entry = store.append("s", "second")
        assert entry.timestamp == 5.0


class TestMetrics:
    def test_counter(self):
        metrics = MetricsRegistry()
        metrics.incr("x")
        metrics.incr("x", 2)
        assert metrics.counter("x") == 3

    def test_gauge(self):
        metrics = MetricsRegistry()
        metrics.set_gauge("g", 1.5)
        assert metrics.gauge("g") == 1.5
        assert metrics.gauge("missing") is None

    def test_summary_percentiles(self):
        metrics = MetricsRegistry()
        for v in range(1, 101):
            metrics.observe("lat", float(v))
        summary = metrics.summary("lat")
        assert summary["count"] == 100
        assert summary["min"] == 1.0
        assert summary["max"] == 100.0
        assert summary["p50"] == pytest.approx(51.0)
        assert 95 <= summary["p95"] <= 97

    def test_empty_summary(self):
        assert MetricsRegistry().summary("none") == {"count": 0}


class TestMonitoringService:
    def test_log_increments_counter(self):
        monitoring = MonitoringService()
        monitoring.log("ingest", "hello", level="WARN")
        assert monitoring.metrics.counter("log.ingest.warn") == 1

    def test_timed_context(self):
        monitoring = MonitoringService()
        with monitoring.timed("span"):
            monitoring.clock.advance(2.0)
        assert monitoring.metrics.summary("span")["max"] == pytest.approx(2.0)
