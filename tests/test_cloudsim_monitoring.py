"""Tests for the logging/monitoring service: scrubbing, chaining, metrics."""

import dataclasses

import pytest

from repro.cloudsim.clock import SimClock
from repro.cloudsim.monitoring import (
    LEVEL_RANKS,
    LogStore,
    MetricsRegistry,
    MonitoringService,
    scrub,
    scrub_value,
)
from repro.core.errors import ConfigurationError, IntegrityError


class TestScrubbing:
    def test_ssn_redacted(self):
        assert "123-45-6789" not in scrub("patient ssn 123-45-6789 seen")

    def test_email_redacted(self):
        assert "a@b.com" not in scrub("contact a@b.com now")

    def test_card_number_redacted(self):
        assert "4111111111111111" not in scrub("card 4111111111111111")

    def test_clean_text_untouched(self):
        text = "job-000001 stored 3 records"
        assert scrub(text) == text

    def test_attributes_scrubbed_on_append(self):
        store = LogStore()
        entry = store.append("ingest", "ok", contact="reach me at a@b.com")
        assert "a@b.com" not in entry.attributes["contact"]

    def test_nested_dict_attribute_scrubbed(self):
        # Regression: only top-level str values used to be scrubbed, so a
        # nested dict carried the SSN verbatim into the hash chain.
        store = LogStore()
        entry = store.append("ingest", "ok",
                             patient={"ssn": "123-45-6789",
                                      "contact": {"email": "a@b.com"}})
        assert entry.attributes["patient"]["ssn"] == "[REDACTED]"
        assert entry.attributes["patient"]["contact"]["email"] == "[REDACTED]"
        assert "123-45-6789" not in store.entries()[0].entry_hash  # sanity
        assert store.verify_chain()

    def test_nested_list_and_tuple_attributes_scrubbed(self):
        store = LogStore()
        entry = store.append(
            "ingest", "ok",
            contacts=["a@b.com", {"card": "4111 1111 1111 1111"}],
            pair=("ssn 123-45-6789", 7))
        assert entry.attributes["contacts"][0] == "[REDACTED]"
        assert entry.attributes["contacts"][1]["card"] == "[REDACTED]"
        assert isinstance(entry.attributes["pair"], tuple)
        assert "123-45-6789" not in entry.attributes["pair"][0]
        assert entry.attributes["pair"][1] == 7

    def test_sensitive_dict_keys_scrubbed(self):
        scrubbed = scrub_value({"a@b.com": "x"})
        assert list(scrubbed) == ["[REDACTED]"]

    def test_scrub_value_leaves_scalars_alone(self):
        assert scrub_value(3.5) == 3.5
        assert scrub_value(None) is None
        assert scrub_value(True) is True


class TestLogChain:
    def test_chain_verifies(self):
        store = LogStore()
        for i in range(5):
            store.append("s", f"message {i}")
        assert store.verify_chain()

    def test_tampered_message_detected(self):
        store = LogStore()
        store.append("s", "original")
        entry = store._entries[0]
        store._entries[0] = dataclasses.replace(entry, message="forged")
        with pytest.raises(IntegrityError):
            store.verify_chain()

    def test_deleted_entry_detected(self):
        store = LogStore()
        store.append("s", "one")
        store.append("s", "two")
        del store._entries[0]
        with pytest.raises(IntegrityError):
            store.verify_chain()

    def test_entries_filter_by_stream_and_level(self):
        store = LogStore()
        store.append("a", "x", level="INFO")
        store.append("b", "y", level="WARN")
        store.append("a", "z", level="WARN")
        assert len(store.entries(stream="a")) == 2
        assert len(store.entries(level="WARN")) == 2
        assert len(store.entries(stream="a", level="WARN")) == 1

    def test_timestamps_follow_clock(self):
        clock = SimClock()
        store = LogStore(clock)
        store.append("s", "first")
        clock.advance(5.0)
        entry = store.append("s", "second")
        assert entry.timestamp == 5.0

    def test_non_serializable_attribute_raises_typed_error(self):
        # Regression: json.dumps used to raise a raw TypeError from inside
        # the hash computation; now the bad call is rejected up front with
        # a ConfigurationError naming the offending key.
        store = LogStore()
        store.append("s", "good")
        with pytest.raises(ConfigurationError, match="'weird'"):
            store.append("s", "bad", fine=1, weird={1, 2, 3})
        # The chain is untouched by the failed append.
        assert len(store) == 1
        assert store.verify_chain()
        store.append("s", "still fine")
        assert store.verify_chain()

    def test_non_serializable_dataclass_attribute_rejected(self):
        @dataclasses.dataclass
        class Unserializable:
            x: int = 1

        store = LogStore()
        with pytest.raises(ConfigurationError, match="'payload'"):
            store.append("s", "bad", payload=Unserializable())
        assert len(store) == 0


class TestMetrics:
    def test_counter(self):
        metrics = MetricsRegistry()
        metrics.incr("x")
        metrics.incr("x", 2)
        assert metrics.counter("x") == 3

    def test_gauge(self):
        metrics = MetricsRegistry()
        metrics.set_gauge("g", 1.5)
        assert metrics.gauge("g") == 1.5
        assert metrics.gauge("missing") is None

    def test_summary_percentiles(self):
        metrics = MetricsRegistry()
        for v in range(1, 101):
            metrics.observe("lat", float(v))
        summary = metrics.summary("lat")
        assert summary["count"] == 100
        assert summary["min"] == 1.0
        assert summary["max"] == 100.0
        # Nearest-rank: p50 of 1..100 is the 50th ranked value.
        assert summary["p50"] == pytest.approx(50.0)
        assert summary["p95"] == pytest.approx(95.0)
        assert summary["p99"] == pytest.approx(99.0)

    def test_percentile_nearest_rank_exact_values(self):
        # Regression: values[int(p*n)] overshot by one rank — p50 of
        # [1.0, 2.0] reported 2.0 (the max).  Nearest-rank is
        # values[ceil(p*n) - 1].
        def summary_of(values):
            metrics = MetricsRegistry()
            for v in values:
                metrics.observe("x", v)
            return metrics.summary("x")

        one = summary_of([42.0])
        assert one["p50"] == one["p95"] == one["p99"] == 42.0

        two = summary_of([1.0, 2.0])
        assert two["p50"] == 1.0       # was 2.0 before the fix
        assert two["p95"] == 2.0
        assert two["p99"] == 2.0

        four = summary_of([1.0, 2.0, 3.0, 4.0])
        assert four["p50"] == 2.0      # ceil(0.5*4)-1 = 1
        assert four["p95"] == 4.0      # ceil(3.8)-1 = 3
        assert four["p99"] == 4.0

        hundred = summary_of([float(v) for v in range(1, 101)])
        assert hundred["p50"] == 50.0
        assert hundred["p95"] == 95.0
        assert hundred["p99"] == 99.0

    def test_empty_summary(self):
        assert MetricsRegistry().summary("none") == {"count": 0}

    def test_exemplar_links_worst_sample_to_trace(self):
        metrics = MetricsRegistry()
        metrics.observe("lat", 0.5, trace_id="t-00000001")
        metrics.observe("lat", 2.0, trace_id="t-00000002")
        metrics.observe("lat", 1.0, trace_id="t-00000003")
        metrics.observe("lat", 9.0)    # untraced samples never become one
        assert metrics.exemplar("lat") == {"value": 2.0,
                                           "trace_id": "t-00000002"}
        assert metrics.exemplar("missing") is None


class TestMonitoringService:
    def test_log_increments_counter(self):
        monitoring = MonitoringService()
        monitoring.log("ingest", "hello", level="WARN")
        assert monitoring.metrics.counter("log.ingest.warn") == 1

    def test_timed_context(self):
        monitoring = MonitoringService()
        with monitoring.timed("span"):
            monitoring.clock.advance(2.0)
        assert monitoring.metrics.summary("span")["max"] == pytest.approx(2.0)


class TestScrubSets:
    def test_set_elements_scrubbed_in_place(self):
        cleaned = scrub_value({"a@b.com", "fine"})
        assert isinstance(cleaned, set)
        assert cleaned == {"[REDACTED]", "fine"}

    def test_frozenset_stays_frozen(self):
        cleaned = scrub_value(frozenset({"ssn 123-45-6789"}))
        assert isinstance(cleaned, frozenset)
        assert not any("123-45-6789" in v for v in cleaned)

    def test_set_attribute_rejected_without_leaking_phi(self):
        # Sets are still not JSON-serializable, so the append is rejected
        # with the usual typed error naming the key — but the scrubbed
        # attribute (and thus anything the error path repr()s) must not
        # hold the raw SSN.
        store = LogStore()
        with pytest.raises(ConfigurationError, match="'bad'"):
            store.append("s", "msg", bad={"ssn 123-45-6789"})
        assert len(store) == 0

    def test_nested_set_inside_dict_scrubbed(self):
        cleaned = scrub_value({"contacts": {"a@b.com"}})
        assert cleaned["contacts"] == {"[REDACTED]"}


class TestLogEntriesIndexedFiltering:
    def _store(self):
        store = LogStore()
        store.append("api", "d", level="DEBUG")
        store.append("api", "i", level="INFO")
        store.append("ingest", "w", level="WARN")
        store.append("api", "e", level="ERROR")
        store.append("api", "c", level="CRITICAL")
        return store

    def test_since_index_slices_from_cursor(self):
        store = self._store()
        assert [e.message for e in store.entries(since_index=3)] == ["e", "c"]
        assert store.entries(since_index=len(store)) == []

    def test_since_index_clamps_negative(self):
        store = self._store()
        assert len(store.entries(since_index=-5)) == len(store)

    def test_min_level_ranks(self):
        store = self._store()
        assert [e.message for e in store.entries(min_level="WARN")] == [
            "w", "e", "c"]
        assert [e.message for e in store.entries(min_level="DEBUG")] == [
            "d", "i", "w", "e", "c"]

    def test_min_level_composes_with_stream_and_cursor(self):
        store = self._store()
        got = store.entries(stream="api", since_index=1, min_level="ERROR")
        assert [e.message for e in got] == ["e", "c"]

    def test_unknown_min_level_rejected(self):
        store = self._store()
        with pytest.raises(ConfigurationError, match="FATAL"):
            store.entries(min_level="FATAL")

    def test_custom_entry_level_never_filtered_out(self):
        # An entry appended with a level outside LEVEL_RANKS ranks above
        # every known level, so a min_level filter keeps it visible
        # rather than silently hiding it.
        store = LogStore()
        store.append("s", "odd", level="AUDIT")
        assert [e.message for e in store.entries(min_level="CRITICAL")] == [
            "odd"]

    def test_level_ranks_order(self):
        ranks = [LEVEL_RANKS[l] for l in
                 ("DEBUG", "INFO", "WARN", "ERROR", "CRITICAL")]
        assert ranks == sorted(ranks)
        assert len(set(ranks)) == len(ranks)


class TestTimedExemplars:
    def test_timed_threads_trace_id_to_exemplar(self):
        monitoring = MonitoringService()
        with monitoring.timed("lat", trace_id="t-00000042"):
            monitoring.clock.advance(1.5)
        assert monitoring.metrics.exemplar("lat") == {
            "value": 1.5, "trace_id": "t-00000042"}

    def test_set_trace_late_binds_inside_the_block(self):
        monitoring = MonitoringService()
        with monitoring.timed("lat") as timer:
            timer.set_trace("t-00000007")
            monitoring.clock.advance(0.25)
        assert monitoring.metrics.exemplar("lat")["trace_id"] == "t-00000007"

    def test_untraced_timer_leaves_no_exemplar(self):
        monitoring = MonitoringService()
        with monitoring.timed("lat"):
            monitoring.clock.advance(1.0)
        assert monitoring.metrics.exemplar("lat") is None


class TestSeriesBinding:
    def test_bound_registry_mirrors_into_series(self):
        from repro.cloudsim.healthplane import TimeSeriesStore
        clock = SimClock()
        monitoring = MonitoringService(clock)
        store = TimeSeriesStore(clock, interval_s=10.0)
        monitoring.metrics.bind_series(store)
        monitoring.metrics.incr("hits")
        monitoring.metrics.observe("lat", 0.5)
        monitoring.metrics.set_gauge("depth", 7.0)
        assert store.total("hits", 10.0) == 1.0
        assert store.total("lat", 10.0) == 0.5
        assert store.latest("depth").last == 7.0

    def test_unbound_registry_unchanged(self):
        metrics = MetricsRegistry()
        metrics.incr("hits")       # must not raise without a bound store
        assert metrics.counter("hits") == 1
