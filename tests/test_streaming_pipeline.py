"""End-to-end streaming hot path: ledger, tracing, chaos, SLOs,
determinism."""

import pytest

from repro.analytics.similarity import (DiseaseSimilarityBuilder,
                                        DrugSimilarityBuilder)
from repro.blockchain import ShardedBlockchainNetwork
from repro.cloudsim.faults import FaultPlan
from repro.cloudsim.healthplane import HealthPlane
from repro.cloudsim.healthplane.events import EventBus
from repro.cloudsim.tracing import Tracer
from repro.compute import standard_scheduler
from repro.ingestion import ShardedIngestionFrontend
from repro.knowledge.synthetic import generate_universe
from repro.streaming import (FeedGenerator, IncrementalSimilarityEngine,
                             PriorityShedPolicy, StreamingAnalytics,
                             StreamingPipeline, SubscriptionFilter,
                             SubscriptionRegistry)
from repro.streaming.pipeline import PUSH_BAD_SERIES, PUSH_GOOD_SERIES


def _committed_blocks(network):
    return sum(ch.peers[0].ledger.height for ch in network.channels)


def _world(*, seed=0, n_shards=2, queue_capacity=32, policy_factory=None,
           with_scheduler=False, with_registry=True,
           rate_calm_hz=2.0, rate_burst_hz=12.0, queue_maxlen=256):
    network = ShardedBlockchainNetwork(n_shards, seed=5, batch_size=8)
    frontend = ShardedIngestionFrontend(network, events_per_batch=8)
    universe = generate_universe(n_drugs=8, n_diseases=6, seed=3)
    engine = IncrementalSimilarityEngine(DrugSimilarityBuilder(universe),
                                        DiseaseSimilarityBuilder(universe))
    analytics = StreamingAnalytics(engine)
    registry = None
    if with_registry:
        registry = SubscriptionRegistry(
            EventBus(network.clock, monitoring=network.monitoring),
            queue_maxlen=queue_maxlen)
    scheduler = None
    if with_scheduler:
        scheduler = standard_scheduler(clock=network.clock,
                                       monitoring=network.monitoring)
    pipeline = StreamingPipeline(
        frontend=frontend, analytics=analytics, registry=registry,
        queue_capacity=queue_capacity, policy_factory=policy_factory,
        scheduler=scheduler)
    feed = FeedGenerator.for_universe(universe, seed=seed, n_patients=16,
                                      rate_calm_hz=rate_calm_hz,
                                      rate_burst_hz=rate_burst_hz)
    return network, pipeline, feed


class TestLedger:
    def test_calm_run_processes_everything(self):
        network, pipeline, feed = _world()
        pipeline.run(feed.events(20.0))
        ledger = pipeline.ledger()
        assert ledger["shed"] == 0 and ledger["queued"] == 0
        assert ledger["processed"] == ledger["arrivals"] > 0
        assert pipeline.ledger_balanced()
        assert pipeline.flushes > 0
        metrics = network.monitoring.metrics
        assert metrics.counter("streaming.arrivals") == ledger["arrivals"]
        assert metrics.counter("streaming.processed") == \
            ledger["processed"]

    def test_overload_sheds_explicitly_and_balances(self):
        network, pipeline, _ = _world(
            queue_capacity=4,
            policy_factory=lambda name: PriorityShedPolicy())
        feed = FeedGenerator(seed=2,
                             patient_ids=[f"p-{i:02d}" for i in range(16)],
                             rate_calm_hz=100.0, rate_burst_hz=900.0,
                             dwell_calm_s=0.5, dwell_burst_s=20.0)
        pipeline.run(feed.events(4.0))
        ledger = pipeline.ledger()
        assert ledger["shed"] > 0
        assert pipeline.ledger_balanced()
        # every shed is attributed: metrics totals match queue ledgers
        metrics = network.monitoring.metrics
        assert metrics.counter("streaming.shed") == ledger["shed"]
        by_reason = sum(q.shed for q in pipeline.queues)
        assert by_reason == ledger["shed"]

    def test_commits_reach_the_ledger(self):
        network, pipeline, feed = _world()
        pipeline.run(feed.events(10.0))
        assert _committed_blocks(network) > 0


class TestTracing:
    def test_attribution_sums_to_exactly_100(self):
        network, pipeline, feed = _world()
        tracer = Tracer(network.clock)
        pipeline.tracer = tracer
        pipeline.run(feed.events(5.0))
        assert pipeline.last_trace_id is not None
        percentages = tracer.critical_path(
            pipeline.last_trace_id).layer_percentages()
        assert sum(percentages.values()) == pytest.approx(100.0, abs=1e-9)
        assert {"streaming.queue", "streaming.commit",
                "streaming.analytics",
                "streaming.push"} <= set(percentages)

    def test_worst_wait_has_trace_exemplar(self):
        network, pipeline, feed = _world()
        pipeline.tracer = Tracer(network.clock)
        pipeline.run(feed.events(5.0))
        exemplar = network.monitoring.metrics.exemplar(
            "streaming.queue.wait_s")
        assert exemplar is not None
        assert pipeline.tracer.has_trace(exemplar["trace_id"])


class TestChaos:
    def test_dropped_commit_link_retries_through(self):
        network, pipeline, feed = _world(rate_calm_hz=20.0)
        plan = FaultPlan(seed=2, clock=network.clock)
        plan.drop_link("stream-worker", "orderer", 0.6,
                       start_s=0.0, end_s=60.0)
        pipeline.fault_plan = plan
        pipeline.run(feed.events(20.0))
        assert pipeline.commit_retries_used > 0
        # delayed, never lost: the ledger still balances and everything
        # admitted was processed
        assert pipeline.ledger_balanced()
        assert pipeline.ledger()["queued"] == 0

    def test_total_outage_keeps_sealed_batches_for_later(self):
        network, pipeline, feed = _world()
        plan = FaultPlan(seed=2, clock=network.clock)
        plan.drop_link("stream-worker", "orderer", 1.0,
                       start_s=0.0, end_s=5.0)
        pipeline.fault_plan = plan
        events = list(feed.events(20.0))
        outage = [e for e in events if e.arrival_s < 5.0]
        pipeline.run(outage)
        assert pipeline.failed_flushes > 0
        pending_during_outage = pipeline.frontend.pending_events
        assert pending_during_outage > 0
        # the fault window ends; the next window commits the backlog
        pipeline.run(e for e in events if e.arrival_s >= 5.0)
        assert pipeline.frontend.pending_events == 0
        assert _committed_blocks(network) > 0


class TestPushSlo:
    def test_sustained_slow_pushes_page(self):
        network, pipeline, _ = _world()
        plane = HealthPlane(network.monitoring)
        pipeline.register_push_slo(plane, target=0.99)
        clock = network.clock
        metrics = network.monitoring.metrics

        def traffic(seconds, bad_every=0):
            n = 0
            end = clock.now + seconds
            while clock.now < end:
                n += 1
                bad = bad_every and n % bad_every == 0
                metrics.incr(PUSH_BAD_SERIES if bad
                             else PUSH_GOOD_SERIES)
                clock.advance(2.0)

        traffic(3600)                      # clean hour of history
        assert plane.evaluate() == []
        traffic(60, bad_every=2)           # short blip: no page
        assert plane.evaluate() == []
        traffic(1200, bad_every=2)         # sustained: both windows burn
        fired = plane.evaluate()
        assert [a.severity for a in fired] == ["page"]
        assert fired[0].slo == "streaming-push"


class TestRefresh:
    def test_kb_mutations_enqueue_dirty_row_jobs(self):
        network, pipeline, feed = _world(with_scheduler=True)
        events = [e for e in feed.events(60.0)]
        assert any(e.event_class in ("drug.update", "disease.update")
                   for e in events)
        pipeline.run(events)
        assert pipeline.refresh_jobs
        engine = pipeline.analytics.engine
        assert engine.dirty_drugs == set()
        assert engine.dirty_diseases == set()
        job = pipeline.scheduler.job(pipeline.refresh_jobs[-1])
        assert job.state.value == "succeeded"


class TestPushes:
    def test_matching_subscription_receives_pushes(self):
        network, pipeline, feed = _world()
        subscription = pipeline.registry.register(
            tenant_id="mercy-hospital", owner="dash",
            criteria=SubscriptionFilter(event_classes=("lab",)))
        pipeline.run(feed.events(10.0))
        assert subscription.matched > 0
        events = pipeline.registry.poll(subscription.sub_id)
        assert all(e["attributes"]["event_class"].startswith("lab")
                   for e in events)


class TestDeterminism:
    def test_two_identical_runs_are_identical(self):
        def run():
            network, pipeline, feed = _world(seed=6, with_scheduler=True)
            plan = FaultPlan(seed=3, clock=network.clock)
            plan.drop_link("stream-worker", "orderer", 0.3,
                           start_s=0.0, end_s=10.0)
            pipeline.fault_plan = plan
            pipeline.run(feed.events(15.0))
            return pipeline.describe(), network.clock.now
        assert run() == run()
