"""Integration tests: the full platform story across subsystems.

Covers the paper's end-to-end narratives: (1) trusted ingestion to
analytics to export; (2) enhanced-client edge workflow against a live
platform; (3) trusted intercloud workload transfer feeding the analytics
pipeline; (4) compromise detection across layers.
"""

import numpy as np
import pytest

from repro import HealthCloudPlatform
from repro.analytics import (
    DeltModel,
    DrugSimilarityBuilder,
    JointMatrixFactorization,
    MarginalSccs,
    ModelStage,
    effect_recovery,
)
from repro.analytics.similarity import DiseaseSimilarityBuilder
from repro.client.connection import PlatformConnection
from repro.client.enhanced import EnhancedClient
from repro.cloudsim.network import standard_topology
from repro.fhir.resources import Bundle, Observation, Patient
from repro.ingestion.pipeline import IngestionStatus, encrypt_bundle_for_upload
from repro.knowledge import generate_universe
from repro.rbac.model import Action, Permission, Scope, ScopeKind
from repro.workloads import generate_emr_cohort


@pytest.fixture(scope="module")
def loaded_platform():
    """Platform with a 12-patient study ingested end to end."""
    platform = HealthCloudPlatform(seed=101)
    context = platform.register_tenant("mercy-health")
    group = platform.rbac.create_group(context.tenant.tenant_id,
                                       "hba1c-study")
    registration = platform.ingestion.register_client("ehr-bridge")
    rng = np.random.default_rng(5)
    for i in range(12):
        pid = f"pt-{i:03d}"
        platform.consent.grant(pid, group.group_id)
        bundle = Bundle(id=f"bundle-{i}")
        bundle.add(Patient(id=pid, name={"family": f"Fam{i}"},
                           birthDate=f"19{50 + i % 40}-06-15",
                           gender="female" if i % 2 else "male",
                           address={"state": "MA"}))
        for j in range(3):
            bundle.add(Observation(
                id=f"{pid}-obs-{j}", code={"text": "HbA1c"},
                subject=f"Patient/{pid}",
                effectiveDateTime=f"2024-0{j + 1}-10",
                valueQuantity={"value": float(5.5 + rng.random() * 3),
                               "unit": "%"}))
        envelope = encrypt_bundle_for_upload(bundle, registration)
        platform.ingestion.upload("ehr-bridge", envelope, group.group_id)
    platform.run_ingestion()
    return platform, context, group


class TestIngestionToExport:
    def test_all_jobs_stored(self, loaded_platform):
        platform, _, _ = loaded_platform
        assert platform.monitoring.metrics.counter("ingestion.stored") == 12
        assert platform.datalake.record_count == 24

    def test_provenance_complete_per_job(self, loaded_platform):
        platform, _, _ = loaded_platform
        from repro.blockchain.audit import AuditorView
        view = AuditorView(platform.blockchain)
        stored = view.search_events(event="stored")
        assert len(stored) == 12
        # Batched or not, every event's integrity anchor verifies.
        assert all(view.verify_event(finding) for finding in stored)
        assert view.verify_integrity()

    def test_analyst_roundtrip(self, loaded_platform):
        platform, context, group = loaded_platform
        analyst = platform.rbac.register_user(context.tenant.tenant_id,
                                              "analyst")
        tenant_scope = Scope(ScopeKind.TENANT, context.tenant.tenant_id)
        platform.rbac.define_role("analyst", [
            Permission(Action.READ, "anonymized-data", tenant_scope)])
        platform.rbac.bind_role(analyst.user_id, context.default_org.org_id,
                                context.default_env.env_id, "analyst")
        platform.rbac.add_group_member(group.group_id, analyst.user_id)
        export = platform.export.export_anonymized(
            analyst.user_id, group.group_id, context.default_org.org_id,
            context.default_env.env_id)
        assert len(export.bundles) == 12
        assert export.achieved_k >= 5
        # No PHI leaks in the anonymized export.
        for bundle in export.bundles:
            payload = bundle.to_json()
            assert "Fam" not in payload
            assert "pt-0" not in payload

    def test_audit_pass_clean(self, loaded_platform):
        platform, _, _ = loaded_platform
        report = platform.audit.run_audit()
        assert report.clean
        assert report.log_chain_valid
        assert report.ledger_valid


class TestModelLifecycleToEdge:
    def test_train_deploy_push_run(self, loaded_platform):
        platform, _, _ = loaded_platform
        # Train DELT on a synthetic cohort (the RWE analytics story).
        cohort = generate_emr_cohort(n_patients=150, n_drugs=16, seed=33)
        platform.models.start("delt-hba1c", acceptance={"f1": 0.8})
        model = DeltModel(n_drugs=16, ridge=1.0)
        result = model.fit(cohort.patients)
        platform.models.mark_generated("delt-hba1c", artifact=result)
        recovery = effect_recovery(result.effects, cohort.true_effects, 0.8)
        platform.models.record_test("delt-hba1c", {"f1": recovery["f1"]})
        record = platform.models.deploy("delt-hba1c")
        assert record.approved_for_clients

        # Push the approved model to an enhanced client at the edge.
        fabric = standard_topology()
        connection = PlatformConnection(fabric, "client", "cloud-a")
        client = EnhancedClient(connection)
        effects = record.artifact.effects
        client.install_model(
            "delt-hba1c",
            lambda payload: float(np.dot(effects, payload["exposures"])),
            approved=record.approved_for_clients)
        exposure = np.zeros(16)
        exposure[int(np.argmin(cohort.true_effects))] = 1.0
        predicted_change = client.run_model("delt-hba1c",
                                            {"exposures": exposure})
        assert predicted_change < -0.3  # the lowering drug lowers
        assert client.local_model_runs == 1

    def test_underperforming_model_blocked(self, loaded_platform):
        platform, _, _ = loaded_platform
        platform.models.start("weak-model", acceptance={"auc": 0.9})
        platform.models.mark_generated("weak-model", artifact=object())
        platform.models.record_test("weak-model", {"auc": 0.55})
        from repro.core.errors import ModelLifecycleError
        with pytest.raises(ModelLifecycleError):
            platform.models.deploy("weak-model")


class TestRepositioningPipeline:
    def test_kb_to_jmf_pipeline(self):
        universe = generate_universe(n_drugs=50, n_diseases=35, seed=55)
        drug_sources = DrugSimilarityBuilder(universe).all_sources()
        disease_sources = DiseaseSimilarityBuilder(universe).all_sources()
        model = JointMatrixFactorization(rank=8, seed=2, max_iterations=80)
        result = model.fit(universe.association_matrix.astype(float),
                           drug_sources, disease_sources)
        scores = result.scores()
        known = scores[universe.association_matrix == 1].mean()
        unknown = scores[universe.association_matrix == 0].mean()
        assert known > unknown * 1.5

    def test_delt_vs_marginal_story(self, emr_cohort):
        delt = DeltModel(n_drugs=emr_cohort.n_drugs).fit(emr_cohort.patients)
        marginal = MarginalSccs(emr_cohort.n_drugs).fit(emr_cohort.patients)
        delt_f1 = effect_recovery(delt.effects, emr_cohort.true_effects,
                                  0.8)["f1"]
        marginal_f1 = effect_recovery(marginal, emr_cohort.true_effects,
                                      0.8)["f1"]
        assert delt_f1 > marginal_f1


class TestGdprEndToEnd:
    def test_erasure_cascades(self, loaded_platform):
        platform, _, group = loaded_platform
        target = "pt-005"
        receipt = platform.gdpr.erase_subject(target)
        assert receipt.record_versions_destroyed == 2
        # Consent revoked -> patient no longer in the study.
        assert target not in platform.consent.active_patients_in(
            group.group_id)
        # Data unreadable.
        reference = platform.deidentifier.reference_id(target)
        from repro.core.errors import KeyManagementError
        for record in platform.datalake.records_for_patient(reference):
            with pytest.raises(KeyManagementError):
                platform.datalake.retrieve(record.record_id)
        # Erasure is on the ledger.
        events = platform.gdpr.subject_access(target).provenance_events
        assert events[-1]["event"] == "deleted"
        # Other patients unaffected.
        other_ref = platform.deidentifier.reference_id("pt-006")
        records = platform.datalake.records_for_patient(other_ref)
        assert platform.datalake.retrieve(records[0].record_id)
