"""Tests for the anonymization verification service and consent management."""

import pytest

from repro.cloudsim.clock import SimClock
from repro.core.errors import AnonymizationError, ConsentError
from repro.fhir.resources import Bundle, Observation, Patient
from repro.privacy.consent import (
    ConsentManagementService,
    ConsentStatus,
)
from repro.privacy.deidentify import Deidentifier, ReidentificationMap
from repro.privacy.verification import AnonymizationVerificationService

SECRET = b"0123456789abcdef0123456789abcdef"


def raw_patient():
    return Patient(id="pt-1", name={"family": "Doe"}, birthDate="1980-03-12",
                   gender="female",
                   identifier=[{"system": "ssn", "value": "123"}])


def clean_patient():
    deidentifier = Deidentifier(SECRET)
    return deidentifier.deidentify_patient(raw_patient(),
                                           ReidentificationMap())


class TestVerificationService:
    def test_raw_patient_scores_low(self):
        service = AnonymizationVerificationService()
        degree, residual = service.independent_degree(raw_patient())
        assert degree < 0.5
        assert "name" in residual

    def test_clean_patient_scores_one(self):
        service = AnonymizationVerificationService()
        degree, residual = service.independent_degree(clean_patient())
        assert degree == 1.0
        assert residual == []

    def test_gating_on_independent_by_default(self):
        service = AnonymizationVerificationService(minimum_degree=0.8)
        assessment = service.assess_resource(clean_patient())
        assert assessment.passed
        assert assessment.holistic_degree < 1.0  # lone patient, informative

    def test_holistic_gating_blocks_rare_profiles(self):
        service = AnonymizationVerificationService(minimum_degree=0.8,
                                                   target_k=5,
                                                   holistic_gating=True)
        assessment = service.assess_resource(clean_patient())
        assert not assessment.passed

    def test_holistic_improves_with_population(self):
        service = AnonymizationVerificationService(target_k=3,
                                                   holistic_gating=True)
        patient = clean_patient()
        first = service.holistic_degree(patient)
        bundle = Bundle(id="b").add(patient)
        service.admit(bundle)
        service.admit(bundle)
        later = service.holistic_degree(patient)
        assert later > first
        assert later == 1.0

    def test_bundle_fails_on_weakest_resource(self):
        service = AnonymizationVerificationService(minimum_degree=0.8)
        bundle = Bundle(id="b")
        bundle.add(clean_patient())
        bundle.add(Observation(id="o", code={"text": "x"},
                               subject="Patient/pt-raw"))
        assessment = service.assess_bundle(bundle)
        assert not assessment.passed
        assert "direct-patient-reference" in assessment.residual_identifiers

    def test_empty_bundle_rejected(self):
        service = AnonymizationVerificationService()
        with pytest.raises(AnonymizationError):
            service.assess_bundle(Bundle(id="b"))

    def test_invalid_configuration(self):
        with pytest.raises(AnonymizationError):
            AnonymizationVerificationService(minimum_degree=1.5)
        with pytest.raises(AnonymizationError):
            AnonymizationVerificationService(target_k=0)


class TestConsent:
    def test_grant_and_check(self):
        service = ConsentManagementService()
        service.grant("pt-1", "study-a")
        assert service.has_consent("pt-1", "study-a")
        assert not service.has_consent("pt-1", "study-b")

    def test_expiry(self):
        clock = SimClock()
        service = ConsentManagementService(clock)
        service.grant("pt-1", "study-a", ttl_s=100.0)
        clock.advance(101.0)
        assert not service.has_consent("pt-1", "study-a")

    def test_revocation(self):
        service = ConsentManagementService()
        record = service.grant("pt-1", "study-a")
        service.revoke(record.consent_id)
        assert not service.has_consent("pt-1", "study-a")
        assert record.status_at(service.clock.now) is ConsentStatus.REVOKED

    def test_revoke_unknown(self):
        with pytest.raises(ConsentError):
            ConsentManagementService().revoke("consent-ghost")

    def test_revoke_all_for_patient(self):
        service = ConsentManagementService()
        service.grant("pt-1", "study-a")
        service.grant("pt-1", "study-b")
        service.grant("pt-2", "study-a")
        assert service.revoke_all_for_patient("pt-1") == 2
        assert not service.has_consent("pt-1", "study-a")
        assert service.has_consent("pt-2", "study-a")

    def test_require_consent_raises(self):
        service = ConsentManagementService()
        with pytest.raises(ConsentError):
            service.require_consent("pt-1", "study-a")

    def test_regrant_after_revocation(self):
        service = ConsentManagementService()
        record = service.grant("pt-1", "study-a")
        service.revoke(record.consent_id)
        service.grant("pt-1", "study-a")
        assert service.has_consent("pt-1", "study-a")

    def test_active_patients_in_group(self):
        service = ConsentManagementService()
        service.grant("pt-1", "study-a")
        service.grant("pt-2", "study-a")
        record = service.grant("pt-3", "study-a")
        service.revoke(record.consent_id)
        assert service.active_patients_in("study-a") == ["pt-1", "pt-2"]


class TestRevocationIdempotency:
    def test_repeat_revoke_keeps_earliest_timestamp(self):
        # Revoking twice must not move the revocation point forward: the
        # audit-relevant fact is when consent *first* ended.
        clock = SimClock()
        service = ConsentManagementService(clock)
        record = service.grant("pt-1", "study-a")
        clock.advance(10.0)
        service.revoke(record.consent_id)
        first = record.revoked_at
        clock.advance(50.0)
        service.revoke(record.consent_id)
        assert record.revoked_at == first
        assert record.status_at(clock.now) is ConsentStatus.REVOKED

    def test_revoked_window_is_stable_for_history_queries(self):
        clock = SimClock()
        service = ConsentManagementService(clock)
        record = service.grant("pt-1", "study-a")
        clock.advance(10.0)
        service.revoke(record.consent_id)
        clock.advance(50.0)
        service.revoke(record.consent_id)
        # A point-in-time query between the two revoke calls must still
        # see the consent as revoked (it was), not active.
        assert record.status_at(30.0) is ConsentStatus.REVOKED
