"""Tests for the four HCLS chaincodes over world state."""

import pytest

from repro.blockchain.chaincode import (
    ConsentContract,
    MalwareContract,
    PrivacyContract,
    ProvenanceContract,
    WorldState,
)
from repro.core.errors import LedgerError, ValidationError


@pytest.fixture
def state():
    return WorldState()


class TestWorldState:
    def test_put_get(self, state):
        state.put("k", {"a": 1})
        assert state.get("k") == {"a": 1}

    def test_versions(self, state):
        assert state.version("k") == 0
        state.put("k", 1)
        state.put("k", 2)
        assert state.version("k") == 2

    def test_prefix_scan(self, state):
        state.put("prov/a", 1)
        state.put("prov/b", 2)
        state.put("other", 3)
        assert state.keys_with_prefix("prov/") == ["prov/a", "prov/b"]

    def test_snapshot_hash_changes(self, state):
        h1 = state.snapshot_hash()
        state.put("k", 1)
        assert state.snapshot_hash() != h1


class TestProvenanceContract:
    def test_event_chain(self, state):
        contract = ProvenanceContract()
        for i, event in enumerate(["received", "validated", "stored"]):
            seq = contract.invoke(state, "record_event",
                                  {"handle": "h1", "data_hash": "aa",
                                   "event": event, "actor": "svc"})
            assert seq == i
        history = contract.invoke(state, "get_history", {"handle": "h1"})
        assert [e["event"] for e in history] == ["received", "validated",
                                                 "stored"]

    def test_unknown_event_rejected(self, state):
        contract = ProvenanceContract()
        with pytest.raises(ValidationError):
            contract.invoke(state, "record_event",
                            {"handle": "h", "data_hash": "aa",
                             "event": "teleported", "actor": "svc"})

    def test_verify_hash_latest(self, state):
        contract = ProvenanceContract()
        contract.invoke(state, "record_event",
                        {"handle": "h", "data_hash": "old", "event": "received",
                         "actor": "a"})
        contract.invoke(state, "record_event",
                        {"handle": "h", "data_hash": "new", "event": "stored",
                         "actor": "a"})
        assert contract.invoke(state, "verify_hash",
                               {"handle": "h", "data_hash": "new"})
        assert not contract.invoke(state, "verify_hash",
                                   {"handle": "h", "data_hash": "old"})

    def test_unknown_method(self, state):
        with pytest.raises(LedgerError):
            ProvenanceContract().invoke(state, "explode", {})


class TestConsentContract:
    def test_grant_revoke_cycle(self, state):
        contract = ConsentContract()
        contract.invoke(state, "grant", {"patient_ref": "p", "group_id": "g",
                                         "granted_at": 1.0})
        assert contract.invoke(state, "is_active",
                               {"patient_ref": "p", "group_id": "g"})
        contract.invoke(state, "revoke", {"patient_ref": "p", "group_id": "g",
                                          "revoked_at": 2.0})
        assert not contract.invoke(state, "is_active",
                                   {"patient_ref": "p", "group_id": "g"})

    def test_revoke_without_grant_rejected(self, state):
        with pytest.raises(LedgerError):
            ConsentContract().invoke(state, "revoke",
                                     {"patient_ref": "p", "group_id": "g",
                                      "revoked_at": 1.0})

    def test_history_preserved(self, state):
        contract = ConsentContract()
        contract.invoke(state, "grant", {"patient_ref": "p", "group_id": "g",
                                         "granted_at": 1.0})
        contract.invoke(state, "revoke", {"patient_ref": "p", "group_id": "g",
                                          "revoked_at": 2.0})
        contract.invoke(state, "grant", {"patient_ref": "p", "group_id": "g",
                                         "granted_at": 3.0})
        history = contract.invoke(state, "history",
                                  {"patient_ref": "p", "group_id": "g"})
        assert [h["action"] for h in history] == ["grant", "revoke", "grant"]


class TestMalwareContract:
    def test_report_and_status(self, state):
        contract = MalwareContract()
        contract.invoke(state, "report",
                        {"record_id": "r1", "sender": "s1",
                         "signature_name": "eicar", "action": "dropped"})
        status = contract.invoke(state, "record_status", {"record_id": "r1"})
        assert status["action"] == "dropped"

    def test_risky_sender_threshold(self, state):
        contract = MalwareContract()
        for i in range(MalwareContract.RISK_THRESHOLD):
            assert not contract.invoke(state, "is_risky_sender",
                                       {"sender": "s1"})
            contract.invoke(state, "report",
                            {"record_id": f"r{i}", "sender": "s1",
                             "signature_name": "x", "action": "dropped"})
        assert contract.invoke(state, "is_risky_sender", {"sender": "s1"})

    def test_invalid_action(self, state):
        with pytest.raises(ValidationError):
            MalwareContract().invoke(state, "report",
                                     {"record_id": "r", "sender": "s",
                                      "signature_name": "x",
                                      "action": "quarantine-forever"})


class TestPrivacyContract:
    def test_record_level(self, state):
        contract = PrivacyContract()
        contract.invoke(state, "record_level",
                        {"record_id": "r1", "sender": "s1",
                         "degree": 0.92, "passed": True})
        level = contract.invoke(state, "record_level_of", {"record_id": "r1"})
        assert level["degree"] == 0.92

    def test_failures_flag_sender(self, state):
        contract = PrivacyContract()
        for i in range(PrivacyContract.RISK_THRESHOLD):
            contract.invoke(state, "record_level",
                            {"record_id": f"r{i}", "sender": "s1",
                             "degree": 0.1, "passed": False})
        assert contract.invoke(state, "is_risky_sender", {"sender": "s1"})

    def test_passing_records_do_not_flag(self, state):
        contract = PrivacyContract()
        for i in range(5):
            contract.invoke(state, "record_level",
                            {"record_id": f"r{i}", "sender": "s1",
                             "degree": 0.95, "passed": True})
        assert not contract.invoke(state, "is_risky_sender", {"sender": "s1"})
