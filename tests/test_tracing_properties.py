"""Property tests for the trace/log interaction.

Whatever sequence of traced gateway dispatches runs — successes,
handler crashes, unknown routes, rate-limited bursts — the audit log's
hash chain must verify, every trace must seal and verify, and every
trace id the monitoring layer recorded (log attributes, exemplars) must
resolve to a stored trace.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st

from repro.cloudsim.clock import SimClock
from repro.cloudsim.monitoring import MonitoringService
from repro.cloudsim.tracing import Tracer
from repro.core.api import ApiGateway, ApiRequest, RouteSpec
from repro.rbac.engine import RbacEngine
from repro.rbac.federation import (
    ExternalIdentityProvider,
    FederatedIdentityService,
)
from repro.rbac.model import Action, Permission, Scope, ScopeKind

# One op per dispatch: a clean 200, a handler crash (500), an unknown
# route (404), or an op that also advances simulated time first.
OPS = st.lists(
    st.sampled_from(["ok", "boom", "missing", "slow-ok"]),
    min_size=1, max_size=12)


def build_world(rate_limit):
    clock = SimClock()
    monitoring = MonitoringService(clock)
    tracer = Tracer(clock)

    rbac = RbacEngine()
    tenant = rbac.create_tenant("acme")
    org = rbac.create_organization(tenant.tenant_id, "org")
    env = rbac.create_environment(org.org_id, "prod")
    user = rbac.register_user(tenant.tenant_id, "alice")
    scope = Scope(ScopeKind.ORGANIZATION, org.org_id)
    rbac.define_role("reader", [Permission(Action.READ, "records", scope)])
    rbac.bind_role(user.user_id, org.org_id, env.env_id, "reader")

    federation = FederatedIdentityService(rbac, clock)
    idp = ExternalIdentityProvider("idp", b"idp-secret-key-01", clock)
    federation.approve_idp("idp", b"idp-secret-key-01")
    federation.link_identity("idp", "alice@acme", user.user_id)

    gateway = ApiGateway(rbac, federation, monitoring=monitoring,
                         clock=clock, rate_limit=rate_limit,
                         rate_window_s=60.0, tracer=tracer)

    def boom_handler(context, **kw):
        raise RuntimeError("handler exploded "
                           "(ssn 123-45-6789 must never reach the log)")

    gateway.register_route(RouteSpec(
        path="/echo", handler=lambda context, **kw: {"ok": True},
        action=Action.READ, resource_type="records",
        scope_kind=ScopeKind.ORGANIZATION))
    gateway.register_route(RouteSpec(
        path="/boom", handler=boom_handler,
        action=Action.READ, resource_type="records",
        scope_kind=ScopeKind.ORGANIZATION))

    return clock, monitoring, tracer, gateway, idp, org, env


@settings(max_examples=30, deadline=None)
@given(ops=OPS, rate_limit=st.integers(min_value=1, max_value=4))
def test_any_dispatch_sequence_keeps_logs_and_traces_consistent(
        ops, rate_limit):
    clock, monitoring, tracer, gateway, idp, org, env = build_world(
        rate_limit)

    statuses = []
    for op in ops:
        if op == "slow-ok":
            clock.advance(0.25)
        path = {"ok": "/echo", "slow-ok": "/echo",
                "boom": "/boom", "missing": "/nowhere"}[op]
        response = gateway.dispatch(ApiRequest(
            path=path, token=idp.issue_token("alice@acme"),
            scope_entity_id=org.org_id, org_id=org.org_id,
            env_id=env.env_id))
        statuses.append(response.status)

    # Every dispatch produced exactly one finished, verifiable trace.
    assert len(tracer.trace_ids()) == len(ops)
    for tid in tracer.trace_ids():
        assert tracer.verify_trace(tid)
        root = tracer.get_trace(tid)
        assert root.name == "api.dispatch"
        assert root.finished

    # The audit log chain survived errors and rate-limiting, and every
    # trace id it recorded resolves.
    assert monitoring.logs.verify_chain()
    for entry in monitoring.logs.entries(stream="api"):
        trace_id = entry.attributes.get("trace")
        if trace_id is not None:
            assert tracer.has_trace(trace_id)
        assert "123-45-6789" not in entry.message   # PHI scrubbed

    # The latency exemplar (if any sample carried a trace id) resolves.
    exemplar = monitoring.metrics.exemplar("api.latency")
    assert exemplar is not None
    assert tracer.has_trace(exemplar["trace_id"])

    # Rate limiting maps to 429s, never to lost traces or broken chains.
    # Unknown routes 404 before the limiter, so only resolved requests
    # spend window slots; everything past the limit is 429.
    resolved = len([op for op in ops if op != "missing"])
    assert statuses.count(429) == max(0, resolved - rate_limit)
