"""Tests for the simulated clock and event scheduler."""

import pytest

from repro.cloudsim.clock import EventScheduler, SimClock


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_custom_start(self):
        assert SimClock(5.0).now == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimClock(-1.0)

    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now == 2.0

    def test_advance_negative_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-0.1)

    def test_advance_to_future(self):
        clock = SimClock()
        clock.advance_to(10.0)
        assert clock.now == 10.0

    def test_advance_to_past_is_noop(self):
        clock = SimClock(10.0)
        clock.advance_to(5.0)
        assert clock.now == 10.0


class TestEventScheduler:
    def test_events_run_in_time_order(self):
        scheduler = EventScheduler()
        order = []
        scheduler.schedule(3.0, lambda: order.append("c"))
        scheduler.schedule(1.0, lambda: order.append("a"))
        scheduler.schedule(2.0, lambda: order.append("b"))
        scheduler.run_all()
        assert order == ["a", "b", "c"]

    def test_run_until_horizon(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.schedule(1.0, lambda: fired.append(1))
        scheduler.schedule(5.0, lambda: fired.append(2))
        executed = scheduler.run_until(2.0)
        assert executed == 1
        assert fired == [1]
        assert scheduler.clock.now == 2.0

    def test_clock_advances_to_event_time(self):
        scheduler = EventScheduler()
        seen = []
        scheduler.schedule(4.2, lambda: seen.append(scheduler.clock.now))
        scheduler.run_all()
        assert seen == [4.2]

    def test_cancel(self):
        scheduler = EventScheduler()
        fired = []
        event = scheduler.schedule(1.0, lambda: fired.append(1))
        scheduler.cancel(event)
        scheduler.run_all()
        assert fired == []

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            EventScheduler().schedule(-1.0, lambda: None)

    def test_event_can_schedule_followup(self):
        scheduler = EventScheduler()
        fired = []

        def first():
            fired.append("first")
            scheduler.schedule(1.0, lambda: fired.append("second"))

        scheduler.schedule(1.0, first)
        scheduler.run_all()
        assert fired == ["first", "second"]
        assert scheduler.clock.now == 2.0

    def test_runaway_cascade_guard(self):
        scheduler = EventScheduler()

        def rearm():
            scheduler.schedule(0.1, rearm)

        scheduler.schedule(0.1, rearm)
        with pytest.raises(RuntimeError):
            scheduler.run_all(max_events=100)

    def test_pending_counts_uncancelled(self):
        scheduler = EventScheduler()
        event = scheduler.schedule(1.0, lambda: None)
        scheduler.schedule(2.0, lambda: None)
        scheduler.cancel(event)
        assert scheduler.pending() == 1
