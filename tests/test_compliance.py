"""Tests for HIPAA controls, change management, audit, and GDPR."""

import pytest

from repro import HealthCloudPlatform
from repro.cloudsim.monitoring import MonitoringService
from repro.compliance.change import ChangeManagementService, ChangeState
from repro.compliance.hipaa import (
    Control,
    ControlStatus,
    HipaaControlRegistry,
    Pillar,
)
from repro.core.errors import ChangeManagementError, ComplianceError
from repro.compliance.audit import AuditService
from repro.trusted.attestation import AttestationService
from repro.trusted.tpm import Tpm


class TestHipaaControls:
    def test_standard_set_loaded(self):
        registry = HipaaControlRegistry()
        assert len(registry.controls()) >= 14
        assert registry.controls(pillar=Pillar.TECHNICAL)

    def test_coverage_math(self):
        registry = HipaaControlRegistry()
        assert registry.coverage() == 0.0
        registry.mark_implemented("164.312-audit", "repro.compliance")
        assert 0.0 < registry.coverage() < 1.0

    def test_gdpr_filter(self):
        registry = HipaaControlRegistry()
        gdpr = registry.controls(regulation="GDPR")
        assert all(c.regulation == "GDPR" for c in gdpr)
        assert len(gdpr) == 3

    def test_verify_requires_implementation(self):
        registry = HipaaControlRegistry()
        with pytest.raises(ComplianceError):
            registry.mark_verified("164.312-audit")
        registry.mark_implemented("164.312-audit", "x")
        assert registry.mark_verified(
            "164.312-audit").status is ControlStatus.VERIFIED

    def test_gaps(self):
        registry = HipaaControlRegistry()
        registry.mark_implemented("164.312-audit", "x")
        gaps = registry.gaps()
        assert all(c.status is ControlStatus.NOT_IMPLEMENTED for c in gaps)
        assert "164.312-audit" not in [c.control_id for c in gaps]

    def test_report_shape(self):
        registry = HipaaControlRegistry()
        registry.mark_implemented("164.312-audit", "x")
        report = registry.report()
        assert "technical" in report
        assert report["technical"]["implemented"] == 1

    def test_duplicate_control_rejected(self):
        registry = HipaaControlRegistry()
        with pytest.raises(ComplianceError):
            registry.add_control(Control("164.312-audit", Pillar.TECHNICAL,
                                         "dup"))

    def test_platform_marks_implemented_controls(self):
        platform = HealthCloudPlatform(seed=3, use_blockchain=False)
        assert platform.controls.coverage() > 0.5


class TestChangeManagement:
    @pytest.fixture
    def cm(self):
        attestation = AttestationService(seed=60)
        return ChangeManagementService(attestation), attestation

    def test_full_workflow(self, cm):
        service, attestation = cm
        tpm = Tpm("tpm:svc", seed=61)
        tpm.extend(2, "hypervisor", "aa" * 32)
        attestation.enroll_platform(tpm)
        attestation.set_golden_values(tpm.tpm_id, {2: tpm.read_pcr(2)})
        assert attestation.attest(tpm, (2,)).trusted

        change = service.describe("tpm:svc", "upgrade hypervisor to v5",
                                  requested_by="dev1")
        service.evaluate(change.change_id, "low risk, tested in staging")
        service.approve(change.change_id, approver="sec-officer")
        service.apply_platform_change(change.change_id, tpm, 2,
                                      "hypervisor-v5", "bb" * 32,
                                      golden_pcrs=[2])
        # Post-change the platform still attests (goldens were refreshed).
        assert attestation.attest(tpm, (2,)).trusted
        assert change.state is ChangeState.APPLIED

    def test_unapproved_change_breaks_attestation(self, cm):
        service, attestation = cm
        tpm = Tpm("tpm:svc", seed=62)
        tpm.extend(2, "hypervisor", "aa" * 32)
        attestation.enroll_platform(tpm)
        attestation.set_golden_values(tpm.tpm_id, {2: tpm.read_pcr(2)})
        # Rogue upgrade without a change record:
        tpm.extend(2, "hypervisor-v5", "bb" * 32)
        assert not attestation.attest(tpm, (2,)).trusted

    def test_cannot_apply_without_approval(self, cm):
        service, _ = cm
        tpm = Tpm("tpm:svc", seed=63)
        change = service.describe("tpm:svc", "x", "dev1")
        with pytest.raises(ChangeManagementError):
            service.apply_platform_change(change.change_id, tpm, 2,
                                          "c", "aa" * 32, [2])
        service.evaluate(change.change_id, "ok")
        with pytest.raises(ChangeManagementError):
            service.apply_platform_change(change.change_id, tpm, 2,
                                          "c", "aa" * 32, [2])

    def test_separation_of_duties(self, cm):
        service, _ = cm
        change = service.describe("svc", "x", requested_by="dev1")
        service.evaluate(change.change_id, "ok")
        with pytest.raises(ChangeManagementError):
            service.approve(change.change_id, approver="dev1")

    def test_rejection(self, cm):
        service, _ = cm
        change = service.describe("svc", "x", "dev1")
        service.evaluate(change.change_id, "too risky")
        service.reject(change.change_id, "sec-officer")
        assert change.state is ChangeState.REJECTED

    def test_pending_listing(self, cm):
        service, _ = cm
        service.describe("svc", "a", "dev1")
        change = service.describe("svc", "b", "dev1")
        service.evaluate(change.change_id, "ok")
        assert len(service.pending()) == 2


class TestAuditService:
    def test_clean_audit(self):
        platform = HealthCloudPlatform(seed=5)
        platform.monitoring.log("ingest", "something happened")
        report = platform.audit.run_audit()
        assert report.clean
        assert report.log_chain_valid
        assert report.ledger_valid in (True, None)

    def test_log_tamper_flagged(self):
        platform = HealthCloudPlatform(seed=5, use_blockchain=False)
        platform.monitoring.log("ingest", "original")
        import dataclasses
        store = platform.monitoring.logs
        store._entries[0] = dataclasses.replace(store._entries[0],
                                                message="forged")
        report = platform.audit.run_audit()
        assert not report.clean
        assert not report.log_chain_valid

    def test_denial_spike_flagged(self):
        platform = HealthCloudPlatform(seed=5, use_blockchain=False)
        context = platform.register_tenant("t")
        user = platform.rbac.register_user(context.tenant.tenant_id, "probe")
        from repro.rbac.model import Action, Scope, ScopeKind
        scope = Scope(ScopeKind.ORGANIZATION, context.default_org.org_id)
        for _ in range(10):
            platform.rbac.check(user.user_id, Action.READ, "phi", scope,
                                context.default_org.org_id,
                                context.default_env.env_id)
        report = platform.audit.run_audit(denial_ratio_threshold=0.5)
        assert any("probing" in f for f in report.findings)

    def test_log_search(self):
        monitoring = MonitoringService()
        monitoring.log("ingest", "job rejected: malware", level="WARN")
        monitoring.log("ingest", "job stored")
        audit = AuditService(monitoring)
        assert len(audit.search_logs(contains="malware")) == 1
        assert len(audit.search_logs(level="WARN")) == 1


class TestGdpr:
    @pytest.fixture
    def ingested(self):
        from repro.fhir.resources import Bundle, Patient
        from repro.ingestion.pipeline import encrypt_bundle_for_upload
        platform = HealthCloudPlatform(seed=9)
        context = platform.register_tenant("t")
        group = platform.rbac.create_group(context.tenant.tenant_id, "study")
        registration = platform.ingestion.register_client("c1")
        platform.consent.grant("pt-1", group.group_id)
        bundle = Bundle(id="b").add(
            Patient(id="pt-1", name={"family": "Doe"},
                    birthDate="1980-01-02", gender="female"))
        job = platform.ingestion.upload(
            "c1", encrypt_bundle_for_upload(bundle, registration),
            group.group_id)
        platform.run_ingestion()
        return platform, job

    def test_erasure_receipt(self, ingested):
        platform, job = ingested
        receipt = platform.gdpr.erase_subject("pt-1")
        assert receipt.consents_revoked == 1
        assert receipt.record_versions_destroyed == 2
        assert receipt.provenance_recorded

    def test_data_unreadable_after_erasure(self, ingested):
        platform, job = ingested
        platform.gdpr.erase_subject("pt-1")
        from repro.core.errors import KeyManagementError
        with pytest.raises(KeyManagementError):
            platform.datalake.retrieve(job.stored_record_ids[0])

    def test_subject_access_report(self, ingested):
        platform, _ = ingested
        report = platform.gdpr.subject_access("pt-1")
        assert len(report.stored_records) == 2
        assert len(report.consents) == 1
        assert report.patient_ref.startswith("ref-")

    def test_erasure_visible_in_provenance(self, ingested):
        platform, _ = ingested
        platform.gdpr.erase_subject("pt-1")
        report = platform.gdpr.subject_access("pt-1")
        assert [e["event"] for e in report.provenance_events] == ["deleted"]
