"""Shared fixtures.

Expensive artifacts (the synthetic universe, similarity matrices, the EMR
cohort, RSA keypairs) are session-scoped so the suite stays fast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analytics.similarity import (
    DiseaseSimilarityBuilder,
    DrugSimilarityBuilder,
)
from repro.crypto.rsa import generate_keypair
from repro.knowledge.synthetic import generate_universe
from repro.workloads.emr import generate_emr_cohort


@pytest.fixture(scope="session")
def rsa_keypair():
    """A deterministic 1024-bit keypair shared across crypto tests."""
    return generate_keypair(bits=1024, seed=12345)


@pytest.fixture(scope="session")
def small_rsa_keypair():
    """A fast 512-bit keypair for tests that only need roundtrips."""
    return generate_keypair(bits=512, seed=999)


@pytest.fixture(scope="session")
def universe():
    """A small synthetic biomedical universe."""
    return generate_universe(n_drugs=80, n_diseases=60, n_genes=100,
                             n_abstracts=200, seed=7)


@pytest.fixture(scope="session")
def drug_similarities(universe):
    return DrugSimilarityBuilder(universe).all_sources()


@pytest.fixture(scope="session")
def disease_similarities(universe):
    return DiseaseSimilarityBuilder(universe).all_sources()


@pytest.fixture(scope="session")
def emr_cohort():
    """A confounded EMR cohort with planted effects."""
    return generate_emr_cohort(n_patients=200, n_drugs=24, n_lowering=4,
                               seed=21)


@pytest.fixture(scope="session")
def clean_emr_cohort():
    """The same cohort shape without confounders."""
    return generate_emr_cohort(n_patients=200, n_drugs=24, n_lowering=4,
                               seed=21, confounders=False)
