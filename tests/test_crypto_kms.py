"""Tests for the key management system."""

import pytest

from repro.core.errors import (
    AuthorizationError,
    KeyManagementError,
    NotFoundError,
)
from repro.crypto.kms import KeyManagementService, KeyState, KmsFleet


@pytest.fixture
def kms():
    return KeyManagementService("tenant-a", seed=5)


class TestKeyLifecycle:
    def test_create_and_describe(self, kms):
        key_id = kms.create_key("phi")
        state, version, purpose = kms.describe_key(key_id)
        assert state is KeyState.ENABLED
        assert version == 1
        assert purpose == "phi"

    def test_unknown_key(self, kms):
        with pytest.raises(NotFoundError):
            kms.describe_key("key-nope")

    def test_disable_blocks_use(self, kms):
        key_id = kms.create_key("phi")
        kms.disable_key(key_id)
        with pytest.raises(KeyManagementError):
            kms.generate_data_key(key_id, "svc")

    def test_enable_restores(self, kms):
        key_id = kms.create_key("phi")
        kms.disable_key(key_id)
        kms.enable_key(key_id)
        assert kms.generate_data_key(key_id, "svc").plaintext

    def test_destroyed_key_cannot_be_enabled(self, kms):
        key_id = kms.create_key("phi")
        kms.destroy_key(key_id)
        with pytest.raises(KeyManagementError):
            kms.enable_key(key_id)

    def test_keys_for_purpose_excludes_destroyed(self, kms):
        keep = kms.create_key("phi")
        gone = kms.create_key("phi")
        kms.destroy_key(gone)
        assert kms.keys_for_purpose("phi") == [keep]


class TestEnvelope:
    def test_data_key_roundtrip(self, kms):
        key_id = kms.create_key("phi")
        data_key = kms.generate_data_key(key_id, "svc")
        recovered = kms.unwrap_data_key(key_id, data_key.wrapped, "svc")
        assert recovered == data_key.plaintext

    def test_data_keys_unique(self, kms):
        key_id = kms.create_key("phi")
        k1 = kms.generate_data_key(key_id, "svc")
        k2 = kms.generate_data_key(key_id, "svc")
        assert k1.plaintext != k2.plaintext

    def test_rotation_keeps_old_versions_unwrappable(self, kms):
        key_id = kms.create_key("phi")
        old = kms.generate_data_key(key_id, "svc")
        new_version = kms.rotate_key(key_id)
        assert new_version == 2
        recovered = kms.unwrap_data_key(key_id, old.wrapped, "svc",
                                        key_version=old.key_version)
        assert recovered == old.plaintext

    def test_rotation_changes_wrapping(self, kms):
        key_id = kms.create_key("phi")
        old = kms.generate_data_key(key_id, "svc")
        kms.rotate_key(key_id)
        new = kms.generate_data_key(key_id, "svc")
        assert new.key_version == 2
        assert old.key_version == 1

    def test_missing_version_rejected(self, kms):
        key_id = kms.create_key("phi")
        data_key = kms.generate_data_key(key_id, "svc")
        with pytest.raises(KeyManagementError):
            kms.unwrap_data_key(key_id, data_key.wrapped, "svc",
                                key_version=9)


class TestCryptoDeletion:
    def test_destroy_makes_unwrap_impossible(self, kms):
        key_id = kms.create_key("phi")
        data_key = kms.generate_data_key(key_id, "svc")
        kms.destroy_key(key_id)
        with pytest.raises(KeyManagementError):
            kms.unwrap_data_key(key_id, data_key.wrapped, "svc")

    def test_destroy_erases_all_versions(self, kms):
        key_id = kms.create_key("phi")
        old = kms.generate_data_key(key_id, "svc")
        kms.rotate_key(key_id)
        kms.destroy_key(key_id)
        with pytest.raises(KeyManagementError):
            kms.unwrap_data_key(key_id, old.wrapped, "svc",
                                key_version=old.key_version)


class TestAccessControl:
    def test_principal_allowlist_enforced(self, kms):
        key_id = kms.create_key("phi", allowed_principals={"lake"})
        assert kms.generate_data_key(key_id, "lake")
        with pytest.raises(AuthorizationError):
            kms.generate_data_key(key_id, "intruder")

    def test_grant_and_revoke(self, kms):
        key_id = kms.create_key("phi", allowed_principals={"lake"})
        kms.grant(key_id, "analytics")
        assert kms.generate_data_key(key_id, "analytics")
        kms.revoke(key_id, "analytics")
        with pytest.raises(AuthorizationError):
            kms.generate_data_key(key_id, "analytics")

    def test_empty_allowlist_is_open(self, kms):
        key_id = kms.create_key("phi")
        assert kms.generate_data_key(key_id, "anyone")


class TestKmsFleet:
    def test_one_instance_per_tenant(self):
        fleet = KmsFleet(seed=1)
        a = fleet.for_tenant("tenant-a")
        assert fleet.for_tenant("tenant-a") is a
        assert fleet.for_tenant("tenant-b") is not a
        assert fleet.tenants() == ["tenant-a", "tenant-b"]

    def test_tenant_isolation(self):
        fleet = KmsFleet(seed=2)
        kms_a = fleet.for_tenant("a")
        kms_b = fleet.for_tenant("b")
        key_a = kms_a.create_key("phi")
        # B's KMS cannot resolve A's key id at all.
        with pytest.raises(NotFoundError):
            kms_b.describe_key(key_a)

    def test_key_material_differs_across_tenants(self):
        fleet = KmsFleet(seed=3)
        key_a = fleet.for_tenant("a").create_key("phi")
        key_b = fleet.for_tenant("b").create_key("phi")
        data_a = fleet.for_tenant("a").generate_data_key(key_a, "svc")
        data_b = fleet.for_tenant("b").generate_data_key(key_b, "svc")
        assert data_a.plaintext != data_b.plaintext

    def test_offboarding_destroys_only_that_tenant(self):
        fleet = KmsFleet(seed=4)
        kms_a = fleet.for_tenant("a")
        kms_b = fleet.for_tenant("b")
        key_a = kms_a.create_key("phi")
        data_a = kms_a.generate_data_key(key_a, "svc")
        key_b = kms_b.create_key("phi")
        data_b = kms_b.generate_data_key(key_b, "svc")
        assert fleet.offboard_tenant("a") == 1
        with pytest.raises(KeyManagementError):
            kms_a.unwrap_data_key(key_a, data_a.wrapped, "svc")
        # Tenant B is untouched.
        assert kms_b.unwrap_data_key(key_b, data_b.wrapped,
                                     "svc") == data_b.plaintext

    def test_offboard_unknown_tenant(self):
        assert KmsFleet().offboard_tenant("ghost") == 0
