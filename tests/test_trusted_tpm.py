"""Tests for the software TPM: PCRs, quotes, seal/unseal."""

import pytest

from repro.core.errors import AttestationError
from repro.trusted.tpm import PCR_COUNT, Quote, Tpm, verify_quote


@pytest.fixture
def tpm():
    return Tpm("tpm:test", seed=1)


MEASUREMENT = "ab" * 32
OTHER = "cd" * 32


class TestPcrs:
    def test_pcrs_start_zero(self, tpm):
        assert tpm.read_pcr(0) == "00" * 32

    def test_extend_changes_pcr(self, tpm):
        before = tpm.read_pcr(0)
        tpm.extend(0, "bios", MEASUREMENT)
        assert tpm.read_pcr(0) != before

    def test_extend_order_matters(self):
        t1, t2 = Tpm("a", seed=1), Tpm("b", seed=1)
        t1.extend(0, "x", MEASUREMENT)
        t1.extend(0, "y", OTHER)
        t2.extend(0, "y", OTHER)
        t2.extend(0, "x", MEASUREMENT)
        assert t1.read_pcr(0) != t2.read_pcr(0)

    def test_same_extends_same_pcr(self):
        t1, t2 = Tpm("a", seed=1), Tpm("b", seed=2)
        t1.extend(3, "x", MEASUREMENT)
        t2.extend(3, "x", MEASUREMENT)
        assert t1.read_pcr(3) == t2.read_pcr(3)

    def test_event_log_records(self, tpm):
        tpm.extend(0, "bios", MEASUREMENT)
        tpm.extend(1, "kernel", OTHER)
        log = tpm.event_log
        assert [e.component for e in log] == ["bios", "kernel"]

    def test_reset_clears(self, tpm):
        tpm.extend(0, "bios", MEASUREMENT)
        tpm.reset()
        assert tpm.read_pcr(0) == "00" * 32
        assert tpm.event_log == []

    def test_index_bounds(self, tpm):
        with pytest.raises(IndexError):
            tpm.read_pcr(PCR_COUNT)
        with pytest.raises(IndexError):
            tpm.extend(-1, "x", MEASUREMENT)


class TestQuotes:
    def test_quote_verifies(self, tpm):
        tpm.extend(0, "bios", MEASUREMENT)
        nonce = b"fresh-nonce-0001"
        quote = tpm.quote(nonce, (0, 1))
        assert verify_quote(tpm.attestation_public_key, quote, nonce)

    def test_replayed_nonce_rejected(self, tpm):
        quote = tpm.quote(b"nonce-a", (0,))
        assert not verify_quote(tpm.attestation_public_key, quote, b"nonce-b")

    def test_forged_pcr_rejected(self, tpm):
        nonce = b"nonce"
        quote = tpm.quote(nonce, (0,))
        forged = Quote(quote.tpm_id, quote.nonce,
                       {0: "ff" * 32}, quote.event_count, quote.signature)
        assert not verify_quote(tpm.attestation_public_key, forged, nonce)

    def test_other_tpm_key_rejected(self, tpm):
        other = Tpm("tpm:other", seed=2)
        nonce = b"nonce"
        quote = tpm.quote(nonce, (0,))
        assert not verify_quote(other.attestation_public_key, quote, nonce)

    def test_quote_covers_selected_pcrs(self, tpm):
        tpm.extend(5, "x", MEASUREMENT)
        quote = tpm.quote(b"n", (0, 5))
        assert set(quote.pcr_values) == {0, 5}


class TestSealedStorage:
    def test_seal_unseal_roundtrip(self, tpm):
        tpm.extend(0, "bios", MEASUREMENT)
        blob = tpm.seal(b"disk encryption key", (0,))
        assert tpm.unseal(blob) == b"disk encryption key"

    def test_unseal_fails_after_pcr_change(self, tpm):
        tpm.extend(0, "bios", MEASUREMENT)
        blob = tpm.seal(b"secret", (0,))
        tpm.extend(0, "rootkit", OTHER)
        with pytest.raises(AttestationError):
            tpm.unseal(blob)

    def test_unrelated_pcr_change_ok(self, tpm):
        tpm.extend(0, "bios", MEASUREMENT)
        blob = tpm.seal(b"secret", (0,))
        tpm.extend(7, "other", OTHER)
        assert tpm.unseal(blob) == b"secret"
