"""Workload generators: synthetic EMR cohorts and cache access traces."""

from .emr import EmrCohort, cohort_to_tabular, generate_emr_cohort
from .traces import (
    looping_trace,
    mixed_read_write_trace,
    shifting_trace,
    zipf_trace,
    zipf_with_scans_trace,
)

__all__ = [
    "EmrCohort",
    "cohort_to_tabular",
    "generate_emr_cohort",
    "looping_trace",
    "mixed_read_write_trace",
    "shifting_trace",
    "zipf_trace",
    "zipf_with_scans_trace",
]
