"""Access traces for the caching experiments (E3, A1).

Three canonical trace shapes, each stressing a different policy:

* **Zipf** — skewed popularity (web/KB access); LRU and LFU both do well,
  LFU slightly better at small caches.
* **Looping** — a sequential scan longer than the cache; LRU's worst case.
* **Shifting** — Zipf whose popular set moves over time; punishes LFU's
  stale frequency counts.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

import numpy as np


def zipf_trace(n_items: int, length: int, skew: float = 1.0,
               seed: int = 0) -> List[int]:
    """Zipf-distributed accesses over ``n_items`` keys."""
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, n_items + 1, dtype=float)
    weights = ranks ** (-skew)
    probabilities = weights / weights.sum()
    return rng.choice(n_items, size=length, p=probabilities).tolist()


def looping_trace(n_items: int, length: int) -> List[int]:
    """Sequential scan repeated until ``length`` accesses."""
    return [i % n_items for i in range(length)]


def shifting_trace(n_items: int, length: int, phases: int = 4,
                   skew: float = 1.0, seed: int = 0) -> List[int]:
    """Zipf trace whose popularity ranking rotates each phase."""
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, n_items + 1, dtype=float)
    weights = ranks ** (-skew)
    probabilities = weights / weights.sum()
    phase_length = max(1, -(-length // phases))  # ceil division
    trace: List[int] = []
    permutation = np.arange(n_items)
    for phase in range(phases):
        rng.shuffle(permutation)
        draws = rng.choice(n_items, size=phase_length, p=probabilities)
        trace.extend(int(permutation[d]) for d in draws)
    return trace[:length]


def zipf_with_scans_trace(n_items: int, length: int, skew: float = 1.0,
                          scan_every: int = 1000, scan_length: int = 300,
                          seed: int = 0) -> List[int]:
    """Zipf traffic interrupted by periodic one-shot scans of cold keys.

    The classic cache-pollution workload: scans (reports, backups, batch
    exports) touch long runs of never-reused keys.  Recency-only policies
    evict the hot set; 2Q's probation queue and LFU's frequency counts
    absorb the scan.  Cold keys are offset by ``n_items`` so they never
    collide with the hot set.
    """
    base = zipf_trace(n_items, length, skew=skew, seed=seed)
    trace: List[int] = []
    cold = n_items
    for i, key in enumerate(base):
        trace.append(key)
        if i > 0 and i % scan_every == 0:
            trace.extend(range(cold, cold + scan_length))
            cold += scan_length
    return trace


def mixed_read_write_trace(n_items: int, length: int,
                           write_fraction: float = 0.1, skew: float = 1.0,
                           seed: int = 0) -> List[tuple]:
    """(op, key) trace for the consistency experiments."""
    rng = np.random.default_rng(seed)
    keys = zipf_trace(n_items, length, skew=skew, seed=seed)
    ops = []
    for key in keys:
        op = "write" if rng.random() < write_fraction else "read"
        ops.append((op, key))
    return ops
