"""Synthetic EMR generator (substitute for Explorys/Truven, Section V-B1).

The paper's RWE data — Explorys SuperMart (50M patients) and Truven
MarketScan — is proprietary.  This generator produces longitudinal lab
histories with exactly the phenomena DELT models and its baseline trips
over:

* patient-specific baselines ``alpha_i`` ("patients in EMRs have extremely
  diverse HbA1c level profiles");
* aging/comorbidity confounders: a per-patient linear drift plus optional
  step changes (diagnosis events) in the lab trajectory;
* **joint exposures**: drug prescriptions are correlated (co-medication),
  so marginal methods mis-attribute effects;
* a known subset of drugs with planted lab-lowering effects — the ground
  truth E9 scores recovery against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..analytics.delt import PatientSeries


@dataclass
class EmrCohort:
    """A generated cohort plus its hidden ground truth."""

    patients: List[PatientSeries]
    true_effects: np.ndarray          # per-drug effect on the lab value
    drug_names: List[str]
    confounders_enabled: bool

    @property
    def n_drugs(self) -> int:
        return len(self.drug_names)


def generate_emr_cohort(n_patients: int = 500, n_drugs: int = 40,
                        n_lowering: int = 6, effect_size: float = -0.8,
                        measurements_per_patient: Tuple[int, int] = (8, 20),
                        observation_days: float = 1460.0,
                        baseline_range: Tuple[float, float] = (5.0, 9.0),
                        confounders: bool = True,
                        comedication_strength: float = 0.5,
                        noise_sd: float = 0.25,
                        seed: int = 0) -> EmrCohort:
    """Generate a cohort of HbA1c-like lab series with planted drug effects.

    ``n_lowering`` drugs receive effect ``effect_size`` (lab-lowering);
    two additional drugs receive a *raising* effect of ``-effect_size/2``
    so sign recovery is also exercised.  With ``confounders`` on, patients
    get individual aging drift and mid-observation comorbidity shocks, and
    prescriptions are correlated through a latent "sickness" factor that
    also raises the lab value — the classic confounding-by-indication trap
    for marginal methods.
    """
    rng = np.random.default_rng(seed)
    true_effects = np.zeros(n_drugs)
    n_lowering = min(n_lowering, max(1, n_drugs - 2))
    lowering = rng.choice(n_drugs, size=n_lowering, replace=False)
    true_effects[lowering] = effect_size
    remaining = [d for d in range(n_drugs) if d not in set(lowering.tolist())]
    raising = rng.choice(remaining, size=min(2, len(remaining)), replace=False)
    true_effects[raising] = -effect_size / 2.0

    # Base prescription propensity per drug (some drugs are common).
    prevalence = rng.uniform(0.05, 0.30, size=n_drugs)

    patients: List[PatientSeries] = []
    for i in range(n_patients):
        m = int(rng.integers(measurements_per_patient[0],
                             measurements_per_patient[1] + 1))
        times = np.sort(rng.uniform(0.0, observation_days, size=m))
        alpha = rng.uniform(*baseline_range)

        sickness = rng.uniform(0.0, 1.0)  # latent severity
        drift = (rng.normal(loc=0.0008 * sickness, scale=0.0003)
                 if confounders else 0.0)
        shock_time = rng.uniform(0.2, 0.8) * observation_days
        shock = (rng.choice([0.0, rng.uniform(0.2, 0.6)], p=[0.6, 0.4])
                 if confounders else 0.0)

        # Exposure windows: each prescribed drug covers a random interval.
        exposures = np.zeros((m, n_drugs))
        # Sickness-driven co-medication: sicker patients take more drugs,
        # and co-medication clusters pair drugs together.
        take_probability = prevalence * (1.0 + (comedication_strength
                                                * sickness * 2.0
                                                if confounders else 0.0))
        taken = rng.random(n_drugs) < np.clip(take_probability, 0.0, 0.9)
        # Co-medication clusters: taking drug 2k pulls in drug 2k+1 — the
        # joint-exposure trap for marginal methods (an effect drug's
        # cluster partner inherits its apparent effect marginally).
        if confounders:
            for d in range(0, n_drugs - 1, 2):
                if taken[d] and rng.random() < comedication_strength:
                    taken[d + 1] = True
                elif taken[d + 1] and rng.random() < comedication_strength:
                    taken[d] = True
        for d in np.nonzero(taken)[0]:
            if confounders:
                # Prescriptions start late in the record (conditions are
                # diagnosed as patients age), so exposed measurements are
                # also drift-inflated — the time-varying-baseline trap.
                start = rng.uniform(0.35, 0.7) * observation_days
            else:
                start = rng.uniform(0.0, observation_days * 0.7)
            duration = rng.uniform(observation_days * 0.2,
                                   observation_days * 0.6)
            window = (times >= start) & (times <= start + duration)
            exposures[window, d] = 1.0

        values = alpha + exposures @ true_effects
        values = values + drift * times
        if confounders:
            values = values + shock * (times >= shock_time)
            values = values + 0.5 * sickness  # severity raises the lab value
        values = values + rng.normal(scale=noise_sd, size=m)
        patients.append(PatientSeries(
            patient_id=f"pt-{i:05d}", times=times, values=values,
            exposures=exposures))

    drug_names = [f"drug-{d:03d}" for d in range(n_drugs)]
    return EmrCohort(patients=patients, true_effects=true_effects,
                     drug_names=drug_names, confounders_enabled=confounders)


def cohort_to_tabular(cohort: EmrCohort,
                      rng: Optional[np.random.Generator] = None
                      ) -> List[Dict[str, object]]:
    """Flatten a cohort into demographic rows for the privacy experiments.

    Ages/zips/diagnoses are synthesised per patient so the A2 ablation has
    quasi-identifiers to generalize.
    """
    rng = rng if rng is not None else np.random.default_rng(1234)
    rows: List[Dict[str, object]] = []
    for idx, patient in enumerate(cohort.patients):
        rows.append({
            "patient_id": patient.patient_id,
            "age": int(rng.integers(18, 95)),
            "zip": f"{int(rng.integers(10000, 10050)):05d}",
            "gender": "female" if rng.random() < 0.5 else "male",
            "mean_lab": float(patient.values.mean()),
            "n_drugs": int((patient.exposures.max(axis=0) > 0).sum()),
        })
    return rows
