"""Intercloud secure gateway: trusted containers and workload transfer."""

from .containers import (
    AnalyticsContainer,
    ContainerManifest,
    TRUSTED_LIBRARIES,
    TrustedAuthoringEnvironment,
    verify_container,
)
from .transfer import CloudInstance, ExecutionReport, IntercloudGateway

__all__ = [
    "AnalyticsContainer",
    "ContainerManifest",
    "TRUSTED_LIBRARIES",
    "TrustedAuthoringEnvironment",
    "verify_container",
    "CloudInstance",
    "ExecutionReport",
    "IntercloudGateway",
]
