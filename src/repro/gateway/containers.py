"""Trusted analytics containers (Section II-C).

"Our design of extending the root of trust to the level of containers
allows transfer of trusted analytic workloads (packaged in containers)
across different cloud instances ...  This approach also does not depend
on external untrusted libraries as the container would be authored in a
trusted environment with trusted libraries."

An :class:`AnalyticsContainer` packages a named workload: the image bytes
(measured + signed), a manifest of the *trusted* libraries it bundles, and
an entrypoint resolved from a registry of vetted functions (standing in
for the code baked into the image).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..cloudsim.nodes import SoftwareComponent
from ..core.errors import GatewayError
from ..crypto.rsa import RsaPrivateKey, RsaPublicKey, rsa_sign, rsa_verify

# Libraries the trusted authoring environment is allowed to bundle.
TRUSTED_LIBRARIES = frozenset({
    "numpy", "scipy", "networkx", "repro.analytics", "repro.privacy",
})

Entrypoint = Callable[[Dict[str, Any]], Any]


@dataclass(frozen=True)
class ContainerManifest:
    """What the container claims to contain."""

    workload_name: str
    entrypoint: str
    libraries: Tuple[str, ...]
    image_bytes: int

    def to_bytes(self) -> bytes:
        return json.dumps(
            {"workload": self.workload_name, "entrypoint": self.entrypoint,
             "libraries": sorted(self.libraries), "size": self.image_bytes},
            sort_keys=True, separators=(",", ":")).encode()


@dataclass(frozen=True)
class AnalyticsContainer:
    """A signed, transferable analytics workload."""

    manifest: ContainerManifest
    image: SoftwareComponent
    signature: bytes
    signer_fingerprint: str

    @property
    def size_bytes(self) -> int:
        return self.manifest.image_bytes


class TrustedAuthoringEnvironment:
    """Builds and signs containers from vetted entrypoints + libraries."""

    def __init__(self, signing_key: RsaPrivateKey) -> None:
        self._key = signing_key
        self._entrypoints: Dict[str, Entrypoint] = {}

    def register_entrypoint(self, name: str, fn: Entrypoint) -> None:
        """Vet an entrypoint for packaging."""
        self._entrypoints[name] = fn

    def entrypoint(self, name: str) -> Entrypoint:
        try:
            return self._entrypoints[name]
        except KeyError:
            raise GatewayError(f"entrypoint {name!r} not vetted") from None

    def build(self, workload_name: str, entrypoint: str,
              libraries: Tuple[str, ...],
              payload_size_bytes: int = 5_000_000) -> AnalyticsContainer:
        """Package and sign a workload; rejects untrusted libraries."""
        untrusted = [lib for lib in libraries if lib not in TRUSTED_LIBRARIES]
        if untrusted:
            raise GatewayError(
                f"refusing to package untrusted libraries: {untrusted}")
        if entrypoint not in self._entrypoints:
            raise GatewayError(f"entrypoint {entrypoint!r} not vetted")
        manifest = ContainerManifest(workload_name, entrypoint,
                                     tuple(sorted(libraries)),
                                     payload_size_bytes)
        content = manifest.to_bytes() + b"\x00" + hashlib.sha256(
            manifest.to_bytes()).digest()
        image = SoftwareComponent(f"analytics:{workload_name}", content)
        payload = manifest.to_bytes() + b"\x00" + image.measurement.encode()
        signature = rsa_sign(self._key, payload)
        return AnalyticsContainer(
            manifest=manifest,
            image=image,
            signature=signature,
            signer_fingerprint=self._key.public_key().fingerprint(),
        )


def verify_container(container: AnalyticsContainer,
                     signer_key: RsaPublicKey) -> bool:
    """Check the container's signature against the authoring key."""
    if signer_key.fingerprint() != container.signer_fingerprint:
        return False
    payload = (container.manifest.to_bytes() + b"\x00"
               + container.image.measurement.encode())
    return rsa_verify(signer_key, payload, container.signature)
