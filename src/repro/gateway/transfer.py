"""Intercloud Secure Gateway (Section II-C).

"The intercloud secure gateway facilitates transfer of these trusted
analytics containers between cloud platforms and also offers a service of
Remote Attestation for the platform to attest when the analytics workload
is started.  This allows the computation to be transferred to data instead
of otherwise, thereby making it very efficient and secured."

:class:`IntercloudGateway` connects two cloud instances over the simulated
fabric.  :meth:`ship_container` verifies the container signature, checks
both clouds' trust, transfers the image, remote-attests the target VM at
workload start, and runs the entrypoint next to the data.
:meth:`ship_data` is the inefficient alternative (move the dataset to the
computation) that E11 compares against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..cloudsim.network import NetworkFabric
from ..cloudsim.nodes import VirtualMachine
from ..core.errors import AttestationError, GatewayError
from ..crypto.rsa import RsaPublicKey
from ..trusted.chain import TrustedBootOrchestrator
from .containers import AnalyticsContainer, TrustedAuthoringEnvironment, verify_container


@dataclass
class CloudInstance:
    """One trusted cloud endpoint the gateway connects."""

    name: str                      # fabric endpoint
    orchestrator: TrustedBootOrchestrator
    host_id: str
    vm: VirtualMachine
    datasets: Dict[str, bytes] = field(default_factory=dict)

    def attest(self) -> bool:
        """Is this cloud's hosting VM currently trusted?"""
        return self.orchestrator.attest_vm(self.host_id, self.vm.vm_id).trusted


@dataclass
class ExecutionReport:
    """Outcome + accounting of a shipped workload."""

    result: Any
    bytes_transferred: int
    transfer_time_s: float
    attested: bool
    executed_at: str


class IntercloudGateway:
    """Ships trusted containers (or data) between cloud instances."""

    def __init__(self, fabric: NetworkFabric,
                 authoring: TrustedAuthoringEnvironment,
                 signer_key: RsaPublicKey) -> None:
        self.fabric = fabric
        self.authoring = authoring
        self._signer_key = signer_key
        self._clouds: Dict[str, CloudInstance] = {}

    def register_cloud(self, cloud: CloudInstance) -> None:
        self._clouds[cloud.name] = cloud

    def _cloud(self, name: str) -> CloudInstance:
        try:
            return self._clouds[name]
        except KeyError:
            raise GatewayError(f"cloud {name!r} not registered") from None

    def ship_container(self, container: AnalyticsContainer,
                       source: str, target: str, dataset: str,
                       parameters: Optional[Dict[str, Any]] = None
                       ) -> ExecutionReport:
        """Move the computation to the data (the paper's efficient path).

        1. verify the container signature (authored in a trusted env);
        2. require both clouds to attest as trusted;
        3. transfer the container image source -> target;
        4. remote-attest the target again at workload start;
        5. run the entrypoint against the co-located dataset.
        """
        if not verify_container(container, self._signer_key):
            raise GatewayError(
                f"container {container.manifest.workload_name} failed "
                "signature verification")
        source_cloud = self._cloud(source)
        target_cloud = self._cloud(target)
        for cloud in (source_cloud, target_cloud):
            if not cloud.attest():
                raise AttestationError(
                    f"cloud {cloud.name} is not trusted; refusing transfer")
        if dataset not in target_cloud.datasets:
            raise GatewayError(
                f"dataset {dataset!r} not present at {target}")
        record = self.fabric.transfer(source, target, container.size_bytes)
        # Remote attestation at workload start (launch the container in the
        # target's trust chain so its measurement is recorded and checked).
        target_cloud.orchestrator.launch_trusted_container(
            target_cloud.host_id, target_cloud.vm, container.image,
            container_id=f"wl-{container.manifest.workload_name}"
                         f"-{len(target_cloud.vm.containers)}")
        attested = target_cloud.orchestrator.attest_vm_with_containers(
            target_cloud.host_id, target_cloud.vm.vm_id).trusted
        if not attested:
            raise AttestationError(
                f"workload start attestation failed at {target}")
        entrypoint = self.authoring.entrypoint(container.manifest.entrypoint)
        payload = dict(parameters or {})
        payload["data"] = target_cloud.datasets[dataset]
        result = entrypoint(payload)
        return ExecutionReport(
            result=result,
            bytes_transferred=container.size_bytes,
            transfer_time_s=record.duration_s,
            attested=True,
            executed_at=target,
        )

    def ship_data(self, source: str, target: str, dataset: str,
                  entrypoint_name: str,
                  parameters: Optional[Dict[str, Any]] = None
                  ) -> ExecutionReport:
        """Move the data to the computation (the baseline E11 compares)."""
        source_cloud = self._cloud(source)
        target_cloud = self._cloud(target)
        for cloud in (source_cloud, target_cloud):
            if not cloud.attest():
                raise AttestationError(
                    f"cloud {cloud.name} is not trusted; refusing transfer")
        if dataset not in source_cloud.datasets:
            raise GatewayError(f"dataset {dataset!r} not present at {source}")
        data = source_cloud.datasets[dataset]
        record = self.fabric.transfer(source, target, len(data))
        entrypoint = self.authoring.entrypoint(entrypoint_name)
        payload = dict(parameters or {})
        payload["data"] = data
        result = entrypoint(payload)
        return ExecutionReport(
            result=result,
            bytes_transferred=len(data),
            transfer_time_s=record.duration_s,
            attested=True,
            executed_at=target,
        )
