"""FHIR-subset data model, validation, and HL7v2 adapter (Section II-B)."""

from .hl7v2 import bundle_to_hl7, hl7_to_bundle, message_type
from .resources import (
    Bundle,
    Condition,
    Consent,
    DiagnosticReport,
    Encounter,
    HumanName,
    MedicationRequest,
    Observation,
    Patient,
    Practitioner,
    Resource,
    resource_from_dict,
)
from .validation import BundleValidator, ValidationReport

__all__ = [
    "bundle_to_hl7",
    "hl7_to_bundle",
    "message_type",
    "Bundle",
    "Condition",
    "Consent",
    "DiagnosticReport",
    "Encounter",
    "HumanName",
    "MedicationRequest",
    "Observation",
    "Patient",
    "Practitioner",
    "Resource",
    "resource_from_dict",
    "BundleValidator",
    "ValidationReport",
]
