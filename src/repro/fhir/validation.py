"""Bundle validation — step ii) of ingestion (Section II-B).

"The uploaded data is verified, curated and stored" — the validator is the
"validates the uploaded bundle for errors" stage.  It checks per-resource
structural rules plus bundle-level referential integrity (every clinical
resource must reference a Patient present in the bundle or already known
to the platform).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

from .resources import (
    Bundle,
    Condition,
    Consent,
    DiagnosticReport,
    Encounter,
    MedicationRequest,
    Observation,
    Patient,
    Resource,
)

_DATE_RE = re.compile(r"^\d{4}-\d{2}-\d{2}$")
_DATETIME_RE = re.compile(r"^\d{4}-\d{2}-\d{2}(T\d{2}:\d{2}(:\d{2})?)?$")
_GENDERS = {"male", "female", "other", "unknown"}
_OBS_STATUSES = {"registered", "preliminary", "final", "amended", "corrected"}
_ENCOUNTER_CLASSES = {"ambulatory", "inpatient", "emergency", "virtual"}
_ENCOUNTER_STATUSES = {"planned", "in-progress", "finished", "cancelled"}


@dataclass
class ValidationReport:
    """Accumulated validation outcome for one bundle."""

    errors: List[str] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)

    @property
    def valid(self) -> bool:
        return not self.errors

    def error(self, message: str) -> None:
        self.errors.append(message)

    def warn(self, message: str) -> None:
        self.warnings.append(message)


class BundleValidator:
    """Structural + referential validation of FHIR bundles."""

    def __init__(self, known_patient_ids: Optional[Set[str]] = None) -> None:
        self._known_patients = set(known_patient_ids or set())

    def validate(self, bundle: Bundle) -> ValidationReport:
        """Validate every resource and cross-references; never raises."""
        report = ValidationReport()
        if not bundle.id:
            report.error("bundle: missing id")
        if not bundle.entries:
            report.error("bundle: empty")
        seen_ids: Set[str] = set()
        patient_ids = {p.id for p in bundle.resources_of(Patient)}
        for resource in bundle.entries:
            key = f"{resource.RESOURCE_TYPE}/{resource.id}"
            if key in seen_ids:
                report.error(f"{key}: duplicate resource id in bundle")
            seen_ids.add(key)
            self._validate_resource(resource, patient_ids, report)
        return report

    def _validate_resource(self, resource: Resource, patient_ids: Set[str],
                           report: ValidationReport) -> None:
        if not resource.id:
            report.error(f"{resource.RESOURCE_TYPE}: missing id")
            return
        if isinstance(resource, Patient):
            self._validate_patient(resource, report)
        elif isinstance(resource, Observation):
            self._validate_observation(resource, patient_ids, report)
        elif isinstance(resource, Condition):
            self._validate_condition(resource, patient_ids, report)
        elif isinstance(resource, MedicationRequest):
            self._validate_medication(resource, patient_ids, report)
        elif isinstance(resource, Consent):
            self._validate_consent(resource, patient_ids, report)
        elif isinstance(resource, Encounter):
            self._validate_encounter(resource, patient_ids, report)
        elif isinstance(resource, DiagnosticReport):
            self._validate_diagnostic_report(resource, patient_ids, report)

    def _check_subject(self, label: str, subject: Optional[str],
                       patient_ids: Set[str], report: ValidationReport) -> None:
        if not subject:
            report.error(f"{label}: missing subject reference")
            return
        if not subject.startswith("Patient/"):
            report.error(f"{label}: subject must be a Patient reference")
            return
        pid = subject.split("/", 1)[1]
        if pid not in patient_ids and pid not in self._known_patients:
            report.error(f"{label}: references unknown patient {pid}")

    def _validate_patient(self, patient: Patient,
                          report: ValidationReport) -> None:
        label = f"Patient/{patient.id}"
        if patient.birthDate and not _DATE_RE.match(patient.birthDate):
            report.error(f"{label}: birthDate must be YYYY-MM-DD")
        if patient.gender and patient.gender not in _GENDERS:
            report.error(f"{label}: invalid gender {patient.gender!r}")
        if not patient.name:
            report.warn(f"{label}: no name recorded")

    def _validate_observation(self, obs: Observation, patient_ids: Set[str],
                              report: ValidationReport) -> None:
        label = f"Observation/{obs.id}"
        if obs.status not in _OBS_STATUSES:
            report.error(f"{label}: invalid status {obs.status!r}")
        if not obs.code:
            report.error(f"{label}: missing code")
        self._check_subject(label, obs.subject, patient_ids, report)
        if obs.effectiveDateTime and not _DATETIME_RE.match(obs.effectiveDateTime):
            report.error(f"{label}: malformed effectiveDateTime")
        if obs.valueQuantity:
            value = obs.valueQuantity.get("value")
            if not isinstance(value, (int, float)):
                report.error(f"{label}: valueQuantity.value must be numeric")

    def _validate_condition(self, condition: Condition, patient_ids: Set[str],
                            report: ValidationReport) -> None:
        label = f"Condition/{condition.id}"
        if not condition.code:
            report.error(f"{label}: missing code")
        self._check_subject(label, condition.subject, patient_ids, report)

    def _validate_medication(self, med: MedicationRequest,
                             patient_ids: Set[str],
                             report: ValidationReport) -> None:
        label = f"MedicationRequest/{med.id}"
        if not med.medication:
            report.error(f"{label}: missing medication")
        self._check_subject(label, med.subject, patient_ids, report)
        if med.authoredOn and not _DATETIME_RE.match(med.authoredOn):
            report.error(f"{label}: malformed authoredOn")

    def _validate_encounter(self, encounter: Encounter,
                            patient_ids: Set[str],
                            report: ValidationReport) -> None:
        label = f"Encounter/{encounter.id}"
        if encounter.status not in _ENCOUNTER_STATUSES:
            report.error(f"{label}: invalid status {encounter.status!r}")
        if encounter.classCode not in _ENCOUNTER_CLASSES:
            report.error(f"{label}: invalid class {encounter.classCode!r}")
        self._check_subject(label, encounter.subject, patient_ids, report)
        for attr in ("periodStart", "periodEnd"):
            value = getattr(encounter, attr)
            if value and not _DATETIME_RE.match(value):
                report.error(f"{label}: malformed {attr}")
        if (encounter.periodStart and encounter.periodEnd
                and encounter.periodEnd < encounter.periodStart):
            report.error(f"{label}: period ends before it starts")

    def _validate_diagnostic_report(self, diagnostic: DiagnosticReport,
                                    patient_ids: Set[str],
                                    report: ValidationReport) -> None:
        label = f"DiagnosticReport/{diagnostic.id}"
        if not diagnostic.code:
            report.error(f"{label}: missing code")
        self._check_subject(label, diagnostic.subject, patient_ids, report)
        for reference in diagnostic.result:
            if not reference.startswith("Observation/"):
                report.error(f"{label}: result {reference!r} must reference "
                             "an Observation")

    def _validate_consent(self, consent: Consent, patient_ids: Set[str],
                          report: ValidationReport) -> None:
        label = f"Consent/{consent.id}"
        if not consent.patient:
            report.error(f"{label}: missing patient reference")
            return
        self._check_subject(label, consent.patient, patient_ids, report)
        if consent.groupId is None:
            report.warn(f"{label}: consent not tied to a study group")
