"""FHIR-R4-subset resource model (Section II-B, "Data Ingestion and Export").

"Our system adopts FHIR as the data ingestion format."  We implement the
subset of FHIR resources the platform's applications need — Patient,
Practitioner, Observation, Condition, MedicationRequest, Consent, and
Bundle — with JSON (de)serialisation that round-trips, so adapters for
other exchange formats (HL7v2) can target a stable in-memory model.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields as dc_fields
from typing import Any, Dict, List, Optional, Type, TypeVar

from ..core.errors import ValidationError

T = TypeVar("T", bound="Resource")


@dataclass
class Resource:
    """Common FHIR resource scaffolding."""

    id: str
    meta: Dict[str, Any] = field(default_factory=dict)

    RESOURCE_TYPE = "Resource"

    def to_dict(self) -> Dict[str, Any]:
        """FHIR-style JSON object with ``resourceType`` discriminator."""
        data: Dict[str, Any] = {"resourceType": self.RESOURCE_TYPE}
        for f in dc_fields(self):
            value = getattr(self, f.name)
            if value not in (None, [], {}):
                data[f.name] = value
        return data

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls: Type[T], data: Dict[str, Any]) -> T:
        payload = dict(data)
        declared = payload.pop("resourceType", cls.RESOURCE_TYPE)
        if declared != cls.RESOURCE_TYPE:
            raise ValidationError(
                f"expected resourceType {cls.RESOURCE_TYPE}, got {declared}")
        known = {f.name for f in dc_fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValidationError(
                f"{cls.RESOURCE_TYPE}: unknown elements {sorted(unknown)}")
        return cls(**payload)


@dataclass
class HumanName:
    """Simplified FHIR HumanName."""

    family: str = ""
    given: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {"family": self.family, "given": list(self.given)}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "HumanName":
        return cls(family=data.get("family", ""),
                   given=list(data.get("given", [])))


@dataclass
class Patient(Resource):
    """FHIR Patient with the demographics PHI handling cares about."""

    name: Dict[str, Any] = field(default_factory=dict)      # HumanName dict
    birthDate: Optional[str] = None                          # YYYY-MM-DD
    gender: Optional[str] = None                             # male|female|other|unknown
    address: Dict[str, Any] = field(default_factory=dict)    # line/city/state/postalCode
    telecom: List[Dict[str, Any]] = field(default_factory=list)
    identifier: List[Dict[str, Any]] = field(default_factory=list)  # MRN, SSN...

    RESOURCE_TYPE = "Patient"


@dataclass
class Practitioner(Resource):
    """FHIR Practitioner (doctors, healthcare staff)."""

    name: Dict[str, Any] = field(default_factory=dict)
    qualification: Optional[str] = None

    RESOURCE_TYPE = "Practitioner"


@dataclass
class Observation(Resource):
    """FHIR Observation — laboratory results (e.g. HbA1c for DELT)."""

    status: str = "final"
    code: Dict[str, Any] = field(default_factory=dict)   # {"text": "HbA1c", "loinc": ...}
    subject: Optional[str] = None                         # "Patient/<id>"
    effectiveDateTime: Optional[str] = None
    valueQuantity: Dict[str, Any] = field(default_factory=dict)  # {"value": .., "unit": ..}

    RESOURCE_TYPE = "Observation"


@dataclass
class Condition(Resource):
    """FHIR Condition — diagnoses (ICD-ish coded)."""

    code: Dict[str, Any] = field(default_factory=dict)
    subject: Optional[str] = None
    onsetDateTime: Optional[str] = None
    clinicalStatus: str = "active"

    RESOURCE_TYPE = "Condition"


@dataclass
class MedicationRequest(Resource):
    """FHIR MedicationRequest — drug prescriptions (DELT's exposures)."""

    status: str = "active"
    medication: Dict[str, Any] = field(default_factory=dict)  # {"text": drug name}
    subject: Optional[str] = None
    authoredOn: Optional[str] = None
    dosageText: Optional[str] = None

    RESOURCE_TYPE = "MedicationRequest"


@dataclass
class Encounter(Resource):
    """FHIR Encounter — an admission/visit (HL7 PV1 source)."""

    status: str = "finished"
    classCode: str = "ambulatory"   # ambulatory|inpatient|emergency
    subject: Optional[str] = None
    periodStart: Optional[str] = None
    periodEnd: Optional[str] = None
    location: Optional[str] = None

    RESOURCE_TYPE = "Encounter"


@dataclass
class DiagnosticReport(Resource):
    """FHIR DiagnosticReport — grouped results with a conclusion."""

    status: str = "final"
    code: Dict[str, Any] = field(default_factory=dict)
    subject: Optional[str] = None
    result: List[str] = field(default_factory=list)  # Observation refs
    effectiveDateTime: Optional[str] = None
    conclusion: Optional[str] = None

    RESOURCE_TYPE = "DiagnosticReport"


@dataclass
class Consent(Resource):
    """FHIR Consent — patient consent to a study/program (Group)."""

    status: str = "active"
    patient: Optional[str] = None      # "Patient/<id>"
    scope: str = "research"
    groupId: Optional[str] = None      # platform Group the consent covers
    period: Dict[str, Any] = field(default_factory=dict)  # {"start":.., "end":..}

    RESOURCE_TYPE = "Consent"


_RESOURCE_TYPES: Dict[str, Type[Resource]] = {
    cls.RESOURCE_TYPE: cls
    for cls in (Patient, Practitioner, Observation, Condition,
                MedicationRequest, Consent, Encounter, DiagnosticReport)
}


def resource_from_dict(data: Dict[str, Any]) -> Resource:
    """Polymorphic deserialisation using the ``resourceType`` discriminator."""
    rtype = data.get("resourceType")
    cls = _RESOURCE_TYPES.get(rtype or "")
    if cls is None:
        raise ValidationError(f"unsupported resourceType {rtype!r}")
    return cls.from_dict(data)


@dataclass
class Bundle:
    """FHIR Bundle — the unit of upload for the ingestion service."""

    id: str
    type: str = "collection"
    entries: List[Resource] = field(default_factory=list)

    def add(self, resource: Resource) -> "Bundle":
        self.entries.append(resource)
        return self

    def resources_of(self, cls: Type[T]) -> List[T]:
        return [r for r in self.entries if isinstance(r, cls)]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "resourceType": "Bundle",
            "id": self.id,
            "type": self.type,
            "entry": [{"resource": r.to_dict()} for r in self.entries],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Bundle":
        if data.get("resourceType") != "Bundle":
            raise ValidationError("not a Bundle")
        entries = [resource_from_dict(e["resource"])
                   for e in data.get("entry", [])]
        return cls(id=data.get("id", ""), type=data.get("type", "collection"),
                   entries=entries)

    @classmethod
    def from_json(cls, raw: str) -> "Bundle":
        try:
            data = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ValidationError(f"bundle is not valid JSON: {exc}") from exc
        return cls.from_dict(data)
