"""HL7v2 <-> FHIR adapter (Section II-B).

"The system can be easily extended to support any other format by writing
adapters that transform data from one exchange format to another, e.g.
from HL7 to FHIR and back."  This adapter handles the pipe-delimited
HL7v2 message shapes the clinical sources in scope emit:

* ``ADT^A01`` admissions -> Patient;
* ``ORU^R01`` lab results -> Patient + Observation;
* ``RDE^O11`` pharmacy orders -> MedicationRequest.

The reverse direction renders FHIR resources back to HL7v2 segments, and
``hl7_to_bundle``/``bundle_to_hl7`` round-trip whole messages.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.errors import ValidationError
from .resources import (
    Bundle,
    Encounter,
    MedicationRequest,
    Observation,
    Patient,
)

FIELD_SEP = "|"
COMPONENT_SEP = "^"
SEGMENT_SEP = "\r"


def _parse_segments(message: str) -> List[List[str]]:
    """Split an HL7v2 message into segments of fields."""
    raw = message.replace("\n", SEGMENT_SEP).strip(SEGMENT_SEP)
    if not raw:
        raise ValidationError("empty HL7 message")
    segments = []
    for line in raw.split(SEGMENT_SEP):
        line = line.strip()
        if line:
            segments.append(line.split(FIELD_SEP))
    if not segments or segments[0][0] != "MSH":
        raise ValidationError("HL7 message must start with MSH segment")
    return segments


def _field(segment: List[str], index: int) -> str:
    """Field accessor tolerant of short segments."""
    return segment[index] if index < len(segment) else ""


def _components(value: str) -> List[str]:
    return value.split(COMPONENT_SEP)


def message_type(message: str) -> str:
    """Return e.g. 'ADT^A01' from the MSH segment."""
    segments = _parse_segments(message)
    return _field(segments[0], 8)


def _pid_to_patient(pid: List[str]) -> Patient:
    """Translate a PID segment to a FHIR Patient."""
    patient_id = _components(_field(pid, 3))[0]
    if not patient_id:
        raise ValidationError("PID segment missing patient id (PID-3)")
    name_parts = _components(_field(pid, 5))
    family = name_parts[0] if name_parts else ""
    given = name_parts[1:2] if len(name_parts) > 1 else []
    birth = _field(pid, 7)
    birth_date = (f"{birth[:4]}-{birth[4:6]}-{birth[6:8]}"
                  if len(birth) >= 8 else None)
    gender_code = _field(pid, 8).upper()
    gender = {"M": "male", "F": "female", "O": "other"}.get(gender_code,
                                                            "unknown")
    address_parts = _components(_field(pid, 11))
    address: Dict[str, str] = {}
    if address_parts and address_parts[0]:
        address = {
            "line": address_parts[0],
            "city": address_parts[2] if len(address_parts) > 2 else "",
            "state": address_parts[3] if len(address_parts) > 3 else "",
            "postalCode": address_parts[4] if len(address_parts) > 4 else "",
        }
    return Patient(
        id=patient_id,
        name={"family": family, "given": given},
        birthDate=birth_date,
        gender=gender,
        address=address,
    )


def _obx_to_observation(obx: List[str], patient_id: str,
                        timestamp: str, index: int) -> Observation:
    """Translate an OBX result segment to a FHIR Observation."""
    code_parts = _components(_field(obx, 3))
    code = {"text": code_parts[1] if len(code_parts) > 1 else code_parts[0],
            "loinc": code_parts[0]}
    value_raw = _field(obx, 5)
    unit = _components(_field(obx, 6))[0]
    try:
        value: object = float(value_raw)
    except ValueError:
        value = value_raw
    effective = (f"{timestamp[:4]}-{timestamp[4:6]}-{timestamp[6:8]}"
                 if len(timestamp) >= 8 else None)
    value_quantity = ({"value": value, "unit": unit}
                      if isinstance(value, float) else {})
    return Observation(
        id=f"{patient_id}-obx-{index}",
        status="final",
        code=code,
        subject=f"Patient/{patient_id}",
        effectiveDateTime=effective,
        valueQuantity=value_quantity,
    )


def _rxe_to_medication(rxe: List[str], patient_id: str, timestamp: str,
                       index: int) -> MedicationRequest:
    """Translate an RXE pharmacy segment to a FHIR MedicationRequest."""
    med_parts = _components(_field(rxe, 2))
    med_text = med_parts[1] if len(med_parts) > 1 else med_parts[0]
    authored = (f"{timestamp[:4]}-{timestamp[4:6]}-{timestamp[6:8]}"
                if len(timestamp) >= 8 else None)
    return MedicationRequest(
        id=f"{patient_id}-rxe-{index}",
        medication={"text": med_text, "code": med_parts[0]},
        subject=f"Patient/{patient_id}",
        authoredOn=authored,
        dosageText=_field(rxe, 3) or None,
    )


_PV1_CLASS = {"I": "inpatient", "O": "ambulatory", "E": "emergency"}


def _pv1_to_encounter(pv1: List[str], patient_id: str,
                      timestamp: str) -> Encounter:
    """Translate a PV1 visit segment to a FHIR Encounter."""
    class_code = _PV1_CLASS.get(_field(pv1, 2).upper(), "ambulatory")
    location = _components(_field(pv1, 3))[0] or None
    admit = _field(pv1, 44) or timestamp
    start = (f"{admit[:4]}-{admit[4:6]}-{admit[6:8]}"
             if len(admit) >= 8 else None)
    return Encounter(
        id=f"{patient_id}-enc",
        status="finished",
        classCode=class_code,
        subject=f"Patient/{patient_id}",
        periodStart=start,
        location=location,
    )


def hl7_to_bundle(message: str, bundle_id: str) -> Bundle:
    """Convert a supported HL7v2 message into a FHIR Bundle."""
    segments = _parse_segments(message)
    msh = segments[0]
    timestamp = _field(msh, 6)
    bundle = Bundle(id=bundle_id, type="message")
    patient: Optional[Patient] = None
    obx_index = 0
    rxe_index = 0
    for segment in segments[1:]:
        kind = segment[0]
        if kind == "PID":
            patient = _pid_to_patient(segment)
            bundle.add(patient)
        elif kind == "PV1":
            if patient is None:
                raise ValidationError("PV1 before PID in HL7 message")
            bundle.add(_pv1_to_encounter(segment, patient.id, timestamp))
        elif kind == "OBX":
            if patient is None:
                raise ValidationError("OBX before PID in HL7 message")
            obx_index += 1
            bundle.add(_obx_to_observation(segment, patient.id, timestamp,
                                           obx_index))
        elif kind == "RXE":
            if patient is None:
                raise ValidationError("RXE before PID in HL7 message")
            rxe_index += 1
            bundle.add(_rxe_to_medication(segment, patient.id, timestamp,
                                          rxe_index))
        # Other segments (EVN, ORC...) carry no data our model stores.
    if patient is None:
        raise ValidationError("HL7 message contains no PID segment")
    return bundle


def _date_to_hl7(date: Optional[str]) -> str:
    return date.replace("-", "") if date else ""


def bundle_to_hl7(bundle: Bundle, sending_app: str = "REPRO") -> str:
    """Render a bundle back to a minimal ORU^R01-style HL7v2 message."""
    patients = bundle.resources_of(Patient)
    if not patients:
        raise ValidationError("bundle has no Patient to export")
    patient = patients[0]
    segments: List[str] = [
        FIELD_SEP.join(["MSH", "^~\\&", sending_app, "", "", "", "", "",
                        "ORU^R01", bundle.id, "P", "2.5"])
    ]
    gender = {"male": "M", "female": "F", "other": "O"}.get(
        patient.gender or "", "U")
    name = f"{patient.name.get('family', '')}^" \
           f"{(patient.name.get('given') or [''])[0]}"
    segments.append(FIELD_SEP.join(
        ["PID", "1", "", patient.id, "", name, "",
         _date_to_hl7(patient.birthDate), gender]))
    for i, obs in enumerate(bundle.resources_of(Observation), start=1):
        value = obs.valueQuantity.get("value", "")
        unit = obs.valueQuantity.get("unit", "")
        code = f"{obs.code.get('loinc', '')}^{obs.code.get('text', '')}"
        segments.append(FIELD_SEP.join(
            ["OBX", str(i), "NM", code, "", str(value), unit]))
    for i, med in enumerate(bundle.resources_of(MedicationRequest), start=1):
        code = f"{med.medication.get('code', '')}^{med.medication.get('text', '')}"
        segments.append(FIELD_SEP.join(
            ["RXE", str(i), code, med.dosageText or ""]))
    return SEGMENT_SEP.join(segments)
