"""RBAC entity model (Section II-B, "Privacy Management").

"The platform supports Tenant, Organizations, Groups, Environments, Users,
Roles, and Permissions."

* **Tenant** — the namespace (an enterprise account) under which all other
  entities are grouped; also the unit of metering/billing.
* **Organization** — a department, owning shareable resources (services,
  environments).
* **Group** — a healthcare study/program to which PHI data is consented.
* **Environment** — a development/deployment environment inside an
  organization.
* **User** — an individual registered under a tenant.
* **Role** — a named set of permissions; users hold roles *per environment
  within an organization*.
* **Permission** — read or write access to a resource type, scoped to a
  tenant, organization, or group.

The model is motivated by Cloud Foundry's RBAC (paper footnote 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, FrozenSet, Optional, Set, Tuple


class Action(Enum):
    """The two access kinds the paper's permission model defines."""

    READ = "read"
    WRITE = "write"


class ScopeKind(Enum):
    """What level of the hierarchy a permission is scoped to."""

    TENANT = "tenant"
    ORGANIZATION = "organization"
    GROUP = "group"


@dataclass(frozen=True)
class Scope:
    """A concrete scope: kind plus the id of the scoping entity."""

    kind: ScopeKind
    entity_id: str


@dataclass(frozen=True)
class Permission:
    """Right to perform ``action`` on ``resource_type`` within ``scope``."""

    action: Action
    resource_type: str
    scope: Scope


@dataclass(frozen=True)
class Role:
    """A named bundle of permissions."""

    name: str
    permissions: FrozenSet[Permission]

    def allows(self, action: Action, resource_type: str, scope: Scope) -> bool:
        """Direct permission check, no hierarchy walk (the engine does that)."""
        return Permission(action, resource_type, scope) in self.permissions


@dataclass
class Tenant:
    """Enterprise-level account; namespace for everything below it."""

    tenant_id: str
    name: str
    organization_ids: Set[str] = field(default_factory=set)
    user_ids: Set[str] = field(default_factory=set)


@dataclass
class Organization:
    """Department-level grouping of shareable resources."""

    org_id: str
    tenant_id: str
    name: str
    environment_ids: Set[str] = field(default_factory=set)
    shared_resources: Set[str] = field(default_factory=set)


@dataclass
class Group:
    """A healthcare study/program; PHI consent attaches at this level."""

    group_id: str
    tenant_id: str
    name: str
    member_user_ids: Set[str] = field(default_factory=set)


@dataclass
class Environment:
    """A development or deployment environment within an organization."""

    env_id: str
    org_id: str
    name: str
    kind: str = "development"  # "development" | "staging" | "production"


@dataclass
class User:
    """An individual registered under a tenant.

    ``role_bindings`` maps (org_id, env_id) -> set of role names, matching
    the paper: "Users can have different roles in different environments
    within an organization."
    """

    user_id: str
    tenant_id: str
    name: str
    external_identity: Optional[str] = None  # federated subject, if any
    role_bindings: Dict[Tuple[str, str], Set[str]] = field(default_factory=dict)

    def bind_role(self, org_id: str, env_id: str, role_name: str) -> None:
        self.role_bindings.setdefault((org_id, env_id), set()).add(role_name)

    def unbind_role(self, org_id: str, env_id: str, role_name: str) -> None:
        roles = self.role_bindings.get((org_id, env_id))
        if roles is not None:
            roles.discard(role_name)

    def roles_in(self, org_id: str, env_id: str) -> Set[str]:
        return set(self.role_bindings.get((org_id, env_id), set()))
