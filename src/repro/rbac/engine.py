"""RBAC registry and access-decision engine (Section II-B).

The engine owns all RBAC entities for the platform and answers the single
question every API call asks: *may this user perform this action on this
resource type in this scope?*  Decisions honour the scope hierarchy —
a tenant-scoped permission covers every organization and group under that
tenant; an organization- or group-scoped permission covers only itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..core.errors import (
    AlreadyExistsError,
    AuthorizationError,
    NotFoundError,
)
from ..core.ids import IdFactory
from .model import (
    Action,
    Environment,
    Group,
    Organization,
    Permission,
    Role,
    Scope,
    ScopeKind,
    Tenant,
    User,
)


@dataclass(frozen=True)
class AccessDecision:
    """Outcome of an authorization check, with the grant that satisfied it."""

    allowed: bool
    user_id: str
    action: Action
    resource_type: str
    scope: Scope
    granted_by: Optional[str] = None  # role name, when allowed


class RbacEngine:
    """Registry + decision engine for the platform's RBAC system."""

    def __init__(self, ids: Optional[IdFactory] = None) -> None:
        self._ids = ids if ids is not None else IdFactory()
        self.tenants: Dict[str, Tenant] = {}
        self.organizations: Dict[str, Organization] = {}
        self.groups: Dict[str, Group] = {}
        self.environments: Dict[str, Environment] = {}
        self.users: Dict[str, User] = {}
        self.roles: Dict[str, Role] = {}
        self._decisions: List[AccessDecision] = []

    # -- entity management ----------------------------------------------------

    def create_tenant(self, name: str) -> Tenant:
        tenant = Tenant(self._ids.new("tenant"), name)
        self.tenants[tenant.tenant_id] = tenant
        return tenant

    def create_organization(self, tenant_id: str, name: str) -> Organization:
        tenant = self._tenant(tenant_id)
        org = Organization(self._ids.new("org"), tenant_id, name)
        self.organizations[org.org_id] = org
        tenant.organization_ids.add(org.org_id)
        return org

    def create_group(self, tenant_id: str, name: str) -> Group:
        self._tenant(tenant_id)
        group = Group(self._ids.new("group"), tenant_id, name)
        self.groups[group.group_id] = group
        return group

    def create_environment(self, org_id: str, name: str,
                           kind: str = "development") -> Environment:
        org = self._org(org_id)
        env = Environment(self._ids.new("env"), org_id, name, kind)
        self.environments[env.env_id] = env
        org.environment_ids.add(env.env_id)
        return env

    def register_user(self, tenant_id: str, name: str,
                      external_identity: Optional[str] = None) -> User:
        tenant = self._tenant(tenant_id)
        user = User(self._ids.new("user"), tenant_id, name,
                    external_identity=external_identity)
        self.users[user.user_id] = user
        tenant.user_ids.add(user.user_id)
        return user

    def define_role(self, name: str, permissions: Iterable[Permission]) -> Role:
        if name in self.roles:
            raise AlreadyExistsError(f"role {name!r} already defined")
        role = Role(name, frozenset(permissions))
        self.roles[name] = role
        return role

    def bind_role(self, user_id: str, org_id: str, env_id: str,
                  role_name: str) -> None:
        """Give a user a role in one environment of one organization."""
        user = self._user(user_id)
        org = self._org(org_id)
        if env_id not in org.environment_ids:
            raise NotFoundError(f"env {env_id} not in org {org_id}")
        if role_name not in self.roles:
            raise NotFoundError(f"role {role_name!r} not defined")
        user.bind_role(org_id, env_id, role_name)

    def add_group_member(self, group_id: str, user_id: str) -> None:
        self._group(group_id).member_user_ids.add(self._user(user_id).user_id)

    # -- decisions -----------------------------------------------------------

    def check(self, user_id: str, action: Action, resource_type: str,
              scope: Scope, org_id: str, env_id: str) -> AccessDecision:
        """Decide whether a user may act, given their roles in (org, env).

        A role grants access if it holds a permission whose scope equals the
        requested scope *or* covers it from above (tenant over org/group).
        Group-scoped PHI access additionally requires group membership,
        since groups are "healthcare studies/programs to which PHI data is
        consented" — holding a role is not enough to see a study's data you
        are not a member of.
        """
        user = self._user(user_id)
        candidate_scopes = self._covering_scopes(scope)
        decision = AccessDecision(False, user_id, action, resource_type, scope)
        for role_name in user.roles_in(org_id, env_id):
            role = self.roles.get(role_name)
            if role is None:
                continue
            for cover in candidate_scopes:
                if role.allows(action, resource_type, cover):
                    decision = AccessDecision(True, user_id, action,
                                              resource_type, scope,
                                              granted_by=role_name)
                    break
            if decision.allowed:
                break
        if (decision.allowed and scope.kind is ScopeKind.GROUP
                and user_id not in self._group(scope.entity_id).member_user_ids):
            decision = AccessDecision(False, user_id, action, resource_type,
                                      scope)
        self._decisions.append(decision)
        return decision

    def require(self, user_id: str, action: Action, resource_type: str,
                scope: Scope, org_id: str, env_id: str) -> AccessDecision:
        """Like :meth:`check` but raises on denial."""
        decision = self.check(user_id, action, resource_type, scope,
                              org_id, env_id)
        if not decision.allowed:
            raise AuthorizationError(
                f"user {user_id} denied {action.value} on {resource_type} "
                f"in {scope.kind.value}:{scope.entity_id}")
        return decision

    def decision_log(self) -> List[AccessDecision]:
        return list(self._decisions)

    def _covering_scopes(self, scope: Scope) -> List[Scope]:
        """The requested scope plus every ancestor that would cover it."""
        scopes = [scope]
        if scope.kind is ScopeKind.ORGANIZATION:
            org = self._org(scope.entity_id)
            scopes.append(Scope(ScopeKind.TENANT, org.tenant_id))
        elif scope.kind is ScopeKind.GROUP:
            group = self._group(scope.entity_id)
            scopes.append(Scope(ScopeKind.TENANT, group.tenant_id))
        return scopes

    # -- lookups ------------------------------------------------------------------

    def _tenant(self, tenant_id: str) -> Tenant:
        try:
            return self.tenants[tenant_id]
        except KeyError:
            raise NotFoundError(f"tenant {tenant_id} not found") from None

    def _org(self, org_id: str) -> Organization:
        try:
            return self.organizations[org_id]
        except KeyError:
            raise NotFoundError(f"organization {org_id} not found") from None

    def _group(self, group_id: str) -> Group:
        try:
            return self.groups[group_id]
        except KeyError:
            raise NotFoundError(f"group {group_id} not found") from None

    def _user(self, user_id: str) -> User:
        try:
            return self.users[user_id]
        except KeyError:
            raise NotFoundError(f"user {user_id} not found") from None
