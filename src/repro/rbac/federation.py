"""Federated identity management (Section II-B).

"The platform supports a federated identity management system, which means
that the platform user's identity could be managed and authenticated by an
external (approved) system.  Once users are authenticated, their roles and
access privileges are managed by the platform's RBAC system."

External identity providers issue HMAC-signed tokens; the platform trusts
only IdPs on its approved list, verifies token signatures and expiry, and
maps the external subject to a registered platform user.
"""

from __future__ import annotations

import hashlib
import hmac
import json
from dataclasses import dataclass
from typing import Dict, Optional

from ..core.errors import AuthenticationError, NotFoundError
from ..cloudsim.clock import SimClock
from .engine import RbacEngine
from .model import User


@dataclass(frozen=True)
class IdentityToken:
    """A signed assertion from an external IdP."""

    issuer: str
    subject: str
    issued_at: float
    expires_at: float
    signature: bytes

    def payload(self) -> bytes:
        return json.dumps(
            {"iss": self.issuer, "sub": self.subject,
             "iat": self.issued_at, "exp": self.expires_at},
            sort_keys=True, separators=(",", ":")).encode()


class ExternalIdentityProvider:
    """A (simulated) external IdP that signs tokens for its subjects."""

    def __init__(self, name: str, secret: bytes,
                 clock: Optional[SimClock] = None) -> None:
        self.name = name
        self._secret = secret
        self.clock = clock if clock is not None else SimClock()

    def issue_token(self, subject: str, ttl_s: float = 3600.0) -> IdentityToken:
        issued = self.clock.now
        unsigned = IdentityToken(self.name, subject, issued, issued + ttl_s, b"")
        signature = hmac.new(self._secret, unsigned.payload(),
                             hashlib.sha256).digest()
        return IdentityToken(self.name, subject, issued, issued + ttl_s,
                             signature)


class FederatedIdentityService:
    """Verifies external tokens and maps them to platform users."""

    def __init__(self, rbac: RbacEngine,
                 clock: Optional[SimClock] = None) -> None:
        self._rbac = rbac
        self.clock = clock if clock is not None else SimClock()
        self._approved_idps: Dict[str, bytes] = {}
        self._subject_map: Dict[str, str] = {}  # "issuer/subject" -> user_id

    def approve_idp(self, name: str, secret: bytes) -> None:
        """Add an IdP to the approved list (sharing its verification key)."""
        self._approved_idps[name] = secret

    def revoke_idp(self, name: str) -> None:
        self._approved_idps.pop(name, None)

    def link_identity(self, issuer: str, subject: str, user_id: str) -> None:
        """Bind an external identity to a registered platform user."""
        if user_id not in self._rbac.users:
            raise NotFoundError(f"user {user_id} not registered")
        self._subject_map[f"{issuer}/{subject}"] = user_id

    def authenticate(self, token: IdentityToken) -> User:
        """Validate a token and return the mapped platform user.

        Raises :class:`AuthenticationError` for unapproved issuers, bad
        signatures, tokens outside their validity window (expired, not yet
        valid, or ``iat > exp``), or unlinked subjects.
        """
        secret = self._approved_idps.get(token.issuer)
        if secret is None:
            raise AuthenticationError(f"IdP {token.issuer!r} is not approved")
        expected = hmac.new(secret, token.payload(), hashlib.sha256).digest()
        if not hmac.compare_digest(expected, token.signature):
            raise AuthenticationError("token signature invalid")
        if token.issued_at > token.expires_at:
            raise AuthenticationError(
                "token validity window is ill-formed (iat > exp)")
        if self.clock.now < token.issued_at:
            raise AuthenticationError("token not yet valid")
        if self.clock.now >= token.expires_at:
            raise AuthenticationError("token expired")
        user_id = self._subject_map.get(f"{token.issuer}/{token.subject}")
        if user_id is None:
            raise AuthenticationError(
                f"subject {token.subject!r} not linked to a platform user")
        return self._rbac.users[user_id]
