"""RBAC and federated identity (Section II-B, "Privacy Management").

Tenant/Organization/Group/Environment/User/Role/Permission model, access
decision engine with scope hierarchy, and external-IdP token federation.
"""

from .engine import AccessDecision, RbacEngine
from .federation import (
    ExternalIdentityProvider,
    FederatedIdentityService,
    IdentityToken,
)
from .model import (
    Action,
    Environment,
    Group,
    Organization,
    Permission,
    Role,
    Scope,
    ScopeKind,
    Tenant,
    User,
)

__all__ = [
    "AccessDecision",
    "RbacEngine",
    "ExternalIdentityProvider",
    "FederatedIdentityService",
    "IdentityToken",
    "Action",
    "Environment",
    "Group",
    "Organization",
    "Permission",
    "Role",
    "Scope",
    "ScopeKind",
    "Tenant",
    "User",
]
