"""Trusted infrastructure: TPM/vTPM, attestation, trust chain, signed images.

Implements Section II-A and Fig. 5 of the paper: the hardware root of
trust, its transitive extension to hypervisor, guest OS, and containers,
and the services (Attestation, Image Management) that police it.
"""

from .attestation import AppraisalResult, AttestationService, TrustVerdict
from .chain import (
    HOST_PCRS,
    TrustedBootOrchestrator,
    TrustedHost,
    VM_AND_CONTAINER_PCRS,
    VM_PCRS,
)
from .images import ImageManagementService, SignedImage, sign_image
from .tpm import (
    MeasurementEvent,
    PCR_BIOS,
    PCR_CONTAINER,
    PCR_CRTM,
    PCR_HYPERVISOR,
    PCR_VM_BIOS,
    PCR_VM_IMAGE,
    PCR_VM_KERNEL,
    Quote,
    Tpm,
    verify_quote,
)
from .vtpm import VtpmChannel, VtpmInterfaceContainer, VtpmManager

__all__ = [
    "AppraisalResult",
    "AttestationService",
    "TrustVerdict",
    "HOST_PCRS",
    "VM_PCRS",
    "VM_AND_CONTAINER_PCRS",
    "TrustedBootOrchestrator",
    "TrustedHost",
    "ImageManagementService",
    "SignedImage",
    "sign_image",
    "MeasurementEvent",
    "Quote",
    "Tpm",
    "verify_quote",
    "PCR_CRTM",
    "PCR_BIOS",
    "PCR_HYPERVISOR",
    "PCR_VM_BIOS",
    "PCR_VM_KERNEL",
    "PCR_VM_IMAGE",
    "PCR_CONTAINER",
    "VtpmChannel",
    "VtpmInterfaceContainer",
    "VtpmManager",
]
