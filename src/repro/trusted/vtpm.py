"""vTPM manager (Fig. 5, refs [9], [23]).

"The main idea is to have a software implementation of trusted platform
modules (vTPM), execute it in a dedicated VM and take measurements that
will be used by an external Attestation Service."

The :class:`VtpmManager` runs (conceptually) in a special VM on each host;
it multiplexes per-VM vTPM instances, and each guest VM reaches its own
instance through a client driver.  Containers inside a VM reach the vTPM
through a per-VM :class:`VtpmInterfaceContainer` over a Unix-socket-or-IPC
style channel — modelled as a method-call facade with an attachment check,
which is the behaviour the architecture relies on (only attached clients
can extend/quote, and each VM sees only its own vTPM state).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..core.errors import ConfigurationError, NotFoundError
from .tpm import Quote, Tpm


class VtpmManager:
    """User-space process providing the vTPM interface to guest VMs."""

    def __init__(self, host_id: str, seed: Optional[int] = None) -> None:
        self.host_id = host_id
        self._seed = seed
        self._instances: Dict[str, Tpm] = {}

    def create_instance(self, vm_id: str) -> Tpm:
        """Create the vTPM for a VM; one instance per VM."""
        if vm_id in self._instances:
            raise ConfigurationError(f"vTPM for {vm_id} already exists")
        seed = None
        if self._seed is not None:
            seed = self._seed * 104_729 + (len(self._instances) + 1)
        vtpm = Tpm(tpm_id=f"vtpm:{self.host_id}:{vm_id}", seed=seed)
        self._instances[vm_id] = vtpm
        return vtpm

    def instance_for(self, vm_id: str) -> Tpm:
        try:
            return self._instances[vm_id]
        except KeyError:
            raise NotFoundError(f"no vTPM instance for vm {vm_id}") from None

    def destroy_instance(self, vm_id: str) -> None:
        """Tear down a VM's vTPM (VM destroyed); state is unrecoverable."""
        self._instances.pop(vm_id, None)

    @property
    def instance_count(self) -> int:
        return len(self._instances)


@dataclass
class VtpmChannel:
    """The client-driver <-> server-driver channel of Fig. 5.

    ``transport`` records whether the consumer container talks over a Unix
    socket or via an IPC adapter exposing a character device; functionally
    both deliver the same vTPM interface.
    """

    vm_id: str
    transport: str  # "unix-socket" | "ipc-adapter"
    _vtpm: Tpm
    attached: bool = True

    def extend(self, pcr_index: int, component: str, measurement: str) -> str:
        self._require_attached()
        return self._vtpm.extend(pcr_index, component, measurement)

    def read_pcr(self, pcr_index: int) -> str:
        self._require_attached()
        return self._vtpm.read_pcr(pcr_index)

    def quote(self, nonce: bytes, pcr_indices: Tuple[int, ...]) -> Quote:
        self._require_attached()
        return self._vtpm.quote(nonce, pcr_indices)

    def detach(self) -> None:
        """Close the channel (container stopped)."""
        self.attached = False

    def _require_attached(self) -> None:
        if not self.attached:
            raise ConfigurationError(
                f"vTPM channel for {self.vm_id} is detached")


class VtpmInterfaceContainer:
    """The special per-VM container exposing the vTPM to other containers."""

    VALID_TRANSPORTS = ("unix-socket", "ipc-adapter")

    def __init__(self, vm_id: str, vtpm: Tpm) -> None:
        self.vm_id = vm_id
        self._vtpm = vtpm
        self._channels: Dict[str, VtpmChannel] = {}

    def open_channel(self, container_id: str,
                     transport: str = "unix-socket") -> VtpmChannel:
        """Open a channel for a consumer container."""
        if transport not in self.VALID_TRANSPORTS:
            raise ConfigurationError(f"unknown vTPM transport {transport!r}")
        channel = VtpmChannel(self.vm_id, transport, self._vtpm)
        self._channels[container_id] = channel
        return channel

    def close_channel(self, container_id: str) -> None:
        channel = self._channels.pop(container_id, None)
        if channel is not None:
            channel.detach()

    @property
    def open_channel_count(self) -> int:
        return sum(1 for c in self._channels.values() if c.attached)
