"""Attestation Service (Section II-A, Fig. 1).

Appraises TPM/vTPM quotes against *golden values* — the expected PCR
contents for approved software stacks.  The Change Management service
(Section II-B) is the only writer of golden values: "the CM service
accordingly updates the Attestation Service regarding the approved changes
and their new signatures."

Also maintains the approved-signer list the Image Management service
consults, and issues anti-replay nonces for remote attestation.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Set, Tuple

from ..core.errors import AttestationError, NotFoundError
from ..crypto.rsa import RsaPublicKey
from .tpm import Quote, Tpm, verify_quote


class TrustVerdict(Enum):
    """Outcome of an appraisal."""

    TRUSTED = "trusted"
    UNTRUSTED = "untrusted"
    UNKNOWN_PLATFORM = "unknown_platform"


@dataclass(frozen=True)
class AppraisalResult:
    """Structured appraisal outcome with the evidence that produced it."""

    verdict: TrustVerdict
    tpm_id: str
    mismatched_pcrs: Tuple[int, ...] = ()
    reason: str = ""

    @property
    def trusted(self) -> bool:
        return self.verdict is TrustVerdict.TRUSTED


class AttestationService:
    """Registry of attestation keys + golden PCR values; quote appraiser."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._nonce_counter = 0
        self._aik_registry: Dict[str, RsaPublicKey] = {}
        self._golden: Dict[str, Dict[int, str]] = {}
        self._approved_signers: Set[str] = set()
        self._appraisals: List[AppraisalResult] = []

    # -- enrollment (done at provisioning / by change management) -----------

    def enroll_platform(self, tpm: Tpm) -> None:
        """Register a platform's attestation key."""
        self._aik_registry[tpm.tpm_id] = tpm.attestation_public_key

    def set_golden_values(self, tpm_id: str, pcr_values: Dict[int, str]) -> None:
        """Record/replace the expected PCR values for a platform."""
        self._golden[tpm_id] = dict(pcr_values)

    def golden_values(self, tpm_id: str) -> Dict[int, str]:
        try:
            return dict(self._golden[tpm_id])
        except KeyError:
            raise NotFoundError(f"no golden values for {tpm_id}") from None

    def approve_signer(self, key_fingerprint: str) -> None:
        """Add a key to the approved image-signer list."""
        self._approved_signers.add(key_fingerprint)

    def revoke_signer(self, key_fingerprint: str) -> None:
        self._approved_signers.discard(key_fingerprint)

    def is_approved_signer(self, key_fingerprint: str) -> bool:
        return key_fingerprint in self._approved_signers

    # -- appraisal -------------------------------------------------------------

    def fresh_nonce(self) -> bytes:
        """Anti-replay challenge for a remote attestation round."""
        self._nonce_counter += 1
        return hashlib.sha256(
            f"attest-nonce:{self._seed}:{self._nonce_counter}".encode()).digest()[:16]

    def appraise(self, quote: Quote, nonce: bytes) -> AppraisalResult:
        """Verify quote signature, nonce, and PCRs against golden values."""
        aik = self._aik_registry.get(quote.tpm_id)
        if aik is None:
            result = AppraisalResult(TrustVerdict.UNKNOWN_PLATFORM, quote.tpm_id,
                                     reason="attestation key not enrolled")
            self._appraisals.append(result)
            return result
        if not verify_quote(aik, quote, nonce):
            result = AppraisalResult(TrustVerdict.UNTRUSTED, quote.tpm_id,
                                     reason="quote signature or nonce invalid")
            self._appraisals.append(result)
            return result
        golden = self._golden.get(quote.tpm_id)
        if golden is None:
            result = AppraisalResult(TrustVerdict.UNKNOWN_PLATFORM, quote.tpm_id,
                                     reason="no golden values registered")
            self._appraisals.append(result)
            return result
        mismatched = tuple(sorted(
            i for i, expected in golden.items()
            if quote.pcr_values.get(i) != expected))
        if mismatched:
            result = AppraisalResult(TrustVerdict.UNTRUSTED, quote.tpm_id,
                                     mismatched_pcrs=mismatched,
                                     reason="PCR values diverge from golden")
        else:
            result = AppraisalResult(TrustVerdict.TRUSTED, quote.tpm_id)
        self._appraisals.append(result)
        return result

    def attest(self, tpm: Tpm, pcr_indices: Tuple[int, ...]) -> AppraisalResult:
        """Run one full remote-attestation round against a live TPM."""
        nonce = self.fresh_nonce()
        quote = tpm.quote(nonce, pcr_indices)
        return self.appraise(quote, nonce)

    def require_trusted(self, tpm: Tpm, pcr_indices: Tuple[int, ...]) -> None:
        """Attest and raise :class:`AttestationError` unless trusted."""
        result = self.attest(tpm, pcr_indices)
        if not result.trusted:
            raise AttestationError(
                f"platform {tpm.tpm_id} failed attestation: {result.reason} "
                f"(pcrs {result.mismatched_pcrs})")

    @property
    def appraisal_history(self) -> List[AppraisalResult]:
        return list(self._appraisals)
