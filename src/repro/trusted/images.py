"""Image Management Service (Section II-A).

"The Image Management Service accepts only those VM images that are signed
by an approved list of keys managed by an attestation service."  Images
(VM and container alike) are registered with an RSA signature over their
content; registration verifies both the signature and the signer's
membership in the attestation service's approved list.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.errors import AttestationError, NotFoundError
from ..cloudsim.nodes import SoftwareComponent
from ..crypto.rsa import RsaPrivateKey, RsaPublicKey, rsa_sign, rsa_verify
from .attestation import AttestationService


@dataclass(frozen=True)
class SignedImage:
    """A software image plus its provenance signature."""

    image: SoftwareComponent
    signer_fingerprint: str
    signature: bytes

    @property
    def name(self) -> str:
        return self.image.name

    @property
    def measurement(self) -> str:
        return self.image.measurement


def sign_image(image: SoftwareComponent, private_key: RsaPrivateKey) -> SignedImage:
    """Sign an image's measured content."""
    payload = image.name.encode() + b"\x00" + image.content
    signature = rsa_sign(private_key, payload)
    fingerprint = private_key.public_key().fingerprint()
    return SignedImage(image, fingerprint, signature)


class ImageManagementService:
    """Catalog of approved, signature-verified images."""

    def __init__(self, attestation: AttestationService) -> None:
        self._attestation = attestation
        self._signer_keys: Dict[str, RsaPublicKey] = {}
        self._catalog: Dict[str, SignedImage] = {}

    def register_signer(self, public_key: RsaPublicKey) -> str:
        """Make a signer's key known; approval is the attestation service's call."""
        fingerprint = public_key.fingerprint()
        self._signer_keys[fingerprint] = public_key
        return fingerprint

    def register_image(self, signed: SignedImage) -> str:
        """Admit an image to the catalog; returns its measurement.

        Rejects images whose signature does not verify or whose signer is
        not on the attestation service's approved list.
        """
        public_key = self._signer_keys.get(signed.signer_fingerprint)
        if public_key is None:
            raise AttestationError(
                f"image {signed.name}: signer {signed.signer_fingerprint} unknown")
        if not self._attestation.is_approved_signer(signed.signer_fingerprint):
            raise AttestationError(
                f"image {signed.name}: signer {signed.signer_fingerprint} "
                "is not approved")
        payload = signed.image.name.encode() + b"\x00" + signed.image.content
        if not rsa_verify(public_key, payload, signed.signature):
            raise AttestationError(f"image {signed.name}: signature invalid")
        self._catalog[signed.measurement] = signed
        return signed.measurement

    def is_approved(self, image: SoftwareComponent) -> bool:
        """True when this exact content is in the verified catalog."""
        entry = self._catalog.get(image.measurement)
        if entry is None:
            return False
        # Re-check the signer is still approved (revocation takes effect).
        return self._attestation.is_approved_signer(entry.signer_fingerprint)

    def lookup(self, measurement: str) -> SignedImage:
        try:
            return self._catalog[measurement]
        except KeyError:
            raise NotFoundError(f"image measurement {measurement} not found") from None

    def catalog_measurements(self) -> List[str]:
        return sorted(self._catalog)
