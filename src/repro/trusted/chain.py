"""Transitive trust chain: hardware root of trust to containers (Fig. 5).

"Create a root of trust at the hardware level (using TPMs and Attestation
Service) for each server and then extend it, via a transitive trust model,
to the hypervisor ... leverage the vTPM to transitively extend the root of
trust to the guest OS and the software stack therein."

:class:`TrustedBootOrchestrator` performs measured boot at every layer:

1. host: CRTM measures BIOS, BIOS measures hypervisor -> host TPM PCRs;
2. VM: the VM's (instrumented) BIOS and kernel are measured into the VM's
   vTPM; the trusted kernel extends the chain to libraries/drivers;
3. container: the container image is measured into the vTPM container PCR
   before start.

After each boot, golden values are registered with the attestation
service so the freshly measured state defines "approved" — subsequent
changes (tampered kernels, unapproved containers) make attestation fail.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.errors import AttestationError
from ..cloudsim.nodes import Container, Host, SoftwareComponent, VirtualMachine
from .attestation import AppraisalResult, AttestationService
from .tpm import (
    PCR_BIOS,
    PCR_CONTAINER,
    PCR_CRTM,
    PCR_HYPERVISOR,
    PCR_VM_BIOS,
    PCR_VM_IMAGE,
    PCR_VM_KERNEL,
    Tpm,
)
from .vtpm import VtpmInterfaceContainer, VtpmManager

HOST_PCRS: Tuple[int, ...] = (PCR_CRTM, PCR_BIOS, PCR_HYPERVISOR)
VM_PCRS: Tuple[int, ...] = (PCR_VM_BIOS, PCR_VM_KERNEL, PCR_VM_IMAGE)
VM_AND_CONTAINER_PCRS: Tuple[int, ...] = VM_PCRS + (PCR_CONTAINER,)


@dataclass
class TrustedHost:
    """A booted host with its hardware TPM and vTPM manager."""

    host: Host
    tpm: Tpm
    vtpm_manager: VtpmManager
    vtpm_interfaces: Dict[str, VtpmInterfaceContainer] = field(default_factory=dict)


class TrustedBootOrchestrator:
    """Boots hosts/VMs/containers with measured boot and registers goldens."""

    def __init__(self, attestation: AttestationService,
                 seed: Optional[int] = None) -> None:
        self.attestation = attestation
        self._seed = seed
        self._hosts: Dict[str, TrustedHost] = {}
        self._tpm_counter = 0

    # -- host layer ---------------------------------------------------------

    def boot_host(self, host: Host) -> TrustedHost:
        """Measured boot of a bare-metal host: CRTM -> BIOS -> hypervisor."""
        if not host.has_tpm:
            raise AttestationError(f"host {host.host_id} has no TPM")
        self._tpm_counter += 1
        seed = None if self._seed is None else self._seed * 31 + self._tpm_counter
        tpm = Tpm(tpm_id=f"tpm:{host.host_id}", seed=seed)

        crtm = SoftwareComponent("crtm", b"core-root-of-trust-measurement-v1")
        tpm.extend(PCR_CRTM, crtm.name, crtm.measurement)
        tpm.extend(PCR_BIOS, host.bios.name, host.bios.measurement)
        tpm.extend(PCR_HYPERVISOR, host.hypervisor.name, host.hypervisor.measurement)

        self.attestation.enroll_platform(tpm)
        self.attestation.set_golden_values(
            tpm.tpm_id, {i: tpm.read_pcr(i) for i in HOST_PCRS})

        trusted = TrustedHost(host=host, tpm=tpm,
                              vtpm_manager=VtpmManager(host.host_id, seed=seed))
        self._hosts[host.host_id] = trusted
        return trusted

    def host_of(self, host_id: str) -> TrustedHost:
        return self._hosts[host_id]

    def attest_host(self, host_id: str) -> AppraisalResult:
        """Remote attestation of a host's hardware root of trust."""
        trusted = self._hosts[host_id]
        return self.attestation.attest(trusted.tpm, HOST_PCRS)

    # -- VM layer --------------------------------------------------------------

    def boot_vm(self, host_id: str, vm: VirtualMachine) -> Tpm:
        """Measured boot of a VM into its own vTPM instance.

        The host must currently attest as trusted — this is the transitive
        step: a VM's chain is only rooted if the layer below it is.
        """
        host_result = self.attest_host(host_id)
        if not host_result.trusted:
            raise AttestationError(
                f"refusing to boot VM {vm.vm_id}: host {host_id} untrusted "
                f"({host_result.reason})")
        trusted = self._hosts[host_id]
        vtpm = trusted.vtpm_manager.create_instance(vm.vm_id)
        vtpm.extend(PCR_VM_BIOS, vm.bios.name, vm.bios.measurement)
        vtpm.extend(PCR_VM_KERNEL, vm.kernel.name, vm.kernel.measurement)
        vtpm.extend(PCR_VM_IMAGE, vm.image.name, vm.image.measurement)

        self.attestation.enroll_platform(vtpm)
        # Golden values cover the container PCR from the start (still at
        # its reset value), so a VM quote always speaks for its full
        # attestable state — launching containers later updates the golden
        # rather than widening the quote's PCR set.
        self.attestation.set_golden_values(
            vtpm.tpm_id,
            {i: vtpm.read_pcr(i) for i in VM_AND_CONTAINER_PCRS})
        trusted.vtpm_interfaces[vm.vm_id] = VtpmInterfaceContainer(vm.vm_id, vtpm)
        return vtpm

    def attest_vm(self, host_id: str, vm_id: str) -> AppraisalResult:
        trusted = self._hosts[host_id]
        vtpm = trusted.vtpm_manager.instance_for(vm_id)
        return self.attestation.attest(vtpm, VM_AND_CONTAINER_PCRS)

    # -- container layer ----------------------------------------------------------

    def launch_trusted_container(self, host_id: str, vm: VirtualMachine,
                                 image: SoftwareComponent,
                                 container_id: Optional[str] = None,
                                 transport: str = "unix-socket") -> Container:
        """Measure a container image into the vTPM, then start it.

        The VM must attest as trusted first (transitive model), and after
        launch the container PCR's new value becomes part of the VM's
        golden state so the *set* of running containers is attestable.
        """
        vm_result = self.attest_vm(host_id, vm.vm_id)
        if not vm_result.trusted:
            raise AttestationError(
                f"refusing container on {vm.vm_id}: VM untrusted "
                f"({vm_result.reason})")
        trusted = self._hosts[host_id]
        interface = trusted.vtpm_interfaces[vm.vm_id]
        cid = container_id if container_id is not None else f"ctr-{len(vm.containers)}"
        channel = interface.open_channel(cid, transport=transport)
        channel.extend(PCR_CONTAINER, image.name, image.measurement)

        vtpm = trusted.vtpm_manager.instance_for(vm.vm_id)
        golden = self.attestation.golden_values(vtpm.tpm_id)
        golden[PCR_CONTAINER] = vtpm.read_pcr(PCR_CONTAINER)
        self.attestation.set_golden_values(vtpm.tpm_id, golden)
        return vm.launch_container(cid, image)

    def attest_vm_with_containers(self, host_id: str,
                                  vm_id: str) -> AppraisalResult:
        """Attest a VM including its container PCR."""
        trusted = self._hosts[host_id]
        vtpm = trusted.vtpm_manager.instance_for(vm_id)
        return self.attestation.attest(vtpm, VM_AND_CONTAINER_PCRS)

    # -- full-chain report ------------------------------------------------------

    def chain_report(self, host_id: str, vm_id: str) -> Dict[str, bool]:
        """Trust verdict at every layer of the chain for one VM."""
        host_ok = self.attest_host(host_id).trusted
        vm_ok = self.attest_vm(host_id, vm_id).trusted if host_ok else False
        containers_ok = (self.attest_vm_with_containers(host_id, vm_id).trusted
                         if vm_ok else False)
        return {"host": host_ok, "vm": vm_ok, "containers": containers_ok}
