"""Software Trusted Platform Module (Section II-A, ref [6]).

Models the TPM operations the platform's root of trust relies on:

* **PCR banks** with the ``extend`` hash-chaining operation — the only way
  a PCR changes, so a PCR value summarises the exact sequence of measured
  components since reset;
* **quotes** — the PCR bank signed with a TPM-resident attestation key,
  bound to a verifier-chosen nonce to prevent replay;
* **seal/unseal** — encrypting data so it can only be recovered when the
  PCRs hold specified values.

The attestation service appraises quotes against golden values; nothing in
the trust logic depends on the TPM being hardware.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.errors import AttestationError, IntegrityError
from ..crypto.rsa import (
    RsaPrivateKey,
    RsaPublicKey,
    generate_keypair,
    rsa_sign,
    rsa_verify,
)
from ..crypto.symmetric import Ciphertext, SharedKeyCipher, hkdf_expand

PCR_COUNT = 24
_ZERO = b"\x00" * 32


@dataclass(frozen=True)
class Quote:
    """A signed snapshot of selected PCRs.

    ``pcr_values`` maps PCR index -> hex digest at quote time.  ``nonce``
    is the verifier's anti-replay challenge.  ``signature`` covers both.
    """

    tpm_id: str
    nonce: bytes
    pcr_values: Dict[int, str]
    event_count: int
    signature: bytes

    def payload(self) -> bytes:
        body = json.dumps(
            {"tpm": self.tpm_id, "nonce": self.nonce.hex(),
             "pcrs": {str(k): v for k, v in sorted(self.pcr_values.items())},
             "events": self.event_count},
            sort_keys=True, separators=(",", ":")).encode()
        return body


@dataclass(frozen=True)
class MeasurementEvent:
    """One entry of the measured-boot event log."""

    pcr_index: int
    component: str
    measurement: str  # hex digest of the component


class Tpm:
    """One TPM instance: PCR bank, event log, attestation + storage keys."""

    def __init__(self, tpm_id: str, seed: Optional[int] = None) -> None:
        self.tpm_id = tpm_id
        self._pcrs: List[bytes] = [_ZERO] * PCR_COUNT
        self._event_log: List[MeasurementEvent] = []
        key_seed = None if seed is None else seed * 7919 + 13
        self._aik: RsaPrivateKey = generate_keypair(bits=1024, seed=key_seed)
        seal_seed = f"tpm-seal:{tpm_id}:{seed}".encode()
        self._seal_key = hashlib.sha256(seal_seed).digest()

    # -- PCR operations -------------------------------------------------------

    def extend(self, pcr_index: int, component: str, measurement: str) -> str:
        """PCR <- H(PCR || measurement); append to the event log."""
        self._check_index(pcr_index)
        digest = bytes.fromhex(measurement)
        self._pcrs[pcr_index] = hashlib.sha256(
            self._pcrs[pcr_index] + digest).digest()
        self._event_log.append(MeasurementEvent(pcr_index, component, measurement))
        return self._pcrs[pcr_index].hex()

    def read_pcr(self, pcr_index: int) -> str:
        self._check_index(pcr_index)
        return self._pcrs[pcr_index].hex()

    def reset(self) -> None:
        """Platform reset: PCRs return to zero, log cleared."""
        self._pcrs = [_ZERO] * PCR_COUNT
        self._event_log = []

    @property
    def event_log(self) -> List[MeasurementEvent]:
        return list(self._event_log)

    # -- attestation ----------------------------------------------------------

    @property
    def attestation_public_key(self) -> RsaPublicKey:
        return self._aik.public_key()

    def quote(self, nonce: bytes, pcr_indices: Tuple[int, ...]) -> Quote:
        """Sign the selected PCRs together with the verifier's nonce."""
        for i in pcr_indices:
            self._check_index(i)
        values = {i: self._pcrs[i].hex() for i in pcr_indices}
        unsigned = Quote(self.tpm_id, nonce, values, len(self._event_log), b"")
        signature = rsa_sign(self._aik, unsigned.payload())
        return Quote(self.tpm_id, nonce, values, len(self._event_log), signature)

    # -- sealed storage ---------------------------------------------------------

    def seal(self, data: bytes, pcr_indices: Tuple[int, ...]) -> bytes:
        """Encrypt data bound to the *current* values of the given PCRs."""
        policy = self._pcr_policy(pcr_indices)
        cipher = SharedKeyCipher(hkdf_expand(self._seal_key, policy))
        header = json.dumps(sorted(pcr_indices)).encode()
        sealed = cipher.encrypt(data, associated_data=header)
        return len(header).to_bytes(4, "big") + header + sealed.to_bytes()

    def unseal(self, blob: bytes) -> bytes:
        """Recover sealed data; fails if any bound PCR has changed."""
        header_len = int.from_bytes(blob[:4], "big")
        header = blob[4:4 + header_len]
        pcr_indices = tuple(json.loads(header.decode()))
        policy = self._pcr_policy(pcr_indices)
        cipher = SharedKeyCipher(hkdf_expand(self._seal_key, policy))
        try:
            return cipher.decrypt(Ciphertext.from_bytes(blob[4 + header_len:]),
                                  associated_data=header)
        except IntegrityError:
            raise AttestationError(
                "unseal failed: PCR state differs from seal-time policy"
            ) from None

    def _pcr_policy(self, pcr_indices: Tuple[int, ...]) -> bytes:
        h = hashlib.sha256()
        for i in sorted(pcr_indices):
            self._check_index(i)
            h.update(i.to_bytes(1, "big") + self._pcrs[i])
        return h.digest()

    def _check_index(self, i: int) -> None:
        if not 0 <= i < PCR_COUNT:
            raise IndexError(f"PCR index {i} out of range")


def verify_quote(public_key: RsaPublicKey, quote: Quote, nonce: bytes) -> bool:
    """Check quote signature and nonce freshness."""
    if quote.nonce != nonce:
        return False
    return rsa_verify(public_key, quote.payload(), quote.signature)


# Conventional PCR allocation used by the trust chain (mirrors TCG usage).
PCR_CRTM = 0
PCR_BIOS = 1
PCR_HYPERVISOR = 2
PCR_VM_BIOS = 8
PCR_VM_KERNEL = 9
PCR_VM_IMAGE = 10
PCR_CONTAINER = 12
