"""The versioned ``/v1/studies`` federated-study API.

Tenant traffic reaches the :class:`~.study.FederatedStudyService` only
through :meth:`~repro.core.api.ApiGateway.dispatch`, so federated
authentication, per-route rate limits, RBAC (WRITE on ``studies`` to
propose/approve/run, READ to poll), metering, and audit logging all apply
before any study state changes.  Tenant isolation is strict: another
tenant's study id behaves exactly like a missing one (404).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from ..core.api import ApiGateway, RequestContext, RouteSpec
from ..core.errors import NotFoundError, ValidationError
from ..rbac.model import Action, ScopeKind
from .study import ANALYSES, FederatedStudyService

# The resource type the /v1/studies routes guard.
STUDIES_RESOURCE = "studies"

# Per-route rate limits (requests per window per tenant).  Running a
# study is the expensive verb; status polling the loosest.
PROPOSE_RATE_LIMIT = 20
DECIDE_RATE_LIMIT = 60
RUN_RATE_LIMIT = 10
STATUS_RATE_LIMIT = 240
RESULT_RATE_LIMIT = 60
RATE_WINDOW_S = 60.0


@dataclass(frozen=True)
class StudyProposalRequest:
    """Typed envelope for ``studies.propose``."""

    analysis: str
    group_id: str
    participants: Tuple[str, ...]
    threshold: int
    tags: Dict[str, str] = field(default_factory=dict)

    def validate(self) -> None:
        if self.analysis not in ANALYSES:
            raise ValidationError(
                f"analysis must be one of {ANALYSES}, got {self.analysis!r}")
        if not self.group_id:
            raise ValidationError("group_id is required")
        participants = tuple(self.participants)
        if not participants:
            raise ValidationError("a study needs at least one institution")
        if len(set(participants)) != len(participants):
            raise ValidationError("participants must be unique")
        if not isinstance(self.threshold, int):
            raise ValidationError("threshold must be an integer")
        if not 1 <= self.threshold <= len(participants):
            raise ValidationError(
                f"threshold {self.threshold} outside "
                f"1..{len(participants)}")


class StudiesApi:
    """Registers the ``/v1/studies`` routes against one study service."""

    def __init__(self, service: FederatedStudyService) -> None:
        self.service = service

    # -- wiring ---------------------------------------------------------------

    def register_routes(self, gateway: ApiGateway) -> None:
        gateway.register_route(RouteSpec(
            path="/studies/propose", handler=self.propose,
            action=Action.WRITE, resource_type=STUDIES_RESOURCE,
            scope_kind=ScopeKind.TENANT,
            description="propose a federated study (M-of-N approval)",
            rate_limit=PROPOSE_RATE_LIMIT, rate_window_s=RATE_WINDOW_S))
        gateway.register_route(RouteSpec(
            path="/studies/approve", handler=self.approve,
            action=Action.WRITE, resource_type=STUDIES_RESOURCE,
            scope_kind=ScopeKind.TENANT,
            description="record one institution's approval",
            rate_limit=DECIDE_RATE_LIMIT, rate_window_s=RATE_WINDOW_S))
        gateway.register_route(RouteSpec(
            path="/studies/deny", handler=self.deny,
            action=Action.WRITE, resource_type=STUDIES_RESOURCE,
            scope_kind=ScopeKind.TENANT,
            description="record one institution's veto",
            rate_limit=DECIDE_RATE_LIMIT, rate_window_s=RATE_WINDOW_S))
        gateway.register_route(RouteSpec(
            path="/studies/run", handler=self.run,
            action=Action.WRITE, resource_type=STUDIES_RESOURCE,
            scope_kind=ScopeKind.TENANT,
            description="run an approved study's federated analysis",
            rate_limit=RUN_RATE_LIMIT, rate_window_s=RATE_WINDOW_S))
        gateway.register_route(RouteSpec(
            path="/studies/status", handler=self.status,
            action=Action.READ, resource_type=STUDIES_RESOURCE,
            scope_kind=ScopeKind.TENANT,
            description="poll a study's lifecycle state and approvals",
            rate_limit=STATUS_RATE_LIMIT, rate_window_s=RATE_WINDOW_S))
        gateway.register_route(RouteSpec(
            path="/studies/result", handler=self.result,
            action=Action.READ, resource_type=STUDIES_RESOURCE,
            scope_kind=ScopeKind.TENANT,
            description="fetch a completed study's aggregate result",
            rate_limit=RESULT_RATE_LIMIT, rate_window_s=RATE_WINDOW_S))

    # -- handlers -------------------------------------------------------------

    def propose(self, context: RequestContext,
                request: StudyProposalRequest) -> Dict[str, Any]:
        if not isinstance(request, StudyProposalRequest):
            raise ValidationError(
                "studies.propose takes a StudyProposalRequest envelope")
        request.validate()
        opened = self.service.propose(
            tenant_id=context.tenant_id,
            researcher=context.user.user_id,
            analysis=request.analysis, group_id=request.group_id,
            participants=list(request.participants),
            threshold=request.threshold)
        self._audit(context, opened["study_id"], "proposed",
                    extra=f"analysis={request.analysis} "
                          f"threshold={request.threshold}-of-"
                          f"{len(request.participants)}")
        return self.service.status(opened["study_id"])

    def approve(self, context: RequestContext, study_id: str,
                institution: str) -> Dict[str, Any]:
        self._owned(context, study_id)
        state = self.service.approve(study_id, institution)
        self._audit(context, study_id, "approval recorded",
                    extra=f"institution={institution} state={state}")
        return self.service.status(study_id)

    def deny(self, context: RequestContext, study_id: str,
             institution: str) -> Dict[str, Any]:
        self._owned(context, study_id)
        self.service.deny(study_id, institution)
        self._audit(context, study_id, "denial recorded",
                    extra=f"institution={institution}")
        return self.service.status(study_id)

    def run(self, context: RequestContext, study_id: str) -> Dict[str, Any]:
        self._owned(context, study_id)
        summary = self.service.run(study_id)
        self._audit(context, study_id, "run",
                    extra=f"rounds={summary['rounds']} "
                          f"digest={summary['result_digest'][:16]}")
        return summary

    def status(self, context: RequestContext,
               study_id: str) -> Dict[str, Any]:
        self._owned(context, study_id)
        self._audit(context, study_id, "status read")
        return self.service.status(study_id)

    def result(self, context: RequestContext,
               study_id: str) -> Dict[str, Any]:
        self._owned(context, study_id)
        local = self.service._known(study_id)
        fitted = self.service.result_object(study_id)
        self._audit(context, study_id, "result read")
        if local["analysis"] == "jmf":
            body = {
                "analysis": "jmf",
                "drug_source_weights": {
                    k: float(v)
                    for k, v in fitted.drug_source_weights.items()},
                "disease_source_weights": {
                    k: float(v)
                    for k, v in fitted.disease_source_weights.items()},
                "objective": [float(o) for o in fitted.objective_history],
            }
        else:
            body = {
                "analysis": "delt",
                "effects": [float(e) for e in fitted.effects],
                "objective": [float(o) for o in fitted.objective_history],
            }
        body["study_id"] = study_id
        return body

    # -- internals ------------------------------------------------------------

    def _owned(self, context: RequestContext, study_id: str) -> None:
        """Tenant isolation: someone else's study looks like no study."""
        tenant = self.service.study_tenant(study_id)
        if tenant is None or tenant != context.tenant_id:
            raise NotFoundError(f"no study {study_id!r}")

    def _audit(self, context: RequestContext, study_id: str, verb: str,
               extra: str = "") -> None:
        monitoring = self.service.monitoring
        if monitoring is None:
            return
        suffix = f" {extra}" if extra else ""
        monitoring.log(
            "audit",
            f"study {study_id} {verb} by user {context.user.user_id} "
            f"tenant {context.tenant_id} request "
            f"{context.request_id}{suffix}")
