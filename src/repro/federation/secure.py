"""Secure-aggregation primitives for federated analytics.

Bonawitz-style pairwise additive masking over fixed-point words: every
pair of institutions shares a secret; for each aggregation round each
institution derives a mask vector per peer from that secret and adds it
with a sign that depends on the pair's ordering (``+`` toward
lexicographically larger peers, ``-`` toward smaller ones).  When the
coordinator sums the masked vectors of *all* participants the masks
cancel exactly and only the sum of the true values remains — no single
institution's partial statistic is ever visible in the clear.

Values are encoded as fixed-point integers (scale :data:`SCALE`) in
``Z_{2^64}``, so integer statistics (e.g. evidence counts) aggregate
*exactly* and float statistics are quantized at ``2^-24`` — far inside
the rtol 1e-2 the federated-vs-centralized acceptance bound allows.

The pairwise secret here is derived deterministically from both parties'
masking keys (:func:`pair_secret`); it stands in for the Diffie-Hellman
exchange a deployment would run, which is out of scope for the
simulation.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Sequence

import numpy as np

from ..core.errors import IntegrityError, ValidationError
from ..crypto.symmetric import KEY_BYTES, _keystream, hkdf_expand

SCALE_BITS = 24
SCALE = 1 << SCALE_BITS
WORD_BITS = 64
MODULUS = 1 << WORD_BITS
_HALF = MODULUS >> 1


def pair_secret(key_a: bytes, key_b: bytes, context: str) -> bytes:
    """Deterministic shared secret for one (unordered) pair of parties.

    Symmetric in its key arguments, so both institutions derive the same
    secret; ``context`` (e.g. the study id) domain-separates studies.
    """
    if len(key_a) != KEY_BYTES or len(key_b) != KEY_BYTES:
        raise ValidationError("pair_secret needs two full-size masking keys")
    lo, hi = sorted([key_a, key_b])
    mixed = hashlib.sha256(lo + hi).digest()
    return hkdf_expand(mixed, b"fed-pair|" + context.encode())


def mask_words(secret: bytes, round_tag: str, length: int) -> List[int]:
    """Pseudorandom mask vector for one round, as 64-bit words."""
    nonce = hashlib.sha256(b"fed-round|" + round_tag.encode()).digest()[:16]
    raw = _keystream(secret, nonce, length * 8)
    return [int.from_bytes(raw[i * 8:(i + 1) * 8], "big")
            for i in range(length)]


def encode_vector(values: np.ndarray) -> List[int]:
    """Fixed-point encode a float vector into ``Z_{2^64}`` words."""
    flat = np.asarray(values, dtype=float).reshape(-1)
    if not np.all(np.isfinite(flat)):
        raise ValidationError("cannot encode non-finite values")
    return [int(round(float(v) * SCALE)) % MODULUS for v in flat]


def decode_vector(words: Sequence[int]) -> np.ndarray:
    """Invert :func:`encode_vector` (centered lift, then unscale)."""
    lifted = [w - MODULUS if w >= _HALF else w for w in words]
    return np.array([v / SCALE for v in lifted], dtype=float)


def mask_vector(values: np.ndarray, institution: str,
                peer_secrets: Dict[str, bytes], round_tag: str) -> List[int]:
    """Encode and pairwise-mask one institution's partial statistic.

    ``peer_secrets`` maps every *other* participant's name to the pair
    secret shared with it.  The signs are antisymmetric across each pair,
    so summing all participants' masked vectors cancels every mask.
    """
    words = encode_vector(values)
    for peer in sorted(peer_secrets):
        mask = mask_words(peer_secrets[peer], round_tag, len(words))
        if institution < peer:
            words = [(w + m) % MODULUS for w, m in zip(words, mask)]
        else:
            words = [(w - m) % MODULUS for w, m in zip(words, mask)]
    return words


def combine_masked(masked: Dict[str, Sequence[int]]) -> np.ndarray:
    """Sum all participants' masked vectors; masks cancel, sum remains.

    Raises :class:`IntegrityError` on ragged vectors — a short vector
    would leave another pair's mask uncancelled and corrupt the sum.
    """
    if not masked:
        raise ValidationError("nothing to combine")
    lengths = {len(words) for words in masked.values()}
    if len(lengths) != 1:
        raise IntegrityError(
            f"masked vectors disagree on length: {sorted(lengths)}")
    (length,) = lengths
    total = [0] * length
    for words in masked.values():
        total = [(t + w) % MODULUS for t, w in zip(total, words)]
    return decode_vector(total)


def words_to_bytes(words: Iterable[int]) -> bytes:
    """Serialize mask words for encryption/commitment."""
    return b"".join(int(w).to_bytes(8, "big") for w in words)


def bytes_to_words(raw: bytes) -> List[int]:
    if len(raw) % 8 != 0:
        raise IntegrityError("masked payload length not a multiple of 8")
    return [int.from_bytes(raw[i:i + 8], "big") for i in range(0, len(raw), 8)]
