"""Federated study lifecycle coordinator.

:class:`FederatedStudyService` drives the study state machine the paper's
multi-stakeholder setting implies — PROPOSED -> APPROVED -> RUNNING ->
COMPLETE/DENIED — with every transition recorded as an endorsed
transaction on the provenance ledger's ``study`` chaincode, so M-of-N
threshold approval is enforced on-chain, not by coordinator goodwill.

An aggregation round is four phases:

1. **compute** — a task graph on the compute scheduler, one task per
   institution, produces the encrypted pairwise-masked partials;
2. **delivery** — each upload crosses the institution -> coordinator link
   (chaos-aware: dropped links are retried with capped backoff);
3. **ledger** — upload commitments ``H(ciphertext || key_fingerprint ||
   ts || institution)`` land as one endorsed batch via the sharded write
   path, where the ``study`` chaincode refuses any commitment before the
   study holds its M approvals;
4. **combine** — the coordinator verifies each upload against its
   on-ledger commitment, decrypts, and sums; the pairwise masks cancel
   and only the aggregate remains.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from ..cloudsim.clock import SimClock
from ..cloudsim.monitoring import MonitoringService
from ..cloudsim.tracing import maybe_span
from ..compute.graph import TaskGraph
from ..compute.scheduler import Scheduler
from ..core.errors import (
    ConfigurationError,
    IntegrityError,
    ServiceUnavailableError,
    StudyError,
    ValidationError,
)
from ..crypto.symmetric import Ciphertext, SharedKeyCipher, generate_key, hkdf_expand
from .institution import Institution, MaskedUpload
from .secure import bytes_to_words, combine_masked, pair_secret

COORDINATOR_ID = "federation-coordinator"
ANALYSES = ("jmf", "delt")

# Delivery retry policy for chaos-dropped institution uplinks.
BACKOFF_BASE_S = 0.5
BACKOFF_CAP_S = 8.0
MAX_DELIVERY_ATTEMPTS = 12


@dataclass
class JmfStudyConfig:
    """Coordinator-side configuration for federated JMF studies."""

    n_drugs: int
    n_diseases: int
    drug_similarities: Dict[str, np.ndarray]
    disease_similarities: Dict[str, np.ndarray]
    jmf_kwargs: Dict[str, Any] = field(default_factory=dict)


@dataclass
class DeltStudyConfig:
    """Coordinator-side configuration for federated DELT studies."""

    n_drugs: int
    ridge: float = 1.0
    network_weight: float = 0.0
    drug_similarity: Optional[np.ndarray] = None
    use_time_drift: bool = True
    max_iterations: int = 20
    tolerance: float = 1e-6


class FederatedStudyService:
    """Coordinates studies across institutions, a ledger, and a scheduler."""

    def __init__(self, *, clock: SimClock, network: Any,
                 scheduler: Scheduler,
                 institutions: Sequence[Institution],
                 monitoring: Optional[MonitoringService] = None,
                 tracer=None, seed: int = 0,
                 jmf_config: Optional[JmfStudyConfig] = None,
                 delt_config: Optional[DeltStudyConfig] = None) -> None:
        self.clock = clock
        self.network = network
        self.scheduler = scheduler
        self.monitoring = monitoring
        self.tracer = tracer
        self.institutions: Dict[str, Institution] = {
            inst.name: inst for inst in institutions}
        self.jmf_config = jmf_config
        self.delt_config = delt_config
        self._root_key = generate_key(seed * 104_729 + 11)
        self._studies: Dict[str, Dict[str, Any]] = {}
        self._results: Dict[str, Any] = {}
        self._counter = 0

    # -- ledger plumbing (sharded and single-channel networks) ---------------

    def _is_sharded(self) -> bool:
        return hasattr(self.network, "channel_for")

    def _invoke(self, routing_key: str, method: str, **args: Any) -> Any:
        if self._is_sharded():
            channel = self.network.channel_for(routing_key)
            return channel.invoke(COORDINATOR_ID, "study", method, **args)
        return self.network.invoke(COORDINATOR_ID, "study", method, **args)

    def _query(self, routing_key: str, method: str, **args: Any) -> Any:
        if self._is_sharded():
            return self.network.query(routing_key, "study", method, **args)
        return self.network.query("study", method, **args)

    def _record_commitments(self, study_id: str,
                            uploads: Sequence[MaskedUpload]) -> None:
        """One endorsed batch of commitments through the write path."""
        requests = []
        for upload in uploads:
            args = {"study_id": study_id, "round_tag": upload.round_tag,
                    "institution": upload.institution,
                    "commitment": upload.commitment(),
                    "committed_at": upload.created_at}
            requests.append(("study", "record_commitment", args))
        if self._is_sharded():
            # All of a study's records share its routing key, so the whole
            # batch lands (pipelined) on the study's home shard.
            self.network.ingest(
                COORDINATOR_ID,
                [(study_id, request) for request in requests])
        else:
            self.network.submit_batch(COORDINATOR_ID, requests)
            self.network.flush()

    # -- lifecycle ------------------------------------------------------------

    def propose(self, *, tenant_id: str, researcher: str, analysis: str,
                group_id: str, participants: Sequence[str],
                threshold: int) -> Dict[str, Any]:
        """Open a study; returns its id and on-ledger state."""
        if analysis not in ANALYSES:
            raise ValidationError(
                f"unknown analysis {analysis!r}; expected one of {ANALYSES}")
        unknown = sorted(set(participants) - set(self.institutions))
        if unknown:
            raise ValidationError(f"unknown institutions: {unknown}")
        self._counter += 1
        study_id = f"study-{self._counter:06d}"
        self._invoke(
            study_id, "propose", study_id=study_id, researcher=researcher,
            analysis=analysis, group_id=group_id,
            participants=sorted(set(participants)), threshold=int(threshold),
            proposed_at=self.clock.now)
        study_master = hkdf_expand(self._root_key,
                                   b"study|" + study_id.encode())
        for name in sorted(set(participants)):
            self.institutions[name].enroll_study(study_id, study_master)
        self._studies[study_id] = {
            "study_id": study_id, "tenant_id": tenant_id,
            "researcher": researcher, "analysis": analysis,
            "group_id": group_id,
            "participants": sorted(set(participants)),
            "threshold": int(threshold), "master": study_master,
            "job_ids": [], "upload_retries": 0, "rounds": 0,
            "trace_id": None,
        }
        self._log(f"study {study_id} proposed by {researcher} "
                  f"({analysis}, {threshold}-of-{len(set(participants))})")
        return {"study_id": study_id, "state": "proposed"}

    def approve(self, study_id: str, institution: str) -> str:
        """Record one institution's on-ledger approval."""
        self._known(study_id)
        self._precheck_decision(study_id, institution,
                                allowed=("proposed", "approved"))
        self._invoke(study_id, "approve", study_id=study_id,
                     institution=institution, approved_at=self.clock.now)
        state = self.ledger_status(study_id)["state"]
        self._log(f"study {study_id} approved by {institution} -> {state}")
        return state

    def deny(self, study_id: str, institution: str) -> str:
        """Record one institution's on-ledger veto."""
        self._known(study_id)
        self._precheck_decision(study_id, institution, allowed=("proposed",))
        self._invoke(study_id, "deny", study_id=study_id,
                     institution=institution, denied_at=self.clock.now)
        self._log(f"study {study_id} denied by {institution}")
        return "denied"

    def _precheck_decision(self, study_id: str, institution: str,
                           allowed: Sequence[str]) -> None:
        """Client-side mirror of the chaincode's lifecycle checks.

        The contract remains the authority (an invalid transition fails
        endorsement regardless); this precheck turns the common mistakes
        into :class:`StudyError` with a readable message instead of a
        failed-endorsement error.
        """
        record = self.ledger_status(study_id)
        if institution not in record["participants"]:
            raise StudyError(
                f"{institution!r} is not a participant of {study_id!r}")
        if record["state"] not in allowed:
            raise StudyError(
                f"study {study_id!r} is {record['state']}; decision refused")

    def ledger_status(self, study_id: str) -> Dict[str, Any]:
        """The on-ledger study record."""
        record = self._query(study_id, "status", study_id=study_id)
        if record is None:
            raise StudyError(f"study {study_id!r} is not on the ledger")
        return record

    def status(self, study_id: str) -> Dict[str, Any]:
        """Ledger state merged with coordinator-side run bookkeeping."""
        local = self._known(study_id)
        record = self.ledger_status(study_id)
        return {
            "study_id": study_id, "state": record["state"],
            "analysis": record["analysis"], "group_id": record["group_id"],
            "participants": record["participants"],
            "threshold": record["threshold"],
            "approvals": [a["institution"] for a in record["approvals"]],
            "denials": [d["institution"] for d in record["denials"]],
            "rounds": local["rounds"], "job_ids": list(local["job_ids"]),
            "upload_retries": local["upload_retries"],
            "trace_id": local["trace_id"],
        }

    def ledger_commitments(self, study_id: str) -> Dict[str, Dict[str, Any]]:
        """All on-ledger upload commitments for a study."""
        self._known(study_id)
        return self._query(study_id, "commitments", study_id=study_id)

    def run(self, study_id: str) -> Dict[str, Any]:
        """Execute an approved study end to end; returns a result summary.

        Refuses (``StudyError``) unless the ledger shows the study
        APPROVED with its full M-of-N approvals — no aggregation round
        starts before threshold approval.
        """
        local = self._known(study_id)
        record = self.ledger_status(study_id)
        if record["state"] != "approved":
            raise StudyError(
                f"study {study_id!r} is {record['state']} with "
                f"{len(record['approvals'])} of {record['threshold']} "
                f"approvals; cannot run")
        self._invoke(study_id, "start", study_id=study_id,
                     started_at=self.clock.now)
        with maybe_span(self.tracer, "federation.study", "federation",
                        study=study_id, analysis=local["analysis"]) as span:
            local["trace_id"] = getattr(span, "trace_id", None)
            from .analytics import federated_delt, federated_jmf
            if local["analysis"] == "jmf":
                if self.jmf_config is None:
                    raise ConfigurationError("no JMF study config installed")
                result = federated_jmf(self, study_id, self.jmf_config)
            else:
                if self.delt_config is None:
                    raise ConfigurationError("no DELT study config installed")
                result = federated_delt(self, study_id, self.delt_config)
        digest = result_digest(local["analysis"], result)
        self._invoke(study_id, "complete", study_id=study_id,
                     completed_at=self.clock.now, result_digest=digest)
        self._results[study_id] = result
        self._log(f"study {study_id} complete, result digest {digest[:16]}")
        return {"study_id": study_id, "state": "complete",
                "result_digest": digest, "rounds": local["rounds"],
                "job_ids": list(local["job_ids"]),
                "upload_retries": local["upload_retries"],
                "trace_id": local["trace_id"]}

    def result_object(self, study_id: str) -> Any:
        """The fitted result (JmfResult / DeltResult) of a completed study."""
        if study_id not in self._results:
            raise StudyError(f"study {study_id!r} has no result yet")
        return self._results[study_id]

    # -- the aggregation round ------------------------------------------------

    def aggregation_round(self, study_id: str, round_tag: str,
                          compute_fn: Callable[[Institution], np.ndarray],
                          *, cost_s: float = 0.05) -> np.ndarray:
        """Run one secure-aggregation round; returns the combined vector."""
        local = self._known(study_id)
        participants = local["participants"]
        with maybe_span(self.tracer, "federation.round", "federation",
                        study=study_id, round=round_tag):
            uploads = self._compute_phase(local, round_tag, compute_fn,
                                          cost_s)
            delivered = self._delivery_phase(local, uploads)
            self._record_commitments(study_id, delivered)
            self._verify_phase(study_id, round_tag, delivered, participants)
            combined = self._combine_phase(local, delivered)
        local["rounds"] += 1
        return combined

    def _compute_phase(self, local: Dict[str, Any], round_tag: str,
                       compute_fn: Callable[[Institution], np.ndarray],
                       cost_s: float) -> List[MaskedUpload]:
        """One task per institution on the compute scheduler."""
        study_id = local["study_id"]
        participants = local["participants"]
        graph = TaskGraph(f"{study_id}:{round_tag}")

        def make_task(name: str):
            institution = self.institutions[name]
            secrets = {peer: pair_secret(institution.masking_key,
                                         self.institutions[peer].masking_key,
                                         study_id)
                       for peer in participants if peer != name}

            def task(_inputs: Dict[str, Any]) -> MaskedUpload:
                values = compute_fn(institution)
                return institution.masked_upload(study_id, round_tag,
                                                 values, secrets)
            return task

        for name in participants:
            graph.add_task(f"partial:{name}", make_task(name),
                           cost_s=cost_s, output_bytes=4096)
        job = self.scheduler.submit(graph, tenant_id=local["tenant_id"],
                                    submitted_by=local["researcher"])
        self.scheduler.run(job.job_id)
        local["job_ids"].append(job.job_id)
        outputs = self.scheduler.result(job.job_id)
        return [outputs[f"partial:{name}"] for name in participants]

    def _delivery_phase(self, local: Dict[str, Any],
                        uploads: Sequence[MaskedUpload]
                        ) -> List[MaskedUpload]:
        """Pull every upload across its (possibly chaotic) uplink."""
        delivered: List[MaskedUpload] = []
        for upload in uploads:
            institution = self.institutions[upload.institution]
            backoff = BACKOFF_BASE_S
            for attempt in range(MAX_DELIVERY_ATTEMPTS):
                try:
                    delivered.append(institution.transmit(upload))
                    break
                except ServiceUnavailableError:
                    local["upload_retries"] += 1
                    if self.monitoring is not None:
                        self.monitoring.metrics.incr(
                            "federation.upload.retries")
                    self.clock.advance(backoff)
                    backoff = min(backoff * 2.0, BACKOFF_CAP_S)
            else:
                raise ServiceUnavailableError(
                    f"institution {upload.institution} unreachable after "
                    f"{MAX_DELIVERY_ATTEMPTS} attempts")
        return delivered

    def _verify_phase(self, study_id: str, round_tag: str,
                      uploads: Sequence[MaskedUpload],
                      participants: Sequence[str]) -> None:
        """Every upload must match its endorsed on-ledger commitment."""
        on_ledger = self.ledger_commitments(study_id)
        for upload in uploads:
            key = (f"studycommit/{study_id}/{round_tag}/"
                   f"{upload.institution}")
            entry = on_ledger.get(key)
            if entry is None:
                raise IntegrityError(f"no ledger commitment at {key}")
            if entry["commitment"] != upload.commitment():
                raise IntegrityError(f"ledger commitment mismatch at {key}")
        if len(uploads) != len(participants):
            raise IntegrityError(
                f"round {round_tag}: {len(uploads)} uploads for "
                f"{len(participants)} participants")

    def _combine_phase(self, local: Dict[str, Any],
                       uploads: Sequence[MaskedUpload]) -> np.ndarray:
        """Decrypt from the wire format and cancel the pairwise masks."""
        study_id = local["study_id"]
        masked: Dict[str, List[int]] = {}
        for upload in uploads:
            key = hkdf_expand(local["master"],
                              b"inst|" + upload.institution.encode())
            cipher = SharedKeyCipher(key)
            associated = (f"{study_id}|{upload.round_tag}|"
                          f"{upload.institution}").encode()
            payload = cipher.decrypt(Ciphertext.from_bytes(upload.ciphertext),
                                     associated)
            masked[upload.institution] = bytes_to_words(payload)
        return combine_masked(masked)

    # -- internals ------------------------------------------------------------

    def _known(self, study_id: str) -> Dict[str, Any]:
        local = self._studies.get(study_id)
        if local is None:
            raise StudyError(f"study {study_id!r} is not registered here")
        return local

    def studies_for_tenant(self, tenant_id: str) -> List[str]:
        return sorted(sid for sid, local in self._studies.items()
                      if local["tenant_id"] == tenant_id)

    def study_tenant(self, study_id: str) -> Optional[str]:
        local = self._studies.get(study_id)
        return None if local is None else local["tenant_id"]

    def _log(self, message: str) -> None:
        if self.monitoring is not None:
            self.monitoring.log("federation", message)


def result_digest(analysis: str, result: Any) -> str:
    """Stable digest of a fitted result for the on-ledger COMPLETE record."""
    if analysis == "jmf":
        payload = {"analysis": "jmf",
                   "drug_source_weights": {
                       k: round(float(v), 9)
                       for k, v in result.drug_source_weights.items()},
                   "disease_source_weights": {
                       k: round(float(v), 9)
                       for k, v in result.disease_source_weights.items()},
                   "objective": [round(float(o), 6)
                                 for o in result.objective_history],
                   "scores": np.round(result.scores(), 9).tolist()}
    else:
        payload = {"analysis": "delt",
                   "effects": np.round(result.effects, 9).tolist(),
                   "objective": [round(float(o), 6)
                                 for o in result.objective_history]}
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True,
                   separators=(",", ":")).encode()).hexdigest()
