"""Deterministic partitioning of synthetic cohorts across institutions.

The federated tests, example, and benchmark all need the same setup: an
EMR cohort and/or a drug-disease evidence set split across N institutions
with per-patient consent, such that the *union* of the partitions is
exactly the cohort the centralized model sees.  Keeping the construction
here makes federated-vs-centralized comparisons trivially fair — both
sides are built from the same partition.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..analytics.delt import PatientSeries
from ..cloudsim.clock import SimClock
from .institution import Institution


def partition_patients(patients: Sequence[PatientSeries],
                       n_institutions: int) -> List[List[PatientSeries]]:
    """Round-robin a cohort's patients across institutions."""
    if n_institutions < 1:
        raise ValueError("need at least one institution")
    parts: List[List[PatientSeries]] = [[] for _ in range(n_institutions)]
    for index, patient in enumerate(patients):
        parts[index % n_institutions].append(patient)
    return parts


def synthesize_evidence(association_matrix: np.ndarray,
                        patient_ids: Sequence[str],
                        events_per_patient: int = 3,
                        seed: int = 0) -> Dict[str, List[Tuple[int, int]]]:
    """Per-patient (drug, disease) observations drawn from true associations."""
    pairs = np.argwhere(np.asarray(association_matrix) > 0)
    if pairs.size == 0:
        return {pid: [] for pid in patient_ids}
    rng = np.random.default_rng(seed)
    evidence: Dict[str, List[Tuple[int, int]]] = {}
    for pid in patient_ids:
        picks = rng.integers(0, len(pairs), size=events_per_patient)
        evidence[pid] = [(int(pairs[i][0]), int(pairs[i][1]))
                         for i in picks]
    return evidence


def build_institutions(n_institutions: int, clock: SimClock, group_id: str,
                       *, patients: Sequence[PatientSeries] = (),
                       association_matrix: Optional[np.ndarray] = None,
                       events_per_patient: int = 3, seed: int = 0,
                       consent_rate: float = 1.0) -> List[Institution]:
    """Build N institutions over a partitioned cohort with consent granted.

    Patients are round-robined; each consents to ``group_id`` with
    probability ``consent_rate`` (seeded, so the consented subset is
    reproducible — and computable for the centralized comparison via
    :func:`consented_union`).
    """
    parts = partition_patients(patients, n_institutions)
    rng = np.random.default_rng(seed * 13 + 5)
    institutions: List[Institution] = []
    for index in range(n_institutions):
        name = f"inst-{index:02d}"
        local_patients = parts[index]
        pids = [p.patient_id for p in local_patients]
        evidence = (synthesize_evidence(association_matrix, pids,
                                        events_per_patient,
                                        seed=seed * 31 + index)
                    if association_matrix is not None else {})
        institution = Institution(
            name, clock, patients=local_patients, evidence=evidence,
            masking_seed=seed * 1009 + index)
        for pid in sorted(set(pids) | set(evidence)):
            if rng.random() < consent_rate:
                institution.grant_consent(pid, group_id)
        institutions.append(institution)
    return institutions


def consented_union(institutions: Sequence[Institution],
                    group_id: str) -> Tuple[List[PatientSeries],
                                            Dict[str, List[Tuple[int, int]]]]:
    """The pooled (patients, evidence) a centralized run would see.

    Exactly the records that cleared the per-patient consent check at
    their home institution — the ground truth for federated-vs-
    centralized closeness assertions.
    """
    pooled_patients: List[PatientSeries] = []
    pooled_evidence: Dict[str, List[Tuple[int, int]]] = {}
    for institution in institutions:
        for pid in institution.consented_patients(group_id):
            patient = institution._patients.get(pid)
            if patient is not None:
                pooled_patients.append(patient)
            events = institution._evidence.get(pid)
            if events:
                pooled_evidence[pid] = list(events)
    return pooled_patients, pooled_evidence
