"""One institution's private enclave in a federated study.

An :class:`Institution` owns a private EMR partition (longitudinal
patient series plus drug-disease evidence), its own consent registry, and
its own masking key.  Nothing leaves the institution except
pairwise-masked fixed-point partial statistics, encrypted under a
per-study key and logged in the institution's *egress log* — the audit
trail the benchmark checks to assert that zero raw patient rows ever
crossed the trust boundary.

Delivery to the coordinator goes through :meth:`Institution.transmit`,
which consults an attached :class:`~repro.cloudsim.faults.FaultPlan`
(``link_dropped(institution, "coordinator")``), so chaos experiments can
drop an institution's uplink mid-study.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..analytics.delt import PatientSeries, patient_loss, patient_partials
from ..cloudsim.clock import SimClock
from ..core.errors import ServiceUnavailableError, StudyError
from ..crypto.symmetric import SharedKeyCipher, generate_key, hkdf_expand
from ..privacy.consent import ConsentManagementService
from .secure import mask_vector, words_to_bytes

COORDINATOR = "coordinator"


@dataclass(frozen=True)
class EgressRecord:
    """One item that left the institution, as seen by its audit log."""

    study_id: str
    round_tag: str
    kind: str
    digest: str
    commitment: str
    nbytes: int
    at: float


@dataclass(frozen=True)
class MaskedUpload:
    """An encrypted masked partial plus its binding commitment inputs."""

    study_id: str
    round_tag: str
    institution: str
    words: Tuple[int, ...]
    ciphertext: bytes
    key_fingerprint: str
    created_at: float

    def commitment(self) -> str:
        """``H(ciphertext || key_fingerprint || ts || institution)``."""
        h = hashlib.sha256()
        h.update(self.ciphertext)
        h.update(self.key_fingerprint.encode())
        h.update(repr(self.created_at).encode())
        h.update(self.institution.encode())
        return h.hexdigest()


class Institution:
    """A private EMR partition participating in federated studies."""

    def __init__(self, name: str, clock: Optional[SimClock] = None, *,
                 patients: Sequence[PatientSeries] = (),
                 evidence: Optional[Dict[str, List[Tuple[int, int]]]] = None,
                 masking_seed: int = 0,
                 consent: Optional[ConsentManagementService] = None) -> None:
        self.name = name
        self.clock = clock if clock is not None else SimClock()
        self.consent = (consent if consent is not None
                        else ConsentManagementService(self.clock))
        self._patients: Dict[str, PatientSeries] = {
            p.patient_id: p for p in patients}
        # patient -> [(drug_index, disease_index), ...] observed evidence.
        self._evidence: Dict[str, List[Tuple[int, int]]] = dict(evidence or {})
        self.masking_key = generate_key(masking_seed)
        self._study_keys: Dict[str, bytes] = {}
        self._ciphers: Dict[str, SharedKeyCipher] = {}
        self._delt_trends: Dict[str, Dict[str, Tuple[float, float]]] = {}
        self.egress_log: List[EgressRecord] = []
        self.fault_plan = None  # FaultInjector.attach hook

    # -- population -----------------------------------------------------------

    @property
    def n_patients(self) -> int:
        return len(self._patients)

    @property
    def patient_ids(self) -> List[str]:
        return sorted(set(self._patients) | set(self._evidence))

    def grant_consent(self, patient_id: str, group_id: str) -> None:
        """Record a patient's consent for a study group at this site."""
        self.consent.grant(patient_id, group_id)

    def consented_patients(self, group_id: str) -> List[str]:
        """Patients whose active consent covers the study group."""
        return [pid for pid in self.patient_ids
                if self.consent.has_consent(pid, group_id)]

    # -- study enrollment -----------------------------------------------------

    def enroll_study(self, study_id: str, study_master_key: bytes) -> None:
        """Derive this institution's per-study upload key."""
        key = hkdf_expand(study_master_key, b"inst|" + self.name.encode())
        self._study_keys[study_id] = key
        self._ciphers[study_id] = SharedKeyCipher(key)

    def key_fingerprint(self, study_id: str) -> str:
        key = self._study_keys.get(study_id)
        if key is None:
            raise StudyError(
                f"{self.name} is not enrolled in study {study_id!r}")
        return hashlib.sha256(key).hexdigest()[:16]

    # -- local partial statistics --------------------------------------------

    def jmf_counts(self, group_id: str, n_drugs: int,
                   n_diseases: int) -> np.ndarray:
        """Flat drug x disease evidence-count matrix over consented patients."""
        counts = np.zeros((n_drugs, n_diseases), dtype=float)
        for pid in self.consented_patients(group_id):
            for drug, disease in self._evidence.get(pid, []):
                counts[drug, disease] += 1.0
        return counts.reshape(-1)

    def delt_partials(self, group_id: str, beta: np.ndarray,
                      use_time_drift: bool = True) -> np.ndarray:
        """Summed ``(gram, moment)`` over consented patients, flattened.

        Runs the same :func:`~repro.analytics.delt.patient_partials` the
        centralized model runs; the per-patient trends stay local (cached
        for the loss round) — only the sums are returned for masking.
        """
        n_drugs = beta.shape[0]
        gram = np.zeros((n_drugs, n_drugs))
        moment = np.zeros(n_drugs)
        trends = self._delt_trends.setdefault(group_id, {})
        for pid in self.consented_patients(group_id):
            patient = self._patients.get(pid)
            if patient is None:
                continue
            g, m, alpha, drift = patient_partials(patient, beta,
                                                  use_time_drift)
            trends[pid] = (alpha, drift)
            gram += g
            moment += m
        return np.concatenate([gram.reshape(-1), moment])

    def delt_loss(self, group_id: str, beta: np.ndarray) -> np.ndarray:
        """Summed squared-error term under the cached per-patient trends."""
        trends = self._delt_trends.get(group_id, {})
        loss = 0.0
        for pid in self.consented_patients(group_id):
            patient = self._patients.get(pid)
            if patient is None or pid not in trends:
                continue
            alpha, drift = trends[pid]
            loss += patient_loss(patient, beta, alpha, drift)
        return np.array([loss])

    # -- egress ---------------------------------------------------------------

    def masked_upload(self, study_id: str, round_tag: str,
                      values: np.ndarray,
                      peer_secrets: Dict[str, bytes]) -> MaskedUpload:
        """Mask, encrypt, and log one partial statistic for upload."""
        cipher = self._ciphers.get(study_id)
        if cipher is None:
            raise StudyError(
                f"{self.name} is not enrolled in study {study_id!r}")
        words = mask_vector(values, self.name, peer_secrets, round_tag)
        payload = words_to_bytes(words)
        associated = f"{study_id}|{round_tag}|{self.name}".encode()
        ciphertext = cipher.encrypt(payload, associated).to_bytes()
        upload = MaskedUpload(
            study_id=study_id, round_tag=round_tag, institution=self.name,
            words=tuple(words), ciphertext=ciphertext,
            key_fingerprint=self.key_fingerprint(study_id),
            created_at=self.clock.now)
        self.egress_log.append(EgressRecord(
            study_id=study_id, round_tag=round_tag, kind="masked-partial",
            digest=hashlib.sha256(ciphertext).hexdigest(),
            commitment=upload.commitment(), nbytes=len(ciphertext),
            at=self.clock.now))
        return upload

    def transmit(self, upload: MaskedUpload) -> MaskedUpload:
        """Deliver an upload over the institution -> coordinator link.

        Raises :class:`ServiceUnavailableError` while an attached fault
        plan is dropping this institution's uplink.
        """
        plan = self.fault_plan
        if plan is not None and plan.link_dropped(self.name, COORDINATOR):
            raise ServiceUnavailableError(
                f"link {self.name} -> {COORDINATOR} dropped")
        return upload
