"""Federated variants of JMF and DELT over secure-aggregation rounds.

Both reduce to the same shape: per-institution partial statistics that
sum to exactly what the centralized algorithm computes over the pooled
cohort, combined via masked fixed-point aggregation so the coordinator
only ever sees the sums.

* **JMF** federates in a single round: the evidence-count matrix is a sum
  of per-institution counts (integers — exact in fixed point), the
  association matrix is its support, and the factorization itself is a
  deterministic seeded fit at the coordinator.  Federated and centralized
  results are identical to the last bit.

* **DELT** federates per iteration, reusing the *same* shared per-patient
  functions as :class:`~repro.analytics.delt.DeltModel`: institutions fit
  their patients' trends locally and upload only the summed
  ``(gram, moment)`` partials; the coordinator does the pooled ridge
  solve and broadcasts the new beta; a second round aggregates the scalar
  loss for the convergence check.  The only divergence from centralized
  is the ``2^-24`` fixed-point quantization — orders of magnitude inside
  the rtol 1e-2 acceptance bound.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

import numpy as np

from ..analytics.delt import (
    DeltModel,
    DeltResult,
    effects_penalty,
    solve_effects,
)
from ..analytics.jmf import JmfResult, JointMatrixFactorization

if TYPE_CHECKING:
    from .study import DeltStudyConfig, FederatedStudyService, JmfStudyConfig


def federated_jmf(service: "FederatedStudyService", study_id: str,
                  config: "JmfStudyConfig") -> JmfResult:
    """One-round federated JMF: secure-sum the evidence counts, then fit."""
    local = service._known(study_id)
    group_id = local["group_id"]
    combined = service.aggregation_round(
        study_id, "jmf-counts",
        lambda inst: inst.jmf_counts(group_id, config.n_drugs,
                                     config.n_diseases),
        cost_s=0.08)
    counts = np.round(combined).reshape(config.n_drugs, config.n_diseases)
    associations = (counts >= 1.0).astype(float)
    model = JointMatrixFactorization(**config.jmf_kwargs)
    return model.fit(associations, config.drug_similarities,
                     config.disease_similarities)


def federated_delt(service: "FederatedStudyService", study_id: str,
                   config: "DeltStudyConfig") -> DeltResult:
    """Iterative federated DELT mirroring the centralized alternation."""
    local = service._known(study_id)
    group_id = local["group_id"]
    n = config.n_drugs
    laplacian = (DeltModel._build_laplacian(config.drug_similarity)
                 if config.drug_similarity is not None else None)
    beta = np.zeros(n)
    history: List[float] = []
    previous = np.inf
    for iteration in range(config.max_iterations):
        current = beta.copy()
        partials = service.aggregation_round(
            study_id, f"delt-{iteration:02d}-partials",
            lambda inst: inst.delt_partials(group_id, current,
                                            config.use_time_drift),
            cost_s=0.05)
        gram = partials[:n * n].reshape(n, n)
        moment = partials[n * n:]
        beta = solve_effects(gram, moment, config.ridge,
                             config.network_weight, laplacian)
        broadcast = beta.copy()
        loss = service.aggregation_round(
            study_id, f"delt-{iteration:02d}-loss",
            lambda inst: inst.delt_loss(group_id, broadcast),
            cost_s=0.02)
        objective = float(loss[0]) + effects_penalty(
            beta, config.ridge, config.network_weight, laplacian)
        history.append(objective)
        if abs(previous - objective) < config.tolerance * max(1.0, previous):
            break
        previous = objective
    # Baselines and drifts are patient-level statistics: they never leave
    # their institution, so the federated result reports effects only.
    return DeltResult(beta, {}, {}, history)
