"""Federated multi-institution analytics (ROADMAP item 3).

N institutions each hold a private EMR partition; a researcher proposes a
study, M-of-N institutions approve on-ledger, and only then do
secure-aggregation rounds move pairwise-masked partial statistics to the
coordinator — raw patient rows never leave an institution.  Federated
JMF and DELT match their centralized counterparts to well inside rtol
1e-2, and the whole lifecycle is exposed at ``/v1/studies``.
"""

from .institution import (
    COORDINATOR,
    EgressRecord,
    Institution,
    MaskedUpload,
)
from .secure import (
    MODULUS,
    SCALE,
    SCALE_BITS,
    bytes_to_words,
    combine_masked,
    decode_vector,
    encode_vector,
    mask_vector,
    mask_words,
    pair_secret,
    words_to_bytes,
)
from .study import (
    ANALYSES,
    COORDINATOR_ID,
    DeltStudyConfig,
    FederatedStudyService,
    JmfStudyConfig,
    result_digest,
)
from .analytics import federated_delt, federated_jmf
from .api import StudiesApi, StudyProposalRequest
from .cohorts import (
    build_institutions,
    consented_union,
    partition_patients,
    synthesize_evidence,
)

__all__ = [
    "COORDINATOR",
    "COORDINATOR_ID",
    "ANALYSES",
    "EgressRecord",
    "Institution",
    "MaskedUpload",
    "MODULUS",
    "SCALE",
    "SCALE_BITS",
    "bytes_to_words",
    "combine_masked",
    "decode_vector",
    "encode_vector",
    "mask_vector",
    "mask_words",
    "pair_secret",
    "words_to_bytes",
    "DeltStudyConfig",
    "FederatedStudyService",
    "JmfStudyConfig",
    "result_digest",
    "federated_delt",
    "federated_jmf",
    "StudiesApi",
    "StudyProposalRequest",
    "build_institutions",
    "consented_union",
    "partition_patients",
    "synthesize_evidence",
]
