"""Text analysis over PubMed-like abstracts (Section III).

"We provide access to papers in PubMed and PubMed Central.  We perform
text analysis on these papers to extract important scientific facts."

A dictionary-based entity recognizer (drug and disease name lexicons)
scans abstracts for co-mentions; co-occurrence counts with a simple
negation filter become association *evidence*, which the drug-repositioning
pipeline can blend with the structured sources.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from .bases import PubMedLite
from .synthetic import Abstract, BioUniverse

_NEGATION_MARKERS = ("no association", "not associated", "remains unclear",
                     "failed to", "no significant")


@dataclass(frozen=True)
class ExtractedFact:
    """One extracted drug-disease co-mention."""

    drug_id: str
    disease_id: str
    pmid: str
    negated: bool
    sentence: str


class EntityRecognizer:
    """Dictionary NER: exact (case-insensitive, word-boundary) matching."""

    def __init__(self, universe: BioUniverse) -> None:
        self._drug_patterns = [
            (d.drug_id, re.compile(rf"\b{re.escape(d.name)}\b", re.IGNORECASE))
            for d in universe.drugs
        ]
        self._disease_patterns = [
            (d.disease_id, re.compile(rf"\b{re.escape(d.name)}\b", re.IGNORECASE))
            for d in universe.diseases
        ]

    def drugs_in(self, text: str) -> List[str]:
        return [drug_id for drug_id, pattern in self._drug_patterns
                if pattern.search(text)]

    def diseases_in(self, text: str) -> List[str]:
        return [disease_id for disease_id, pattern in self._disease_patterns
                if pattern.search(text)]


class FactExtractor:
    """Extracts drug-disease facts and aggregates evidence counts."""

    def __init__(self, universe: BioUniverse) -> None:
        self._recognizer = EntityRecognizer(universe)
        self._universe = universe

    def extract_from(self, abstract: Abstract) -> List[ExtractedFact]:
        """All drug-disease co-mentions in one abstract."""
        facts: List[ExtractedFact] = []
        for sentence in re.split(r"(?<=[.!?])\s+", abstract.text):
            drugs = self._recognizer.drugs_in(sentence)
            diseases = self._recognizer.diseases_in(sentence)
            if not drugs or not diseases:
                continue
            negated = any(marker in sentence.lower()
                          for marker in _NEGATION_MARKERS)
            for drug_id in drugs:
                for disease_id in diseases:
                    facts.append(ExtractedFact(drug_id, disease_id,
                                               abstract.pmid, negated,
                                               sentence))
        return facts

    def extract_corpus(self,
                       abstracts: Sequence[Abstract]) -> List[ExtractedFact]:
        facts: List[ExtractedFact] = []
        for abstract in abstracts:
            facts.extend(self.extract_from(abstract))
        return facts

    def evidence_matrix(self,
                        abstracts: Sequence[Abstract]) -> np.ndarray:
        """Signed co-occurrence counts aligned with the universe's indexing.

        Positive mentions add 1, negated mentions subtract 1; the result is
        clipped at zero so it can be used as a weak association prior.
        """
        n_drugs = len(self._universe.drugs)
        n_diseases = len(self._universe.diseases)
        drug_index = {d.drug_id: i for i, d in enumerate(self._universe.drugs)}
        disease_index = {d.disease_id: j
                         for j, d in enumerate(self._universe.diseases)}
        counts = np.zeros((n_drugs, n_diseases))
        for fact in self.extract_corpus(abstracts):
            i = drug_index[fact.drug_id]
            j = disease_index[fact.disease_id]
            counts[i, j] += -1.0 if fact.negated else 1.0
        return np.clip(counts, 0.0, None)
