"""Remote access and local caching of knowledge bases (Section III).

"We cache data from these knowledge bases locally.  That way, data can be
accessed and analyzed more quickly than if it needs to be fetched
remotely.  For the most up-to-date data, the remote knowledge bases can be
directly queried."

:class:`RemoteKnowledgeBase` wraps any KB object, charging simulated WAN
latency for every method call.  :class:`CachedKnowledgeBase` puts a local
cache in front, keyed by (method, args), with an explicit ``refresh`` path
for callers that need the most up-to-date values.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from ..cloudsim.clock import SimClock, WAN_ROUND_TRIP
from ..cloudsim.tracing import maybe_span
from ..caching.policies import Cache, LruCache
from ..core.errors import ServiceUnavailableError


class RemoteKnowledgeBase:
    """Proxy that charges network latency for each KB method call.

    Chaos-aware: an attached :class:`~repro.cloudsim.faults.FaultPlan`
    can drop or slow the WAN link the proxy models (``link`` names its
    two endpoints), and an optional
    :class:`~repro.core.resilience.ResilientExecutor` absorbs those
    failures with retries/backoff under a ``kb.<name>`` circuit breaker.
    """

    def __init__(self, base: Any, clock: Optional[SimClock] = None,
                 round_trip_s: float = WAN_ROUND_TRIP,
                 link: Tuple[str, str] = ("cloud-a", "external-kb"),
                 resilience: Optional[Any] = None,
                 per_item_cost_s: float = 2e-4) -> None:
        self._base = base
        self.clock = clock if clock is not None else SimClock()
        self.round_trip_s = round_trip_s
        self.per_item_cost_s = per_item_cost_s
        self.remote_calls = 0
        self.failed_calls = 0
        self.batched_items = 0
        self.name = getattr(base, "name", type(base).__name__)
        self.link = link
        self.fault_plan = None
        self.resilience = resilience
        self.tracer = None   # optional request-path tracing hook

    def call(self, method: str, *args: Hashable) -> Any:
        """Invoke a KB method remotely (clock advances by one round trip)."""
        if self.resilience is not None:
            return self.resilience.call(
                f"kb.{self.name}", lambda: self._call_once(method, *args))
        return self._call_once(method, *args)

    def call_batch(self, method: str, items: Sequence[Hashable]) -> Any:
        """Invoke a *bulk* KB method (``fingerprints``, ``targets_many``...)
        as one request: one round trip plus a per-item marginal cost,
        instead of N full round trips.

        The batch is atomic under faults: a dropped link fails the whole
        request, and an attached resilience executor retries it as a
        whole (counters are only advanced on success, so a retried batch
        is never double-counted).
        """
        items = list(items)
        if self.resilience is not None:
            return self.resilience.call(
                f"kb.{self.name}", lambda: self._call_batch_once(method, items))
        return self._call_batch_once(method, items)

    def _call_once(self, method: str, *args: Hashable) -> Any:
        with maybe_span(self.tracer, "kb.call", "knowledge",
                        kb=self.name, method=method) as span:
            round_trip = self.round_trip_s
            if self.fault_plan is not None:
                round_trip *= self.fault_plan.latency_multiplier(*self.link)
                if self.fault_plan.link_dropped(*self.link):
                    self.clock.advance(round_trip)  # the timed-out trip
                    self.failed_calls += 1
                    span.set_attribute("dropped", True)
                    raise ServiceUnavailableError(
                        f"remote KB {self.name}: "
                        f"{self.link[0]}<->{self.link[1]} "
                        "dropped the request")
            self.clock.advance(round_trip)
            self.remote_calls += 1
            return getattr(self._base, method)(*args)

    def _call_batch_once(self, method: str, items: Sequence[Hashable]) -> Any:
        with maybe_span(self.tracer, "kb.call_batch", "knowledge",
                        kb=self.name, method=method,
                        items=len(items)) as span:
            round_trip = self.round_trip_s + self.per_item_cost_s * len(items)
            if self.fault_plan is not None:
                round_trip *= self.fault_plan.latency_multiplier(*self.link)
                if self.fault_plan.link_dropped(*self.link):
                    self.clock.advance(round_trip)  # the timed-out trip
                    self.failed_calls += 1
                    span.set_attribute("dropped", True)
                    raise ServiceUnavailableError(
                        f"remote KB {self.name}: "
                        f"{self.link[0]}<->{self.link[1]} "
                        f"dropped a {len(items)}-item batch")
            self.clock.advance(round_trip)
            result = getattr(self._base, method)(list(items))
            self.remote_calls += 1
            self.batched_items += len(items)
            return result


class CachedKnowledgeBase:
    """Local cache in front of a remote KB.

    Cache keys are (method, args); values are whatever the KB returned.
    ``get`` serves from cache when possible; ``refresh`` always goes to the
    remote (the paper's "most up-to-date" path) and re-fills the cache.
    """

    def __init__(self, remote: RemoteKnowledgeBase,
                 cache: Optional[Cache] = None,
                 local_access_s: float = 50e-6) -> None:
        self._remote = remote
        self._cache: Cache = cache if cache is not None else LruCache(4096)
        self.local_access_s = local_access_s
        self.clock = remote.clock

    def get(self, method: str, *args: Hashable) -> Any:
        """Cached lookup; falls through to the remote on a miss."""
        key: Tuple = (method, args)
        self.clock.advance(self.local_access_s)
        hit, value = self._cache.lookup(key)
        if hit:
            return value
        value = self._remote.call(method, *args)
        self._cache.put(key, value)
        return value

    def get_many(self, method: str, items: Sequence[Hashable],
                 batch_method: str) -> Dict[Hashable, Any]:
        """Bulk cached lookup: residual misses ship as *one* batched request.

        ``method`` names the single-item call (its cache keys are shared
        with :meth:`get`); ``batch_method`` names the KB's bulk variant,
        which must return a dict keyed by item.
        """
        self.clock.advance(self.local_access_s)   # one local probe per batch
        results: Dict[Hashable, Any] = {}
        misses: List[Hashable] = []
        pending = set()
        for item in items:
            if item in results or item in pending:
                continue   # duplicate within the batch: coalesced
            hit, value = self._cache.lookup((method, (item,)))
            if hit:
                results[item] = value
            else:
                misses.append(item)
                pending.add(item)
        if misses:
            fetched = self._remote.call_batch(batch_method, misses)
            for item in misses:
                value = fetched[item]
                self._cache.put((method, (item,)), value)
                results[item] = value
        return {item: results[item] for item in items}

    def refresh(self, method: str, *args: Hashable) -> Any:
        """Bypass the cache for the freshest value, then re-fill."""
        value = self._remote.call(method, *args)
        self._cache.put((method, args), value)
        return value

    @property
    def hit_ratio(self) -> float:
        return self._cache.stats.hit_ratio

    @property
    def remote_calls(self) -> int:
        return self._remote.remote_calls
