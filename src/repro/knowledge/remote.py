"""Remote access and local caching of knowledge bases (Section III).

"We cache data from these knowledge bases locally.  That way, data can be
accessed and analyzed more quickly than if it needs to be fetched
remotely.  For the most up-to-date data, the remote knowledge bases can be
directly queried."

:class:`RemoteKnowledgeBase` wraps any KB object, charging simulated WAN
latency for every method call.  :class:`CachedKnowledgeBase` puts a local
cache in front, keyed by (method, args), with an explicit ``refresh`` path
for callers that need the most up-to-date values.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, Optional, Tuple

from ..cloudsim.clock import SimClock, WAN_ROUND_TRIP
from ..caching.policies import Cache, LruCache


class RemoteKnowledgeBase:
    """Proxy that charges network latency for each KB method call."""

    def __init__(self, base: Any, clock: Optional[SimClock] = None,
                 round_trip_s: float = WAN_ROUND_TRIP) -> None:
        self._base = base
        self.clock = clock if clock is not None else SimClock()
        self.round_trip_s = round_trip_s
        self.remote_calls = 0
        self.name = getattr(base, "name", type(base).__name__)

    def call(self, method: str, *args: Hashable) -> Any:
        """Invoke a KB method remotely (clock advances by one round trip)."""
        self.clock.advance(self.round_trip_s)
        self.remote_calls += 1
        return getattr(self._base, method)(*args)


class CachedKnowledgeBase:
    """Local cache in front of a remote KB.

    Cache keys are (method, args); values are whatever the KB returned.
    ``get`` serves from cache when possible; ``refresh`` always goes to the
    remote (the paper's "most up-to-date" path) and re-fills the cache.
    """

    def __init__(self, remote: RemoteKnowledgeBase,
                 cache: Optional[Cache] = None,
                 local_access_s: float = 50e-6) -> None:
        self._remote = remote
        self._cache: Cache = cache if cache is not None else LruCache(4096)
        self.local_access_s = local_access_s
        self.clock = remote.clock

    def get(self, method: str, *args: Hashable) -> Any:
        """Cached lookup; falls through to the remote on a miss."""
        key: Tuple = (method, args)
        self.clock.advance(self.local_access_s)
        value = self._cache.get(key)
        if value is not None:
            return value
        value = self._remote.call(method, *args)
        self._cache.put(key, value)
        return value

    def refresh(self, method: str, *args: Hashable) -> Any:
        """Bypass the cache for the freshest value, then re-fill."""
        value = self._remote.call(method, *args)
        self._cache.put((method, args), value)
        return value

    @property
    def hit_ratio(self) -> float:
        return self._cache.stats.hit_ratio

    @property
    def remote_calls(self) -> int:
        return self._remote.remote_calls
