"""Knowledge-base interfaces over the synthetic universe (Section III).

One class per external resource the paper names, each exposing the query
surface the analytics need:

* :class:`PubChemLike` — chemical-structure fingerprints [16];
* :class:`DrugBankLike` — drug targets [17];
* :class:`SiderLike` — drug side effects [18];
* :class:`DisGeNetLike` — gene-disease associations [15];
* :class:`PubMedLite` — abstract search [Section III];
* :class:`WordNetLite` — term synonyms [19].

All are keyed lookups so they can sit behind the remote/caching wrappers.
Each KB also exposes a bulk variant (``fingerprints``, ``targets_many``,
``fetch_many``, ...) taking an id list, so the remote proxy can ship one
batched request instead of N round trips (P4 read path).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..core.errors import NotFoundError
from .synthetic import Abstract, BioUniverse


def _bulk(table: Dict, ids: Sequence[str], what: str,
          copy=lambda v: v) -> Dict:
    """Shared bulk-lookup helper: all-or-nothing over an id list."""
    missing = [i for i in ids if i not in table]
    if missing:
        raise NotFoundError(f"no {what} for {', '.join(sorted(missing))}")
    return {i: copy(table[i]) for i in ids}


class PubChemLike:
    """Chemical structure database: drug id -> fingerprint bits."""

    name = "pubchem"

    def __init__(self, universe: BioUniverse) -> None:
        self._fingerprints = {d.drug_id: d.fingerprint for d in universe.drugs}

    def fingerprint(self, drug_id: str) -> np.ndarray:
        try:
            return self._fingerprints[drug_id]
        except KeyError:
            raise NotFoundError(f"no fingerprint for {drug_id}") from None

    def fingerprints(self, drug_ids: Sequence[str]) -> Dict[str, np.ndarray]:
        """Bulk lookup: one call for a whole id list."""
        return _bulk(self._fingerprints, drug_ids, "fingerprint")

    def set_fingerprint(self, drug_id: str, fingerprint: np.ndarray) -> None:
        """Upsert a fingerprint (streaming drug.update / new-drug events)."""
        self._fingerprints[drug_id] = np.asarray(fingerprint)

    def drug_ids(self) -> List[str]:
        return sorted(self._fingerprints)


class DrugBankLike:
    """Drug target database: drug id -> set of protein targets."""

    name = "drugbank"

    def __init__(self, universe: BioUniverse) -> None:
        self._targets = {d.drug_id: set(d.targets) for d in universe.drugs}
        self._classes = {d.drug_id: d.therapeutic_class for d in universe.drugs}

    def targets(self, drug_id: str) -> Set[str]:
        try:
            return set(self._targets[drug_id])
        except KeyError:
            raise NotFoundError(f"no targets for {drug_id}") from None

    def targets_many(self, drug_ids: Sequence[str]) -> Dict[str, Set[str]]:
        """Bulk lookup: one call for a whole id list."""
        return _bulk(self._targets, drug_ids, "targets", copy=set)

    def set_targets(self, drug_id: str, targets: Set[str],
                    therapeutic_class: Optional[str] = None) -> None:
        """Upsert a drug's target set (streaming drug.update events)."""
        self._targets[drug_id] = set(targets)
        if therapeutic_class is not None:
            self._classes[drug_id] = therapeutic_class
        elif drug_id not in self._classes:
            self._classes[drug_id] = "unclassified"

    def therapeutic_class(self, drug_id: str) -> str:
        try:
            return self._classes[drug_id]
        except KeyError:
            raise NotFoundError(f"no class for {drug_id}") from None

    def therapeutic_classes(self, drug_ids: Sequence[str]) -> Dict[str, str]:
        """Bulk lookup: one call for a whole id list."""
        return _bulk(self._classes, drug_ids, "class")


class SiderLike:
    """Side-effect database: drug id -> set of side-effect terms."""

    name = "sider"

    def __init__(self, universe: BioUniverse) -> None:
        self._side_effects = {d.drug_id: set(d.side_effects)
                              for d in universe.drugs}

    def side_effects(self, drug_id: str) -> Set[str]:
        try:
            return set(self._side_effects[drug_id])
        except KeyError:
            raise NotFoundError(f"no side effects for {drug_id}") from None

    def side_effects_many(self, drug_ids: Sequence[str]
                          ) -> Dict[str, Set[str]]:
        """Bulk lookup: one call for a whole id list."""
        return _bulk(self._side_effects, drug_ids, "side effects", copy=set)

    def set_side_effects(self, drug_id: str, side_effects: Set[str]) -> None:
        """Upsert a drug's side-effect set (streaming drug.update events)."""
        self._side_effects[drug_id] = set(side_effects)


class DisGeNetLike:
    """Gene-disease association database."""

    name = "disgenet"

    def __init__(self, universe: BioUniverse) -> None:
        self._genes_of = {d.disease_id: set(d.genes)
                          for d in universe.diseases}
        self._diseases_of: Dict[str, Set[str]] = {}
        for disease in universe.diseases:
            for gene in disease.genes:
                self._diseases_of.setdefault(gene, set()).add(
                    disease.disease_id)
        self._phenotypes = {d.disease_id: d.phenotype
                            for d in universe.diseases}
        self._ontology = {d.disease_id: d.ontology_path
                          for d in universe.diseases}

    def genes_for_disease(self, disease_id: str) -> Set[str]:
        try:
            return set(self._genes_of[disease_id])
        except KeyError:
            raise NotFoundError(f"unknown disease {disease_id}") from None

    def genes_for_diseases(self, disease_ids: Sequence[str]
                           ) -> Dict[str, Set[str]]:
        """Bulk lookup: one call for a whole id list."""
        return _bulk(self._genes_of, disease_ids, "genes", copy=set)

    def diseases_for_gene(self, gene: str) -> Set[str]:
        return set(self._diseases_of.get(gene, set()))

    def phenotype(self, disease_id: str) -> np.ndarray:
        try:
            return self._phenotypes[disease_id]
        except KeyError:
            raise NotFoundError(f"unknown disease {disease_id}") from None

    def ontology_path(self, disease_id: str) -> Tuple[str, ...]:
        try:
            return self._ontology[disease_id]
        except KeyError:
            raise NotFoundError(f"unknown disease {disease_id}") from None

    def set_genes(self, disease_id: str, genes: Set[str]) -> None:
        """Upsert a disease's gene set, keeping the reverse index honest."""
        for gene in self._genes_of.get(disease_id, set()):
            diseases = self._diseases_of.get(gene)
            if diseases is not None:
                diseases.discard(disease_id)
                if not diseases:
                    del self._diseases_of[gene]
        self._genes_of[disease_id] = set(genes)
        for gene in genes:
            self._diseases_of.setdefault(gene, set()).add(disease_id)

    def set_phenotype(self, disease_id: str, phenotype: np.ndarray) -> None:
        """Upsert a disease's phenotype profile (streaming events)."""
        self._phenotypes[disease_id] = np.asarray(phenotype, dtype=float)

    def set_ontology_path(self, disease_id: str,
                          path: Sequence[str]) -> None:
        """Upsert a disease's ontology path (streaming events)."""
        self._ontology[disease_id] = tuple(path)


class PubMedLite:
    """Abstract corpus with token-index search."""

    name = "pubmed"

    def __init__(self, abstracts: Sequence[Abstract]) -> None:
        self._abstracts = {a.pmid: a for a in abstracts}
        self._index: Dict[str, Set[str]] = {}
        for abstract in abstracts:
            for token in self._tokenize(abstract.title + " " + abstract.text):
                self._index.setdefault(token, set()).add(abstract.pmid)

    @staticmethod
    def _tokenize(text: str) -> List[str]:
        return [t.strip(".,:;()").lower() for t in text.split() if t]

    def fetch(self, pmid: str) -> Abstract:
        try:
            return self._abstracts[pmid]
        except KeyError:
            raise NotFoundError(f"no abstract {pmid}") from None

    def fetch_many(self, pmids: Sequence[str]) -> Dict[str, Abstract]:
        """Bulk lookup: one call for a whole pmid list."""
        return _bulk(self._abstracts, pmids, "abstract")

    def search(self, term: str) -> List[str]:
        """PMIDs whose text mentions the term."""
        return sorted(self._index.get(term.lower(), set()))

    def search_all(self, terms: Sequence[str]) -> List[str]:
        """PMIDs mentioning every term."""
        if not terms:
            return []
        result: Optional[Set[str]] = None
        for term in terms:
            hits = self._index.get(term.lower(), set())
            result = hits if result is None else result & hits
        return sorted(result or set())

    def __len__(self) -> int:
        return len(self._abstracts)


class WordNetLite:
    """Tiny synonym lexicon for query expansion."""

    name = "wordnet"

    _BASE = {
        "efficacy": {"effectiveness", "potency"},
        "disease": {"disorder", "condition", "illness"},
        "drug": {"medication", "compound", "agent"},
        "treatment": {"therapy", "intervention"},
        "reduce": {"lower", "decrease", "diminish"},
        "outcome": {"result", "endpoint"},
    }

    def __init__(self, extra: Optional[Dict[str, Set[str]]] = None) -> None:
        self._synonyms = {k: set(v) for k, v in self._BASE.items()}
        for word, syns in (extra or {}).items():
            self._synonyms.setdefault(word, set()).update(syns)

    def synonyms(self, word: str) -> Set[str]:
        return set(self._synonyms.get(word.lower(), set()))

    def expand(self, words: Sequence[str]) -> Set[str]:
        """The words plus every synonym."""
        out: Set[str] = set()
        for word in words:
            out.add(word.lower())
            out |= self.synonyms(word)
        return out
