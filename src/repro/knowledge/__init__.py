"""Knowledge bases: synthetic universe, KB interfaces, remote+cache, NLP.

Substitutes the paper's external resources (DisGeNet, PubChem, DrugBank,
SIDER, PubMed, WordNet) with synthetic equivalents carrying the same
statistical structure — see DESIGN.md's substitution table.
"""

from .bases import (
    DisGeNetLike,
    DrugBankLike,
    PubChemLike,
    PubMedLite,
    SiderLike,
    WordNetLite,
)
from .remote import CachedKnowledgeBase, RemoteKnowledgeBase
from .synthetic import (
    Abstract,
    BioUniverse,
    Disease,
    Drug,
    generate_universe,
)
from .textmining import EntityRecognizer, ExtractedFact, FactExtractor

__all__ = [
    "DisGeNetLike",
    "DrugBankLike",
    "PubChemLike",
    "PubMedLite",
    "SiderLike",
    "WordNetLite",
    "CachedKnowledgeBase",
    "RemoteKnowledgeBase",
    "Abstract",
    "BioUniverse",
    "Disease",
    "Drug",
    "generate_universe",
    "EntityRecognizer",
    "ExtractedFact",
    "FactExtractor",
]
