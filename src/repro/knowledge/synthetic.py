"""Synthetic biomedical universe (substitute for the paper's databases).

The paper's analytics draw on DisGeNet (gene-disease), PubChem (chemical
structure), DrugBank (drug targets), SIDER (side effects), and PubMed
abstracts — all external resources we cannot ship.  This module generates
a coherent synthetic universe with the statistical structure those
analytics exploit:

* drugs and diseases have **latent factors**; the ground-truth
  drug-disease association matrix is low-rank-plus-noise, exactly the
  regime JMF (Fig. 9) assumes;
* every observable source (fingerprints, targets, side effects,
  phenotypes, ontology, disease genes) is a noisy view of the latents, so
  source similarities correlate with true associations — some sources are
  generated more informative than others, which lets E8 check that JMF's
  learned source weights are interpretable;
* PubMed-like abstracts mention truly associated drug-disease pairs more
  often than random pairs, giving the text-mining pipeline a real signal.

Everything is driven by one integer seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

_CONSONANTS = "bcdfglmnprstvz"
_VOWELS = "aeiou"
_DRUG_SUFFIXES = ["mab", "nib", "pril", "statin", "mide", "zole", "cillin",
                  "oxacin", "dipine", "sartan"]
_DISEASE_SUFFIXES = ["itis", "osis", "emia", "pathy", "oma", "algia",
                     "plegia", "trophy"]


def _pseudo_name(rng: np.random.Generator, suffixes: Sequence[str]) -> str:
    syllables = rng.integers(2, 4)
    name = ""
    for _ in range(int(syllables)):
        name += _CONSONANTS[int(rng.integers(len(_CONSONANTS)))]
        name += _VOWELS[int(rng.integers(len(_VOWELS)))]
    return name + suffixes[int(rng.integers(len(suffixes)))]


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-x))


@dataclass
class Drug:
    """One synthetic drug with its observable profiles."""

    drug_id: str
    name: str
    fingerprint: np.ndarray        # binary chemical-structure bits (PubChem view)
    targets: Set[str]              # protein targets (DrugBank view)
    side_effects: Set[str]         # side-effect terms (SIDER view)
    therapeutic_class: str


@dataclass
class Disease:
    """One synthetic disease with its observable profiles."""

    disease_id: str
    name: str
    phenotype: np.ndarray          # continuous phenotype profile
    ontology_path: Tuple[str, ...]  # position in a disease ontology tree
    genes: Set[str]                # associated genes (DisGeNet view)


@dataclass
class Abstract:
    """A PubMed-like abstract: id, title, body text."""

    pmid: str
    title: str
    text: str


@dataclass
class BioUniverse:
    """The full synthetic universe plus its hidden ground truth."""

    drugs: List[Drug]
    diseases: List[Disease]
    genes: List[str]
    association_matrix: np.ndarray   # binary |drugs| x |diseases| ground truth
    drug_latents: np.ndarray
    disease_latents: np.ndarray
    gene_latents: np.ndarray
    gene_disease_matrix: np.ndarray  # binary |genes| x |diseases| ground truth
    abstracts: List[Abstract]
    source_informativeness: Dict[str, float]
    # CMap-style expression signatures (refs [34], [37]): a drug's
    # perturbation profile anti-correlates with the expression signature of
    # the diseases it treats.
    drug_expression: Optional[np.ndarray] = None     # |drugs| x n_expr_genes
    disease_expression: Optional[np.ndarray] = None  # |diseases| x n_expr_genes

    def drug_index(self, drug_id: str) -> int:
        return next(i for i, d in enumerate(self.drugs) if d.drug_id == drug_id)

    def disease_index(self, disease_id: str) -> int:
        return next(i for i, d in enumerate(self.diseases)
                    if d.disease_id == disease_id)


def _latent_view(latents: np.ndarray, dim: int, noise: float,
                 rng: np.random.Generator) -> np.ndarray:
    """Project latents to an observable continuous view with noise."""
    projection = rng.normal(size=(latents.shape[1], dim))
    view = latents @ projection
    view += rng.normal(scale=noise * view.std() + 1e-9, size=view.shape)
    return view


def _binary_view(latents: np.ndarray, dim: int, noise: float, density: float,
                 rng: np.random.Generator) -> np.ndarray:
    """Binary observable view (fingerprints, target membership...)."""
    view = _latent_view(latents, dim, noise, rng)
    thresholds = np.quantile(view, 1.0 - density, axis=0)
    return (view >= thresholds).astype(np.int8)


def generate_universe(n_drugs: int = 120, n_diseases: int = 80,
                      n_genes: int = 200, latent_dim: int = 8,
                      fingerprint_bits: int = 128, n_targets: int = 60,
                      n_side_effects: int = 90, n_abstracts: int = 400,
                      association_density: float = 0.06,
                      seed: int = 0) -> BioUniverse:
    """Generate the synthetic universe; fully determined by ``seed``."""
    rng = np.random.default_rng(seed)

    drug_latents = rng.normal(size=(n_drugs, latent_dim))
    disease_latents = rng.normal(size=(n_diseases, latent_dim))
    gene_latents = rng.normal(size=(n_genes, latent_dim))

    # Ground-truth associations: top-density of the latent inner products.
    scores = drug_latents @ disease_latents.T
    threshold = np.quantile(scores, 1.0 - association_density)
    association = (scores >= threshold).astype(np.int8)

    gd_scores = gene_latents @ disease_latents.T
    gd_threshold = np.quantile(gd_scores, 1.0 - association_density)
    gene_disease = (gd_scores >= gd_threshold).astype(np.int8)

    # Observable drug views, with deliberately unequal informativeness
    # (noise levels) so learned source weights are checkable.
    informativeness = {
        "chemical": 0.9,     # low-noise fingerprint view
        "target": 0.6,       # medium
        "side_effect": 0.3,  # noisy
        "phenotype": 0.9,
        "ontology": 0.6,
        "disease_gene": 0.3,
    }
    fingerprints = _binary_view(drug_latents, fingerprint_bits,
                                noise=1.0 - informativeness["chemical"],
                                density=0.25, rng=rng)
    target_matrix = _binary_view(drug_latents, n_targets,
                                 noise=1.0 - informativeness["target"],
                                 density=0.12, rng=rng)
    side_effect_matrix = _binary_view(drug_latents, n_side_effects,
                                      noise=1.0 - informativeness["side_effect"],
                                      density=0.15, rng=rng)

    gene_names = [f"GENE{i:04d}" for i in range(n_genes)]
    target_names = [f"P{i:05d}" for i in range(n_targets)]
    side_effect_names = [_pseudo_name(rng, ["nausea", "rash", "edema",
                                            "fatigue", "vertigo", "emesis"])
                         + f"-{i}" for i in range(n_side_effects)]
    classes = ["antineoplastic", "antidiabetic", "cardiovascular",
               "neurological", "antiinfective", "immunomodulator"]

    drugs: List[Drug] = []
    used_names: Set[str] = set()
    for i in range(n_drugs):
        name = _pseudo_name(rng, _DRUG_SUFFIXES)
        while name in used_names:
            name = _pseudo_name(rng, _DRUG_SUFFIXES)
        used_names.add(name)
        # Therapeutic class from the dominant latent dimension.
        class_index = int(np.argmax(np.abs(drug_latents[i])[:len(classes)]))
        drugs.append(Drug(
            drug_id=f"DRG{i:04d}",
            name=name,
            fingerprint=fingerprints[i],
            targets={target_names[t] for t in np.nonzero(target_matrix[i])[0]},
            side_effects={side_effect_names[s]
                          for s in np.nonzero(side_effect_matrix[i])[0]},
            therapeutic_class=classes[class_index],
        ))

    # Disease views.
    phenotypes = _latent_view(disease_latents, 32,
                              noise=1.0 - informativeness["phenotype"], rng=rng)
    # Ontology: hierarchical labels from sign patterns of latents, noisy.
    ontology_noise = 1.0 - informativeness["ontology"]
    diseases: List[Disease] = []
    for j in range(n_diseases):
        name = _pseudo_name(rng, _DISEASE_SUFFIXES)
        while name in used_names:
            name = _pseudo_name(rng, _DISEASE_SUFFIXES)
        used_names.add(name)
        noisy_latent = (disease_latents[j]
                        + rng.normal(scale=2.0 * ontology_noise,
                                     size=disease_latents.shape[1]))
        depth = min(5, disease_latents.shape[1])
        path = tuple(
            f"L{level}:{'p' if noisy_latent[level] >= 0 else 'n'}"
            for level in range(depth))
        gene_set = {gene_names[g] for g in np.nonzero(gene_disease[:, j])[0]}
        diseases.append(Disease(
            disease_id=f"DIS{j:04d}",
            name=name,
            phenotype=phenotypes[j],
            ontology_path=path,
            genes=gene_set,
        ))

    abstracts = _generate_abstracts(drugs, diseases, association,
                                    n_abstracts, rng)

    # Expression signatures over a shared gene panel: disease signature is
    # a projection of its latents; an effective drug's perturbation profile
    # is the *negative* projection (it reverses the disease signature), so
    # anti-correlation carries the treatment signal CMap-style methods use.
    # Expression measurements are the noisiest source in practice (batch
    # effects, cell-line context), so they carry the heaviest noise here:
    # informative enough to beat chance, weaker than the structured sources.
    n_expr_genes = 50
    expr_projection = rng.normal(size=(latent_dim, n_expr_genes))
    disease_expression = disease_latents @ expr_projection
    disease_expression += rng.normal(scale=1.6 * disease_expression.std(),
                                     size=disease_expression.shape)
    drug_expression = -(drug_latents @ expr_projection)
    drug_expression += rng.normal(scale=1.6 * drug_expression.std(),
                                  size=drug_expression.shape)

    return BioUniverse(
        drugs=drugs,
        diseases=diseases,
        genes=gene_names,
        association_matrix=association,
        drug_latents=drug_latents,
        disease_latents=disease_latents,
        gene_latents=gene_latents,
        gene_disease_matrix=gene_disease,
        abstracts=abstracts,
        source_informativeness=informativeness,
        drug_expression=drug_expression,
        disease_expression=disease_expression,
    )


_SENTENCE_TEMPLATES = [
    "We report that {drug} showed significant efficacy in patients with {disease}.",
    "A retrospective cohort suggests {drug} reduces progression of {disease}.",
    "Treatment with {drug} was associated with improved outcomes in {disease}.",
    "{drug} inhibited pathways implicated in the pathogenesis of {disease}.",
]
_NOISE_TEMPLATES = [
    "No association was found between {drug} and {disease} in this trial.",
    "The role of {drug} in {disease} remains unclear and warrants study.",
]


def _generate_abstracts(drugs: List[Drug], diseases: List[Disease],
                        association: np.ndarray, n_abstracts: int,
                        rng: np.random.Generator) -> List[Abstract]:
    """Abstracts mentioning associated pairs 4x more often than random."""
    true_pairs = list(zip(*np.nonzero(association)))
    abstracts: List[Abstract] = []
    for k in range(n_abstracts):
        if true_pairs and rng.random() < 0.7:
            i, j = true_pairs[int(rng.integers(len(true_pairs)))]
            template = _SENTENCE_TEMPLATES[int(rng.integers(
                len(_SENTENCE_TEMPLATES)))]
        else:
            i = int(rng.integers(len(drugs)))
            j = int(rng.integers(len(diseases)))
            template = _NOISE_TEMPLATES[int(rng.integers(len(_NOISE_TEMPLATES)))]
        drug, disease = drugs[int(i)], diseases[int(j)]
        sentence = template.format(drug=drug.name, disease=disease.name)
        filler = ("Methods and baseline characteristics are described in the "
                  "supplement. Additional endpoints were exploratory.")
        abstracts.append(Abstract(
            pmid=f"PM{k:07d}",
            title=f"{drug.name} and {disease.name}: a study",
            text=f"{sentence} {filler}",
        ))
    return abstracts
