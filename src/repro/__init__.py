"""repro — reproduction of "A Trusted Healthcare Data Analytics Cloud
Platform" (Iyengar, Kundu, Sharma, Zhang; ICDCS 2018).

Quickstart::

    from repro import HealthCloudPlatform

    platform = HealthCloudPlatform(seed=42)
    context = platform.register_tenant("acme-health")

Subpackages (see DESIGN.md for the full inventory):

- :mod:`repro.core` — platform facade, errors, identifiers
- :mod:`repro.trusted` — TPM/vTPM, attestation, trust chain
- :mod:`repro.cloudsim` — simulated IaaS substrate
- :mod:`repro.rbac` — tenants/orgs/groups/envs/users/roles/permissions
- :mod:`repro.crypto` — AEAD, RSA, KMS, Merkle, redactable signatures
- :mod:`repro.blockchain` — permissioned ledger + HCLS chaincodes
- :mod:`repro.fhir` — FHIR-subset resources + HL7v2 adapter
- :mod:`repro.privacy` — de-identification, k-anonymity, consent
- :mod:`repro.ingestion` — async pipeline, data lake, export
- :mod:`repro.caching` — policies, hierarchy, consistency
- :mod:`repro.client` — enhanced/basic clients
- :mod:`repro.knowledge` — synthetic KBs + remote/caching wrappers
- :mod:`repro.services` — external AI service registry
- :mod:`repro.analytics` — JMF, DELT, DDI, gene-disease, lifecycle
- :mod:`repro.gateway` — intercloud trusted-container transfer
- :mod:`repro.compliance` — HIPAA/GDPR controls, change mgmt, audit
- :mod:`repro.workloads` — EMR cohorts, access traces
"""

from .core.platform import HealthCloudPlatform, TenantContext

__version__ = "1.0.0"

__all__ = ["HealthCloudPlatform", "TenantContext", "__version__"]
