"""Enhanced and basic clients (Sections I, II-C, III-A; Fig. 4).

"We provide enhanced clients which offer additional functionality for
client machines ... features such as caching, data analytics, and
encryption."  The enhanced client:

* **caches** platform/KB responses locally (orders-of-magnitude cheaper
  than a WAN fetch — experiment E3/E10);
* **encrypts and anonymizes at the client** before upload ("highly
  confidential data can be analyzed and encrypted or anonymized at clients
  before being sent to servers");
* runs **approved models locally** (edge execution — models pushed from
  the platform per Section II-C);
* keeps working **offline**: uploads queue while disconnected and drain on
  reconnect ("clients can also perform processing and analysis while
  disconnected from servers").

:class:`BasicClient` is the thin baseline: every operation is a remote
call, nothing is cached, uploads fail while offline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..caching.policies import Cache, LruCache
from ..core.errors import DisconnectedError, ModelLifecycleError
from ..crypto.rsa import HybridCiphertext, hybrid_encrypt
from ..fhir.resources import Bundle
from ..ingestion.pipeline import ClientRegistration
from ..privacy.deidentify import Deidentifier
from .connection import PlatformConnection


class BasicClient:
    """Baseline thin client: no cache, no edge compute, no offline queue."""

    def __init__(self, connection: PlatformConnection) -> None:
        self.connection = connection

    def fetch(self, route: str, key: str) -> Any:
        """Remote fetch, every time."""
        return self.connection.request(route, {"key": key})

    def fetch_many(self, route: str, keys: List[str]) -> Dict[str, Any]:
        """Per-key round trips — the baseline the batched client beats."""
        return {key: self.connection.request(route, {"key": key})
                for key in keys}

    def run_model(self, model_name: str, payload: Dict[str, Any]) -> Any:
        """Analytics always execute server-side."""
        return self.connection.request("/analytics/run",
                                       {"model": model_name, **payload})

    def upload(self, route: str, body: Dict[str, Any]) -> Any:
        return self.connection.request(route, body)


@dataclass
class _QueuedUpload:
    route: str
    body: Dict[str, Any]


class EnhancedClient:
    """The paper's enhanced client: cache + crypto + edge models + offline."""

    def __init__(self, connection: PlatformConnection,
                 registration: Optional[ClientRegistration] = None,
                 anonymizer: Optional[Deidentifier] = None,
                 cache: Optional[Cache] = None,
                 local_compute_cost_s: float = 0.0) -> None:
        self.connection = connection
        self.registration = registration
        self.anonymizer = anonymizer
        self.cache: Cache = cache if cache is not None else LruCache(1024)
        self.local_compute_cost_s = local_compute_cost_s
        self._models: Dict[str, Callable[[Dict[str, Any]], Any]] = {}
        self._queue: List[_QueuedUpload] = []
        self.local_model_runs = 0
        self.remote_model_runs = 0

    # -- caching ----------------------------------------------------------------

    def fetch(self, route: str, key: str) -> Any:
        """Cache-first fetch; misses go to the platform."""
        hit, value = self.cache.lookup((route, key))
        if hit:
            return value
        value = self.connection.request(route, {"key": key})
        self.cache.put((route, key), value)
        return value

    def fetch_many(self, route: str, keys: List[str]) -> Dict[str, Any]:
        """Bulk cache-first fetch: residual misses go as *one* request.

        The server handler for ``route`` receives ``{"keys": [...]}`` and
        must answer with a dict keyed by those keys; hits never leave the
        client.
        """
        results: Dict[str, Any] = {}
        misses: List[str] = []
        for key in keys:
            if key in results or key in misses:
                continue   # duplicate within the batch
            hit, value = self.cache.lookup((route, key))
            if hit:
                results[key] = value
            else:
                misses.append(key)
        if misses:
            fetched = self.connection.request(route, {"keys": misses})
            for key in misses:
                value = fetched[key]
                self.cache.put((route, key), value)
                results[key] = value
        return {key: results[key] for key in keys}

    # -- edge analytics --------------------------------------------------------------

    def install_model(self, name: str,
                      fn: Callable[[Dict[str, Any]], Any],
                      approved: bool = True) -> None:
        """Accept a model pushed from the platform (must be approved)."""
        if not approved:
            raise ModelLifecycleError(
                f"refusing unapproved model {name!r} on enhanced client")
        self._models[name] = fn

    def run_model(self, model_name: str, payload: Dict[str, Any]) -> Any:
        """Run locally when the model is installed; else fall back remote."""
        model = self._models.get(model_name)
        if model is not None:
            if self.local_compute_cost_s:
                self.connection.fabric.clock.advance(self.local_compute_cost_s)
            self.local_model_runs += 1
            return model(payload)
        self.remote_model_runs += 1
        return self.connection.request("/analytics/run",
                                       {"model": model_name, **payload})

    # -- privacy-preserving upload ---------------------------------------------------

    def prepare_bundle(self, bundle: Bundle,
                       anonymize: bool = False) -> HybridCiphertext:
        """Client-side anonymization (optional) then encryption."""
        if self.registration is None:
            raise ModelLifecycleError(
                "client is not registered with the platform")
        if anonymize:
            if self.anonymizer is None:
                raise ModelLifecycleError("no anonymizer configured")
            bundle, _ = self.anonymizer.deidentify_bundle(bundle)
        return hybrid_encrypt(self.registration.public_key,
                              bundle.to_json().encode())

    # -- offline operation ---------------------------------------------------------------

    def upload(self, route: str, body: Dict[str, Any]) -> Optional[Any]:
        """Upload now if online, otherwise queue; returns None when queued."""
        if not self.connection.online:
            self._queue.append(_QueuedUpload(route, body))
            return None
        return self.connection.request(route, body)

    @property
    def queued_uploads(self) -> int:
        return len(self._queue)

    def drain_queue(self) -> List[Any]:
        """On reconnect: replay queued uploads in order."""
        if not self.connection.online:
            raise DisconnectedError("cannot drain queue while offline")
        responses = []
        while self._queue:
            item = self._queue.pop(0)
            responses.append(self.connection.request(item.route, item.body))
        return responses
