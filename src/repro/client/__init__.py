"""Client SDKs: the enhanced client and the thin baseline (Section III-A)."""

from .connection import PlatformConnection
from .enhanced import BasicClient, EnhancedClient

__all__ = ["PlatformConnection", "BasicClient", "EnhancedClient"]
