"""Client-platform connection over the simulated network (Fig. 4).

Models the HTTPS (REST) surface of Section III-A as a request/response
facade across the :class:`~repro.cloudsim.network.NetworkFabric`: each
call charges the round-trip for its payload sizes, and raises
:class:`DisconnectedError` when the client endpoint is partitioned —
which is what the enhanced client's offline queue absorbs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from ..cloudsim.network import NetworkFabric
from ..core.errors import DisconnectedError, NotFoundError

Handler = Callable[[Dict[str, Any]], Any]


def _payload_size(obj: Any) -> int:
    """Approximate wire size of a request/response body."""
    if isinstance(obj, (bytes, bytearray)):
        return len(obj)
    try:
        return len(json.dumps(obj, default=str).encode())
    except TypeError:
        return 1024


class PlatformConnection:
    """One client's view of the platform's REST API."""

    def __init__(self, fabric: NetworkFabric, client_endpoint: str,
                 server_endpoint: str) -> None:
        self.fabric = fabric
        self.client_endpoint = client_endpoint
        self.server_endpoint = server_endpoint
        self._handlers: Dict[str, Handler] = {}
        self.requests_sent = 0

    def register_handler(self, route: str, handler: Handler) -> None:
        """Install a server-side handler for a route."""
        self._handlers[route] = handler

    @property
    def online(self) -> bool:
        return self.fabric.is_reachable(self.client_endpoint,
                                        self.server_endpoint)

    def request(self, route: str, body: Optional[Dict[str, Any]] = None) -> Any:
        """POST ``body`` to ``route``; charges simulated network time."""
        if not self.online:
            raise DisconnectedError(
                f"{self.client_endpoint} cannot reach {self.server_endpoint}")
        handler = self._handlers.get(route)
        if handler is None:
            raise NotFoundError(f"no handler for route {route!r}")
        body = body if body is not None else {}
        self.fabric.transfer(self.client_endpoint, self.server_endpoint,
                             _payload_size(body))
        response = handler(body)
        self.fabric.transfer(self.server_endpoint, self.client_endpoint,
                             _payload_size(response))
        self.requests_sent += 1
        return response

    def go_offline(self) -> None:
        """Partition the client from the network (travel, dead zone...)."""
        self.fabric.partition(self.client_endpoint)

    def go_online(self) -> None:
        self.fabric.heal(self.client_endpoint)
