"""Event-driven streaming ingestion with incremental analytics (PR 9).

The batch platform ingests EMR uploads in rounds and rebuilds analytics
from scratch on every refresh.  This layer replaces the steady-state hot
path with an open-loop feed of HL7v2/FHIR-shaped events, bounded
per-shard queues with explicit backpressure and pluggable load shedding,
O(delta) incremental recompute for the similarity matrices and HbA1c
baselines, and FHIR Subscription-style push over the healthplane
EventBus — all on the shared SimClock, fully deterministic under a seed.

Modules:

* :mod:`.feed` — seeded MMPP burst generator of :class:`StreamEvent`s;
* :mod:`.queues` — bounded :class:`StreamQueue` + shedding policies;
* :mod:`.incremental` — Welford baselines, row-wise similarity updates,
  dirty-set refresh jobs for the compute scheduler;
* :mod:`.subscriptions` — filter registry + versioned ``/v1/subscriptions``
  gateway surface pushing matches over the EventBus;
* :mod:`.pipeline` — the traced, metered, chaos-hardened hot path tying
  the pieces together in front of :class:`ShardedIngestionFrontend`.
"""

from .feed import FeedGenerator, StreamEvent
from .incremental import (IncrementalSimilarityEngine, RunningBaselines,
                          RunningMoments, StreamingAnalytics)
from .pipeline import StreamingPipeline
from .queues import (AdaptiveShedPolicy, DropOldestPolicy, OfferResult,
                     PriorityShedPolicy, StreamQueue)
from .subscriptions import (SubscriptionApi, SubscriptionFilter,
                            SubscriptionRegistry)

__all__ = [
    "AdaptiveShedPolicy",
    "DropOldestPolicy",
    "FeedGenerator",
    "IncrementalSimilarityEngine",
    "OfferResult",
    "PriorityShedPolicy",
    "RunningBaselines",
    "RunningMoments",
    "StreamEvent",
    "StreamQueue",
    "StreamingAnalytics",
    "StreamingPipeline",
    "SubscriptionApi",
    "SubscriptionFilter",
    "SubscriptionRegistry",
]
