"""Bounded per-shard stream queues with pluggable load shedding.

The open-loop feed does not wait for the platform; when arrivals outrun
the commit path something has to give, and it must give *explicitly*.
Every offered event is therefore accounted for: it is either admitted,
or shed with a recorded reason — the pipeline's ledger invariant
(arrivals == admitted + shed) is what "no silent drops" means.

Three policies cover the classic trade-offs:

* :class:`DropOldestPolicy` — freshest-wins; evict the head.  Right for
  census-style telemetry where only the latest value matters.
* :class:`PriorityShedPolicy` — evict the lowest-(priority, age) victim,
  but only for a strictly higher-priority arrival; otherwise shed the
  arrival itself.  Labs survive census pings.
* :class:`AdaptiveShedPolicy` — probabilistic early shedding between an
  occupancy low/high watermark (seeded, deterministic), protecting
  high-priority classes; an optional ``burn_hook`` lets the healthplane's
  SLO burn rate steepen the curve under an active burn.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from .feed import StreamEvent


@dataclass(frozen=True)
class OfferResult:
    """Outcome of offering one event to a bounded queue."""

    admitted: bool
    shed_event: Optional[StreamEvent] = None   # victim (may be the offer)
    reason: str = ""                           # "", "queue-full", "priority",
                                               # "adaptive"


class SheddingPolicy:
    """Decides what to do when a queue must lose an event."""

    name = "abstract"

    def on_offer(self, queue: "StreamQueue",
                 event: StreamEvent) -> OfferResult:
        raise NotImplementedError


class DropOldestPolicy(SheddingPolicy):
    """Freshest-wins: evict the head to admit the new arrival."""

    name = "drop-oldest"

    def on_offer(self, queue: "StreamQueue",
                 event: StreamEvent) -> OfferResult:
        victim = queue._pop_head()
        queue._append(event)
        return OfferResult(admitted=True, shed_event=victim,
                           reason="queue-full")


class PriorityShedPolicy(SheddingPolicy):
    """Evict the lowest-priority (oldest among ties) entry, but only if
    the incoming event strictly outranks it; otherwise shed the arrival.
    """

    name = "priority"

    def on_offer(self, queue: "StreamQueue",
                 event: StreamEvent) -> OfferResult:
        victim_at = min(range(len(queue._entries)),
                        key=lambda i: (queue._entries[i][1].priority,
                                       queue._entries[i][0]))
        victim = queue._entries[victim_at][1]
        if event.priority > victim.priority:
            queue._pop_at(victim_at)
            queue._append(event)
            return OfferResult(admitted=True, shed_event=victim,
                               reason="priority")
        return OfferResult(admitted=False, shed_event=event,
                           reason="priority")


class AdaptiveShedPolicy(SheddingPolicy):
    """Probabilistic early shedding between occupancy watermarks.

    Below ``low_watermark`` occupancy nothing is shed; above
    ``high_watermark`` every sheddable arrival is refused; in between the
    shed probability ramps linearly.  Events with priority >=
    ``protect_priority`` are never shed adaptively — at a full queue they
    fall back to drop-oldest so they still land.  ``burn_hook`` (e.g. the
    healthplane's page-alert count) scales the ramp: any positive burn
    doubles the effective occupancy pressure.
    """

    name = "adaptive"

    def __init__(self, *, seed: int = 0, low_watermark: float = 0.5,
                 high_watermark: float = 0.9, protect_priority: int = 3,
                 burn_hook: Optional[Callable[[], float]] = None) -> None:
        if not 0.0 <= low_watermark < high_watermark <= 1.0:
            raise ValueError("need 0 <= low < high <= 1 watermarks")
        self._rng = random.Random(seed)
        self.low = low_watermark
        self.high = high_watermark
        self.protect_priority = protect_priority
        self.burn_hook = burn_hook
        self._fallback = DropOldestPolicy()

    def shed_probability(self, occupancy: float) -> float:
        pressure = occupancy
        if self.burn_hook is not None and self.burn_hook() > 0:
            pressure = min(1.0, occupancy * 2.0)
        if pressure <= self.low:
            return 0.0
        if pressure >= self.high:
            return 1.0
        return (pressure - self.low) / (self.high - self.low)

    def on_offer(self, queue: "StreamQueue",
                 event: StreamEvent) -> OfferResult:
        if event.priority >= self.protect_priority:
            if queue.depth >= queue.capacity:
                return self._fallback.on_offer(queue, event)
            queue._append(event)
            return OfferResult(admitted=True)
        probability = self.shed_probability(queue.depth / queue.capacity)
        if probability > 0.0 and self._rng.random() < probability:
            return OfferResult(admitted=False, shed_event=event,
                               reason="adaptive")
        if queue.depth >= queue.capacity:
            return OfferResult(admitted=False, shed_event=event,
                               reason="queue-full")
        queue._append(event)
        return OfferResult(admitted=True)


class StreamQueue:
    """One bounded FIFO in front of a blockchain shard.

    Entries are (sequence, event) so policies can break priority ties by
    age deterministically.  All shed/admit accounting lives here; the
    pipeline aggregates it across shards.  Because an evicted victim was
    itself previously admitted, the exact ledger invariant is

        ``offered == popped + shed + depth``

    — every offered event is, at any instant, exactly one of: handed to
    the processor, explicitly shed, or still queued.
    """

    def __init__(self, name: str, capacity: int,
                 policy: Optional[SheddingPolicy] = None) -> None:
        if capacity < 1:
            raise ValueError("queue capacity must be >= 1")
        self.name = name
        self.capacity = capacity
        self.policy = policy if policy is not None else DropOldestPolicy()
        self._entries: List[Tuple[int, StreamEvent]] = []
        self._sequence = 0
        self.offered = 0
        self.admitted = 0
        self.popped = 0
        self.shed = 0
        self.shed_by_reason: Dict[str, int] = {}
        self.shed_by_class: Dict[str, int] = {}
        self.peak_depth = 0

    # -- policy-facing internals ----------------------------------------------

    def _append(self, event: StreamEvent) -> None:
        self._entries.append((self._sequence, event))
        self._sequence += 1
        self.peak_depth = max(self.peak_depth, len(self._entries))

    def _pop_head(self) -> StreamEvent:
        return self._entries.pop(0)[1]

    def _pop_at(self, index: int) -> StreamEvent:
        return self._entries.pop(index)[1]

    # -- public surface --------------------------------------------------------

    @property
    def depth(self) -> int:
        return len(self._entries)

    @property
    def head(self) -> Optional[StreamEvent]:
        return self._entries[0][1] if self._entries else None

    def offer(self, event: StreamEvent) -> OfferResult:
        """Offer an arrival; returns the explicit admit/shed outcome."""
        self.offered += 1
        if self.depth < self.capacity and not isinstance(
                self.policy, AdaptiveShedPolicy):
            self._append(event)
            result = OfferResult(admitted=True)
        else:
            result = self.policy.on_offer(self, event)
        if result.admitted:
            self.admitted += 1
        if result.shed_event is not None:
            self.shed += 1
            shed = result.shed_event
            self.shed_by_reason[result.reason] = (
                self.shed_by_reason.get(result.reason, 0) + 1)
            self.shed_by_class[shed.event_class] = (
                self.shed_by_class.get(shed.event_class, 0) + 1)
        return result

    def pop(self) -> StreamEvent:
        """Dequeue the head for processing."""
        if not self._entries:
            raise IndexError(f"queue {self.name} is empty")
        self.popped += 1
        return self._pop_head()

    def describe(self) -> Dict:
        return {
            "name": self.name,
            "capacity": self.capacity,
            "policy": self.policy.name,
            "depth": self.depth,
            "peak_depth": self.peak_depth,
            "offered": self.offered,
            "admitted": self.admitted,
            "popped": self.popped,
            "shed": self.shed,
            "shed_by_reason": dict(sorted(self.shed_by_reason.items())),
            "shed_by_class": dict(sorted(self.shed_by_class.items())),
        }
