"""The streaming hot path: arrival → queue → shed/admit → commit →
incremental-update → push.

One serial stream worker on the shared SimClock, driven open-loop: the
feed dictates arrival timestamps, the worker serves queued events
between arrivals, and when arrivals outrun service the bounded per-shard
queues shed — explicitly, with every event accounted for.  The ledger
invariant is

    ``arrivals == processed + shed + still-queued``

so nothing is ever dropped silently.

Every processed event is traced as one span tree (root
``streaming.process`` with admit/commit/update/push children, so the
critical-path attribution sums to exactly 100%), metered under
``streaming.*`` (queue depth and shed rate become healthplane series the
moment a plane is attached, via ``bind_series``), and chaos-hardened:
the commit stage consults an optional
:class:`~repro.cloudsim.faults.FaultPlan` on the worker→orderer link and
retries with backoff, falling back to the frontend's keep-sealed-batches
behaviour when a whole flush window fails.

Push latency (arrival to subscriber publish) is the user-facing SLI; it
feeds a good/bad counter pair and an exemplar-linked histogram, and
:meth:`StreamingPipeline.register_push_slo` turns it into a paging SLO.
"""

from __future__ import annotations

import hashlib
from typing import Any, Callable, Dict, List, Optional

from ..cloudsim.clock import SimClock
from ..cloudsim.monitoring import MonitoringService
from ..cloudsim.tracing import maybe_span
from ..ingestion.pipeline import ShardedIngestionFrontend
from .feed import StreamEvent
from .incremental import StreamingAnalytics
from .queues import DropOldestPolicy, SheddingPolicy, StreamQueue
from .subscriptions import SubscriptionRegistry

# Simulated service costs for the fixed-price stages.  The update stage
# is priced by the analytics layer (pair evaluations actually spent).
ADMIT_COST_S = 0.2e-3      # dequeue + dedupe + consent/stub checks
PUSH_COST_S = 0.3e-3       # match + serialize + publish

PUSH_GOOD_SERIES = "streaming.push.good"
PUSH_BAD_SERIES = "streaming.push.bad"


class StreamingPipeline:
    """Bounded queues + incremental analytics in front of the ledger."""

    def __init__(self, *, frontend: ShardedIngestionFrontend,
                 analytics: StreamingAnalytics,
                 registry: Optional[SubscriptionRegistry] = None,
                 clock: Optional[SimClock] = None,
                 monitoring: Optional[MonitoringService] = None,
                 queue_capacity: int = 64,
                 policy_factory: Optional[
                     Callable[[str], SheddingPolicy]] = None,
                 scheduler=None,
                 flush_every_events: int = 32,
                 flush_round_size: Optional[int] = None,
                 push_slo_threshold_s: float = 0.25,
                 commit_retries: int = 3,
                 retry_backoff_s: float = 2e-3) -> None:
        self.frontend = frontend
        self.analytics = analytics
        self.registry = registry
        self.clock = clock if clock is not None else frontend.network.clock
        self.monitoring = (monitoring if monitoring is not None
                           else frontend.monitoring)
        self.queue_capacity = queue_capacity
        self.policy_factory = (policy_factory if policy_factory is not None
                               else (lambda name: DropOldestPolicy()))
        self.scheduler = scheduler
        self.flush_every_events = flush_every_events
        self.flush_round_size = flush_round_size
        self.push_slo_threshold_s = push_slo_threshold_s
        self.commit_retries = commit_retries
        self.retry_backoff_s = retry_backoff_s
        # Optional hooks, attached post-construction (tracer.bind / chaos).
        self.tracer = None
        self.fault_plan = None
        self._queues: Dict[int, StreamQueue] = {}
        self.arrivals = 0
        self.processed = 0
        self.commit_retries_used = 0
        self.failed_flushes = 0
        self.flushes = 0
        self.refresh_jobs: List[str] = []
        self._since_flush = 0
        self.last_trace_id: Optional[str] = None

    # -- queue plumbing --------------------------------------------------------

    def _queue_for(self, event: StreamEvent) -> StreamQueue:
        shard = self.frontend.network.router.shard_for(event.patient_id)
        queue = self._queues.get(shard)
        if queue is None:
            name = f"stream-{self.frontend.network.shard_name(shard)}"
            queue = StreamQueue(name, self.queue_capacity,
                                self.policy_factory(name))
            self._queues[shard] = queue
        return queue

    @property
    def queues(self) -> List[StreamQueue]:
        return [self._queues[s] for s in sorted(self._queues)]

    @property
    def depth(self) -> int:
        return sum(q.depth for q in self._queues.values())

    @property
    def shed(self) -> int:
        return sum(q.shed for q in self._queues.values())

    def _gauge_depth(self) -> None:
        self.monitoring.metrics.set_gauge("streaming.queue_depth",
                                          self.depth)

    # -- the open-loop driver --------------------------------------------------

    def submit(self, event: StreamEvent) -> bool:
        """Offer one arrival to its shard queue; True when admitted."""
        self.arrivals += 1
        self.monitoring.metrics.incr("streaming.arrivals")
        result = self._queue_for(event).offer(event)
        if result.shed_event is not None:
            self.monitoring.metrics.incr("streaming.shed")
            self.monitoring.metrics.incr(
                f"streaming.shed.{result.reason}")
            self.monitoring.metrics.incr(
                f"streaming.shed.class.{result.shed_event.event_class}")
        if result.admitted:
            self.monitoring.metrics.incr("streaming.admitted")
        self._gauge_depth()
        return result.admitted

    def run(self, events) -> None:
        """Replay an arrival sequence open-loop to completion.

        Between consecutive arrivals the worker serves queued events;
        at each arrival the clock catches up to the arrival timestamp
        (arrivals never wait for the worker — that is what makes the
        queues, and therefore the shedding, real).
        """
        for event in events:
            self.drain_until(event.arrival_s)
            if self.clock.now < event.arrival_s:
                self.clock.advance_to(event.arrival_s)
            self.submit(event)
        self.drain_until(None)
        self.flush(force=True)

    def drain_until(self, limit_s: Optional[float],
                    max_events: Optional[int] = None) -> int:
        """Serve queued events while simulated time remains; returns count."""
        served = 0
        while self._queues and (max_events is None or served < max_events):
            if limit_s is not None and self.clock.now >= limit_s:
                break
            queue = self._next_queue()
            if queue is None:
                break
            self._process(queue.pop())
            self._gauge_depth()
            served += 1
        return served

    def _next_queue(self) -> Optional[StreamQueue]:
        """The non-empty queue whose head arrived first (FIFO overall)."""
        best: Optional[StreamQueue] = None
        best_key = None
        for shard in sorted(self._queues):
            queue = self._queues[shard]
            head = queue.head
            if head is None:
                continue
            key = (head.arrival_s, head.event_id)
            if best_key is None or key < best_key:
                best, best_key = queue, key
        return best

    # -- per-event service -----------------------------------------------------

    def _process(self, event: StreamEvent) -> None:
        """One event through admit → commit → update → push, fully traced."""
        wait_s = self.clock.now - event.arrival_s
        with maybe_span(self.tracer, "streaming.process", "streaming",
                        event_id=event.event_id,
                        event_class=event.event_class,
                        queue_wait_s=wait_s) as root:
            with maybe_span(self.tracer, "streaming.admit",
                            "streaming.queue"):
                self.clock.advance(ADMIT_COST_S)
            with maybe_span(self.tracer, "streaming.commit",
                            "streaming.commit") as span:
                self._commit(event, span)
            with maybe_span(self.tracer, "streaming.update",
                            "streaming.analytics") as span:
                cost = self.analytics.apply(event)
                span.set_attribute("update_cost_s", cost)
                self.clock.advance(cost)
            with maybe_span(self.tracer, "streaming.push",
                            "streaming.push") as span:
                self.clock.advance(PUSH_COST_S)
                self._push(event, root, span)
            self.last_trace_id = root.trace_id
        self.processed += 1
        self.monitoring.metrics.incr("streaming.processed")
        self.monitoring.metrics.observe("streaming.queue.wait_s", wait_s,
                                        trace_id=self.last_trace_id)

    def _commit(self, event: StreamEvent, span) -> None:
        """Buffer the provenance event; flush the window when it is due."""
        leaf = self.frontend.record_event(
            event.patient_id,
            handle=f"stream/{event.event_id}",
            data_hash="sha256:" + hashlib.sha256(
                event.event_id.encode()).hexdigest()[:16],
            event="received",
            actor=event.tenant_id,
            metadata={"event_class": event.event_class,
                      "arrival_s": round(event.arrival_s, 6)})
        span.set_attribute("leaf_index", leaf)
        self._since_flush += 1
        if self._since_flush >= self.flush_every_events:
            self.flush()

    def flush(self, force: bool = False) -> bool:
        """Commit the sealed window, retrying through injected link faults.

        Each attempt first consults the fault plan on the worker→orderer
        link; a dropped attempt costs one backoff and is retried.  When
        every attempt drops, the frontend keeps its sealed batches (its
        failed-ingest contract) and the next window retries them — the
        events are delayed, never lost.
        """
        if not force and self.frontend.pending_events == 0:
            self._since_flush = 0
            return True
        attempts = 0
        while True:
            if (self.fault_plan is not None
                    and self.fault_plan.link_dropped("stream-worker",
                                                     "orderer")):
                attempts += 1
                self.commit_retries_used += 1
                self.monitoring.metrics.incr("streaming.commit.retries")
                if attempts > self.commit_retries:
                    self.failed_flushes += 1
                    self.monitoring.metrics.incr(
                        "streaming.commit.failed_flushes")
                    self._since_flush = 0
                    return False
                self.clock.advance(self.retry_backoff_s * attempts)
                continue
            self.frontend.flush(round_size=self.flush_round_size)
            break
        self.flushes += 1
        self._since_flush = 0
        self._refresh()
        return True

    def _refresh(self) -> None:
        """Re-enqueue dirty-entity rows through the compute scheduler."""
        if self.scheduler is None:
            return
        job = self.analytics.engine.refresh_job(self.scheduler)
        if job is not None:
            self.scheduler.run(job.job_id)
            self.refresh_jobs.append(job.job_id)
            self.monitoring.metrics.incr("streaming.refresh.jobs")

    def _push(self, event: StreamEvent, root, span) -> None:
        latency_s = self.clock.now - event.arrival_s
        matched = 0
        if self.registry is not None:
            matched = self.registry.push(event, latency_s=latency_s,
                                         trace_id=root.trace_id)
        span.set_attribute("matched", matched)
        span.set_attribute("push_latency_s", latency_s)
        self.monitoring.metrics.observe("streaming.push.latency_s",
                                        latency_s,
                                        trace_id=root.trace_id)
        good = latency_s <= self.push_slo_threshold_s
        self.monitoring.metrics.incr(
            PUSH_GOOD_SERIES if good else PUSH_BAD_SERIES)

    # -- SLO wiring ------------------------------------------------------------

    def register_push_slo(self, plane, *, target: float = 0.99,
                          name: str = "streaming-push"):
        """Page when too many pushes exceed the latency threshold."""
        from ..cloudsim.healthplane.slo import FAST_PAGE, SloObjective
        return plane.slos.register(SloObjective(
            name=name, good_series=PUSH_GOOD_SERIES,
            bad_series=PUSH_BAD_SERIES, target=target,
            rules=(FAST_PAGE,)))

    # -- accounting ------------------------------------------------------------

    def ledger(self) -> Dict[str, int]:
        """The no-silent-drops balance sheet."""
        return {
            "arrivals": self.arrivals,
            "processed": self.processed,
            "shed": self.shed,
            "queued": self.depth,
        }

    def ledger_balanced(self) -> bool:
        ledger = self.ledger()
        return (ledger["arrivals"]
                == ledger["processed"] + ledger["shed"] + ledger["queued"])

    def describe(self) -> Dict[str, Any]:
        return {
            "ledger": self.ledger(),
            "ledger_balanced": self.ledger_balanced(),
            "flushes": self.flushes,
            "failed_flushes": self.failed_flushes,
            "commit_retries": self.commit_retries_used,
            "refresh_jobs": len(self.refresh_jobs),
            "queues": [q.describe() for q in self.queues],
            "analytics": self.analytics.describe(),
        }
