"""Open-loop clinical event feed (bursty, seeded, HL7v2/FHIR-shaped).

Real EMR traffic is not a steady drip: admission waves, lab-batch
releases and clinic hours produce bursts an order of magnitude above the
baseline rate.  The generator models this with a two-state MMPP
(Markov-modulated Poisson process): exponential dwell times in a *calm*
and a *burst* state, each with its own exponential interarrival rate.
Arrival timestamps are absolute simulated seconds, so the pipeline can
replay the feed open-loop — events arrive when the feed says they do,
whether or not the platform has kept up.

Every event is a frozen :class:`StreamEvent` whose payload is a plain
JSON-able dict shaped like the fragment of an HL7v2 ORU / FHIR resource
the platform actually consumes: lab observations carry an HbA1c value,
knowledge-base updates carry an explicit mutation spec (fingerprint bit
flips, target/side-effect set edits, phenotype deltas).  Everything is
drawn from one seeded ``random.Random``, so a (seed, duration) pair
always yields the same feed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..knowledge.synthetic import BioUniverse

# Event classes, FHIR-subscription-style dotted topics.  Priorities:
# higher is more important and survives priority shedding longer.
EVENT_CLASSES: Tuple[Tuple[str, int], ...] = (
    ("lab.hba1c", 3),        # Observation (LOINC 4548-4)
    ("adt.census", 1),       # ADT A01-ish census ping, low value
    ("drug.update", 2),      # knowledge-base drug profile change
    ("disease.update", 2),   # knowledge-base disease profile change
)
PRIORITY_OF: Dict[str, int] = dict(EVENT_CLASSES)


@dataclass(frozen=True)
class StreamEvent:
    """One immutable clinical event as it arrives off the wire."""

    event_id: str
    arrival_s: float            # absolute simulated arrival time
    patient_id: str             # routing key (shard affinity)
    tenant_id: str
    event_class: str            # dotted topic, e.g. "lab.hba1c"
    priority: int               # higher survives shedding longer
    payload: Dict = field(default_factory=dict)

    def describe(self) -> Dict:
        """JSON-able summary (payload elided to its keys)."""
        return {
            "event_id": self.event_id,
            "arrival_s": round(self.arrival_s, 6),
            "patient_id": self.patient_id,
            "event_class": self.event_class,
            "priority": self.priority,
            "payload_keys": sorted(self.payload),
        }


class FeedGenerator:
    """Seeded MMPP event source over a fixed patient/entity population.

    ``rate_calm_hz`` / ``rate_burst_hz`` are the Poisson arrival rates in
    the two modulating states; ``dwell_calm_s`` / ``dwell_burst_s`` the
    mean exponential dwell times.  ``class_weights`` skews the event-class
    mix (defaults to labs-heavy, matching an outpatient diabetes cohort).
    """

    def __init__(self, *, seed: int = 0,
                 patient_ids: Sequence[str],
                 drug_ids: Sequence[str] = (),
                 disease_ids: Sequence[str] = (),
                 tenant_id: str = "mercy-hospital",
                 rate_calm_hz: float = 2.0,
                 rate_burst_hz: float = 12.0,
                 dwell_calm_s: float = 30.0,
                 dwell_burst_s: float = 8.0,
                 class_weights: Optional[Dict[str, float]] = None,
                 phenotype_dim: int = 12,
                 fingerprint_bits: int = 128) -> None:
        if not patient_ids:
            raise ValueError("feed needs at least one patient id")
        self._rng = random.Random(seed)
        self._patients = list(patient_ids)
        self._drugs = list(drug_ids)
        self._diseases = list(disease_ids)
        self._tenant = tenant_id
        self._rate = {"calm": rate_calm_hz, "burst": rate_burst_hz}
        self._dwell = {"calm": dwell_calm_s, "burst": dwell_burst_s}
        weights = dict(class_weights or {
            "lab.hba1c": 0.55, "adt.census": 0.25,
            "drug.update": 0.12, "disease.update": 0.08})
        if not self._drugs:
            weights.pop("drug.update", None)
        if not self._diseases:
            weights.pop("disease.update", None)
        self._classes = sorted(weights)
        self._weights = [weights[c] for c in self._classes]
        self._phenotype_dim = phenotype_dim
        self._fingerprint_bits = fingerprint_bits
        self._sequence = 0

    @classmethod
    def for_universe(cls, universe: BioUniverse, *, seed: int = 0,
                     n_patients: int = 64, **kwargs) -> "FeedGenerator":
        """Feed whose KB-update events target a :class:`BioUniverse`."""
        patients = [f"patient-{i:04d}" for i in range(n_patients)]
        return cls(seed=seed, patient_ids=patients,
                   drug_ids=[d.drug_id for d in universe.drugs],
                   disease_ids=[d.disease_id for d in universe.diseases],
                   phenotype_dim=int(universe.diseases[0].phenotype.size),
                   fingerprint_bits=int(universe.drugs[0].fingerprint.size),
                   **kwargs)

    # -- generation ------------------------------------------------------------

    def events(self, duration_s: float,
               start_s: float = 0.0) -> Iterator[StreamEvent]:
        """Yield events with absolute arrival times in [start, start+duration)."""
        rng = self._rng
        now = start_s
        state = "calm"
        state_until = now + rng.expovariate(1.0 / self._dwell[state])
        end = start_s + duration_s
        while True:
            now += rng.expovariate(self._rate[state])
            while now >= state_until:
                state = "burst" if state == "calm" else "calm"
                state_until += rng.expovariate(1.0 / self._dwell[state])
            if now >= end:
                return
            yield self._make_event(now)

    def generate(self, duration_s: float,
                 start_s: float = 0.0) -> List[StreamEvent]:
        return list(self.events(duration_s, start_s))

    # -- event construction ----------------------------------------------------

    def _make_event(self, arrival_s: float) -> StreamEvent:
        rng = self._rng
        event_class = rng.choices(self._classes, weights=self._weights)[0]
        self._sequence += 1
        event_id = f"evt-{self._sequence:06d}"
        patient = rng.choice(self._patients)
        payload = self._payload_for(event_class)
        return StreamEvent(
            event_id=event_id, arrival_s=arrival_s, patient_id=patient,
            tenant_id=self._tenant, event_class=event_class,
            priority=PRIORITY_OF[event_class], payload=payload)

    def _payload_for(self, event_class: str) -> Dict:
        rng = self._rng
        if event_class == "lab.hba1c":
            # ORU^R01 OBX fragment: LOINC 4548-4, % units.
            return {"resource": "Observation", "code": "4548-4",
                    "value": round(rng.gauss(7.1, 1.3), 2), "unit": "%"}
        if event_class == "adt.census":
            return {"resource": "Encounter",
                    "ward": f"ward-{rng.randrange(6):02d}"}
        if event_class == "drug.update":
            drug_id = rng.choice(self._drugs)
            return {"resource": "MedicationKnowledge", "entity_id": drug_id,
                    "mutation": {
                        "flip_bits": sorted(rng.sample(
                            range(self._fingerprint_bits),
                            rng.randrange(1, 4))),
                        "add_targets": [f"T{rng.randrange(60):03d}"],
                        "drop_side_effects": [f"SE{rng.randrange(90):03d}"]}}
        if event_class == "disease.update":
            disease_id = rng.choice(self._diseases)
            delta = [round(rng.gauss(0.0, 0.05), 6)
                     for _ in range(self._phenotype_dim)]
            return {"resource": "Condition", "entity_id": disease_id,
                    "mutation": {"phenotype_delta": delta,
                                 "add_genes": [f"G{rng.randrange(200):04d}"]}}
        raise ValueError(f"unknown event class {event_class}")
