"""Incremental analytics operators: O(delta) instead of O(n²).

The batch analytics rebuild every similarity matrix with a full
``_pairwise`` pass — n(n-1)/2 feature evaluations per source — and re-fit
HbA1c baselines over the whole cohort on each refresh.  At steady state
one arriving event changes one entity, so the honest cost is one matrix
*row*: n-1 pair evaluations per affected source.  This module implements
exactly that:

* :class:`RunningMoments` — Welford's online mean/variance, numerically
  equivalent to a full ``np.mean``/``np.var`` re-fit;
* :class:`RunningBaselines` — per-patient + cohort HbA1c moments plus an
  incremental top-k of patient activity via the healthplane's
  space-saving sketch;
* :class:`IncrementalSimilarityEngine` — row-wise updates to all six
  similarity matrices.  Mutations write through to the knowledge bases,
  so a from-scratch builder rebuild over the same KBs is the ground
  truth the property tests compare against (atol 1e-9).  Updated
  matrices are primed into the builders' caches, and touched entities
  land in a dirty set whose :meth:`refresh_job` re-enqueues only the
  affected downstream rows through the PR 8 compute scheduler;
* :class:`StreamingAnalytics` — the per-event dispatch facade the
  pipeline calls, returning each update's simulated cost.

Cost model: every pairwise feature evaluation (tanimoto, jaccard,
ontology prefix, phenotype distance) costs :data:`PAIR_EVAL_COST_S` of
simulated time; a baseline/sketch update costs
:data:`BASELINE_UPDATE_COST_S`.  The phenotype kernel's bandwidth is
adaptive (median pairwise distance), so the engine maintains the full
distance matrix incrementally — a row of distances is O(n) feature work —
and re-applies the shared vectorised kernel, which costs no pair
evaluations.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..analytics.baselines import combined_similarity
from ..analytics.similarity import (DiseaseSimilarityBuilder,
                                    DrugSimilarityBuilder, jaccard,
                                    ontology_path_similarity,
                                    phenotype_kernel, tanimoto)
from ..cloudsim.healthplane.accounting import SpaceSavingSketch
from ..compute.graph import TaskGraph

PAIR_EVAL_COST_S = 25e-6        # one feature-pair evaluation
BASELINE_UPDATE_COST_S = 2e-6   # one Welford / sketch update

DRUG_SOURCES = ("chemical", "target", "side_effect")
DISEASE_SOURCES = ("phenotype", "ontology", "disease_gene")


class RunningMoments:
    """Welford's online algorithm for mean and variance."""

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0

    def update(self, value: float) -> None:
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)

    @property
    def variance(self) -> float:
        """Population variance (matches ``np.var`` over the same values)."""
        if self.count == 0:
            return 0.0
        return self._m2 / self.count

    @property
    def sample_variance(self) -> float:
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def std(self) -> float:
        return float(np.sqrt(self.variance))


class RunningBaselines:
    """Streaming HbA1c baselines: per-patient + cohort moments, top-k."""

    def __init__(self, sketch_capacity: int = 128) -> None:
        self.cohort = RunningMoments()
        self._patients: Dict[str, RunningMoments] = {}
        self.activity = SpaceSavingSketch(capacity=sketch_capacity)
        self.observations = 0

    def observe(self, patient_id: str, value: float) -> None:
        """Fold one lab observation into every running statistic."""
        moments = self._patients.get(patient_id)
        if moments is None:
            moments = self._patients[patient_id] = RunningMoments()
        moments.update(value)
        self.cohort.update(value)
        self.activity.offer(patient_id)
        self.observations += 1

    def patient(self, patient_id: str) -> RunningMoments:
        try:
            return self._patients[patient_id]
        except KeyError:
            raise KeyError(f"no observations for {patient_id}") from None

    @property
    def patient_ids(self) -> List[str]:
        return sorted(self._patients)

    def top_active(self, k: int = 8) -> List[Tuple[str, float]]:
        """The k most active patients (incremental heavy hitters)."""
        return [(h.key, h.estimate) for h in self.activity.top(k)]

    def describe(self) -> Dict:
        return {
            "observations": self.observations,
            "patients": len(self._patients),
            "cohort_mean": round(self.cohort.mean, 6),
            "cohort_std": round(self.cohort.std, 6),
            "sketch_exact": self.activity.exact,
        }


class IncrementalSimilarityEngine:
    """Row-wise O(n) maintenance of the six similarity matrices.

    Construction pays one full build per source (the builders cache it);
    thereafter every mutation costs one matrix row per affected source.
    All mutations write through to the underlying knowledge bases first,
    so rebuilding a fresh builder over the same KBs reproduces these
    matrices exactly — that is the property-test contract.
    """

    def __init__(self, drug_builder: DrugSimilarityBuilder,
                 disease_builder: DiseaseSimilarityBuilder) -> None:
        self.drugs = drug_builder
        self.diseases = disease_builder
        self.matrices: Dict[str, np.ndarray] = {}
        self.matrices.update(drug_builder.all_sources())
        self.matrices.update(disease_builder.all_sources())
        # Phenotype bandwidth is global (median pairwise distance), so the
        # distance matrix itself is the incrementally maintained state.
        profiles = np.stack([disease_builder.disgenet.phenotype(d)
                             for d in disease_builder.disease_ids])
        self._profiles = profiles.astype(float).copy()
        squared = ((profiles[:, None, :] - profiles[None, :, :]) ** 2).sum(-1)
        self._distances = np.sqrt(squared)
        self.pair_evals = 0            # cumulative O(delta) work actually paid
        self.updates = 0
        self.dirty_drugs: Set[str] = set()
        self.dirty_diseases: Set[str] = set()
        self.epoch = 0
        for source, matrix in self.matrices.items():
            self._builder_for(source).prime(source, matrix)

    def _builder_for(self, source: str):
        return self.drugs if source in DRUG_SOURCES else self.diseases

    # -- cost accounting --------------------------------------------------------

    def full_rebuild_pair_evals(self) -> int:
        """What one from-scratch rebuild of all six matrices would cost."""
        nd = len(self.drugs.drug_ids)
        nz = len(self.diseases.disease_ids)
        return (len(DRUG_SOURCES) * nd * (nd - 1) // 2
                + len(DISEASE_SOURCES) * nz * (nz - 1) // 2)

    # -- drug updates -----------------------------------------------------------

    def update_drug(self, drug_id: str, *,
                    fingerprint: Optional[np.ndarray] = None,
                    targets: Optional[Set[str]] = None,
                    side_effects: Optional[Set[str]] = None) -> int:
        """Write features through to the KBs, patch one row per source.

        Returns the pair evaluations spent (n-1 per touched source).
        """
        ids = self.drugs.drug_ids
        index = ids.index(drug_id)
        spent = 0
        if fingerprint is not None:
            self.drugs.pubchem.set_fingerprint(drug_id, fingerprint)
            prints = [self.drugs.pubchem.fingerprint(d) for d in ids]
            spent += self._patch_row("chemical", index, prints, tanimoto)
        if targets is not None:
            self.drugs.drugbank.set_targets(drug_id, targets)
            target_sets = [self.drugs.drugbank.targets(d) for d in ids]
            spent += self._patch_row("target", index, target_sets, jaccard)
        if side_effects is not None:
            self.drugs.sider.set_side_effects(drug_id, side_effects)
            effects = [self.drugs.sider.side_effects(d) for d in ids]
            spent += self._patch_row("side_effect", index, effects, jaccard)
        if spent:
            self.updates += 1
            self.dirty_drugs.add(drug_id)
        return spent

    def add_drug(self, drug_id: str, *, fingerprint: np.ndarray,
                 targets: Set[str], side_effects: Set[str]) -> int:
        """Insert a brand-new drug: grow each matrix by one row/column."""
        self.drugs.pubchem.set_fingerprint(drug_id, fingerprint)
        self.drugs.drugbank.set_targets(drug_id, targets)
        self.drugs.sider.set_side_effects(drug_id, side_effects)
        index = self.drugs.add_drug_id(drug_id)   # invalidates builder cache
        ids = self.drugs.drug_ids
        spent = 0
        prints = [self.drugs.pubchem.fingerprint(d) for d in ids]
        spent += self._grow_then_patch("chemical", index, prints, tanimoto)
        target_sets = [self.drugs.drugbank.targets(d) for d in ids]
        spent += self._grow_then_patch("target", index, target_sets, jaccard)
        effects = [self.drugs.sider.side_effects(d) for d in ids]
        spent += self._grow_then_patch("side_effect", index, effects, jaccard)
        self.updates += 1
        self.dirty_drugs.add(drug_id)
        return spent

    # -- disease updates --------------------------------------------------------

    def update_disease(self, disease_id: str, *,
                       phenotype: Optional[np.ndarray] = None,
                       ontology_path: Optional[Sequence[str]] = None,
                       genes: Optional[Set[str]] = None) -> int:
        """Write features through to the KBs, patch one row per source."""
        ids = self.diseases.disease_ids
        index = ids.index(disease_id)
        spent = 0
        if phenotype is not None:
            self.diseases.disgenet.set_phenotype(disease_id, phenotype)
            spent += self._patch_phenotype(index)
        if ontology_path is not None:
            self.diseases.disgenet.set_ontology_path(disease_id,
                                                     ontology_path)
            paths = [self.diseases.disgenet.ontology_path(d) for d in ids]
            spent += self._patch_row("ontology", index, paths,
                                     ontology_path_similarity)
        if genes is not None:
            self.diseases.disgenet.set_genes(disease_id, genes)
            gene_sets = [self.diseases.disgenet.genes_for_disease(d)
                         for d in ids]
            spent += self._patch_row("disease_gene", index, gene_sets,
                                     jaccard)
        if spent:
            self.updates += 1
            self.dirty_diseases.add(disease_id)
        return spent

    def add_disease(self, disease_id: str, *, phenotype: np.ndarray,
                    ontology_path: Sequence[str], genes: Set[str]) -> int:
        """Insert a brand-new disease: grow each matrix by one row/column."""
        self.diseases.disgenet.set_phenotype(disease_id, phenotype)
        self.diseases.disgenet.set_ontology_path(disease_id, ontology_path)
        self.diseases.disgenet.set_genes(disease_id, genes)
        index = self.diseases.add_disease_id(disease_id)
        ids = self.diseases.disease_ids
        n = len(ids)
        grown = np.zeros((n, n))
        grown[:n - 1, :n - 1] = self._distances
        self._distances = grown
        profile = np.asarray(phenotype, dtype=float)
        self._profiles = np.vstack([self._profiles, profile[None, :]])
        spent = self._patch_phenotype(index, grow=True)
        paths = [self.diseases.disgenet.ontology_path(d) for d in ids]
        spent += self._grow_then_patch("ontology", index, paths,
                                       ontology_path_similarity)
        gene_sets = [self.diseases.disgenet.genes_for_disease(d)
                     for d in ids]
        spent += self._grow_then_patch("disease_gene", index, gene_sets,
                                       jaccard)
        self.updates += 1
        self.dirty_diseases.add(disease_id)
        return spent

    # -- row surgery ------------------------------------------------------------

    def _patch_row(self, source: str, index: int, features: List,
                   fn) -> int:
        """Recompute row/column ``index`` of one matrix: n-1 pair evals."""
        matrix = self.matrices[source]
        n = len(features)
        for j in range(n):
            if j == index:
                continue
            value = fn(features[index], features[j])
            matrix[index, j] = matrix[j, index] = value
        matrix[index, index] = 1.0
        self.pair_evals += n - 1
        self._builder_for(source).prime(source, matrix)
        return n - 1

    def _grow_then_patch(self, source: str, index: int, features: List,
                         fn) -> int:
        """Extend a matrix by one row/column, then fill it in."""
        old = self.matrices[source]
        n = len(features)
        grown = np.eye(n)
        grown[:n - 1, :n - 1] = old
        self.matrices[source] = grown
        return self._patch_row(source, index, features, fn)

    def _patch_phenotype(self, index: int, grow: bool = False) -> int:
        """O(n) distance-row update, then re-apply the shared kernel.

        The kernel's bandwidth is the median of *all* pairwise distances,
        so patching one row still shifts every entry — but only the n-1
        distance evaluations are feature work; the kernel re-application
        is a vectorised elementwise pass with no pair evaluations.
        """
        if not grow:
            profile = np.asarray(
                self.diseases.disgenet.phenotype(
                    self.diseases.disease_ids[index]), dtype=float)
            self._profiles[index] = profile
        row = np.sqrt(
            ((self._profiles - self._profiles[index]) ** 2).sum(axis=1))
        self._distances[index, :] = row
        self._distances[:, index] = row
        self._distances[index, index] = 0.0
        similarity = phenotype_kernel(self._distances)
        self.matrices["phenotype"] = similarity
        n = self._profiles.shape[0]
        self.pair_evals += n - 1
        self.diseases.prime("phenotype", similarity)
        return n - 1

    # -- dirty-set refresh through the compute scheduler ------------------------

    def refresh_job(self, scheduler, *, tenant_id: str = "internal",
                    submitted_by: str = "streaming") -> Optional[object]:
        """Re-enqueue only the dirty entities' fused rows as compute tasks.

        Builds a :class:`TaskGraph` with one task per dirty drug/disease
        (its fused combined-similarity row) plus a fan-in summary task,
        submits it through the PR 8 scheduler, clears the dirty sets and
        advances the epoch.  Returns the scheduler's ``Job`` (or None when
        nothing is dirty).
        """
        if not self.dirty_drugs and not self.dirty_diseases:
            return None
        self.epoch += 1
        graph = TaskGraph(f"streaming-refresh-{self.epoch:04d}")
        fused_drugs = combined_similarity(
            {s: self.matrices[s] for s in DRUG_SOURCES})
        fused_diseases = combined_similarity(
            {s: self.matrices[s] for s in DISEASE_SOURCES})
        graph.add_data("fused_drugs", fused_drugs,
                       nbytes=fused_drugs.nbytes)
        graph.add_data("fused_diseases", fused_diseases,
                       nbytes=fused_diseases.nbytes)
        row_tasks = []
        for drug_id in sorted(self.dirty_drugs):
            index = self.drugs.drug_ids.index(drug_id)
            task_id = f"row-{drug_id}"
            graph.add_task(
                task_id,
                lambda inputs, i=index: inputs["fused_drugs"][i].tolist(),
                inputs=("fused_drugs",), output=f"row.{drug_id}",
                cost_s=len(self.drugs.drug_ids) * PAIR_EVAL_COST_S)
            row_tasks.append(task_id)
        for disease_id in sorted(self.dirty_diseases):
            index = self.diseases.disease_ids.index(disease_id)
            task_id = f"row-{disease_id}"
            graph.add_task(
                task_id,
                lambda inputs, i=index: inputs["fused_diseases"][i].tolist(),
                inputs=("fused_diseases",), output=f"row.{disease_id}",
                cost_s=len(self.diseases.disease_ids) * PAIR_EVAL_COST_S)
            row_tasks.append(task_id)
        graph.add_task(
            "summary",
            lambda inputs: {"rows": len(inputs)},
            inputs=tuple(f"row.{e}" for e in
                         sorted(self.dirty_drugs | self.dirty_diseases)),
            output="summary")
        self.dirty_drugs.clear()
        self.dirty_diseases.clear()
        return scheduler.submit(graph, tenant_id=tenant_id,
                                submitted_by=submitted_by)

    def describe(self) -> Dict:
        return {
            "updates": self.updates,
            "pair_evals": self.pair_evals,
            "full_rebuild_pair_evals": self.full_rebuild_pair_evals(),
            "dirty_drugs": len(self.dirty_drugs),
            "dirty_diseases": len(self.dirty_diseases),
            "epoch": self.epoch,
        }


class StreamingAnalytics:
    """Per-event dispatch: fold one :class:`StreamEvent` into the state.

    Returns the simulated cost of the update so the pipeline can advance
    the clock by exactly the work done — the O(delta) bill, not the
    O(n²) one.
    """

    def __init__(self, engine: IncrementalSimilarityEngine,
                 baselines: Optional[RunningBaselines] = None) -> None:
        self.engine = engine
        self.baselines = (baselines if baselines is not None
                          else RunningBaselines())
        self.events_by_class: Dict[str, int] = {}
        self.cost_s = 0.0

    def apply(self, event) -> float:
        """Apply one event; returns its simulated update cost in seconds."""
        payload = event.payload
        cost = BASELINE_UPDATE_COST_S
        if event.event_class == "lab.hba1c":
            self.baselines.observe(event.patient_id, float(payload["value"]))
        elif event.event_class == "adt.census":
            self.baselines.activity.offer(f"ward:{payload['ward']}")
        elif event.event_class == "drug.update":
            cost = self._apply_drug_mutation(payload["entity_id"],
                                             payload["mutation"])
        elif event.event_class == "disease.update":
            cost = self._apply_disease_mutation(payload["entity_id"],
                                                payload["mutation"])
        else:
            raise ValueError(f"unknown event class {event.event_class}")
        self.events_by_class[event.event_class] = (
            self.events_by_class.get(event.event_class, 0) + 1)
        self.cost_s += cost
        return cost

    def _apply_drug_mutation(self, drug_id: str, mutation: Dict) -> float:
        kwargs = {}
        if "flip_bits" in mutation:
            fingerprint = np.array(
                self.engine.drugs.pubchem.fingerprint(drug_id))
            for bit in mutation["flip_bits"]:
                fingerprint[bit] = 1 - fingerprint[bit]
            kwargs["fingerprint"] = fingerprint
        if "add_targets" in mutation or "drop_targets" in mutation:
            targets = set(self.engine.drugs.drugbank.targets(drug_id))
            targets |= set(mutation.get("add_targets", ()))
            targets -= set(mutation.get("drop_targets", ()))
            kwargs["targets"] = targets
        if ("add_side_effects" in mutation
                or "drop_side_effects" in mutation):
            effects = set(self.engine.drugs.sider.side_effects(drug_id))
            effects |= set(mutation.get("add_side_effects", ()))
            effects -= set(mutation.get("drop_side_effects", ()))
            kwargs["side_effects"] = effects
        spent = self.engine.update_drug(drug_id, **kwargs)
        return spent * PAIR_EVAL_COST_S

    def _apply_disease_mutation(self, disease_id: str,
                                mutation: Dict) -> float:
        kwargs = {}
        if "phenotype_delta" in mutation:
            phenotype = np.array(
                self.engine.diseases.disgenet.phenotype(disease_id),
                dtype=float)
            phenotype = phenotype + np.asarray(mutation["phenotype_delta"],
                                               dtype=float)
            kwargs["phenotype"] = phenotype
        if "add_genes" in mutation or "drop_genes" in mutation:
            genes = set(
                self.engine.diseases.disgenet.genes_for_disease(disease_id))
            genes |= set(mutation.get("add_genes", ()))
            genes -= set(mutation.get("drop_genes", ()))
            kwargs["genes"] = genes
        if "ontology_path" in mutation:
            kwargs["ontology_path"] = tuple(mutation["ontology_path"])
        spent = self.engine.update_disease(disease_id, **kwargs)
        return spent * PAIR_EVAL_COST_S

    def describe(self) -> Dict:
        return {
            "events_by_class": dict(sorted(self.events_by_class.items())),
            "update_cost_s": round(self.cost_s, 9),
            "baselines": self.baselines.describe(),
            "similarity": self.engine.describe(),
        }
