"""FHIR Subscription-style push over the healthplane event stream.

A FHIR R4 ``Subscription`` resource is "criteria + channel": the client
states what it wants to hear about and the server pushes matches.  Here
the criteria are a :class:`SubscriptionFilter` (event-class prefixes,
patient ids, a priority floor) and the channel is a dedicated bounded
:class:`~repro.cloudsim.healthplane.events.Subscription` on the platform
:class:`EventBus`, keyed by a per-subscription kind
(``streaming.push.<sub_id>``) so subscribers only ever see their own
matches, in publish order, with the bus's drop accounting intact.

Tenants manage subscriptions through the versioned ``/v1/subscriptions``
gateway surface (:class:`SubscriptionApi`), which follows the compute
API's contract: federated auth, RBAC (WRITE on ``subscriptions`` to
register/cancel, READ to list/poll), per-route rate limits, strict
tenant isolation (another tenant's subscription id behaves like a
missing one), and audit log entries for every verb.

The bus has no unsubscribe — names are permanent — so cancellation
flips the registry-side ``active`` flag: nothing further is published to
a cancelled subscription, and its queue drains normally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..cloudsim.healthplane.events import EventBus
from ..core.api import ApiGateway, RequestContext, RouteSpec
from ..core.errors import NotFoundError, ValidationError
from ..rbac.model import Action, ScopeKind
from .feed import StreamEvent

SUBSCRIPTION_RESOURCE = "subscriptions"

REGISTER_RATE_LIMIT = 30
LIST_RATE_LIMIT = 60
POLL_RATE_LIMIT = 240
CANCEL_RATE_LIMIT = 30
RATE_WINDOW_S = 60.0


@dataclass(frozen=True)
class SubscriptionFilter:
    """Criteria half of the subscription: what the client wants pushed."""

    event_classes: Tuple[str, ...] = ()   # kind prefixes; empty = all
    patient_ids: Tuple[str, ...] = ()     # exact ids; empty = all
    min_priority: int = 0

    def __post_init__(self) -> None:
        if self.min_priority < 0:
            raise ValidationError("min_priority must be >= 0")

    def matches(self, event: StreamEvent) -> bool:
        if event.priority < self.min_priority:
            return False
        if self.patient_ids and event.patient_id not in self.patient_ids:
            return False
        if self.event_classes:
            return any(event.event_class == c
                       or event.event_class.startswith(c + ".")
                       for c in self.event_classes)
        return True

    def to_dict(self) -> Dict[str, Any]:
        return {"event_classes": list(self.event_classes),
                "patient_ids": list(self.patient_ids),
                "min_priority": self.min_priority}


@dataclass
class PushSubscription:
    """One registered subscription: criteria + its bus channel."""

    sub_id: str
    tenant_id: str
    owner: str
    criteria: SubscriptionFilter
    created_at_s: float
    active: bool = True
    matched: int = 0

    @property
    def channel_kind(self) -> str:
        return f"streaming.push.{self.sub_id}"

    @property
    def channel_name(self) -> str:
        return f"push:{self.sub_id}"

    def to_dict(self) -> Dict[str, Any]:
        return {"sub_id": self.sub_id, "tenant_id": self.tenant_id,
                "owner": self.owner, "criteria": self.criteria.to_dict(),
                "created_at_s": self.created_at_s, "active": self.active,
                "matched": self.matched}


class SubscriptionRegistry:
    """Owns the subscription table and fans matched events onto the bus."""

    def __init__(self, bus: EventBus, *, queue_maxlen: int = 64) -> None:
        self.bus = bus
        self.queue_maxlen = queue_maxlen
        self._subscriptions: Dict[str, PushSubscription] = {}
        self._counter = 0
        self.pushed = 0

    # -- management -----------------------------------------------------------

    def register(self, *, tenant_id: str, owner: str,
                 criteria: SubscriptionFilter) -> PushSubscription:
        self._counter += 1
        sub_id = f"sub-{self._counter:04d}"
        subscription = PushSubscription(
            sub_id=sub_id, tenant_id=tenant_id, owner=owner,
            criteria=criteria, created_at_s=self.bus.clock.now)
        # One bounded bus channel per subscription, filtered to its own
        # kind, so cross-subscription interference is impossible.
        self.bus.subscribe(subscription.channel_name,
                           maxlen=self.queue_maxlen,
                           kinds=[subscription.channel_kind])
        self._subscriptions[sub_id] = subscription
        return subscription

    def get(self, sub_id: str) -> PushSubscription:
        try:
            return self._subscriptions[sub_id]
        except KeyError:
            raise NotFoundError(f"no subscription {sub_id!r}") from None

    def cancel(self, sub_id: str) -> PushSubscription:
        subscription = self.get(sub_id)
        subscription.active = False
        return subscription

    def for_tenant(self, tenant_id: str) -> List[PushSubscription]:
        return [s for s in self._subscriptions.values()
                if s.tenant_id == tenant_id]

    # -- the push path --------------------------------------------------------

    def push(self, event: StreamEvent, *, latency_s: float,
             trace_id: Optional[str] = None) -> int:
        """Fan one processed event out to every matching subscription.

        Returns the number of subscriptions pushed to.  Iteration is in
        sub-id order, so the bus sequence is deterministic.
        """
        matched = 0
        for sub_id in sorted(self._subscriptions):
            subscription = self._subscriptions[sub_id]
            if not subscription.active:
                continue
            if not subscription.criteria.matches(event):
                continue
            attributes: Dict[str, Any] = {
                "event_id": event.event_id,
                "event_class": event.event_class,
                "patient_id": event.patient_id,
                "arrival_s": event.arrival_s,
                "push_latency_s": latency_s,
            }
            if trace_id is not None:
                attributes["trace"] = trace_id
            self.bus.publish("streaming", subscription.channel_kind,
                             **attributes)
            subscription.matched += 1
            matched += 1
        self.pushed += matched
        return matched

    def poll(self, sub_id: str,
             max_events: Optional[int] = None) -> List[Dict[str, Any]]:
        """Drain a subscription's channel in publish order."""
        subscription = self.get(sub_id)
        channel = self.bus.subscription(subscription.channel_name)
        return [e.to_dict() for e in channel.poll(max_events)]

    def describe(self) -> Dict[str, Any]:
        return {
            "subscriptions": len(self._subscriptions),
            "active": sum(1 for s in self._subscriptions.values()
                          if s.active),
            "pushed": self.pushed,
        }


class SubscriptionApi:
    """Registers the ``/v1/subscriptions`` routes against one registry."""

    def __init__(self, registry: SubscriptionRegistry, *,
                 monitoring=None) -> None:
        self.registry = registry
        self.monitoring = monitoring

    # -- wiring ---------------------------------------------------------------

    def register_routes(self, gateway: ApiGateway) -> None:
        gateway.register_route(RouteSpec(
            path="/subscriptions/register", handler=self.register,
            action=Action.WRITE, resource_type=SUBSCRIPTION_RESOURCE,
            scope_kind=ScopeKind.TENANT,
            description="register a push subscription (criteria + channel)",
            rate_limit=REGISTER_RATE_LIMIT, rate_window_s=RATE_WINDOW_S))
        gateway.register_route(RouteSpec(
            path="/subscriptions/list", handler=self.list,
            action=Action.READ, resource_type=SUBSCRIPTION_RESOURCE,
            scope_kind=ScopeKind.TENANT,
            description="list this tenant's push subscriptions",
            rate_limit=LIST_RATE_LIMIT, rate_window_s=RATE_WINDOW_S))
        gateway.register_route(RouteSpec(
            path="/subscriptions/poll", handler=self.poll,
            action=Action.READ, resource_type=SUBSCRIPTION_RESOURCE,
            scope_kind=ScopeKind.TENANT,
            description="drain a subscription's pushed events",
            rate_limit=POLL_RATE_LIMIT, rate_window_s=RATE_WINDOW_S))
        gateway.register_route(RouteSpec(
            path="/subscriptions/cancel", handler=self.cancel,
            action=Action.WRITE, resource_type=SUBSCRIPTION_RESOURCE,
            scope_kind=ScopeKind.TENANT,
            description="deactivate a push subscription",
            rate_limit=CANCEL_RATE_LIMIT, rate_window_s=RATE_WINDOW_S))

    # -- handlers -------------------------------------------------------------

    def register(self, context: RequestContext,
                 criteria: SubscriptionFilter) -> Dict[str, Any]:
        if not isinstance(criteria, SubscriptionFilter):
            raise ValidationError(
                "subscriptions.register takes a SubscriptionFilter")
        subscription = self.registry.register(
            tenant_id=context.tenant_id, owner=context.user.user_id,
            criteria=criteria)
        self._audit(context, subscription.sub_id, "registered",
                    extra=f"criteria={criteria.to_dict()}")
        return subscription.to_dict()

    def list(self, context: RequestContext) -> Dict[str, Any]:
        subscriptions = self.registry.for_tenant(context.tenant_id)
        self._audit(context, "*", "listed")
        return {"subscriptions": [s.to_dict() for s in
                                  sorted(subscriptions,
                                         key=lambda s: s.sub_id)]}

    def poll(self, context: RequestContext, sub_id: str,
             max_events: Optional[int] = None) -> Dict[str, Any]:
        subscription = self._owned(context, sub_id)
        events = self.registry.poll(sub_id, max_events)
        self._audit(context, sub_id, "polled",
                    extra=f"events={len(events)}")
        return {"sub_id": sub_id, "active": subscription.active,
                "events": events}

    def cancel(self, context: RequestContext, sub_id: str) -> Dict[str, Any]:
        self._owned(context, sub_id)
        subscription = self.registry.cancel(sub_id)
        self._audit(context, sub_id, "cancelled")
        return subscription.to_dict()

    # -- internals ------------------------------------------------------------

    def _owned(self, context: RequestContext,
               sub_id: str) -> PushSubscription:
        """Tenant isolation: someone else's subscription looks missing."""
        subscription = self.registry.get(sub_id)
        if subscription.tenant_id != context.tenant_id:
            raise NotFoundError(f"no subscription {sub_id!r}")
        return subscription

    def _audit(self, context: RequestContext, sub_id: str, verb: str,
               extra: str = "") -> None:
        if self.monitoring is None:
            return
        suffix = f" {extra}" if extra else ""
        self.monitoring.log(
            "audit",
            f"subscription {sub_id} {verb} by user "
            f"{context.user.user_id} tenant {context.tenant_id} "
            f"request {context.request_id}{suffix}")
