"""Deprecated inline-execution shims for the heavy analytics entry points.

Before the compute layer existed, examples and benchmarks fit JMF/DELT
models by calling the analytics functions inline on the caller — which
is exactly the "cannot scale past one simulated core" shape the task
graph API replaces.  These wrappers keep old call sites running while
emitting a :class:`DeprecationWarning` that points at the ``/v1/compute``
submission path (:mod:`repro.compute.api`).

New code should build a :class:`~repro.compute.graph.TaskGraph` and
submit it through the gateway; these shims will be removed once every
call site has migrated.
"""

from __future__ import annotations

import warnings
from typing import Any, Dict, Optional, Sequence


def _deprecated(name: str) -> None:
    warnings.warn(
        f"repro.compute.shims.{name} runs the analysis inline on the "
        f"caller and is deprecated; build a TaskGraph and submit it "
        f"through the /v1/compute gateway API (repro.compute.api) or "
        f"Scheduler.submit instead",
        DeprecationWarning, stacklevel=3)


def run_jmf(training, drug_sources: Dict[str, Any],
            disease_sources: Dict[str, Any], *, rank: int = 10,
            alpha: float = 0.5, seed: int = 1):
    """Deprecated: fit Joint Matrix Factorization inline."""
    _deprecated("run_jmf")
    from ..analytics import JointMatrixFactorization

    return JointMatrixFactorization(rank=rank, alpha=alpha, seed=seed).fit(
        training, drug_sources, disease_sources)


def run_delt(patients: Sequence[Any], *, n_drugs: int, ridge: float = 1.0):
    """Deprecated: fit the DELT drug-effect model inline."""
    _deprecated("run_delt")
    from ..analytics import DeltModel

    return DeltModel(n_drugs=n_drugs, ridge=ridge).fit(patients)


def run_similarity(universe, *, side: str = "drug") -> Dict[str, Any]:
    """Deprecated: build all similarity sources for one side inline."""
    _deprecated("run_similarity")
    from ..analytics import DiseaseSimilarityBuilder, DrugSimilarityBuilder

    builder = (DrugSimilarityBuilder(universe) if side == "drug"
               else DiseaseSimilarityBuilder(universe))
    return builder.all_sources()
