"""The versioned ``/v1/compute`` job API.

The redesigned public surface of the compute layer: callers build a
:class:`~.graph.TaskGraph`, wrap it in a :class:`JobSubmitRequest`, and
go through :meth:`~repro.core.api.ApiGateway.dispatch` — which means
federated authentication, per-tenant **and per-route** rate limits, RBAC
(only researchers, i.e. holders of WRITE on ``compute-jobs``, may submit;
read-only roles can poll), deadlines, metering, and audit logging all
apply before the scheduler ever sees the graph.

Tenant isolation is strict: a job id belonging to another tenant behaves
exactly like a missing one (404), so ids cannot be probed across
tenants.  Every handler threads the job id into the ``audit`` log
stream, so :meth:`~repro.compliance.audit.AuditService.search_logs`
reconstructs a job's API history from submission to cancellation.

``Scheduler.submit`` remains the *internal* surface for platform code;
this module is the only supported path for tenant traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..core.api import ApiGateway, RequestContext, RouteSpec
from ..core.errors import NotFoundError, ValidationError
from ..rbac.model import Action, ScopeKind
from .graph import TaskGraph
from .scheduler import Job, Scheduler

# The resource type the /v1/compute routes guard.  "Researcher" in the
# route contract means: a role holding WRITE on this resource type.
COMPUTE_RESOURCE = "compute-jobs"

# Per-route rate limits (requests per window per tenant), applied on top
# of the gateway-wide limiter.  Submission is the expensive verb, so it
# gets the tightest budget; status polling the loosest.
SUBMIT_RATE_LIMIT = 20
STATUS_RATE_LIMIT = 240
RESULT_RATE_LIMIT = 60
CANCEL_RATE_LIMIT = 30
RATE_WINDOW_S = 60.0


@dataclass(frozen=True)
class JobSubmitRequest:
    """Typed envelope for ``compute.submit``."""

    graph: TaskGraph
    tags: Dict[str, str] = field(default_factory=dict)

    def validate(self) -> None:
        if not isinstance(self.graph, TaskGraph):
            raise ValidationError(
                "JobSubmitRequest.graph must be a TaskGraph")
        self.graph.validate()


@dataclass(frozen=True)
class JobStatusResponse:
    """Typed envelope for ``compute.status`` (and submit's echo)."""

    job_id: str
    state: str
    graph: str
    tenant_id: str
    submitted_at_s: float
    started_at_s: Optional[float]
    finished_at_s: Optional[float]
    makespan_s: Optional[float]
    tasks: Dict[str, int]
    attempts: int
    recovered_tasks: int
    error: str
    error_type: str
    trace_id: Optional[str]

    @classmethod
    def from_job(cls, job: Job) -> "JobStatusResponse":
        return cls(
            job_id=job.job_id, state=job.state.value, graph=job.graph.name,
            tenant_id=job.tenant_id, submitted_at_s=job.submitted_at_s,
            started_at_s=job.started_at_s, finished_at_s=job.finished_at_s,
            makespan_s=job.makespan_s, tasks=job.counts(),
            attempts=sum(job.attempts.values()),
            recovered_tasks=len(job.recovered_tasks),
            error=job.error, error_type=job.error_type,
            trace_id=job.trace_id)

    def to_body(self) -> Dict[str, Any]:
        return {
            "job_id": self.job_id, "state": self.state, "graph": self.graph,
            "tenant_id": self.tenant_id,
            "submitted_at_s": self.submitted_at_s,
            "started_at_s": self.started_at_s,
            "finished_at_s": self.finished_at_s,
            "makespan_s": self.makespan_s, "tasks": self.tasks,
            "attempts": self.attempts,
            "recovered_tasks": self.recovered_tasks,
            "error": self.error, "error_type": self.error_type,
            "trace_id": self.trace_id,
        }


class ComputeApi:
    """Registers the ``/v1/compute`` routes against one scheduler."""

    def __init__(self, scheduler: Scheduler, *,
                 run_inline: bool = True) -> None:
        self.scheduler = scheduler
        # When True (the default) a submitted job is driven to completion
        # during dispatch — the simulation has no background executor, so
        # "async" submission still yields a terminal status to poll.
        # Tests set False to exercise the PENDING -> ... transitions.
        self.run_inline = run_inline

    # -- wiring ---------------------------------------------------------------

    def register_routes(self, gateway: ApiGateway) -> None:
        gateway.register_route(RouteSpec(
            path="/compute/submit", handler=self.submit,
            action=Action.WRITE, resource_type=COMPUTE_RESOURCE,
            scope_kind=ScopeKind.TENANT,
            description="submit a task graph as a compute job",
            rate_limit=SUBMIT_RATE_LIMIT, rate_window_s=RATE_WINDOW_S))
        gateway.register_route(RouteSpec(
            path="/compute/status", handler=self.status,
            action=Action.READ, resource_type=COMPUTE_RESOURCE,
            scope_kind=ScopeKind.TENANT,
            description="poll a compute job's lifecycle state",
            rate_limit=STATUS_RATE_LIMIT, rate_window_s=RATE_WINDOW_S))
        gateway.register_route(RouteSpec(
            path="/compute/result", handler=self.result,
            action=Action.READ, resource_type=COMPUTE_RESOURCE,
            scope_kind=ScopeKind.TENANT,
            description="fetch a finished compute job's outputs",
            rate_limit=RESULT_RATE_LIMIT, rate_window_s=RATE_WINDOW_S))
        gateway.register_route(RouteSpec(
            path="/compute/cancel", handler=self.cancel,
            action=Action.WRITE, resource_type=COMPUTE_RESOURCE,
            scope_kind=ScopeKind.TENANT,
            description="cancel a pending or running compute job",
            rate_limit=CANCEL_RATE_LIMIT, rate_window_s=RATE_WINDOW_S))

    # -- handlers -------------------------------------------------------------

    def submit(self, context: RequestContext,
               request: JobSubmitRequest) -> Dict[str, Any]:
        if not isinstance(request, JobSubmitRequest):
            raise ValidationError(
                "compute.submit takes a JobSubmitRequest envelope")
        request.validate()
        job = self.scheduler.submit(request.graph,
                                    tenant_id=context.tenant_id,
                                    submitted_by=context.user.user_id)
        self._audit(context, job, "submitted",
                    extra=f"graph={request.graph.name} "
                          f"tasks={len(request.graph.tasks)}")
        if self.run_inline:
            self.scheduler.run(job.job_id)
        return JobStatusResponse.from_job(job).to_body()

    def status(self, context: RequestContext, job_id: str) -> Dict[str, Any]:
        job = self._owned(context, job_id)
        self._audit(context, job, "status read")
        return JobStatusResponse.from_job(job).to_body()

    def result(self, context: RequestContext, job_id: str,
               key: Optional[str] = None) -> Dict[str, Any]:
        job = self._owned(context, job_id)
        value = self.scheduler.result(job_id, key)
        self._audit(context, job, "result read",
                    extra=f"key={key!r}" if key else "all outputs")
        outputs = value if key is None else {key: value}
        return {"job_id": job_id, "state": job.state.value,
                "outputs": outputs}

    def cancel(self, context: RequestContext, job_id: str) -> Dict[str, Any]:
        job = self._owned(context, job_id)
        self.scheduler.cancel(job_id)
        self._audit(context, job, "cancellation requested")
        return JobStatusResponse.from_job(job).to_body()

    # -- internals ------------------------------------------------------------

    def _owned(self, context: RequestContext, job_id: str) -> Job:
        """Tenant isolation: someone else's job looks exactly like no job."""
        job = self.scheduler.job(job_id)
        if job.tenant_id != context.tenant_id:
            raise NotFoundError(f"no compute job {job_id!r}")
        return job

    def _audit(self, context: RequestContext, job: Job, verb: str,
               extra: str = "") -> None:
        monitoring = self.scheduler.monitoring
        if monitoring is None:
            return
        suffix = f" {extra}" if extra else ""
        monitoring.log(
            "audit",
            f"compute job {job.job_id} {verb} by user "
            f"{context.user.user_id} tenant {context.tenant_id} "
            f"request {context.request_id}{suffix}")
