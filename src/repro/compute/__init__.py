"""The distributed task-graph compute layer.

The platform's job-execution tier: analytics work is described as a
:class:`TaskGraph` (tasks + data dependencies), submitted as a job, and
placed by a deterministic :class:`Scheduler` onto attested worker VMs on
the simulated clock — with data-locality-aware placement, queue-depth
autoscaling, lifecycle events on the health plane, lineage-based crash
recovery, and per-attempt trace spans.

Public surface: the versioned ``/v1/compute`` gateway routes
(:class:`ComputeApi`); ``Scheduler.submit`` stays available as the
internal surface for platform code.
"""

from .api import (
    ComputeApi,
    JobStatusResponse,
    JobSubmitRequest,
)
from .graph import (
    DEFAULT_OUTPUT_BYTES,
    DEFAULT_TASK_COST_S,
    DataObject,
    TaskGraph,
    TaskSpec,
)
from .pool import DRIVER_NODE, Worker, WorkerPool, standard_pool
from .scheduler import (
    Job,
    JobState,
    Scheduler,
    TaskState,
    standard_scheduler,
)

__all__ = [
    "ComputeApi",
    "DataObject",
    "DEFAULT_OUTPUT_BYTES",
    "DEFAULT_TASK_COST_S",
    "DRIVER_NODE",
    "Job",
    "JobState",
    "JobStatusResponse",
    "JobSubmitRequest",
    "Scheduler",
    "TaskGraph",
    "TaskSpec",
    "TaskState",
    "Worker",
    "WorkerPool",
    "standard_pool",
    "standard_scheduler",
]
