"""The worker fleet: attested VMs the scheduler places tasks onto.

Workers are :class:`~repro.cloudsim.nodes.VirtualMachine` instances
provisioned through the
:class:`~repro.cloudsim.provisioning.ResourceProvisioningService`, so
every node executing analytics tasks sits on an attested host and boots a
signed image — the compute tier inherits the platform's trust chain
instead of bypassing it.

Each worker keeps a (simulated) **object store**: the set of object keys
resident on that node with their sizes.  Placement reads it for
locality; crashes clear it (that is what makes lineage recovery
necessary).  The pool can grow and shrink at runtime — the scheduler's
autoscaler calls :meth:`WorkerPool.grow` / :meth:`WorkerPool.shrink`
against queue depth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.errors import AttestationError, ConfigurationError
from ..cloudsim.nodes import (
    Datacenter,
    Host,
    NodeState,
    SoftwareComponent,
    VirtualMachine,
)
from ..cloudsim.provisioning import ProvisionRequest, ResourceProvisioningService

# The pseudo-node holding graph input data.  It models the submitting
# client/driver and is never subject to crash windows.
DRIVER_NODE = "driver"


@dataclass
class Worker:
    """One provisioned compute node and its resident objects."""

    worker_id: str
    vm: VirtualMachine
    host_id: str
    ready_at_s: float                      # provisioning completes here
    busy_until_s: float = 0.0
    store: Dict[str, int] = field(default_factory=dict)   # key -> nbytes
    tasks_started: int = 0
    retired: bool = False

    @property
    def node_id(self) -> str:
        return self.vm.vm_id

    def idle_at(self, now: float) -> bool:
        return (not self.retired and now >= self.ready_at_s
                and now >= self.busy_until_s)


class WorkerPool:
    """Grows/shrinks a fleet of attested worker VMs."""

    def __init__(self, provisioning: ResourceProvisioningService, *,
                 bios: SoftwareComponent, kernel: SoftwareComponent,
                 image: SoftwareComponent, vcpus: int = 2,
                 memory_mb: int = 4096,
                 provision_delay_s: float = 0.250) -> None:
        self.provisioning = provisioning
        self.bios = bios
        self.kernel = kernel
        self.image = image
        self.vcpus = vcpus
        self.memory_mb = memory_mb
        self.provision_delay_s = provision_delay_s
        self.workers: Dict[str, Worker] = {}
        self._counter = 0
        self.scaled_up = 0
        self.scaled_down = 0

    # -- sizing --------------------------------------------------------------

    def grow(self, now_s: float) -> Worker:
        """Provision one more worker; it becomes usable after the delay.

        Raises :class:`AttestationError`/:class:`ConfigurationError`
        straight from the provisioning service when no attested host has
        room — the scheduler treats that as "cannot scale".
        """
        vm = self.provisioning.provision_vm(
            ProvisionRequest(vcpus=self.vcpus, memory_mb=self.memory_mb,
                             image=self.image,
                             labels={"pool": "repro.compute"}),
            self.bios, self.kernel)
        host_id = next(host.host_id
                       for host in self.provisioning.datacenter.hosts.values()
                       if vm.vm_id in host.vms)
        self._counter += 1
        worker = Worker(worker_id=f"w-{self._counter:04d}", vm=vm,
                        host_id=host_id,
                        ready_at_s=now_s + self.provision_delay_s)
        self.workers[worker.worker_id] = worker
        self.scaled_up += 1
        return worker

    def shrink(self, worker: Worker) -> None:
        """Retire one worker: stop its VM and free host capacity."""
        worker.retired = True
        worker.store.clear()
        worker.vm.stop()
        host = self.provisioning.datacenter.hosts.get(worker.host_id)
        if host is not None:
            host.vms.pop(worker.vm.vm_id, None)
        self.scaled_down += 1

    # -- health --------------------------------------------------------------

    def node_up(self, worker: Worker, fault_plan=None) -> bool:
        """Is the worker's node currently able to run tasks?

        Consults the VM/host state *and* the fault plan's crash windows,
        so a window that the injector has not ticked onto the nodes yet
        is still honoured deterministically.
        """
        if worker.retired:
            return False
        if worker.vm.state is not NodeState.RUNNING:
            return False
        host = self.provisioning.datacenter.hosts.get(worker.host_id)
        if host is not None and host.state is not NodeState.RUNNING:
            return False
        if fault_plan is not None:
            if fault_plan.node_down(worker.node_id):
                return False
            if fault_plan.node_down(worker.host_id):
                return False
        return True

    def active(self) -> List[Worker]:
        """Non-retired workers, in stable id order."""
        return [self.workers[w] for w in sorted(self.workers)
                if not self.workers[w].retired]

    def size(self) -> int:
        return sum(1 for w in self.workers.values() if not w.retired)


def standard_pool(datacenter: Optional[Datacenter] = None, *,
                  hosts: int = 4, monitoring=None,
                  provision_delay_s: float = 0.250,
                  vcpus: int = 2, memory_mb: int = 4096) -> WorkerPool:
    """A ready-to-use pool: TPM hosts, signed images, attesting service.

    Convenience for benchmarks/examples; production wiring passes its own
    :class:`ResourceProvisioningService` with real attestation hooks.
    """
    bios = SoftwareComponent("bios", b"compute-bios-1.0")
    kernel = SoftwareComponent("kernel", b"compute-kernel-1.0")
    hypervisor = SoftwareComponent("hypervisor", b"compute-hv-1.0")
    image = SoftwareComponent("task-runtime", b"compute-runtime-1.0")
    if datacenter is None:
        datacenter = Datacenter("compute-dc")
        for i in range(hosts):
            datacenter.add_host(Host(host_id=f"compute-host-{i:02d}",
                                     bios=bios, hypervisor=hypervisor,
                                     has_tpm=True))
    if not datacenter.hosts:
        raise ConfigurationError("standard_pool needs at least one host")
    provisioning = ResourceProvisioningService(datacenter,
                                               monitoring=monitoring)
    return WorkerPool(provisioning, bios=bios, kernel=kernel, image=image,
                      vcpus=vcpus, memory_mb=memory_mb,
                      provision_delay_s=provision_delay_s)
