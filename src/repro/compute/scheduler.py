"""Deterministic task-graph scheduler over the simulated cloud.

The execution model is Ray-shaped but event-driven on the
:class:`~repro.cloudsim.clock.SimClock`: a submitted
:class:`~.graph.TaskGraph` becomes a :class:`Job`; ready tasks are placed
onto :class:`~.pool.WorkerPool` VMs; the loop advances the clock to the
next completion (or crash) and reacts.  Everything that orders work —
ready queues, placement candidates, event ties — is sorted, so two runs
of the same seeded world produce *identical* event sequences and
placements.

Scheduling properties:

* **data-locality-aware placement** — among idle workers, prefer the node
  already holding the *largest* input object of the task (then the most
  local bytes overall); missing inputs pay a modelled transfer cost;
* **bounded ready queue + autoscaling** — at most ``queue_bound`` tasks
  wait in the ready queue; the autoscaler grows the pool toward
  ``ceil(depth / tasks_per_worker)`` workers (each paying a provisioning
  delay on an attested host) and retires idle workers when depth falls;
* **lifecycle events** — PENDING → SCHEDULED → RUNNING →
  SUCCEEDED/FAILED/CANCELLED transitions (and per-task/worker events) are
  published on the health plane :class:`~..cloudsim.healthplane.EventBus`
  and mirrored into :class:`~..cloudsim.monitoring.MetricsRegistry`
  gauges;
* **lineage-based recovery** — a FaultPlan crash window kills the
  attempts running on that node and evicts its object store; lost
  objects are recomputed by re-running their producer tasks (idempotent
  ones re-run on surviving nodes; a non-idempotent replay fails the job
  with :class:`~repro.core.errors.NonIdempotentReplayError`);
* **attribution** — when a tracer is bound, every attempt contributes a
  span tiled into queue/scheduling/transfer/execution children under the
  job's root span, so critical-path attribution covers the whole compute
  path and still sums to exactly 100%.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, List, Optional, Set, Tuple

from ..cloudsim.clock import SimClock
from ..cloudsim.monitoring import MonitoringService
from ..cloudsim.tracing import Span, Tracer, maybe_span
from ..core.errors import (
    ComputeError,
    ConfigurationError,
    HealthCloudError,
    NonIdempotentReplayError,
    NotFoundError,
    RateLimitError,
    TaskCancelledError,
    TaskFailedError,
    WorkerExhaustedError,
)
from .graph import TaskGraph
from .pool import DRIVER_NODE, Worker, WorkerPool


class JobState(Enum):
    """Lifecycle of a submitted job."""

    PENDING = "pending"
    SCHEDULED = "scheduled"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    FAILED = "failed"
    CANCELLED = "cancelled"


TERMINAL_STATES = (JobState.SUCCEEDED, JobState.FAILED, JobState.CANCELLED)


class TaskState(Enum):
    PENDING = "pending"
    READY = "ready"
    RUNNING = "running"
    SUCCEEDED = "succeeded"


@dataclass
class _Attempt:
    """One placement of one task onto one worker."""

    task_id: str
    attempt: int
    worker: Worker
    t_ready: float
    t_assign: float
    t_sched_end: float
    t_transfer_end: float
    t_done: float
    transfer_bytes: int
    fail_at: Optional[float] = None        # crash window hits before t_done

    @property
    def event_time(self) -> float:
        return self.t_done if self.fail_at is None else self.fail_at


@dataclass
class Job:
    """One submitted task graph and everything its lifecycle produced."""

    job_id: str
    graph: TaskGraph
    tenant_id: str
    submitted_by: str
    submitted_at_s: float
    state: JobState = JobState.PENDING
    started_at_s: Optional[float] = None
    finished_at_s: Optional[float] = None
    error: str = ""
    error_type: str = ""
    task_states: Dict[str, TaskState] = field(default_factory=dict)
    attempts: Dict[str, int] = field(default_factory=dict)
    ready_since: Dict[str, float] = field(default_factory=dict)
    placements: List[Dict[str, Any]] = field(default_factory=list)
    recovered_tasks: List[str] = field(default_factory=list)
    trace_id: Optional[str] = None
    cancel_requested: bool = False
    # Simulated object plane: key -> value, sizes, and node locations.
    values: Dict[str, Any] = field(default_factory=dict)
    sizes: Dict[str, int] = field(default_factory=dict)
    locations: Dict[str, Set[str]] = field(default_factory=dict)

    @property
    def finished(self) -> bool:
        return self.state in TERMINAL_STATES

    def counts(self) -> Dict[str, int]:
        out = {state.value: 0 for state in TaskState}
        for state in self.task_states.values():
            out[state.value] += 1
        return out

    @property
    def makespan_s(self) -> Optional[float]:
        if self.started_at_s is None or self.finished_at_s is None:
            return None
        return self.finished_at_s - self.started_at_s


class Scheduler:
    """Places task graphs onto the worker pool, deterministically.

    ``submit`` is the internal surface (the versioned ``/v1/compute``
    gateway routes in :mod:`repro.compute.api` wrap it); ``run`` /
    ``run_pending`` drive jobs to completion on the simulated clock, and
    ``step`` exposes single-event granularity so callers (and tests) can
    interleave cancellation with a half-finished graph.
    """

    def __init__(self, pool: WorkerPool, clock: Optional[SimClock] = None,
                 monitoring: Optional[MonitoringService] = None,
                 tracer: Optional[Tracer] = None,
                 fault_plan=None, events=None, *,
                 min_workers: int = 1, max_workers: int = 8,
                 tasks_per_worker: int = 4, queue_bound: int = 64,
                 schedule_cost_s: float = 0.0005,
                 transfer_latency_s: float = 0.002,
                 bandwidth_bps: float = 1e9,
                 max_attempts: int = 4,
                 max_pending_jobs: int = 64,
                 autoscale: bool = True) -> None:
        if min_workers < 0 or max_workers < 1 or min_workers > max_workers:
            raise ConfigurationError(
                f"bad worker bounds [{min_workers}, {max_workers}]")
        if queue_bound < 1 or tasks_per_worker < 1:
            raise ConfigurationError("queue bounds must be >= 1")
        self.pool = pool
        self.clock = clock if clock is not None else SimClock()
        self.monitoring = monitoring
        self.tracer = tracer
        self.fault_plan = fault_plan
        self.events = events
        self.min_workers = min_workers
        self.max_workers = max_workers
        self.tasks_per_worker = tasks_per_worker
        self.queue_bound = queue_bound
        self.schedule_cost_s = schedule_cost_s
        self.transfer_latency_s = transfer_latency_s
        self.bandwidth_bps = bandwidth_bps
        self.max_attempts = max_attempts
        self.max_pending_jobs = max_pending_jobs
        self.autoscale = autoscale
        self.jobs: Dict[str, Job] = {}
        self._queue: List[str] = []            # submitted, not yet run
        self._job_counter = 0
        self._span_counter = 0
        # Per-run (one job executes at a time) scheduling state.
        self._ready: List[str] = []
        self._running: List[_Attempt] = []

    # -- submission (the internal surface) -----------------------------------

    def submit(self, graph: TaskGraph, *, tenant_id: str = "internal",
               submitted_by: str = "internal") -> Job:
        """Validate and enqueue a graph; returns the PENDING job."""
        if len(self._queue) >= self.max_pending_jobs:
            raise RateLimitError(
                f"compute job queue full ({self.max_pending_jobs} pending)")
        order = graph.validate()
        self._job_counter += 1
        job = Job(job_id=f"job-{self._job_counter:06d}", graph=graph,
                  tenant_id=tenant_id, submitted_by=submitted_by,
                  submitted_at_s=self.clock.now)
        for task_id in order:
            job.task_states[task_id] = TaskState.PENDING
            job.attempts[task_id] = 0
        for key, obj in graph.data.items():
            job.values[key] = obj.value
            job.sizes[key] = obj.nbytes
            job.locations[key] = {DRIVER_NODE}
        for task in graph.tasks.values():
            job.sizes[task.output_key] = task.output_bytes
        self.jobs[job.job_id] = job
        self._queue.append(job.job_id)
        self._log(f"job {job.job_id} submitted by {submitted_by} "
                  f"tenant={tenant_id} graph={graph.name} "
                  f"tasks={len(graph.tasks)}")
        self._publish("job.pending", job_id=job.job_id, graph=graph.name,
                      tenant=tenant_id, tasks=len(graph.tasks))
        self._gauges()
        return job

    # -- lookup ---------------------------------------------------------------

    def job(self, job_id: str) -> Job:
        try:
            return self.jobs[job_id]
        except KeyError:
            raise NotFoundError(f"no compute job {job_id!r}") from None

    def result(self, job_id: str, key: Optional[str] = None) -> Any:
        """A finished job's output object(s).

        With ``key`` the single object value; without it a dict of every
        sink output (objects no task consumes).
        """
        job = self.job(job_id)
        if job.state is JobState.CANCELLED:
            raise TaskCancelledError(f"job {job_id} was cancelled")
        if job.state is JobState.FAILED:
            raise TaskFailedError(f"job {job_id} failed: {job.error}")
        if job.state is not JobState.SUCCEEDED:
            raise ComputeError(
                f"job {job_id} is {job.state.value}, not finished")
        if key is not None:
            if key not in job.values:
                raise NotFoundError(f"job {job_id} has no object {key!r}")
            return job.values[key]
        consumed = {k for task in job.graph.tasks.values()
                    for k in task.inputs}
        return {task.output_key: job.values[task.output_key]
                for task in job.graph.tasks.values()
                if task.output_key not in consumed}

    # -- cancellation ---------------------------------------------------------

    def cancel(self, job_id: str) -> Job:
        """Cancel a pending or half-finished job."""
        job = self.job(job_id)
        if job.finished:
            raise TaskCancelledError(
                f"job {job_id} already {job.state.value}")
        if job.state is JobState.PENDING:
            if job_id in self._queue:
                self._queue.remove(job_id)
            self._finalize(job, JobState.CANCELLED)
        else:
            job.cancel_requested = True
        self._log(f"job {job_id} cancellation requested")
        return job

    # -- execution ------------------------------------------------------------

    def run_pending(self) -> List[Job]:
        """Drive every queued job to a terminal state, FIFO."""
        finished = []
        while self._queue:
            finished.append(self.run(self._queue[0]))
        return finished

    def run(self, job_id: Optional[str] = None) -> Job:
        """Drive one job (the oldest queued by default) to completion."""
        if job_id is None:
            if not self._queue:
                raise NotFoundError("no pending compute jobs")
            job_id = self._queue[0]
        job = self.job(job_id)
        if job.finished:
            return job
        if job.state is JobState.PENDING:
            self._start(job)
        if job.finished:                      # empty graph succeeds at start
            self._gauges()
            return job
        with maybe_span(self.tracer, "compute.job", "compute",
                        job_id=job.job_id, graph=job.graph.name) as root:
            if getattr(root, "trace_id", None) is not None:
                job.trace_id = root.trace_id
            while not job.finished:
                self._step_job(job, root)
        self._gauges()
        return job

    def step(self, job_id: str) -> bool:
        """Process one scheduling event; True while the job is live.

        The single-event surface run() is built on, exposed so a caller
        can cancel a half-finished graph between events.
        """
        job = self.job(job_id)
        if job.finished:
            return False
        if job.state in (JobState.PENDING,):
            self._start(job)
        if not job.finished:
            self._step_job(job, None)
        return not job.finished

    # -- internals: lifecycle -------------------------------------------------

    def _start(self, job: Job) -> None:
        if job.job_id in self._queue:
            self._queue.remove(job.job_id)
        self._ready = []
        self._running = []
        self._set_state(job, JobState.SCHEDULED)
        # Make sure the floor of the fleet exists before placement.
        while (self.pool.size() < self.min_workers
               and self.pool.size() < self.max_workers):
            try:
                worker = self.pool.grow(self.clock.now)
            except HealthCloudError as exc:
                self._fail(job, WorkerExhaustedError(
                    f"cannot provision the minimum fleet: {exc}"))
                return
            self._publish("worker.scaled_up", job_id=job.job_id,
                          worker=worker.worker_id, node=worker.node_id)
        job.started_at_s = self.clock.now
        if not job.graph.tasks:          # empty graph: trivially done
            self._finalize(job, JobState.SUCCEEDED)

    def _set_state(self, job: Job, state: JobState) -> None:
        job.state = state
        self._publish(f"job.{state.value}", job_id=job.job_id,
                      tenant=job.tenant_id, graph=job.graph.name)
        self._log(f"job {job.job_id} -> {state.value}")
        self._gauges()

    def _finalize(self, job: Job, state: JobState,
                  error: Optional[BaseException] = None) -> None:
        job.finished_at_s = self.clock.now
        if error is not None:
            job.error = str(error)
            job.error_type = type(error).__name__
        self._running = []
        self._ready = []
        self._set_state(job, state)
        if self.monitoring is not None:
            self.monitoring.metrics.incr(f"compute.jobs.{state.value}")

    def _fail(self, job: Job, error: BaseException) -> None:
        self._finalize(job, JobState.FAILED, error)

    # -- internals: one event -------------------------------------------------

    def _step_job(self, job: Job, root: Any) -> None:
        if job.cancel_requested:
            for attempt in self._running:
                self._publish("task.cancelled", job_id=job.job_id,
                              task=attempt.task_id, worker=attempt.worker.worker_id)
                attempt.worker.busy_until_s = self.clock.now
            self._finalize(job, JobState.CANCELLED,
                           TaskCancelledError("cancelled by caller"))
            return

        self._promote(job)
        if self.autoscale:
            self._autoscale(job)
        self._assign(job, root)

        if self._all_succeeded(job):
            self._finalize(job, JobState.SUCCEEDED)
            return
        if job.finished:
            return

        horizon = self._next_event_time(job)
        if horizon is None:
            self._fail(job, WorkerExhaustedError(
                "no running tasks, no usable worker, and no recovery in "
                "sight: every worker is down or the pool is exhausted"))
            return
        self.clock.advance_to(horizon)
        self._complete_due(job, root)

    def _promote(self, job: Job) -> None:
        """PENDING -> READY for tasks whose deps and inputs are in place."""
        if len(self._ready) >= self.queue_bound:
            return
        for task_id in sorted(job.task_states):
            if job.task_states[task_id] is not TaskState.PENDING:
                continue
            deps = job.graph.dependencies(task_id)
            if any(job.task_states[d] is not TaskState.SUCCEEDED
                   for d in deps):
                continue
            task = job.graph.tasks[task_id]
            if any(not job.locations.get(key) for key in task.inputs):
                continue                     # input lost; producer will rerun
            job.task_states[task_id] = TaskState.READY
            job.ready_since[task_id] = self.clock.now
            self._ready.append(task_id)
            if len(self._ready) >= self.queue_bound:
                break
        self._gauges()

    def _autoscale(self, job: Job) -> None:
        depth = len(self._ready)
        desired = max(self.min_workers,
                      min(self.max_workers,
                          math.ceil(depth / self.tasks_per_worker)
                          if depth else self.min_workers))
        size = self.pool.size()
        while size < desired:
            try:
                worker = self.pool.grow(self.clock.now)
            except HealthCloudError:
                break                        # no attested capacity left
            self._publish("worker.scaled_up", job_id=job.job_id,
                          worker=worker.worker_id, node=worker.node_id)
            self._log(f"job {job.job_id} scaled up {worker.worker_id} "
                      f"(queue depth {depth})")
            size += 1
        if size > desired:
            busy = {a.worker.worker_id for a in self._running}
            for worker in reversed(self.pool.active()):
                if size <= desired:
                    break
                if worker.worker_id in busy or not worker.idle_at(
                        self.clock.now):
                    continue
                # Graceful drain: objects resident on the retiring node
                # spill back to the driver, so scale-down (unlike a
                # crash) never loses a sole copy.
                for key in worker.store:
                    if key in job.locations:
                        job.locations[key].add(DRIVER_NODE)
                self.pool.shrink(worker)
                for key in list(job.locations):
                    job.locations[key].discard(worker.node_id)
                self._publish("worker.scaled_down", job_id=job.job_id,
                              worker=worker.worker_id, node=worker.node_id)
                size -= 1
        self._gauges()

    # -- internals: placement -------------------------------------------------

    def _assign(self, job: Job, root: Any) -> None:
        while self._ready:
            candidates = [w for w in self.pool.active()
                          if w.idle_at(self.clock.now)
                          and self.pool.node_up(w, self.fault_plan)]
            if not candidates:
                return
            task_id = self._ready[0]
            task = job.graph.tasks[task_id]
            if any(not job.locations.get(key) for key in task.inputs):
                # An input evaporated while queued: back to PENDING, its
                # producer is being re-run.
                self._ready.pop(0)
                job.task_states[task_id] = TaskState.PENDING
                continue
            worker = self._place(job, task.inputs, candidates)
            self._ready.pop(0)
            self._launch(job, task_id, worker)
        self._gauges()

    def _place(self, job: Job, inputs: Tuple[str, ...],
               candidates: List[Worker]) -> Worker:
        """Locality score: (largest local input, total local bytes)."""
        def score(worker: Worker) -> Tuple[float, float]:
            local = [float(worker.store.get(key, 0)) for key in inputs]
            return (max(local) if local else 0.0, sum(local))

        best = candidates[0]
        best_score = score(best)
        for worker in candidates[1:]:
            s = score(worker)
            if s > best_score:
                best, best_score = worker, s
        return best

    def _launch(self, job: Job, task_id: str, worker: Worker) -> None:
        task = job.graph.tasks[task_id]
        now = self.clock.now
        job.attempts[task_id] += 1
        missing = [key for key in task.inputs if key not in worker.store]
        transfer_bytes = sum(job.sizes[key] for key in missing)
        transfer_s = 0.0
        if missing:
            transfer_s = (self.transfer_latency_s * len(missing)
                          + transfer_bytes * 8.0 / self.bandwidth_bps)
        t_sched_end = now + self.schedule_cost_s
        t_transfer_end = t_sched_end + transfer_s
        t_done = t_transfer_end + task.cost_s
        attempt = _Attempt(
            task_id=task_id, attempt=job.attempts[task_id], worker=worker,
            t_ready=job.ready_since.get(task_id, now), t_assign=now,
            t_sched_end=t_sched_end, t_transfer_end=t_transfer_end,
            t_done=t_done, transfer_bytes=transfer_bytes,
            fail_at=self._first_crash(worker, now, t_done))
        worker.busy_until_s = t_done
        worker.tasks_started += 1
        self._running.append(attempt)
        job.task_states[task_id] = TaskState.RUNNING
        if job.state is JobState.SCHEDULED:
            self._set_state(job, JobState.RUNNING)
        job.placements.append({
            "task": task_id, "attempt": attempt.attempt,
            "worker": worker.worker_id, "node": worker.node_id,
            "t_assign": round(now, 9), "t_done": round(t_done, 9),
            "transfer_bytes": transfer_bytes})
        self._publish("task.scheduled", job_id=job.job_id, task=task_id,
                      attempt=attempt.attempt, worker=worker.worker_id,
                      node=worker.node_id, transfer_bytes=transfer_bytes)
        if self.monitoring is not None:
            self.monitoring.metrics.incr("compute.bytes.transferred",
                                         transfer_bytes)

    def _first_crash(self, worker: Worker, start_s: float,
                     end_s: float) -> Optional[float]:
        """Earliest crash-window start hitting this node inside (start, end]."""
        if self.fault_plan is None:
            return None
        node_ids = {worker.node_id, worker.host_id}
        hit: Optional[float] = None
        for fault in self.fault_plan.node_crashes:
            if fault.node_id not in node_ids:
                continue
            begin = max(fault.window.start_s, start_s)
            if begin < end_s and fault.window.end_s > begin:
                if hit is None or begin < hit:
                    hit = begin
        return hit

    # -- internals: advancing time -------------------------------------------

    def _next_event_time(self, job: Job) -> Optional[float]:
        """Earliest completion/crash/provision/recovery instant, or None."""
        times = [a.event_time for a in self._running]
        # A worker still provisioning (or busy) unblocks future placement.
        if self._ready or self._has_pending(job):
            for worker in self.pool.active():
                if worker.ready_at_s > self.clock.now:
                    times.append(worker.ready_at_s)
            if not times and self.fault_plan is not None:
                # Every worker is down: the earliest finite window end is
                # when one recovers.
                recoveries = [f.window.end_s
                              for f in self.fault_plan.node_crashes
                              if f.window.end_s > self.clock.now
                              and not math.isinf(f.window.end_s)]
                if recoveries:
                    times.append(min(recoveries))
        return min(times) if times else None

    def _has_pending(self, job: Job) -> bool:
        return any(state in (TaskState.PENDING, TaskState.READY)
                   for state in job.task_states.values())

    def _complete_due(self, job: Job, root: Any) -> None:
        now = self.clock.now
        due = sorted((a for a in self._running if a.event_time <= now),
                     key=lambda a: (a.event_time, a.task_id))
        for attempt in due:
            self._running.remove(attempt)
            if attempt.fail_at is not None:
                self._crash(job, attempt, root)
            else:
                self._succeed(job, attempt, root)
            if job.finished:
                return

    def _succeed(self, job: Job, attempt: _Attempt, root: Any) -> None:
        task = job.graph.tasks[attempt.task_id]
        try:
            value = task.fn({key: job.values[key] for key in task.inputs})
        except Exception as exc:                        # noqa: BLE001
            self._attach_spans(job, attempt, root, status="ERROR",
                               error=f"{type(exc).__name__}: {exc}")
            self._fail(job, TaskFailedError(
                f"task {attempt.task_id} raised "
                f"{type(exc).__name__}: {exc}"))
            return
        key = task.output_key
        job.values[key] = value
        worker = attempt.worker
        worker.store[key] = task.output_bytes
        job.locations.setdefault(key, set()).add(worker.node_id)
        for input_key in task.inputs:                  # transferred copies
            worker.store[input_key] = job.sizes[input_key]
            job.locations[input_key].add(worker.node_id)
        job.task_states[attempt.task_id] = TaskState.SUCCEEDED
        self._attach_spans(job, attempt, root, status="OK")
        self._publish("task.finished", job_id=job.job_id,
                      task=attempt.task_id, attempt=attempt.attempt,
                      worker=worker.worker_id,
                      duration_s=round(attempt.t_done - attempt.t_assign, 9))
        if self.monitoring is not None:
            self.monitoring.metrics.incr("compute.tasks.succeeded")
            self.monitoring.metrics.observe(
                "compute.task.latency",
                attempt.t_done - attempt.t_ready,
                trace_id=job.trace_id)

    def _crash(self, job: Job, attempt: _Attempt, root: Any) -> None:
        worker = attempt.worker
        task = job.graph.tasks[attempt.task_id]
        self._attach_spans(job, attempt, root, status="ERROR",
                           error="node crashed")
        self._publish("worker.crashed", job_id=job.job_id,
                      worker=worker.worker_id, node=worker.node_id,
                      task=attempt.task_id)
        self._log(f"job {job.job_id} worker {worker.worker_id} crashed "
                  f"running {attempt.task_id} "
                  f"(attempt {attempt.attempt})", level="WARN")
        if self.monitoring is not None:
            self.monitoring.metrics.incr("compute.workers.crashed")
        # Evict the node's object store; find lineage holes.
        worker.store.clear()
        worker.busy_until_s = self.clock.now
        lost = []
        for key, nodes in job.locations.items():
            nodes.discard(worker.node_id)
            if not nodes:
                lost.append(key)
        if not task.idempotent:
            self._fail(job, NonIdempotentReplayError(
                f"task {attempt.task_id} is not idempotent and its "
                f"node crashed mid-run"))
            return
        if not self._requeue(job, attempt.task_id):
            return
        producers = job.graph.producers
        for key in sorted(lost):
            producer = producers.get(key)
            if producer is None:
                continue                       # graph data: driver copy only
            if job.task_states[producer] is not TaskState.SUCCEEDED:
                continue
            replay = job.graph.tasks[producer]
            if not replay.idempotent:
                self._fail(job, NonIdempotentReplayError(
                    f"lost object {key!r}; producer {producer} is not "
                    f"idempotent and cannot be replayed"))
                return
            job.task_states[producer] = TaskState.PENDING
            job.recovered_tasks.append(producer)
            self._publish("task.recovery", job_id=job.job_id, task=producer,
                          lost_object=key)
            if self.monitoring is not None:
                self.monitoring.metrics.incr("compute.tasks.recovered")

    def _requeue(self, job: Job, task_id: str) -> bool:
        if job.attempts[task_id] >= self.max_attempts:
            self._fail(job, ComputeError(
                f"task {task_id} exhausted its {self.max_attempts} "
                f"attempts"))
            return False
        job.task_states[task_id] = TaskState.PENDING
        self._publish("task.retried", job_id=job.job_id, task=task_id,
                      attempts=job.attempts[task_id])
        if self.monitoring is not None:
            self.monitoring.metrics.incr("compute.tasks.retried")
        return True

    def _all_succeeded(self, job: Job) -> bool:
        return all(state is TaskState.SUCCEEDED
                   for state in job.task_states.values())

    # -- internals: tracing ---------------------------------------------------

    def _attach_spans(self, job: Job, attempt: _Attempt, root: Any,
                      status: str, error: str = "") -> None:
        """Tile one attempt into queue/sched/transfer/exec child spans."""
        if root is None or getattr(root, "trace_id", None) is None:
            return
        end = attempt.t_done if attempt.fail_at is None else attempt.fail_at
        span = self._span(root, root,
                          f"compute.task:{attempt.task_id}", "compute",
                          attempt.t_ready, end,
                          task=attempt.task_id, attempt=attempt.attempt,
                          worker=attempt.worker.worker_id)
        if status == "ERROR":
            span.set_status("ERROR", error)
        phases = [
            ("compute.queue", "compute-queue", attempt.t_ready,
             attempt.t_assign),
            ("compute.sched", "compute-sched", attempt.t_assign,
             attempt.t_sched_end),
            ("compute.transfer", "compute-transfer", attempt.t_sched_end,
             attempt.t_transfer_end),
            ("compute.exec", "compute-exec", attempt.t_transfer_end,
             attempt.t_done),
        ]
        for name, layer, start_s, end_s in phases:
            start_c = min(start_s, end)
            end_c = min(end_s, end)
            if end_c <= start_c and name != "compute.exec":
                continue                       # zero-width phase: skip
            child = self._span(root, span, name, layer, start_c,
                               max(end_c, start_c))
            if status == "ERROR" and name == "compute.exec":
                child.set_status("ERROR", error)

    def _span(self, root: Any, parent: Any, name: str, layer: str,
              start_s: float, end_s: float, **attributes: Any) -> Span:
        self._span_counter += 1
        span = Span(root.trace_id, f"cs-{self._span_counter:08d}",
                    parent.span_id, name, layer, start_s, attributes)
        span.end_s = end_s
        parent.children.append(span)
        return span

    # -- internals: observability --------------------------------------------

    def _publish(self, kind: str, **attributes: Any) -> None:
        bus = self.events
        if bus is None and self.monitoring is not None:
            plane = self.monitoring.healthplane
            if plane is not None:
                bus = plane.events
        if bus is not None:
            bus.publish("compute", kind, **attributes)

    def _log(self, message: str, level: str = "INFO") -> None:
        if self.monitoring is not None:
            self.monitoring.log("compute", message, level=level)

    def _gauges(self) -> None:
        if self.monitoring is None:
            return
        metrics = self.monitoring.metrics
        metrics.set_gauge("compute.jobs.pending", float(len(self._queue)))
        metrics.set_gauge("compute.jobs.running", float(
            sum(1 for j in self.jobs.values()
                if j.state in (JobState.SCHEDULED, JobState.RUNNING))))
        metrics.set_gauge("compute.queue.depth", float(len(self._ready)))
        metrics.set_gauge("compute.workers", float(self.pool.size()))

    # -- reporting ------------------------------------------------------------

    def describe(self) -> Dict[str, Any]:
        """Serializable accounting for health snapshots and benchmarks."""
        by_state: Dict[str, int] = {}
        for job in self.jobs.values():
            by_state[job.state.value] = by_state.get(job.state.value, 0) + 1
        return {
            "jobs": len(self.jobs),
            "by_state": dict(sorted(by_state.items())),
            "queued": len(self._queue),
            "workers": self.pool.size(),
            "scaled_up": self.pool.scaled_up,
            "scaled_down": self.pool.scaled_down,
        }


def standard_scheduler(*, clock: Optional[SimClock] = None,
                       monitoring: Optional[MonitoringService] = None,
                       tracer: Optional[Tracer] = None,
                       fault_plan=None, hosts: int = 4,
                       provision_delay_s: float = 0.250,
                       **kwargs: Any) -> Scheduler:
    """A scheduler over a freshly built attested pool (see standard_pool).

    Convenience wiring for examples, benchmarks, and tests; production
    code constructs :class:`~.pool.WorkerPool` against its own
    datacenter and provisioning service.
    """
    from .pool import standard_pool

    pool = standard_pool(hosts=hosts, monitoring=monitoring,
                         provision_delay_s=provision_delay_s)
    return Scheduler(pool, clock=clock, monitoring=monitoring,
                     tracer=tracer, fault_plan=fault_plan, **kwargs)
