"""Task graphs: the unit of work the compute layer schedules.

A :class:`TaskGraph` is a DAG of :class:`TaskSpec` nodes joined by two
kinds of edges:

* **control dependencies** (``deps``) — task B runs only after task A
  succeeded;
* **data dependencies** (``inputs``) — task B reads the object key task A
  produced (or a graph-level input registered with :meth:`add_data`).
  Naming another task's output implicitly adds the control edge.

Every task declares its *simulated* execution cost (``cost_s``), the size
of the object it produces (``output_bytes``, what locality-aware
placement and transfer accounting see), and whether it is **idempotent**
— safe to re-execute after a worker crash.  The graph itself is inert:
validation (:meth:`validate`) checks ids, input keys, and acyclicity, and
the scheduler consumes the returned topological order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from ..core.errors import ConfigurationError

# A task function receives the resolved values of its declared inputs
# (key -> value) and returns the value of its output object.
TaskFn = Callable[[Dict[str, Any]], Any]

DEFAULT_TASK_COST_S = 0.010
DEFAULT_OUTPUT_BYTES = 64 * 1024


@dataclass(frozen=True)
class DataObject:
    """A graph-level input object, resident on the driver at submit."""

    key: str
    value: Any
    nbytes: int


@dataclass(frozen=True)
class TaskSpec:
    """One schedulable task: function, edges, and simulated shape."""

    task_id: str
    fn: TaskFn
    deps: Tuple[str, ...] = ()
    inputs: Tuple[str, ...] = ()
    output: str = ""                      # object key produced; default task_id
    cost_s: float = DEFAULT_TASK_COST_S
    output_bytes: int = DEFAULT_OUTPUT_BYTES
    idempotent: bool = True

    @property
    def output_key(self) -> str:
        return self.output if self.output else self.task_id


class TaskGraph:
    """A named DAG of tasks plus the input objects they consume."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.tasks: Dict[str, TaskSpec] = {}
        self.data: Dict[str, DataObject] = {}

    # -- construction --------------------------------------------------------

    def add_data(self, key: str, value: Any,
                 nbytes: int = DEFAULT_OUTPUT_BYTES) -> DataObject:
        """Register a graph input object (lives on the driver node)."""
        if key in self.data:
            raise ConfigurationError(f"graph {self.name}: data {key!r} "
                                     f"already registered")
        if nbytes < 0:
            raise ConfigurationError(f"data {key!r}: negative size")
        obj = DataObject(key, value, nbytes)
        self.data[key] = obj
        return obj

    def add_task(self, task_id: str, fn: TaskFn, *,
                 deps: Tuple[str, ...] = (),
                 inputs: Tuple[str, ...] = (),
                 output: Optional[str] = None,
                 cost_s: float = DEFAULT_TASK_COST_S,
                 output_bytes: int = DEFAULT_OUTPUT_BYTES,
                 idempotent: bool = True) -> TaskSpec:
        """Append a task; input keys naming task outputs add dep edges."""
        if task_id in self.tasks:
            raise ConfigurationError(f"graph {self.name}: task {task_id!r} "
                                     f"already added")
        if cost_s < 0:
            raise ConfigurationError(f"task {task_id!r}: negative cost")
        spec = TaskSpec(task_id=task_id, fn=fn, deps=tuple(deps),
                        inputs=tuple(inputs),
                        output=output if output is not None else "",
                        cost_s=cost_s, output_bytes=output_bytes,
                        idempotent=idempotent)
        if spec.output_key in self.data:
            raise ConfigurationError(
                f"task {task_id!r} output {spec.output_key!r} collides "
                f"with a graph input")
        self.tasks[task_id] = spec
        return spec

    # -- queries -------------------------------------------------------------

    @property
    def producers(self) -> Dict[str, str]:
        """Object key -> task id that produces it."""
        out: Dict[str, str] = {}
        for task in self.tasks.values():
            if task.output_key in out:
                raise ConfigurationError(
                    f"graph {self.name}: output {task.output_key!r} produced "
                    f"by both {out[task.output_key]!r} and {task.task_id!r}")
            out[task.output_key] = task.task_id
        return out

    def dependencies(self, task_id: str) -> Tuple[str, ...]:
        """Effective control deps: explicit ``deps`` + input producers."""
        task = self.tasks[task_id]
        producers = self.producers
        effective = list(task.deps)
        for key in task.inputs:
            producer = producers.get(key)
            if producer is not None and producer not in effective:
                effective.append(producer)
        return tuple(effective)

    def validate(self) -> List[str]:
        """Check edges and acyclicity; returns a topological order.

        Raises :class:`ConfigurationError` for unknown dep ids, input
        keys produced by no task and absent from the graph data, and for
        dependency cycles (named in the error).
        """
        producers = self.producers
        effective: Dict[str, Tuple[str, ...]] = {}
        for task_id, task in self.tasks.items():
            for dep in task.deps:
                if dep not in self.tasks:
                    raise ConfigurationError(
                        f"task {task_id!r} depends on unknown task {dep!r}")
            for key in task.inputs:
                if key not in producers and key not in self.data:
                    raise ConfigurationError(
                        f"task {task_id!r} reads {key!r}, which no task "
                        f"produces and no graph data provides")
            effective[task_id] = self.dependencies(task_id)

        # Kahn's algorithm over the effective edges, sorted for determinism.
        indegree = {task_id: len(deps) for task_id, deps in effective.items()}
        dependents: Dict[str, List[str]] = {t: [] for t in self.tasks}
        for task_id, deps in effective.items():
            for dep in deps:
                dependents[dep].append(task_id)
        ready = sorted(t for t, d in indegree.items() if d == 0)
        order: List[str] = []
        while ready:
            task_id = ready.pop(0)
            order.append(task_id)
            added = False
            for dependent in dependents[task_id]:
                indegree[dependent] -= 1
                if indegree[dependent] == 0:
                    ready.append(dependent)
                    added = True
            if added:
                ready.sort()
        if len(order) != len(self.tasks):
            cyclic = sorted(t for t, d in indegree.items() if d > 0)
            raise ConfigurationError(
                f"graph {self.name}: dependency cycle through {cyclic}")
        return order

    def describe(self) -> Dict[str, Any]:
        """Serializable summary for status responses and benchmarks."""
        return {
            "name": self.name,
            "tasks": len(self.tasks),
            "data_objects": len(self.data),
            "total_cost_s": round(sum(t.cost_s for t in self.tasks.values()),
                                  9),
        }
