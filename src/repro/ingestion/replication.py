"""High availability and disaster recovery service (Section II-B).

"Platform services provide secure generic services, namely a DevOps
Service, high availability and disaster recovery service..."

:class:`ReplicatedDataLake` fronts a primary :class:`~.datalake.DataLake`
plus N replicas in (simulated) separate zones:

* writes go to the primary and replicate synchronously or asynchronously;
* reads fail over to a replica when the primary zone is down;
* a zone failure triggers promotion of the most caught-up replica;
* :meth:`disaster_recovery_drill` verifies every record survives a
  primary loss bit-for-bit.

Crypto-deletion (right-to-forget) stays correct under replication because
all copies share the same KMS: destroying the patient key makes every
replica's ciphertext unreadable at once — replicas never hold plaintext.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.errors import NotFoundError, ServiceUnavailableError
from ..crypto.kms import KeyManagementService
from ..cloudsim.monitoring import MonitoringService
from .datalake import DataLake, StoredRecord


@dataclass
class _Zone:
    """One availability zone hosting a lake copy."""

    name: str
    lake: DataLake
    healthy: bool = True
    applied_writes: int = 0


class ReplicatedDataLake:
    """Primary/replica data lake with failover and DR verification."""

    def __init__(self, kms: KeyManagementService, zones: List[str],
                 synchronous: bool = True,
                 monitoring: Optional[MonitoringService] = None) -> None:
        if len(zones) < 2:
            raise ServiceUnavailableError(
                "HA requires at least two zones")
        self._zones: Dict[str, _Zone] = {
            name: _Zone(name, DataLake(kms)) for name in zones}
        self._primary = zones[0]
        self.synchronous = synchronous
        self.monitoring = (monitoring if monitoring is not None
                           else MonitoringService())
        # Write-ahead log of (method, args) for async catch-up.
        self._log: List[Tuple[str, tuple, dict]] = []
        # Optional chaos hook: crash windows on zone names, applied by
        # tick_faults() so outages/recoveries follow the simulated clock.
        self.fault_plan = None

    # -- topology -----------------------------------------------------------

    @property
    def primary_zone(self) -> str:
        return self._primary

    def replica_zones(self) -> List[str]:
        return [z for z in self._zones if z != self._primary]

    def fail_zone(self, zone: str) -> None:
        """Simulate a zone outage."""
        self._zone(zone).healthy = False
        self.monitoring.log("hadr", f"zone {zone} DOWN", level="ERROR")
        if zone == self._primary:
            self._promote()

    def heal_zone(self, zone: str) -> None:
        """Zone comes back; replays the log to catch up."""
        z = self._zone(zone)
        z.healthy = True
        self._catch_up(z)
        self.monitoring.log("hadr", f"zone {zone} healed and caught up")

    def tick_faults(self) -> None:
        """Apply the attached fault plan's zone crash windows right now."""
        if self.fault_plan is None:
            return
        for zone in list(self._zones.values()):
            down = self.fault_plan.node_down(zone.name)
            if down and zone.healthy:
                self.fail_zone(zone.name)
            elif not down and not zone.healthy:
                self.heal_zone(zone.name)

    def _promote(self) -> None:
        candidates = [z for z in self._zones.values()
                      if z.healthy and z.name != self._primary]
        if not candidates:
            raise ServiceUnavailableError("no healthy replica to promote")
        # Most caught-up replica wins.
        new_primary = max(candidates, key=lambda z: z.applied_writes)
        self._catch_up(new_primary)
        self._primary = new_primary.name
        self.monitoring.metrics.incr("hadr.promotions")
        self.monitoring.log("hadr",
                            f"promoted {new_primary.name} to primary")

    def _catch_up(self, zone: _Zone) -> None:
        while zone.applied_writes < len(self._log):
            method, args, kwargs = self._log[zone.applied_writes]
            getattr(zone.lake, method)(*args, **kwargs)
            zone.applied_writes += 1

    def _zone(self, name: str) -> _Zone:
        try:
            return self._zones[name]
        except KeyError:
            raise NotFoundError(f"unknown zone {name!r}") from None

    def _healthy_lake(self) -> _Zone:
        primary = self._zones[self._primary]
        if primary.healthy:
            return primary
        self._promote()
        return self._zones[self._primary]

    # -- data-plane API (mirrors DataLake) --------------------------------------

    def store(self, patient_ref: str, plaintext: bytes,
              kind: str = "original", group_id: Optional[str] = None,
              metadata: Optional[Dict[str, str]] = None) -> StoredRecord:
        """Write-through to primary, replicate per the configured mode.

        Returns the *primary's* record so record ids are authoritative;
        all zones apply the same log order, so ids agree everywhere.
        """
        self._log.append(("store", (patient_ref, plaintext),
                          {"kind": kind, "group_id": group_id,
                           "metadata": metadata}))
        primary = self._healthy_lake()
        self._catch_up(primary)
        record = None
        for zone in self._zones.values():
            if not zone.healthy:
                continue
            if zone.name == primary.name:
                record = primary.lake._records[  # just-applied entry
                    list(primary.lake._records)[-1]]
            elif self.synchronous:
                self._catch_up(zone)
        assert record is not None
        self.monitoring.metrics.incr("hadr.writes")
        return record

    def retrieve(self, record_id: str) -> bytes:
        """Read from the primary; fail over to replicas on outage.

        Every read served by a non-primary zone counts as a failover on
        the ``hadr.failover_reads`` metric.
        """
        requested_primary = self._primary
        self.tick_faults()  # may fail the primary and promote a replica
        order = [self._primary] + self.replica_zones()
        last_error: Optional[Exception] = None
        for name in order:
            zone = self._zones[name]
            if not zone.healthy:
                continue
            self._catch_up(zone)
            try:
                value = zone.lake.retrieve(record_id)
            except NotFoundError as exc:
                last_error = exc
                continue
            if name != requested_primary:
                self.monitoring.metrics.incr("hadr.failover_reads")
            return value
        if last_error is not None:
            raise last_error
        raise ServiceUnavailableError("no healthy zone for read")

    def forget_patient(self, patient_ref: str) -> int:
        """Right-to-forget under replication: one key destruction covers
        every copy (shared KMS); metadata is dropped zone by zone."""
        affected = 0
        for zone in self._zones.values():
            self._catch_up(zone)
            affected = max(affected, zone.lake.forget_patient(patient_ref))
        return affected

    def records_for_patient(self, patient_ref: str,
                            kind: Optional[str] = None) -> List[StoredRecord]:
        """Delegates to the current primary (post-catch-up)."""
        zone = self._healthy_lake()
        self._catch_up(zone)
        return zone.lake.records_for_patient(patient_ref, kind=kind)

    def records_for_group(self, group_id: str,
                          kind: Optional[str] = None) -> List[StoredRecord]:
        """Delegates to the current primary (post-catch-up)."""
        zone = self._healthy_lake()
        self._catch_up(zone)
        return zone.lake.records_for_group(group_id, kind=kind)

    def metadata_of(self, record_id: str) -> Dict[str, str]:
        zone = self._healthy_lake()
        self._catch_up(zone)
        return zone.lake.metadata_of(record_id)

    @property
    def record_count(self) -> int:
        zone = self._healthy_lake()
        self._catch_up(zone)
        return zone.lake.record_count

    # -- verification -------------------------------------------------------------

    def zones_consistent(self) -> bool:
        """All healthy, caught-up zones hold identical record sets."""
        digests = set()
        for zone in self._zones.values():
            if not zone.healthy:
                continue
            self._catch_up(zone)
            digest = tuple(sorted(
                (r.record_id, r.content_hash)
                for r in zone.lake._records.values()))
            digests.add(digest)
        return len(digests) <= 1

    def disaster_recovery_drill(self) -> Dict[str, object]:
        """Kill the primary, fail over, verify every record readable.

        Returns a report; raises if any record is lost.
        """
        old_primary = self._primary
        record_ids = list(self._zones[old_primary].lake._records)
        self.fail_zone(old_primary)
        recovered = 0
        for record_id in record_ids:
            self.retrieve(record_id)  # raises on loss
            recovered += 1
        report = {
            "failed_zone": old_primary,
            "new_primary": self._primary,
            "records_verified": recovered,
            "data_loss": False,
        }
        self.monitoring.log("hadr", f"DR drill passed: {report}")
        return report
