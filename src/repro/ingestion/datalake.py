"""Data Lake: the trusted backend storage system (Sections II-B, IV-B1).

"After the data is ingested, it is encrypted using a different key or set
of keys ... Both the original and anonymized versions of data objects are
encrypted and stored."  Records are therefore stored as AEAD ciphertexts
under *per-patient data keys* minted by the KMS.  Crypto-deletion of a
patient's key (GDPR right-to-forget) makes every stored version of their
records unreadable, which :meth:`forget_patient` implements.

Metadata (reference-id mappings, consent group, content hashes) lives in a
separate protected index, mirroring the paper's "the reference-id to
identity the mapping is stored in the metadata."
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.errors import IntegrityError, KeyManagementError, NotFoundError
from ..crypto.kms import KeyManagementService
from ..crypto.symmetric import Ciphertext, SharedKeyCipher


@dataclass
class StoredRecord:
    """One encrypted record version in the lake."""

    record_id: str
    patient_ref: str          # pseudonymous reference id
    kind: str                 # "original" | "anonymized"
    ciphertext: bytes
    wrapped_key: bytes
    key_id: str
    key_version: int
    content_hash: str         # hash of the plaintext, for provenance
    group_id: Optional[str] = None


class DataLake:
    """Encrypted, versioned record store with per-patient envelope keys."""

    SERVICE_PRINCIPAL = "data-lake"

    def __init__(self, kms: KeyManagementService) -> None:
        self._kms = kms
        self._records: Dict[str, StoredRecord] = {}
        self._by_patient: Dict[str, List[str]] = {}
        self._patient_keys: Dict[str, str] = {}   # patient_ref -> key_id
        self._metadata: Dict[str, Dict[str, str]] = {}
        self._counter = 0

    # -- key handling -----------------------------------------------------------

    def _key_for_patient(self, patient_ref: str) -> str:
        key_id = self._patient_keys.get(patient_ref)
        if key_id is None:
            key_id = self._kms.create_key(
                purpose=f"patient-data:{patient_ref}",
                allowed_principals={self.SERVICE_PRINCIPAL})
            self._patient_keys[patient_ref] = key_id
        return key_id

    # -- storage ------------------------------------------------------------------

    def store(self, patient_ref: str, plaintext: bytes, kind: str = "original",
              group_id: Optional[str] = None,
              metadata: Optional[Dict[str, str]] = None) -> StoredRecord:
        """Encrypt and store one record version; returns the stored entry."""
        if kind not in ("original", "anonymized"):
            raise ValueError(f"unknown record kind {kind!r}")
        key_id = self._key_for_patient(patient_ref)
        data_key = self._kms.generate_data_key(key_id, self.SERVICE_PRINCIPAL)
        cipher = SharedKeyCipher(data_key.plaintext)
        self._counter += 1
        record_id = f"rec-{self._counter:08d}"
        encrypted = cipher.encrypt(plaintext,
                                   associated_data=record_id.encode())
        record = StoredRecord(
            record_id=record_id,
            patient_ref=patient_ref,
            kind=kind,
            ciphertext=encrypted.to_bytes(),
            wrapped_key=data_key.wrapped,
            key_id=key_id,
            key_version=data_key.key_version,
            content_hash=hashlib.sha256(plaintext).hexdigest(),
            group_id=group_id,
        )
        self._records[record_id] = record
        self._by_patient.setdefault(patient_ref, []).append(record_id)
        if metadata:
            self._metadata[record_id] = dict(metadata)
        return record

    def retrieve(self, record_id: str) -> bytes:
        """Decrypt one record; fails after crypto-deletion of the patient key."""
        record = self._record(record_id)
        data_key = self._kms.unwrap_data_key(
            record.key_id, record.wrapped_key, self.SERVICE_PRINCIPAL,
            key_version=record.key_version)
        cipher = SharedKeyCipher(data_key)
        plaintext = cipher.decrypt(Ciphertext.from_bytes(record.ciphertext),
                                   associated_data=record_id.encode())
        if hashlib.sha256(plaintext).hexdigest() != record.content_hash:
            raise IntegrityError(f"record {record_id} hash mismatch")
        return plaintext

    def metadata_of(self, record_id: str) -> Dict[str, str]:
        self._record(record_id)  # existence check
        return dict(self._metadata.get(record_id, {}))

    def records_for_patient(self, patient_ref: str,
                            kind: Optional[str] = None) -> List[StoredRecord]:
        records = [self._records[r]
                   for r in self._by_patient.get(patient_ref, [])]
        if kind is not None:
            records = [r for r in records if r.kind == kind]
        return records

    def records_for_group(self, group_id: str,
                          kind: Optional[str] = None) -> List[StoredRecord]:
        records = [r for r in self._records.values()
                   if r.group_id == group_id]
        if kind is not None:
            records = [r for r in records if r.kind == kind]
        return sorted(records, key=lambda r: r.record_id)

    # -- right to forget -------------------------------------------------------------

    def forget_patient(self, patient_ref: str) -> int:
        """GDPR right-to-forget via crypto-deletion.

        Destroys the patient's master key (all versions) so every stored
        ciphertext becomes permanently unreadable, then drops the metadata.
        Returns the number of record versions affected.
        """
        key_id = self._patient_keys.get(patient_ref)
        if key_id is None:
            return 0
        self._kms.destroy_key(key_id)
        affected = self._by_patient.get(patient_ref, [])
        for record_id in affected:
            self._metadata.pop(record_id, None)
        return len(affected)

    @property
    def record_count(self) -> int:
        return len(self._records)

    def _record(self, record_id: str) -> StoredRecord:
        try:
            return self._records[record_id]
        except KeyError:
            raise NotFoundError(f"record {record_id} not in lake") from None
