"""Privacy-tiered storage routing (Fig. 4, Sections I and III).

"Our system can be used for storing data with differing privacy
requirements.  Some of the data are highly confidential ... Other data do
not have such strong data confidentiality requirements."  Fig. 4 draws
two servers: a data-analytics server for low-sensitivity data and a
confidential-data server for PHI.

:class:`TieredStorageRouter` classifies payloads and routes them to the
right tier, enforcing tier policy: PHI may only land on the confidential
tier (encrypted, consent-gated, caching disabled), while public/derived
data lands on the analytics tier where caching is allowed.  Misrouting
attempts raise; classification of FHIR content is automatic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Tuple

from ..core.errors import ComplianceError, NotFoundError
from ..fhir.resources import Bundle, Patient, Resource
from ..privacy.deidentify import phi_identifiers_present
from .datalake import DataLake, StoredRecord


class DataClassification(Enum):
    """Sensitivity tiers, lowest to highest."""

    PUBLIC = "public"                # knowledge bases, publications
    INTERNAL = "internal"            # aggregates, model artifacts
    DEIDENTIFIED = "deidentified"    # pseudonymous clinical data
    PHI = "phi"                      # identifiable patient data


@dataclass(frozen=True)
class TierPolicy:
    """What a storage tier may hold and how it behaves."""

    name: str
    max_classification: DataClassification
    cacheable: bool
    requires_encryption: bool


# The two servers of Fig. 4.
ANALYTICS_TIER = TierPolicy(
    name="analytics-server",
    max_classification=DataClassification.DEIDENTIFIED,
    cacheable=True,
    requires_encryption=False,
)
CONFIDENTIAL_TIER = TierPolicy(
    name="confidential-server",
    max_classification=DataClassification.PHI,
    cacheable=False,
    requires_encryption=True,
)

_ORDER = [DataClassification.PUBLIC, DataClassification.INTERNAL,
          DataClassification.DEIDENTIFIED, DataClassification.PHI]


def classification_rank(classification: DataClassification) -> int:
    return _ORDER.index(classification)


def classify_bundle(bundle: Bundle) -> DataClassification:
    """Automatic classification of FHIR content.

    Any residual Safe-Harbor identifier makes the bundle PHI; otherwise
    patient-linked (pseudonymous) content is DEIDENTIFIED; otherwise
    INTERNAL.
    """
    has_clinical = False
    for resource in bundle.entries:
        if phi_identifiers_present(resource):
            return DataClassification.PHI
        if isinstance(resource, Patient) or getattr(resource, "subject",
                                                    None):
            has_clinical = True
    return (DataClassification.DEIDENTIFIED if has_clinical
            else DataClassification.INTERNAL)


@dataclass
class TierPlacement:
    """Where a payload ended up."""

    tier: str
    classification: DataClassification
    record: Optional[StoredRecord] = None    # confidential tier
    key: Optional[str] = None                # analytics tier


class TieredStorageRouter:
    """Routes payloads between the analytics and confidential servers."""

    def __init__(self, confidential_lake: DataLake) -> None:
        self._confidential = confidential_lake
        # The analytics tier is a plain keyed store (cacheable, may be
        # replicated into caches freely).
        self._analytics: Dict[str, bytes] = {}
        self._classifications: Dict[str, DataClassification] = {}
        self._counter = 0

    # -- routing -----------------------------------------------------------

    def place_bundle(self, bundle: Bundle, patient_ref: str,
                     group_id: Optional[str] = None) -> TierPlacement:
        """Classify and store a bundle on the appropriate tier."""
        classification = classify_bundle(bundle)
        payload = bundle.to_json().encode()
        return self.place(payload, classification,
                          patient_ref=patient_ref, group_id=group_id)

    def place(self, payload: bytes, classification: DataClassification,
              patient_ref: str = "anonymous",
              group_id: Optional[str] = None) -> TierPlacement:
        """Store a classified payload; PHI must go encrypted + gated."""
        if classification_rank(classification) > classification_rank(
                ANALYTICS_TIER.max_classification):
            record = self._confidential.store(
                patient_ref, payload, kind="original", group_id=group_id)
            return TierPlacement(CONFIDENTIAL_TIER.name, classification,
                                 record=record)
        self._counter += 1
        key = f"an-{self._counter:08d}"
        self._analytics[key] = payload
        self._classifications[key] = classification
        return TierPlacement(ANALYTICS_TIER.name, classification, key=key)

    def place_on_analytics_tier(self, payload: bytes,
                                classification: DataClassification) -> str:
        """Explicit analytics-tier placement; PHI is refused."""
        if classification_rank(classification) > classification_rank(
                ANALYTICS_TIER.max_classification):
            raise ComplianceError(
                f"{classification.value} data may not be stored on the "
                f"analytics tier")
        placement = self.place(payload, classification)
        assert placement.key is not None
        return placement.key

    # -- reads --------------------------------------------------------------------

    def read_analytics(self, key: str) -> bytes:
        try:
            return self._analytics[key]
        except KeyError:
            raise NotFoundError(f"analytics key {key!r} not found") from None

    def is_cacheable(self, key: str) -> bool:
        """Per Fig. 4, only analytics-tier data participates in caching."""
        return key in self._analytics

    def tier_of(self, placement: TierPlacement) -> TierPolicy:
        return (CONFIDENTIAL_TIER
                if placement.tier == CONFIDENTIAL_TIER.name
                else ANALYTICS_TIER)

    def analytics_inventory(self) -> List[Tuple[str, DataClassification]]:
        return sorted((key, self._classifications[key])
                      for key in self._analytics)
