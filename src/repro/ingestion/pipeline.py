"""Asynchronous data ingestion pipeline (Sections II-B and IV-B1).

The full flow the paper specifies:

1. clients encrypt bundles "using a client's public certificate issued by
   the platform" and upload to "a secure temporary storage area" (the
   staging area); "a message is left in the platform's internal messaging
   system for the background ingestion process";
2. "the platform returns a status URL to the uploading client";
3. the background process i) decrypts with the client's private key
   (generated at registration, held in the key management system),
   ii) validates the bundle, scans for malware, verifies consent,
   iii) de-identifies and stores in the Data Lake with a reference-id,
   keeping the identity mapping in protected metadata;
4. every step lands a provenance event on the blockchain, and
   malware/privacy verdicts go to their networks.
"""

from __future__ import annotations

import hashlib
import json
from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Deque, Dict, List, Optional, Tuple

from ..blockchain.chaincode import provenance_event_leaf
from ..blockchain.network import BlockchainNetwork
from ..blockchain.sharding import ShardedBlockchainNetwork, ShardedIngestReport
from ..cloudsim.clock import SimClock
from ..cloudsim.monitoring import MonitoringService
from ..cloudsim.tracing import maybe_span
from ..core.errors import (
    AuthenticationError,
    IngestionError,
    NotFoundError,
)
from ..crypto.merkle import IncrementalMerkleTree
from ..crypto.rsa import (
    HybridCiphertext,
    RsaPrivateKey,
    RsaPublicKey,
    generate_keypair,
    hybrid_decrypt,
    hybrid_encrypt,
)
from ..fhir.resources import Bundle, Consent, Patient
from ..fhir.validation import BundleValidator
from ..privacy.consent import ConsentManagementService
from ..privacy.deidentify import Deidentifier, ReidentificationMap
from ..privacy.verification import AnonymizationVerificationService
from .datalake import DataLake
from .malware import MalwareScanner


class IngestionStatus(Enum):
    """States reported by a job's status URL."""

    UPLOADED = "uploaded"
    DECRYPTED = "decrypted"
    VALIDATED = "validated"
    SCANNED = "scanned"
    CONSENTED = "consented"
    DEIDENTIFIED = "deidentified"
    STORED = "stored"
    REJECTED = "rejected"


# Simulated per-stage service times (seconds) for the E1 latency split.
STAGE_COSTS = {
    IngestionStatus.DECRYPTED: 4e-3,
    IngestionStatus.VALIDATED: 2e-3,
    IngestionStatus.SCANNED: 3e-3,
    IngestionStatus.CONSENTED: 1e-3,
    IngestionStatus.DEIDENTIFIED: 2e-3,
    IngestionStatus.STORED: 5e-3,
}


@dataclass
class IngestionJob:
    """One staged upload working its way through the pipeline."""

    job_id: str
    client_id: str
    group_id: str
    envelope: HybridCiphertext
    status: IngestionStatus = IngestionStatus.UPLOADED
    reason: str = ""
    stage_times: Dict[str, float] = field(default_factory=dict)
    stored_record_ids: List[str] = field(default_factory=list)
    reference_bundle_id: str = ""

    @property
    def status_url(self) -> str:
        return f"/ingestion/status/{self.job_id}"


@dataclass(frozen=True)
class ClientRegistration:
    """Issued at registration: public certificate for upload encryption."""

    client_id: str
    public_key: RsaPublicKey


class IngestionService:
    """Staging area + background ingestion worker + status API."""

    def __init__(self, datalake: DataLake,
                 consent: ConsentManagementService,
                 deidentifier: Deidentifier,
                 validator: Optional[BundleValidator] = None,
                 scanner: Optional[MalwareScanner] = None,
                 verification: Optional[AnonymizationVerificationService] = None,
                 blockchain: Optional[BlockchainNetwork] = None,
                 monitoring: Optional[MonitoringService] = None,
                 clock: Optional[SimClock] = None,
                 key_seed: Optional[int] = None,
                 provenance_batch_size: int = 16) -> None:
        if provenance_batch_size < 1:
            raise ValueError("provenance batch size must be >= 1")
        self.datalake = datalake
        self.consent = consent
        self.deidentifier = deidentifier
        self.validator = validator if validator is not None else BundleValidator()
        self.scanner = scanner if scanner is not None else MalwareScanner()
        self.verification = (verification if verification is not None
                             else AnonymizationVerificationService(
                                 minimum_degree=0.0))
        self.blockchain = blockchain
        self.clock = clock if clock is not None else SimClock()
        self.monitoring = (monitoring if monitoring is not None
                           else MonitoringService(self.clock))
        self._client_keys: Dict[str, RsaPrivateKey] = {}
        self._jobs: Dict[str, IngestionJob] = {}
        self._queue: Deque[str] = deque()
        self._job_counter = 0
        self._key_seed = key_seed
        self.reidentification = ReidentificationMap()
        # Provenance fast path: with a batch size > 1, per-stage events are
        # accumulated and committed as one Merkle-batched transaction per
        # flush instead of one endorsed transaction per event; 1 keeps the
        # paper's original event-per-transaction behaviour.
        self.provenance_batch_size = provenance_batch_size
        self.tracer = None   # optional request-path tracing hook
        self._event_buffer: List[Dict[str, Any]] = []
        # Leaves of the buffered events, hashed as they arrive: flushing a
        # batch reads the running root in O(log n) instead of rebuilding
        # the whole tree (the roots are identical by construction).
        self._event_tree = IncrementalMerkleTree()
        self._report_buffer: List[Tuple[str, str, Dict[str, Any]]] = []
        self._batch_counter = 0

    # -- registration (Section II-B, "Registration Service") -------------------

    def register_client(self, client_id: str) -> ClientRegistration:
        """Issue a client its platform-held keypair's public certificate."""
        if client_id in self._client_keys:
            raise AuthenticationError(f"client {client_id} already registered")
        seed = (None if self._key_seed is None
                else self._key_seed * 191 + len(self._client_keys) + 1)
        private = generate_keypair(bits=1024, seed=seed)
        self._client_keys[client_id] = private
        return ClientRegistration(client_id, private.public_key())

    def public_key_of(self, client_id: str) -> RsaPublicKey:
        try:
            return self._client_keys[client_id].public_key()
        except KeyError:
            raise NotFoundError(f"client {client_id} not registered") from None

    # -- upload (synchronous part) ------------------------------------------------

    def upload(self, client_id: str, envelope: HybridCiphertext,
               group_id: str) -> IngestionJob:
        """Stage an encrypted bundle; returns the job with its status URL."""
        if client_id not in self._client_keys:
            raise AuthenticationError(f"client {client_id} not registered")
        self._job_counter += 1
        job = IngestionJob(
            job_id=f"job-{self._job_counter:07d}",
            client_id=client_id,
            group_id=group_id,
            envelope=envelope,
        )
        self._jobs[job.job_id] = job
        self._queue.append(job.job_id)
        self.monitoring.metrics.incr("ingestion.uploads")
        self.monitoring.metrics.set_gauge("ingestion.queue_depth",
                                          len(self._queue))
        return job

    def status(self, job_id: str) -> Tuple[IngestionStatus, str]:
        """What a GET on the status URL returns."""
        job = self._job(job_id)
        return job.status, job.reason

    # -- background worker -----------------------------------------------------------

    def process_pending(self, limit: Optional[int] = None,
                        batch_size: Optional[int] = None) -> int:
        """Run the background ingestion process over queued jobs.

        Jobs are driven through the stages in batches of ``batch_size``
        (default: the service's ``provenance_batch_size``); each batch's
        buffered provenance events are flushed as one Merkle-batched,
        endorsed transaction, so the endorsement cost is amortized across
        the whole batch instead of paid per stage event.
        """
        if batch_size is None:
            batch_size = self.provenance_batch_size
        batch_size = max(1, batch_size)
        processed = 0
        in_batch = 0
        with maybe_span(self.tracer, "ingestion.process_pending",
                        "ingestion", batch_size=batch_size) as span:
            while self._queue and (limit is None or processed < limit):
                job_id = self._queue.popleft()
                self.monitoring.metrics.set_gauge("ingestion.queue_depth",
                                                  len(self._queue))
                job = self._jobs[job_id]
                with maybe_span(self.tracer, "ingestion.job", "ingestion",
                                job=job_id) as job_span:
                    self._process(job)
                    job_span.set_attribute("status", job.status.value)
                processed += 1
                in_batch += 1
                if in_batch >= batch_size:
                    self.flush_provenance()
                    in_batch = 0
            self.flush_provenance()
            span.set_attribute("processed", processed)
        return processed

    def flush_provenance(self) -> int:
        """Submit buffered provenance events and verdict reports.

        All buffered per-stage events go out as a single ``record_batch``
        transaction carrying their Merkle root (every event keeps an
        inclusion proof against that endorsed root); buffered malware and
        privacy reports ride in the same endorsement round-trip via
        :meth:`BlockchainNetwork.submit_batch`.  Returns the number of
        transactions submitted.
        """
        if self.blockchain is None:
            return 0
        requests: List[Tuple[str, str, Dict[str, Any]]] = []
        if self._event_buffer:
            events = list(self._event_buffer)
            self._event_buffer.clear()
            self._batch_counter += 1
            batch_id = f"provbatch-{self._batch_counter:06d}"
            merkle_root = self._event_tree.root_hex
            self._event_tree = IncrementalMerkleTree()
            requests.append(("provenance", "record_batch",
                             {"batch_id": batch_id,
                              "merkle_root": merkle_root,
                              "events": events}))
            self.monitoring.metrics.incr("ingestion.provenance_batches")
            self.monitoring.metrics.incr("ingestion.provenance_events",
                                         len(events))
        reports = list(self._report_buffer)
        self._report_buffer.clear()
        # Per-record privacy verdicts collapse into one batch transaction
        # (they are the second per-job cost after provenance events);
        # anything else — malware reports are rare — goes out as-is.
        privacy_levels = [args for chaincode, method, args in reports
                          if (chaincode, method) == ("privacy", "record_level")]
        if privacy_levels:
            requests.append(("privacy", "record_level_batch",
                             {"records": privacy_levels}))
        requests.extend(
            report for report in reports
            if (report[0], report[1]) != ("privacy", "record_level"))
        if not requests:
            return 0
        self.blockchain.submit_batch("ingestion-service", requests)
        return len(requests)

    def _advance(self, job: IngestionJob, status: IngestionStatus) -> None:
        cost = STAGE_COSTS.get(status, 0.0)
        self.clock.advance(cost)
        job.status = status
        job.stage_times[status.value] = self.clock.now

    def _reject(self, job: IngestionJob, reason: str) -> None:
        job.status = IngestionStatus.REJECTED
        job.reason = reason
        self.monitoring.metrics.incr("ingestion.rejected")
        self.monitoring.log("ingestion", f"job {job.job_id} rejected: {reason}",
                            level="WARN")

    def _process(self, job: IngestionJob) -> None:
        start = self.clock.now
        # i) decrypt with the client's platform-held private key.
        try:
            plaintext = hybrid_decrypt(self._client_keys[job.client_id],
                                       job.envelope)
        except Exception as exc:
            self._reject(job, f"decryption failed: {exc}")
            return
        self._advance(job, IngestionStatus.DECRYPTED)
        data_hash = hashlib.sha256(plaintext).hexdigest()
        self._provenance(job, data_hash, "received")

        # malware filtration before parsing (content inspection).
        scan = self.scanner.scan(plaintext)
        if not scan.clean:
            self._malware_report(job, scan)
            if scan.action == "drop":
                self._reject(job, "malware detected: "
                             + ",".join(scan.matched_signatures))
                return
            plaintext = self.scanner.sanitize(plaintext)
        self._advance(job, IngestionStatus.SCANNED)

        # ii) validate the bundle.
        try:
            bundle = Bundle.from_json(plaintext.decode("utf-8"))
        except Exception as exc:
            self._reject(job, f"bundle parse failed: {exc}")
            return
        report = self.validator.validate(bundle)
        if not report.valid:
            self._reject(job, "validation failed: " + "; ".join(report.errors))
            return
        self._advance(job, IngestionStatus.VALIDATED)
        self._provenance(job, data_hash, "validated")

        # consent verification for every patient in the bundle.
        patients = bundle.resources_of(Patient)
        for patient in patients:
            if not self.consent.has_consent(patient.id, job.group_id):
                self._reject(job, f"no consent for patient {patient.id} "
                             f"in group {job.group_id}")
                return
        self._advance(job, IngestionStatus.CONSENTED)

        # iii) de-identify; verify the achieved anonymization degree.
        clean_bundle, mapping = self.deidentifier.deidentify_bundle(bundle)
        self.reidentification.entries.update(mapping.entries)
        assessment = self.verification.assess_bundle(clean_bundle)
        self._privacy_report(job, assessment.overall_degree,
                             assessment.passed)
        if not assessment.passed:
            self._reject(job, "anonymization verification failed "
                         f"(degree {assessment.overall_degree:.2f})")
            return
        self.verification.admit(clean_bundle)
        self._advance(job, IngestionStatus.DEIDENTIFIED)
        self._provenance(job, data_hash, "deidentified")

        # store original + de-identified versions per patient.
        clean_json = clean_bundle.to_json().encode()
        for patient in patients:
            reference = self.deidentifier.reference_id(patient.id)
            original = self.datalake.store(
                reference, plaintext, kind="original",
                group_id=job.group_id,
                metadata={"bundle": bundle.id, "job": job.job_id})
            anonymized = self.datalake.store(
                reference, clean_json, kind="anonymized",
                group_id=job.group_id,
                metadata={"bundle": clean_bundle.id, "job": job.job_id})
            job.stored_record_ids.extend([original.record_id,
                                          anonymized.record_id])
        job.reference_bundle_id = clean_bundle.id
        self._advance(job, IngestionStatus.STORED)
        self._provenance(job, data_hash, "stored")
        self.monitoring.metrics.incr("ingestion.stored")
        self.monitoring.metrics.observe("ingestion.latency",
                                        self.clock.now - start)

    # -- blockchain hooks --------------------------------------------------------------

    def _provenance(self, job: IngestionJob, data_hash: str,
                    event: str) -> None:
        if self.blockchain is None:
            return
        record = {"handle": job.job_id, "data_hash": data_hash,
                  "event": event, "actor": job.client_id,
                  "metadata": {"group": job.group_id}}
        if self.provenance_batch_size > 1:
            self._event_buffer.append(record)
            self._event_tree.append(provenance_event_leaf(record))
        else:
            self.blockchain.submit("ingestion-service", "provenance",
                                   "record_event", **record)

    def _malware_report(self, job: IngestionJob, scan) -> None:
        action = "dropped" if scan.action == "drop" else "sanitized"
        self._report("malware", "report", {
            "record_id": job.job_id, "sender": job.client_id,
            "signature_name": ",".join(scan.matched_signatures),
            "action": action})

    def _privacy_report(self, job: IngestionJob, degree: float,
                        passed: bool) -> None:
        self._report("privacy", "record_level", {
            "record_id": job.job_id, "sender": job.client_id,
            "degree": round(degree, 4), "passed": passed})

    def _report(self, chaincode: str, method: str,
                args: Dict[str, Any]) -> None:
        if self.blockchain is None:
            return
        if self.provenance_batch_size > 1:
            self._report_buffer.append((chaincode, method, args))
        else:
            self.blockchain.submit("ingestion-service", chaincode, method,
                                   **args)

    def _job(self, job_id: str) -> IngestionJob:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise NotFoundError(f"job {job_id} unknown") from None


def encrypt_bundle_for_upload(bundle: Bundle,
                              registration: ClientRegistration) -> HybridCiphertext:
    """Client-side helper: serialize + hybrid-encrypt a bundle for upload."""
    return hybrid_encrypt(registration.public_key, bundle.to_json().encode())


class ShardedIngestionFrontend:
    """Routes provenance events to shard-local Merkle batches.

    The write-path front door for a :class:`ShardedBlockchainNetwork`:
    every event carries a tenant/patient ``routing_key``; events for the
    same shard accumulate in a shard-local buffer whose Merkle root grows
    incrementally with each event.  When a buffer reaches
    ``events_per_batch`` it is sealed into one ``record_batch`` request;
    :meth:`flush` seals the remainder and hands every sealed batch to the
    network's fork-join pipelined :meth:`ShardedBlockchainNetwork.ingest`
    in one call.  The ``ingestion.queue_depth`` gauge tracks events
    buffered or sealed but not yet committed.
    """

    def __init__(self, network: ShardedBlockchainNetwork,
                 events_per_batch: int = 16,
                 submitter: str = "ingestion-service") -> None:
        if events_per_batch < 1:
            raise ValueError("events per batch must be >= 1")
        self.network = network
        self.events_per_batch = events_per_batch
        self.submitter = submitter
        self.monitoring = network.monitoring
        self._buffers: Dict[int, Dict[str, Any]] = {}
        self._sealed: List[Tuple[str, Tuple[str, str, Dict[str, Any]]]] = []
        self._sealed_events = 0
        self._batch_counter = 0

    @property
    def pending_events(self) -> int:
        """Events accepted but not yet committed to any shard ledger."""
        buffered = sum(len(buf["events"]) for buf in self._buffers.values())
        return buffered + self._sealed_events

    def record_event(self, routing_key: str, *, handle: str, data_hash: str,
                     event: str, actor: str,
                     metadata: Optional[Dict[str, Any]] = None) -> int:
        """Buffer one provenance event on its owning shard's batch.

        Returns the event's leaf index within the (eventual) batch — the
        position its Merkle inclusion proof is anchored at.
        """
        shard = self.network.router.shard_for(routing_key)
        buf = self._buffers.get(shard)
        if buf is None:
            buf = {"key": routing_key, "events": [],
                   "tree": IncrementalMerkleTree()}
            self._buffers[shard] = buf
        record = {"handle": handle, "data_hash": data_hash, "event": event,
                  "actor": actor, "metadata": dict(metadata or {})}
        leaf_index = buf["tree"].append(provenance_event_leaf(record))
        buf["events"].append(record)
        if len(buf["events"]) >= self.events_per_batch:
            self._seal(shard)
        self.monitoring.metrics.set_gauge("ingestion.queue_depth",
                                          self.pending_events)
        return leaf_index

    def _seal(self, shard: int) -> None:
        buf = self._buffers.pop(shard)
        self._batch_counter += 1
        batch_id = (f"shardbatch-{self.network.shard_name(shard)}"
                    f"-{self._batch_counter:06d}")
        self._sealed.append((buf["key"], (
            "provenance", "record_batch",
            {"batch_id": batch_id, "merkle_root": buf["tree"].root_hex,
             "events": buf["events"]})))
        self._sealed_events += len(buf["events"])
        self._publish("ingestion.batch_sealed",
                      shard=self.network.shard_name(shard),
                      batch=batch_id, events=len(buf["events"]))

    def flush(self, round_size: Optional[int] = None,
              pipelined: bool = True) -> Optional[ShardedIngestReport]:
        """Seal every partial buffer and commit all sealed batches.

        One fork-join pipelined ingest across shards; ``round_size``
        limits how many batch transactions each shard commits per
        pipeline round.  Returns the ingest report, or ``None`` when
        there was nothing to commit.

        The queue state (and its ``ingestion.queue_depth`` gauge) is
        only cleared after the ingest succeeds: a failed ingest keeps
        the sealed batches queued, so the gauge reflects the events
        still awaiting commit and a later :meth:`flush` retries them.
        """
        for shard in sorted(self._buffers):
            self._seal(shard)
        if not self._sealed:
            self.monitoring.metrics.set_gauge("ingestion.queue_depth", 0)
            return None
        sealed = list(self._sealed)
        self._publish("ingestion.flush", batches=len(sealed),
                      events=self._sealed_events)
        report = self.network.ingest(self.submitter, sealed,
                                     round_size=round_size,
                                     pipelined=pipelined)
        self._sealed = []
        self._sealed_events = 0
        self.monitoring.metrics.set_gauge("ingestion.queue_depth", 0)
        return report

    def _publish(self, kind: str, **attributes: Any) -> None:
        """Emit a lifecycle event when a health plane is attached."""
        plane = self.monitoring.healthplane
        if plane is not None:
            plane.events.publish("ingestion", kind, **attributes)
