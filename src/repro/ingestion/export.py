"""Export service (Section II-B).

"The platform also exposes an Export service which performs two types of
exports, namely i) Anonymized export, that anonymizes the data to protect
privacy, and ii) Full export where the re-identified consented data is
provided to the client.  This is typically needed by Clinical Research
Organizations (CRO) to conduct various types of studies."

* **Anonymized export** returns the stored de-identified record versions
  for a study group, with a k-anonymity pass over the cohort's
  quasi-identifiers.
* **Full export** re-identifies via the protected reference-id mapping —
  allowed only when (a) RBAC grants the caller read access to the group's
  PHI and (b) every patient's consent for the group is still active.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..core.errors import ConsentError, ExportError
from ..fhir.resources import Bundle, Patient
from ..privacy.consent import ConsentManagementService
from ..privacy.deidentify import ReidentificationMap
from ..privacy.kanonymity import MondrianAnonymizer, QuasiIdentifier
from ..rbac.engine import RbacEngine
from ..rbac.model import Action, Scope, ScopeKind
from .datalake import DataLake


@dataclass
class AnonymizedExport:
    """Result of an anonymized export."""

    group_id: str
    bundles: List[Bundle]
    cohort_table: List[Dict[str, Any]]
    achieved_k: int


@dataclass
class FullExport:
    """Result of a consented full export."""

    group_id: str
    records: List[Tuple[str, bytes]]   # (original patient id, plaintext)


class ExportService:
    """Anonymized and full (re-identified) data export."""

    def __init__(self, datalake: DataLake, consent: ConsentManagementService,
                 rbac: RbacEngine,
                 reidentification: ReidentificationMap,
                 anonymity_k: int = 5) -> None:
        self.datalake = datalake
        self.consent = consent
        self.rbac = rbac
        self.reidentification = reidentification
        self.anonymity_k = anonymity_k

    def export_anonymized(self, user_id: str, group_id: str,
                          org_id: str, env_id: str) -> AnonymizedExport:
        """De-identified bundles + k-anonymized cohort table for a group."""
        self.rbac.require(user_id, Action.READ, "anonymized-data",
                          Scope(ScopeKind.GROUP, group_id), org_id, env_id)
        records = self.datalake.records_for_group(group_id, kind="anonymized")
        if not records:
            raise ExportError(f"group {group_id} has no stored data")
        bundles: List[Bundle] = []
        rows: List[Dict[str, Any]] = []
        for record in records:
            plaintext = self.datalake.retrieve(record.record_id)
            bundle = Bundle.from_json(plaintext.decode("utf-8"))
            bundles.append(bundle)
            for patient in bundle.resources_of(Patient):
                rows.append({
                    "patient_ref": patient.id,
                    "birth_year": int((patient.birthDate or "1900")[:4]),
                    "gender": patient.gender or "unknown",
                    "state": (patient.address or {}).get("state", ""),
                })
        achieved = 0
        if len(rows) >= self.anonymity_k:
            anonymizer = MondrianAnonymizer(
                [QuasiIdentifier("birth_year", numeric=True),
                 QuasiIdentifier("gender", numeric=False),
                 QuasiIdentifier("state", numeric=False)],
                k=self.anonymity_k)
            release = anonymizer.anonymize(rows)
            rows = release.rows
            achieved = release.achieved_k
        return AnonymizedExport(group_id=group_id, bundles=bundles,
                                cohort_table=rows, achieved_k=achieved)

    def export_full(self, user_id: str, group_id: str,
                    org_id: str, env_id: str) -> FullExport:
        """Re-identified export: RBAC write-level PHI access + live consent."""
        self.rbac.require(user_id, Action.READ, "phi-data",
                          Scope(ScopeKind.GROUP, group_id), org_id, env_id)
        records = self.datalake.records_for_group(group_id, kind="original")
        if not records:
            raise ExportError(f"group {group_id} has no stored data")
        out: List[Tuple[str, bytes]] = []
        for record in records:
            original_id = self.reidentification.original_of(record.patient_ref)
            if original_id is None:
                raise ExportError(
                    f"no identity mapping for {record.patient_ref}")
            if not self.consent.has_consent(original_id, group_id):
                raise ConsentError(
                    f"consent for patient {original_id} in group {group_id} "
                    "is no longer active")
            out.append((original_id, self.datalake.retrieve(record.record_id)))
        return FullExport(group_id=group_id, records=out)
