"""Data ingestion and export (Sections II-B, IV-B1).

Staging + asynchronous pipeline (decrypt, validate, scan, consent,
de-identify, store), the encrypted Data Lake with crypto-deletion, the
malware filtration system, and the anonymized/full export service.
"""

from .datalake import DataLake, StoredRecord
from .export import AnonymizedExport, ExportService, FullExport
from .malware import DEFAULT_SIGNATURES, MalwareScanner, ScanResult
from .pipeline import (
    ClientRegistration,
    IngestionJob,
    IngestionService,
    IngestionStatus,
    STAGE_COSTS,
    ShardedIngestionFrontend,
    encrypt_bundle_for_upload,
)
from .replication import ReplicatedDataLake
from .tiering import (
    ANALYTICS_TIER,
    CONFIDENTIAL_TIER,
    DataClassification,
    TieredStorageRouter,
    TierPlacement,
    TierPolicy,
    classify_bundle,
)

__all__ = [
    "DataLake",
    "StoredRecord",
    "AnonymizedExport",
    "ExportService",
    "FullExport",
    "DEFAULT_SIGNATURES",
    "MalwareScanner",
    "ScanResult",
    "ClientRegistration",
    "IngestionJob",
    "IngestionService",
    "IngestionStatus",
    "STAGE_COSTS",
    "ShardedIngestionFrontend",
    "encrypt_bundle_for_upload",
    "ReplicatedDataLake",
    "ANALYTICS_TIER",
    "CONFIDENTIAL_TIER",
    "DataClassification",
    "TieredStorageRouter",
    "TierPlacement",
    "TierPolicy",
    "classify_bundle",
]
