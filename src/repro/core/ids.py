"""Deterministic identifier generation.

The platform never calls ``uuid.uuid4`` or the wall clock directly: all
identifiers are drawn from an :class:`IdFactory` seeded explicitly, so that
simulations, tests, and benchmarks are reproducible bit-for-bit.
"""

from __future__ import annotations

import hashlib
import itertools
from typing import Iterator


class IdFactory:
    """Produces unique, deterministic, prefixed identifiers.

    >>> ids = IdFactory(seed=7)
    >>> ids.new("patient")  # doctest: +SKIP
    'patient-3b9aca00...'
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._counter: Iterator[int] = itertools.count()

    def new(self, prefix: str) -> str:
        """Return a fresh identifier of the form ``<prefix>-<12 hex chars>``."""
        n = next(self._counter)
        digest = hashlib.sha256(f"{self._seed}:{prefix}:{n}".encode()).hexdigest()
        return f"{prefix}-{digest[:12]}"

    def pseudo_uuid(self) -> str:
        """Return a UUID-shaped deterministic identifier."""
        n = next(self._counter)
        d = hashlib.sha256(f"{self._seed}:uuid:{n}".encode()).hexdigest()
        return f"{d[:8]}-{d[8:12]}-{d[12:16]}-{d[16:20]}-{d[20:32]}"


def content_id(data: bytes, prefix: str = "obj") -> str:
    """Content-addressed identifier: stable for identical payloads."""
    return f"{prefix}-{hashlib.sha256(data).hexdigest()[:16]}"
