"""Customized dashboards and report generation (Fig. 1, Section II-C).

"Clients could develop customized dashboards and use custom report
generation tools either by using the analytics cloud provided by the
platform or by exporting anonymized data to their own environment."

:class:`ReportService` assembles tenant-facing reports from the
platform's own services — operations (monitoring metrics), compliance
(control coverage + audit verdicts), usage/billing (metering), and study
summaries over anonymized cohort tables — each rendered both as
structured data and as a plain-text dashboard block.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..cloudsim.monitoring import MonitoringService
from ..compliance.audit import AuditService
from ..compliance.hipaa import HipaaControlRegistry
from ..core.metering import MeteringService


@dataclass
class Report:
    """One generated report: structured body + rendered text."""

    title: str
    body: Dict[str, Any]
    text: str


def _render(title: str, rows: Sequence[str]) -> str:
    width = max([len(title)] + [len(r) for r in rows]) if rows else len(title)
    bar = "=" * width
    return "\n".join([bar, title, bar, *rows])


class ReportService:
    """Builds the standard report set for dashboards."""

    def __init__(self, monitoring: MonitoringService,
                 controls: Optional[HipaaControlRegistry] = None,
                 audit: Optional[AuditService] = None,
                 metering: Optional[MeteringService] = None) -> None:
        self.monitoring = monitoring
        self.controls = controls
        self.audit = audit
        self.metering = metering

    def operations_report(self) -> Report:
        """Ingestion/throughput/latency snapshot."""
        metrics = self.monitoring.metrics
        latency = metrics.summary("ingestion.latency")
        body = {
            "uploads": metrics.counter("ingestion.uploads"),
            "stored": metrics.counter("ingestion.stored"),
            "rejected": metrics.counter("ingestion.rejected"),
            "latency": latency,
        }
        rows = [
            f"uploads:  {body['uploads']:.0f}",
            f"stored:   {body['stored']:.0f}",
            f"rejected: {body['rejected']:.0f}",
        ]
        if latency.get("count"):
            rows.append(f"latency p50/p95: {latency['p50'] * 1e3:.1f} / "
                        f"{latency['p95'] * 1e3:.1f} ms (simulated)")
        return Report("Operations", body, _render("Operations", rows))

    def compliance_report(self) -> Report:
        """Control coverage per regulation + latest audit verdict."""
        if self.controls is None:
            raise ValueError("no control registry wired")
        body: Dict[str, Any] = {
            "coverage": {
                regulation: self.controls.coverage(regulation=regulation)
                for regulation in ("HIPAA", "GDPR", "GxP")
            },
            "gaps": [c.control_id for c in self.controls.gaps()],
        }
        rows = [f"{regulation}: {coverage:.0%} of controls implemented"
                for regulation, coverage in body["coverage"].items()]
        if self.audit is not None:
            audit_report = self.audit.run_audit()
            body["audit_clean"] = audit_report.clean
            body["findings"] = audit_report.findings
            rows.append(f"audit: {'CLEAN' if audit_report.clean else 'FINDINGS'}"
                        f" ({audit_report.access_denials} denials / "
                        f"{audit_report.access_checks} checks)")
        if body["gaps"]:
            rows.append("open gaps: " + ", ".join(body["gaps"][:4])
                        + ("..." if len(body["gaps"]) > 4 else ""))
        return Report("Compliance", body, _render("Compliance", rows))

    def billing_report(self, tenant_id: str) -> Report:
        """Current-period invoice for a tenant."""
        if self.metering is None:
            raise ValueError("no metering service wired")
        invoice = self.metering.invoice(tenant_id)
        body = {
            "tenant": tenant_id,
            "lines": [{"service": service, "units": units, "amount": amount}
                      for service, units, amount in invoice.lines],
            "total": invoice.total,
        }
        rows = [f"{line['service']:<24} {line['units']:>10.1f} units  "
                f"{line['amount']:>8.2f}" for line in body["lines"]]
        rows.append(f"{'TOTAL':<24} {'':>10}        {invoice.total:>8.2f}")
        return Report(f"Billing — {tenant_id}", body,
                      _render(f"Billing — {tenant_id}", rows))

    def study_summary(self, group_id: str,
                      cohort_table: Sequence[Dict[str, Any]]) -> Report:
        """Descriptive summary of an anonymized study cohort."""
        by_gender: Dict[str, int] = {}
        by_state: Dict[str, int] = {}
        for row in cohort_table:
            gender = str(row.get("gender", "unknown"))
            by_gender[gender] = by_gender.get(gender, 0) + 1
            state = str(row.get("state", ""))
            if state:
                by_state[state] = by_state.get(state, 0) + 1
        body = {
            "group": group_id,
            "n": len(cohort_table),
            "by_gender": by_gender,
            "by_state": by_state,
        }
        rows = [f"participants: {body['n']}"]
        rows += [f"gender {gender}: {count}"
                 for gender, count in sorted(by_gender.items())]
        rows += [f"state {state}: {count}"
                 for state, count in sorted(by_state.items())]
        return Report(f"Study — {group_id}", body,
                      _render(f"Study — {group_id}", rows))
